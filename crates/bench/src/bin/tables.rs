//! Regenerates Table 1 and every figure-shaped experiment of the paper
//! through the declarative scenario engine.
//!
//! ```sh
//! cargo run --release -p bdclique-bench --bin tables                     # everything
//! cargo run --release -p bdclique-bench --bin tables -- --list          # name the scenarios
//! cargo run --release -p bdclique-bench --bin tables -- --scenario t1r3 # one scenario
//! cargo run --release -p bdclique-bench --bin tables -- \
//!     --scenario largen --trials 3 --json bench.json                    # machine-readable
//! ```
//!
//! Bare scenario names (`tables t1r3 frontier`) are accepted as shorthand
//! for `--scenario`; `route` expands to `route-margin` + `route-engines`.
//! `--trials N` overrides the `BDC_TRIALS` environment variable (default
//! 5); scenarios apply their historical per-suite scaling (e.g. `codes`
//! runs `8 × N`). `--json PATH` additionally writes every selected
//! scenario's cells, aggregates, seeds, and wall times as one JSON document
//! (schema documented in the README).
//!
//! `--checkpoint-dir D [--checkpoint-every R]` checkpoints every trial's
//! full execution state into `D` every `R` rounds (atomic write-then-
//! rename); rerunning the same command after a crash resumes each
//! interrupted trial from its latest checkpoint, bit-identically to an
//! uninterrupted run. `--shard I/M` runs only the cells whose seed falls in
//! shard `I` of `M`, and `tables --merge OUT.json SHARD.json...` folds the
//! shard documents back into one.

use bdclique_bench::checkpoint::CheckpointConfig;
use bdclique_bench::experiments;
use bdclique_bench::scenario::{self, RunConfig, ScenarioResult};
use bdclique_bench::{merge, trajectory};
use std::process::ExitCode;

const USAGE: &str = "usage: tables [--scenario NAME]... [--trials N] [--json PATH] \
                    [--append-trajectory PATH] [--trajectory-gate] \
                    [--checkpoint-dir DIR] [--checkpoint-every ROUNDS] \
                    [--shard I/M] [--trace] [--list] [NAME]...\n\
                    \u{20}      tables --merge OUT.json SHARD.json...";

/// How often (in rounds) checkpointed trials capture state when
/// `--checkpoint-every` is not given.
const DEFAULT_CHECKPOINT_EVERY: u64 = 32;

struct Args {
    scenarios: Vec<String>,
    trials: Option<usize>,
    json: Option<String>,
    /// Append this run's per-cell `secs`/`mean_rounds` to the trajectory
    /// ledger at PATH and diff against the previous same-runner entry.
    trajectory: Option<String>,
    /// Make a trajectory gate violation fail the process (CI mode).
    trajectory_gate: bool,
    /// Checkpoint trial cells into this directory and resume from any
    /// checkpoints an interrupted earlier run left there.
    checkpoint_dir: Option<String>,
    /// Rounds between mid-trial checkpoints.
    checkpoint_every: Option<u64>,
    /// `(index, modulus)` shard selection: run only the cells whose seed
    /// falls in this shard.
    shard: Option<(usize, usize)>,
    /// Merge mode: fold the shard JSON documents named by the bare
    /// arguments into one document at this path, then exit.
    merge_out: Option<String>,
    trace: bool,
    list: bool,
    help: bool,
}

/// Parses `I/M` with `I < M`, `M ≥ 1`.
fn parse_shard(s: &str) -> Result<(usize, usize), String> {
    let (i, m) = s
        .split_once('/')
        .ok_or_else(|| format!("bad shard '{s}': expected I/M"))?;
    let index: usize = i.parse().map_err(|_| format!("bad shard index: {i}"))?;
    let modulus: usize = m.parse().map_err(|_| format!("bad shard modulus: {m}"))?;
    if modulus == 0 || index >= modulus {
        return Err(format!(
            "bad shard '{s}': need index < modulus, modulus >= 1"
        ));
    }
    Ok((index, modulus))
}

fn parse_args(raw: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        scenarios: Vec::new(),
        trials: None,
        json: None,
        trajectory: None,
        trajectory_gate: false,
        checkpoint_dir: None,
        checkpoint_every: None,
        shard: None,
        merge_out: None,
        trace: false,
        list: false,
        help: false,
    };
    let mut raw = raw.peekable();
    while let Some(arg) = raw.next() {
        match arg.as_str() {
            "--scenario" => {
                let name = raw.next().ok_or("--scenario requires a name")?;
                args.scenarios.push(name);
            }
            "--trials" => {
                let n = raw.next().ok_or("--trials requires a count")?;
                args.trials = Some(n.parse().map_err(|_| format!("bad trial count: {n}"))?);
            }
            "--json" => {
                let path = raw.next().ok_or("--json requires a path")?;
                args.json = Some(path);
            }
            "--append-trajectory" => {
                let path = raw.next().ok_or("--append-trajectory requires a path")?;
                args.trajectory = Some(path);
            }
            "--trajectory-gate" => args.trajectory_gate = true,
            "--checkpoint-dir" => {
                let dir = raw.next().ok_or("--checkpoint-dir requires a path")?;
                args.checkpoint_dir = Some(dir);
            }
            "--checkpoint-every" => {
                let n = raw
                    .next()
                    .ok_or("--checkpoint-every requires a round count")?;
                args.checkpoint_every =
                    Some(n.parse().map_err(|_| format!("bad round count: {n}"))?);
            }
            "--shard" => {
                let spec = raw.next().ok_or("--shard requires I/M")?;
                args.shard = Some(parse_shard(&spec)?);
            }
            "--merge" => {
                let path = raw.next().ok_or("--merge requires an output path")?;
                args.merge_out = Some(path);
            }
            "--trace" => args.trace = true,
            "--list" => args.list = true,
            "--help" | "-h" => args.help = true,
            flag if flag.starts_with("--") => return Err(format!("unknown flag: {flag}\n{USAGE}")),
            // Bare experiment ids, as the old CLI accepted — or shard
            // document paths under --merge.
            name => args.scenarios.push(name.to_string()),
        }
    }
    if args.checkpoint_every.is_some() && args.checkpoint_dir.is_none() {
        return Err("--checkpoint-every requires --checkpoint-dir".to_string());
    }
    Ok(args)
}

/// `--merge OUT.json shard0.json shard1.json …`: fold shard documents into
/// one and exit without running any scenario.
fn run_merge(out_path: &str, inputs: &[String]) -> ExitCode {
    if inputs.is_empty() {
        eprintln!("--merge needs at least one shard document\n{USAGE}");
        return ExitCode::FAILURE;
    }
    let mut docs = Vec::new();
    for path in inputs {
        match std::fs::read_to_string(path) {
            Ok(text) => docs.push((path.clone(), text)),
            Err(e) => {
                eprintln!("failed to read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    match merge::merge_documents(&docs) {
        Ok(merged) => {
            if let Err(e) = std::fs::write(out_path, &merged) {
                eprintln!("failed to write {out_path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("merged {} shard document(s) into {out_path}", docs.len());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("merge failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Expands selection shorthands (`all`, empty, `route`) against the
/// registry; errors on unknown names so typos don't silently run nothing.
fn select(requested: &[String]) -> Result<Vec<&'static str>, String> {
    let known: Vec<&'static str> = experiments::registry()
        .iter()
        .map(|entry| entry.name)
        .collect();
    if requested.is_empty() || requested.iter().any(|r| r == "all") {
        return Ok(known);
    }
    let mut selected = Vec::new();
    for name in requested {
        match name.as_str() {
            "route" => selected.extend(["route-margin", "route-engines"]),
            other => match known.iter().find(|k| **k == other) {
                Some(k) => selected.push(*k),
                None => {
                    return Err(format!(
                        "unknown scenario '{other}'; try --list (known: {})",
                        known.join(", ")
                    ))
                }
            },
        }
    }
    Ok(selected)
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    if args.help {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }

    if args.list {
        println!("available scenarios:");
        for entry in experiments::registry() {
            println!("  {:<14} {}", entry.name, entry.about);
        }
        return ExitCode::SUCCESS;
    }

    if let Some(out_path) = &args.merge_out {
        // In merge mode the bare arguments are shard document paths.
        return run_merge(out_path, &args.scenarios);
    }

    let selected = match select(&args.scenarios) {
        Ok(selected) => selected,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let trials = args
        .trials
        .or_else(|| {
            std::env::var("BDC_TRIALS")
                .ok()
                .and_then(|s| s.parse().ok())
        })
        .unwrap_or(5usize);

    println!("bdclique experiment suite (base trials per config: {trials})");
    println!("paper: Fischer-Parter, PODC 2025 (arXiv:2505.05735)");

    let run_cfg = RunConfig {
        serial: false,
        shard: args.shard,
        checkpoint: args.checkpoint_dir.as_ref().map(|dir| CheckpointConfig {
            dir: dir.into(),
            every: args.checkpoint_every.unwrap_or(DEFAULT_CHECKPOINT_EVERY),
        }),
    };
    if let Some((index, modulus)) = args.shard {
        println!("shard {index}/{modulus}: running only this shard's cells");
    }
    if let Some(ckpt) = &run_cfg.checkpoint {
        println!(
            "checkpointing trial cells into {} every {} round(s)",
            ckpt.dir.display(),
            ckpt.every
        );
    }

    let mut results: Vec<ScenarioResult> = Vec::new();
    for name in selected {
        let mut spec =
            experiments::build_scenario(name, trials).expect("registry names are always buildable");
        if args.trace {
            // Force per-round tracing (trial 0) on every trial cell of the
            // selected scenarios; scenarios like `schedules` opt in anyway.
            // Custom-measurement cells have no engine-run trials to trace.
            let mut traced = 0usize;
            for cell in &mut spec.cells {
                if let scenario::CellKind::Trials(job) = &mut cell.kind {
                    job.trace = true;
                    traced += 1;
                }
            }
            if traced == 0 {
                eprintln!(
                    "note: --trace has no effect on '{name}' (custom-measurement cells only)"
                );
            }
        }
        let result = scenario::run_configured(&spec, &run_cfg);
        println!("{}", result.table().render());
        results.push(result);
    }

    if let Some(path) = args.json {
        let doc = scenario::emit_json(&results, trials);
        if let Err(e) = std::fs::write(&path, &doc) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "wrote {path}: {} scenarios, {} cells ({})",
            results.len(),
            results.iter().map(|r| r.cells.len()).sum::<usize>(),
            scenario::SCHEMA
        );
    }

    if let Some(path) = args.trajectory {
        let runner = std::env::var("BDC_RUNNER").unwrap_or_else(|_| "local".to_string());
        let entry = trajectory::entry_from_results(&scenario::git_describe(), &runner, &results);
        let entries = match trajectory::append(std::path::Path::new(&path), entry) {
            Ok(entries) => entries,
            Err(e) => {
                eprintln!("failed to append trajectory {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "appended trajectory entry #{} (runner '{runner}') to {path}",
            entries.len()
        );
        let violations = trajectory::check_latest(&entries);
        for v in &violations {
            eprintln!("trajectory gate: {v}");
        }
        if violations.is_empty() {
            println!("trajectory gate: ok (±20% vs previous '{runner}' entry)");
        } else if args.trajectory_gate {
            eprintln!(
                "trajectory gate FAILED: {} violation(s) vs previous '{runner}' entry",
                violations.len()
            );
            return ExitCode::FAILURE;
        } else {
            println!(
                "trajectory gate: {} warning(s) (pass --trajectory-gate to make this fatal)",
                violations.len()
            );
        }
    }
    ExitCode::SUCCESS
}
