//! Cross-commit performance trajectory: `BENCH_trajectory.json`.
//!
//! The scenario JSON artifacts (`BENCH_smoke.json`, `BENCH_alpha_largen.json`)
//! are per-run CI uploads — nothing compares one commit's numbers to the
//! last. This module keeps a small append-only ledger in the repo: every
//! `tables --append-trajectory PATH` run appends one entry recording each
//! cell's wall-clock `secs` and `mean_rounds` under the current `git
//! describe`, then diffs it against the *previous entry from the same
//! runner* with a ±20% gate:
//!
//! - `mean_rounds` drifting more than ±20% in either direction is flagged —
//!   round counts are seeded-deterministic, so any drift is a behavior
//!   change, not noise;
//! - `secs` growing more than +20% is flagged as a wall-clock regression
//!   (speedups pass silently). Cells faster than [`SECS_FLOOR`] are skipped
//!   — sub-second timings are dominated by scheduler noise.
//!
//! Entries carry a `runner` tag (`BDC_RUNNER`, default `local`) so laptop
//! numbers never gate against CI numbers. The JSON is parsed by the
//! hand-rolled reader below — the workspace deliberately has no serde
//! dependency.

use crate::scenario::ScenarioResult;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Cells faster than this many seconds are exempt from the `secs` gate.
pub const SECS_FLOOR: f64 = 1.0;

/// Allowed relative drift before the gate flags a cell (`0.2` = ±20%).
pub const GATE: f64 = 0.2;

/// One recorded cell: identity plus the two tracked measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajCell {
    /// `scenario/key=value,…` — the scenario name and the cell's printed
    /// coordinates, stable across runs of the same grid.
    pub key: String,
    /// Wall-clock seconds the cell's work consumed.
    pub secs: f64,
    /// Mean rounds over completed trials (`None` for custom cells and
    /// cells where no trial completed).
    pub mean_rounds: Option<f64>,
    /// Mean honest bits queued per completed trial. Recorded for context
    /// (bandwidth-efficiency drift is visible in review diffs) but **not
    /// gated** — the ±20% contract stays on `secs` and `mean_rounds`.
    pub mean_bits: Option<f64>,
    /// Mean corrupted (edge, round) slots per completed trial. Recorded,
    /// not gated — adversarial pressure varies by design across cells.
    pub corruptions: Option<f64>,
}

/// One appended run: provenance plus its cells.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajEntry {
    /// `git describe --always --dirty` at run time.
    pub git: String,
    /// Runner tag (`BDC_RUNNER`); entries only gate against the same tag.
    pub runner: String,
    /// Every cell of every scenario the run executed.
    pub cells: Vec<TrajCell>,
}

/// Builds a trajectory entry from finished scenario runs.
pub fn entry_from_results(git: &str, runner: &str, results: &[ScenarioResult]) -> TrajEntry {
    let mut cells = Vec::new();
    for scenario in results {
        for cell in &scenario.cells {
            let coords: Vec<String> = cell
                .coords
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            cells.push(TrajCell {
                key: format!("{}/{}", scenario.name, coords.join(",")),
                secs: cell.secs,
                mean_rounds: cell.aggregate.as_ref().and_then(|a| a.mean_rounds),
                mean_bits: cell.aggregate.as_ref().and_then(|a| a.mean_bits),
                corruptions: cell.aggregate.as_ref().and_then(|a| a.mean_corrupted),
            });
        }
    }
    TrajEntry {
        git: git.to_string(),
        runner: runner.to_string(),
        cells,
    }
}

/// Loads a trajectory file. A missing file is an empty trajectory; a
/// malformed one is an error (never silently dropped — the ledger is the
/// point).
///
/// # Errors
///
/// I/O failures other than `NotFound`, and parse failures (as
/// `InvalidData`).
pub fn load(path: &Path) -> io::Result<Vec<TrajEntry>> {
    let text = match fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    parse_trajectory(&text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{path:?}: {e}")))
}

/// Appends `entry` to the trajectory at `path` (creating it if absent) and
/// returns the full updated trajectory, `entry` last.
///
/// # Errors
///
/// Propagates [`load`] failures and write failures.
pub fn append(path: &Path, entry: TrajEntry) -> io::Result<Vec<TrajEntry>> {
    let mut entries = load(path)?;
    entries.push(entry);
    fs::write(path, render(&entries))?;
    Ok(entries)
}

/// Gates `next` against `prev`: returns one human-readable violation per
/// cell breaking the ±20% contract (see the module docs for the exact
/// rules). An empty vector means the gate passes.
pub fn diff_entries(prev: &TrajEntry, next: &TrajEntry) -> Vec<String> {
    let mut violations = Vec::new();
    for cell in &next.cells {
        let Some(old) = prev.cells.iter().find(|c| c.key == cell.key) else {
            continue; // new cell: nothing to gate against
        };
        match (old.mean_rounds, cell.mean_rounds) {
            (Some(a), Some(b)) if a > 0.0 && ((b - a) / a).abs() > GATE => {
                violations.push(format!(
                    "{}: mean_rounds {a:.1} -> {b:.1} ({:+.1}%, gate ±{:.0}%) \
                     [{} -> {}]",
                    cell.key,
                    (b - a) / a * 100.0,
                    GATE * 100.0,
                    prev.git,
                    next.git,
                ));
            }
            (Some(a), None) => violations.push(format!(
                "{}: mean_rounds {a:.1} -> none (cell stopped completing) [{} -> {}]",
                cell.key, prev.git, next.git,
            )),
            _ => {}
        }
        if old.secs >= SECS_FLOOR && cell.secs > old.secs * (1.0 + GATE) {
            violations.push(format!(
                "{}: secs {:.2} -> {:.2} ({:+.1}%, gate +{:.0}%) [{} -> {}]",
                cell.key,
                old.secs,
                cell.secs,
                (cell.secs - old.secs) / old.secs * 100.0,
                GATE * 100.0,
                prev.git,
                next.git,
            ));
        }
    }
    violations
}

/// Gates the trajectory's last entry against the previous entry *from the
/// same runner*. With fewer than two same-runner entries there is nothing
/// to compare and the gate passes.
pub fn check_latest(entries: &[TrajEntry]) -> Vec<String> {
    let Some(next) = entries.last() else {
        return Vec::new();
    };
    let prev = entries[..entries.len() - 1]
        .iter()
        .rev()
        .find(|e| e.runner == next.runner);
    prev.map_or_else(Vec::new, |prev| diff_entries(prev, next))
}

// ---- serialization ----

/// Renders the trajectory as a JSON array, one entry per line (line-diffs
/// in review stay one-commit-per-line).
pub fn render(entries: &[TrajEntry]) -> String {
    let mut out = String::from("[\n");
    for (i, entry) in entries.iter().enumerate() {
        let cells: Vec<String> = entry
            .cells
            .iter()
            .map(|c| {
                let opt = |v: Option<f64>| {
                    v.filter(|v| v.is_finite())
                        .map_or("null".to_string(), |v| format!("{v}"))
                };
                format!(
                    "{{\"key\":{},\"secs\":{},\"mean_rounds\":{rounds},\
                     \"mean_bits\":{bits},\"corruptions\":{corr}}}",
                    quote(&c.key),
                    if c.secs.is_finite() {
                        format!("{}", c.secs)
                    } else {
                        "null".to_string()
                    },
                    rounds = opt(c.mean_rounds),
                    bits = opt(c.mean_bits),
                    corr = opt(c.corruptions),
                )
            })
            .collect();
        let _ = writeln!(
            out,
            "{{\"git\":{},\"runner\":{},\"cells\":[{}]}}{}",
            quote(&entry.git),
            quote(&entry.runner),
            cells.join(","),
            if i + 1 < entries.len() { "," } else { "" }
        );
    }
    out.push_str("]\n");
    out
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---- minimal JSON reader ----
//
// The workspace has no serde; this reader handles exactly the JSON subset
// the bench emits (objects, arrays, strings with the escapes `quote`
// produces plus `\u`, numbers, `true`/`false`/`null`) and rejects
// everything else loudly.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always read as `f64`; the trajectory stores no integers
    /// that exceed 2^53).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }
}

/// Parses one JSON document (rejecting trailing garbage).
///
/// # Errors
///
/// A position-tagged message on malformed input.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", c as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        _ => Err(format!("unexpected input at byte {pos}")),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        // Surrogate pairs don't occur in the bench's output;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8 passes through untouched.
                let c_start = *pos;
                *pos += 1;
                while *pos < bytes.len() && bytes[*pos] & 0xc0 == 0x80 {
                    *pos += 1;
                }
                out.push_str(
                    std::str::from_utf8(&bytes[c_start..*pos])
                        .map_err(|_| format!("bad UTF-8 at byte {c_start}"))?,
                );
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        expect(bytes, pos, b':')?;
        fields.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_trajectory(text: &str) -> Result<Vec<TrajEntry>, String> {
    let Json::Arr(raw) = parse_json(text)? else {
        return Err("trajectory root must be an array".to_string());
    };
    raw.iter()
        .enumerate()
        .map(|(i, entry)| {
            let git = entry
                .get("git")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("entry {i}: missing \"git\""))?
                .to_string();
            let runner = entry
                .get("runner")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("entry {i}: missing \"runner\""))?
                .to_string();
            let Some(Json::Arr(raw_cells)) = entry.get("cells") else {
                return Err(format!("entry {i}: missing \"cells\""));
            };
            let cells = raw_cells
                .iter()
                .enumerate()
                .map(|(j, cell)| {
                    Ok(TrajCell {
                        key: cell
                            .get("key")
                            .and_then(Json::as_str)
                            .ok_or_else(|| format!("entry {i} cell {j}: missing \"key\""))?
                            .to_string(),
                        secs: cell
                            .get("secs")
                            .and_then(Json::as_f64)
                            .ok_or_else(|| format!("entry {i} cell {j}: missing \"secs\""))?,
                        mean_rounds: cell.get("mean_rounds").and_then(Json::as_f64),
                        // Absent in pre-topology ledgers: old entries load
                        // with `None`, keeping the file append-compatible.
                        mean_bits: cell.get("mean_bits").and_then(Json::as_f64),
                        corruptions: cell.get("corruptions").and_then(Json::as_f64),
                    })
                })
                .collect::<Result<Vec<_>, String>>()?;
            Ok(TrajEntry { git, runner, cells })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(git: &str, cells: &[(&str, f64, Option<f64>)]) -> TrajEntry {
        TrajEntry {
            git: git.to_string(),
            runner: "test".to_string(),
            cells: cells
                .iter()
                .map(|&(key, secs, mean_rounds)| TrajCell {
                    key: key.to_string(),
                    secs,
                    mean_rounds,
                    mean_bits: None,
                    corruptions: None,
                })
                .collect(),
        }
    }

    #[test]
    fn render_parse_round_trips() {
        let mut entries = vec![
            entry(
                "v1-g0000000",
                &[("s/a=1", 2.5, Some(8.0)), ("s/a=2", 0.1, None)],
            ),
            entry("v1-g1111111", &[("s/a=1", 2.6, Some(8.0))]),
        ];
        entries[0].cells[0].mean_bits = Some(1024.0);
        entries[0].cells[0].corruptions = Some(3.5);
        let parsed = parse_trajectory(&render(&entries)).unwrap();
        assert_eq!(parsed, entries);
    }

    /// Pre-topology ledger entries (no `mean_bits` / `corruptions` fields)
    /// still load, with the new fields `None`.
    #[test]
    fn parses_legacy_cells_without_new_fields() {
        let text = r#"[
{"git":"v1","runner":"test","cells":[{"key":"s/a=1","secs":2.5,"mean_rounds":8}]}]
"#;
        let parsed = parse_trajectory(text).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].cells[0].mean_bits, None);
        assert_eq!(parsed[0].cells[0].corruptions, None);
        assert_eq!(parsed[0].cells[0].mean_rounds, Some(8.0));
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let v = parse_json(r#"{"a":[1,-2.5e1,"x\"\\\nA"],"b":{"c":null,"d":true}}"#).unwrap();
        let Json::Arr(a) = v.get("a").unwrap() else {
            panic!("a not an array")
        };
        assert_eq!(a[1], Json::Num(-25.0));
        assert_eq!(a[2], Json::Str("x\"\\\nA".to_string()));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Null));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Bool(true)));
    }

    #[test]
    fn parser_rejects_trailing_garbage_and_bad_docs() {
        assert!(parse_json("[1,2] x").is_err());
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_trajectory("{\"git\":\"x\"}").is_err()); // root not array
        assert!(parse_trajectory("[{\"runner\":\"r\",\"cells\":[]}]").is_err());
        // no git
    }

    #[test]
    fn gate_flags_regressions_only_above_thresholds() {
        let prev = entry(
            "old",
            &[
                ("s/slow", 10.0, Some(100.0)),
                ("s/fast", 0.2, Some(10.0)),
                ("s/steady", 5.0, Some(50.0)),
            ],
        );
        // slow: +30% secs (flagged) and +25% rounds (flagged);
        // fast: +400% secs but under SECS_FLOOR (exempt);
        // steady: -10% secs, +10% rounds (both within gate);
        // new cell: no baseline (exempt).
        let next = entry(
            "new",
            &[
                ("s/slow", 13.0, Some(125.0)),
                ("s/fast", 1.0, Some(10.0)),
                ("s/steady", 4.5, Some(55.0)),
                ("s/new", 99.0, Some(1.0)),
            ],
        );
        let violations = diff_entries(&prev, &next);
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations.iter().any(|v| v.contains("mean_rounds 100.0")));
        assert!(violations.iter().any(|v| v.contains("secs 10.00 -> 13.00")));
    }

    #[test]
    fn gate_flags_completion_loss() {
        let prev = entry("old", &[("s/c", 2.0, Some(4.0))]);
        let next = entry("new", &[("s/c", 2.0, None)]);
        let violations = diff_entries(&prev, &next);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("stopped completing"));
    }

    #[test]
    fn check_latest_compares_same_runner_only() {
        let mut ci_old = entry("a", &[("s/c", 10.0, Some(10.0))]);
        ci_old.runner = "ci".to_string();
        let laptop = entry("b", &[("s/c", 99.0, Some(10.0))]); // runner "test"
        let mut ci_new = entry("c", &[("s/c", 20.0, Some(10.0))]);
        ci_new.runner = "ci".to_string();
        // ci_new gates against ci_old (regression), skipping the laptop entry.
        let violations = check_latest(&[ci_old.clone(), laptop.clone(), ci_new]);
        assert_eq!(violations.len(), 1);
        // A lone first entry for a runner has no baseline: passes.
        assert!(check_latest(&[ci_old, laptop]).is_empty());
        assert!(check_latest(&[]).is_empty());
    }

    #[test]
    fn append_creates_and_extends_file() {
        let dir = std::env::temp_dir().join(format!("bdc-traj-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_trajectory.json");
        let _ = std::fs::remove_file(&path);
        let first = append(&path, entry("one", &[("s/c", 1.0, Some(2.0))])).unwrap();
        assert_eq!(first.len(), 1);
        let second = append(&path, entry("two", &[("s/c", 1.1, Some(2.0))])).unwrap();
        assert_eq!(second.len(), 2);
        assert_eq!(load(&path).unwrap(), second);
        let _ = std::fs::remove_file(&path);
    }
}
