// lint-fixture-as: crates/netsim/src/fixture.rs
//! Known-bad: allocation sized by a decoder read with no range check.

fn restore(dec: &mut Dec<'_>) -> Result<Vec<u8>, SnapError> {
    let n = dec.get_usize()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(dec.get_u8()?);
    }
    Ok(out)
}

fn restore_table(dec: &mut Dec<'_>) -> Result<Vec<u64>, SnapError> {
    let count = dec.get_u64()? as usize;
    Ok(vec![0u64; count])
}
