//! The extended Hamming `[8,4,4]` binary code, used as the inner code of the
//! Justesen-style concatenation.

use crate::error::CodeError;
use crate::traits::SymbolCode;

/// Generator rows of the extended Hamming `[8,4,4]` code, `G = [I | A]`.
const GEN: [u8; 4] = [
    0b1110_0001, // bit i of row r set => codeword bit i (LSB-first: data bits 0..4, parity 4..8)
    0b1101_0010,
    0b1011_0100,
    0b0111_1000,
];

/// The extended Hamming `[8,4,4]` code with maximum-likelihood decoding.
///
/// Sixteen codewords; ML decoding over non-erased positions corrects any
/// single bit error and flags ambiguous words. Used per-nibble by
/// [`crate::ConcatenatedCode`].
///
/// # Examples
///
/// ```
/// use bdclique_codes::{HammingCode, SymbolCode};
///
/// let code = HammingCode::new();
/// let mut cw = code.encode(&[1, 0, 1, 1]).unwrap();
/// cw[2] ^= 1; // single bit error
/// assert_eq!(code.decode(&cw, &[false; 8]).unwrap(), vec![1, 0, 1, 1]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HammingCode {
    codebook: [u8; 16],
}

impl HammingCode {
    /// Builds the code (precomputes the 16-entry codebook).
    pub fn new() -> Self {
        let mut codebook = [0u8; 16];
        for (msg, slot) in codebook.iter_mut().enumerate() {
            let mut cw = 0u8;
            for (r, &row) in GEN.iter().enumerate() {
                if msg >> r & 1 == 1 {
                    cw ^= row;
                }
            }
            *slot = cw;
        }
        Self { codebook }
    }

    /// Encodes a 4-bit nibble into an 8-bit codeword (both LSB-first).
    pub fn encode_nibble(&self, nibble: u8) -> u8 {
        self.codebook[(nibble & 0xf) as usize]
    }

    /// ML-decodes an 8-bit word with an erasure mask (`1` bits of `mask` are
    /// ignored). Returns `(nibble, ambiguous)` where `ambiguous` is true
    /// when two codewords tie at minimum distance.
    pub fn decode_nibble(&self, word: u8, erasure_mask: u8) -> (u8, bool) {
        let care = !erasure_mask;
        let mut best = 0u8;
        let mut best_dist = u32::MAX;
        let mut ambiguous = false;
        for (msg, &cw) in self.codebook.iter().enumerate() {
            let dist = ((word ^ cw) & care).count_ones();
            match dist.cmp(&best_dist) {
                std::cmp::Ordering::Less => {
                    best = msg as u8;
                    best_dist = dist;
                    ambiguous = false;
                }
                std::cmp::Ordering::Equal => ambiguous = true,
                std::cmp::Ordering::Greater => {}
            }
        }
        (best, ambiguous)
    }
}

impl SymbolCode for HammingCode {
    fn message_len(&self) -> usize {
        4
    }

    fn codeword_len(&self) -> usize {
        8
    }

    fn symbol_bits(&self) -> u32 {
        1
    }

    fn distance(&self) -> usize {
        4
    }

    fn encode(&self, msg: &[u16]) -> Result<Vec<u16>, CodeError> {
        if msg.len() != 4 {
            return Err(CodeError::LengthMismatch {
                expected: 4,
                actual: msg.len(),
            });
        }
        let mut nibble = 0u8;
        for (i, &b) in msg.iter().enumerate() {
            if b > 1 {
                return Err(CodeError::SymbolOutOfRange {
                    value: b,
                    alphabet: 2,
                });
            }
            nibble |= (b as u8) << i;
        }
        let cw = self.encode_nibble(nibble);
        Ok((0..8).map(|i| u16::from(cw >> i & 1)).collect())
    }

    fn decode(&self, received: &[u16], erasures: &[bool]) -> Result<Vec<u16>, CodeError> {
        if received.len() != 8 || erasures.len() != 8 {
            return Err(CodeError::LengthMismatch {
                expected: 8,
                actual: received.len().min(erasures.len()),
            });
        }
        let mut word = 0u8;
        let mut mask = 0u8;
        for i in 0..8 {
            if received[i] > 1 {
                return Err(CodeError::SymbolOutOfRange {
                    value: received[i],
                    alphabet: 2,
                });
            }
            word |= (received[i] as u8) << i;
            if erasures[i] {
                mask |= 1 << i;
            }
        }
        let (nibble, ambiguous) = self.decode_nibble(word, mask);
        if ambiguous {
            return Err(CodeError::TooManyErrors {
                context: "ambiguous inner ML decode",
            });
        }
        Ok((0..4).map(|i| u16::from(nibble >> i & 1)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_codewords_have_weight_geq_4() {
        let code = HammingCode::new();
        for msg in 1..16u8 {
            let cw = code.encode_nibble(msg);
            assert!(
                cw.count_ones() >= 4,
                "msg {msg} -> weight {}",
                cw.count_ones()
            );
        }
    }

    #[test]
    fn minimum_distance_is_4() {
        let code = HammingCode::new();
        let mut min = u32::MAX;
        for a in 0..16u8 {
            for b in (a + 1)..16 {
                let d = (code.encode_nibble(a) ^ code.encode_nibble(b)).count_ones();
                min = min.min(d);
            }
        }
        assert_eq!(min, 4);
    }

    #[test]
    fn corrects_every_single_bit_error() {
        let code = HammingCode::new();
        for msg in 0..16u8 {
            let cw = code.encode_nibble(msg);
            for bit in 0..8 {
                let (dec, amb) = code.decode_nibble(cw ^ (1 << bit), 0);
                assert!(!amb, "msg {msg} bit {bit}");
                assert_eq!(dec, msg, "msg {msg} bit {bit}");
            }
        }
    }

    #[test]
    fn double_errors_are_flagged_ambiguous() {
        let code = HammingCode::new();
        let mut flagged = 0;
        let mut total = 0;
        for msg in 0..16u8 {
            let cw = code.encode_nibble(msg);
            for b1 in 0..8 {
                for b2 in (b1 + 1)..8 {
                    let (_, amb) = code.decode_nibble(cw ^ (1 << b1) ^ (1 << b2), 0);
                    total += 1;
                    if amb {
                        flagged += 1;
                    }
                }
            }
        }
        // With distance 4, every weight-2 error lands equidistant between
        // codewords: all must be flagged.
        assert_eq!(flagged, total);
    }

    #[test]
    fn erasures_plus_error_within_budget() {
        let code = HammingCode::new();
        // 1 error + 1 erasure: 2e + f = 3 < 4, always decodable.
        for msg in 0..16u8 {
            let cw = code.encode_nibble(msg);
            for err in 0..8 {
                for era in 0..8 {
                    if era == err {
                        continue;
                    }
                    let word = cw ^ (1 << err) ^ (1 << era); // erased bit garbage
                    let (dec, amb) = code.decode_nibble(word, 1 << era);
                    assert!(!amb && dec == msg, "msg {msg} err {err} era {era}");
                }
            }
        }
    }

    #[test]
    fn symbol_code_roundtrip() {
        let code = HammingCode::new();
        let msg = vec![1u16, 1, 0, 1];
        let cw = code.encode(&msg).unwrap();
        assert_eq!(cw.len(), 8);
        assert_eq!(code.decode(&cw, &[false; 8]).unwrap(), msg);
        assert_eq!(code.distance(), 4);
    }
}
