//! Large-`n` smoke tests for the sparse traffic substrate.
//!
//! The sparse [`bdclique_netsim::Traffic`] backend is what makes these
//! sizes reachable at all: the old dense representation allocated and
//! touched `n² ≈ 16.7M` `Option<BitVec>` slots *per round* at `n = 4096`.
//!
//! The routed trial is compiled into every `cargo test` run but executes
//! only in release builds (`cargo test --release -q -p bdclique-core --test
//! large_n`, the CI large-n smoke step) — debug-mode Reed–Solomon is an
//! order of magnitude slower and would drag the tier-1 gate.

use bdclique_bits::BitVec;
use bdclique_core::routing::{route, EngineUsed, RouterConfig, RoutingInstance, SuperMessage};
use bdclique_netsim::{Adversary, Backend, Network, Traffic};

/// Sparse exchange at n = 4096: one frame per node must cost O(n), not
/// O(n²) — fast enough for debug builds precisely because nothing dense is
/// ever materialized.
#[test]
fn sparse_exchange_n4096_never_densifies() {
    let n = 4096;
    let mut net = Network::new(n, 16, 0.0, Adversary::none());
    let mut traffic = net.traffic();
    for u in 0..n {
        traffic.send(u, (u + 1) % n, BitVec::from_fn(16, |i| (i + u) % 3 == 0));
    }
    assert_eq!(traffic.backend(), Backend::Sparse);
    // The whole ring fits in well under a megabyte; the dense matrix alone
    // would be ~0.5 GiB of Option<BitVec> slots.
    assert!(traffic.store_bytes() < 1 << 20, "{}", traffic.store_bytes());
    let delivery = net.exchange(traffic);
    for u in 0..n {
        let v = (u + 1) % n;
        assert_eq!(
            delivery.received(v, u),
            Some(&BitVec::from_fn(16, |i| (i + u) % 3 == 0))
        );
        assert_eq!(delivery.inbox_of(v).count(), 1);
    }
    net.reclaim(delivery);
    // Ten more rounds reuse the arena-pooled tables.
    for _ in 0..10 {
        let mut t = net.traffic();
        t.send(0, 1, BitVec::from_bools(&[true]));
        let d = net.exchange(t);
        net.reclaim(d);
    }
    assert_eq!(net.rounds(), 11);
}

/// The dense auto-switch still works at scale without being quadratic in
/// wall time for sparse loads: 1% load factor stays sparse.
#[test]
fn one_percent_load_stays_sparse_at_n2048() {
    let n = 2048;
    let mut traffic = Traffic::new(n, 8);
    // 1% of n² ≈ 41.9k frames < n²/16: must remain sparse.
    let frames = n * n / 100;
    let mut sent = 0usize;
    'outer: for u in 0..n {
        for k in 1..n {
            traffic.send(u, (u + k) % n, BitVec::from_bools(&[true; 8]));
            sent += 1;
            if sent == frames {
                break 'outer;
            }
        }
    }
    assert_eq!(traffic.backend(), Backend::Sparse);
    assert_eq!(traffic.frame_count(), frames as u64);
}

/// A √n-wave-shaped unit-engine instance at n = 4096: k = 8 messages per
/// node with segment-local targets — the conflict structure of a DetSqrt
/// wave, scaled to smoke size. Exercises the stage-parallel scheduler,
/// per-pack encode/decode fan-out, and arena-recycled frames at full
/// network width; release-only like its cover-free sibling below. The full
/// k = 64 waves run in the `alpha-largen` CI step under its wall-clock
/// budget.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "release-only large-n smoke (CI runs: cargo test --release -p bdclique-core --test large_n)"
)]
fn unit_engine_wave_n4096_completes() {
    use bdclique_core::routing::{RouterConfig, RoutingMode};
    let n = 4096;
    let k = 8;
    let payload_bits = 64;
    let instance = RoutingInstance {
        n,
        payload_bits,
        messages: (0..n)
            .flat_map(|u| (0..k).map(move |j| (u, j)))
            .map(|(u, j)| SuperMessage {
                src: u,
                slot: j,
                payload: BitVec::from_fn(payload_bits, |i| (u * 13 + j * 5 + i) % 7 < 3),
                targets: vec![(u / k) * k + j],
            })
            .collect(),
    };
    let mut net = Network::new(n, 18, 0.0, Adversary::none());
    let cfg = RouterConfig {
        mode: RoutingMode::Unit,
        ..Default::default()
    };
    let out = route(&mut net, &instance, &cfg).unwrap();
    assert_eq!(out.report.engine, EngineUsed::Unit);
    assert_eq!(out.report.decode_failures, 0);
    assert!(
        out.report.stages < 2 * k,
        "{} stages exceed the greedy bound for per-endpoint degree {k}",
        out.report.stages
    );
    for msg in &instance.messages {
        assert_eq!(
            out.delivered[msg.targets[0]].get(&(msg.src, msg.slot)),
            Some(&msg.payload),
            "message ({}, {}) lost",
            msg.src,
            msg.slot
        );
    }
}

/// The event-driven executor at full `n = 65536` network width: a k = 2
/// unit wave with segment-local targets. A complete det-sqrt trial at this
/// width would need ~4.3 × 10⁹ instance messages (the ROADMAP's open
/// per-pack-checkpointing item), so the smoke pins what the executor
/// itself must survive at this scale — plan construction, message-bus
/// posting at virtual delivery times, the prefetch/decode pipeline, and
/// arena traffic — on one routed wave. `#[ignore]`d even in release; CI
/// runs it explicitly (`-- --ignored`) in the large-n smoke step.
#[test]
#[ignore = "release-gated in CI: minutes at n = 65536"]
fn event_unit_wave_n65536_completes() {
    use bdclique_core::routing::RoutingMode;
    let n = 65536;
    let k = 2;
    let payload_bits = 64;
    let instance = RoutingInstance {
        n,
        payload_bits,
        messages: (0..n)
            .flat_map(|u| (0..k).map(move |j| (u, j)))
            .map(|(u, j)| SuperMessage {
                src: u,
                slot: j,
                payload: BitVec::from_fn(payload_bits, |i| (u * 13 + j * 5 + i) % 7 < 3),
                targets: vec![(u / k) * k + j],
            })
            .collect(),
    };
    let mut net = Network::new(n, 18, 0.0, Adversary::none());
    let cfg = RouterConfig {
        mode: RoutingMode::Unit,
        event_driven: true,
        ..Default::default()
    };
    let out = route(&mut net, &instance, &cfg).unwrap();
    assert_eq!(out.report.engine, EngineUsed::Unit);
    assert_eq!(out.report.decode_failures, 0);
    for msg in &instance.messages {
        assert_eq!(
            out.delivered[msg.targets[0]].get(&(msg.src, msg.slot)),
            Some(&msg.payload),
            "message ({}, {}) lost",
            msg.src,
            msg.slot
        );
    }
}

/// A full resilient routed trial at n = 4096 — every node routes one
/// super-message through the cover-free engine over the sparse substrate.
/// Release-only (see module docs); the CI smoke step is its timing gate.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "release-only large-n smoke (CI runs: cargo test --release -p bdclique-core --test large_n)"
)]
fn routed_trial_n4096_completes() {
    let n = 4096;
    let payload_bits = 64;
    let instance = RoutingInstance {
        n,
        payload_bits,
        messages: (0..n)
            .map(|u| SuperMessage {
                src: u,
                slot: 0,
                payload: BitVec::from_fn(payload_bits, |i| (u * 31 + i * 7) % 11 < 4),
                targets: vec![(u + n / 2 + 1) % n],
            })
            .collect(),
    };
    let mut net = Network::new(n, 9, 0.0, Adversary::none());
    let out = route(&mut net, &instance, &RouterConfig::default()).unwrap();
    assert_eq!(out.report.engine, EngineUsed::CoverFree);
    assert_eq!(out.report.decode_failures, 0);
    for msg in &instance.messages {
        assert_eq!(
            out.delivered[msg.targets[0]].get(&(msg.src, 0)),
            Some(&msg.payload),
            "message from {} lost",
            msg.src
        );
    }
}
