//! Error type shared by all codes in this crate.

use std::error::Error;
use std::fmt;

/// Errors produced by encoding/decoding operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodeError {
    /// The received word is too corrupted to decode within the code's
    /// guaranteed radius.
    TooManyErrors {
        /// Human-readable context (which stage failed).
        context: &'static str,
    },
    /// An input slice had the wrong length.
    LengthMismatch {
        /// What was expected.
        expected: usize,
        /// What was provided.
        actual: usize,
    },
    /// A symbol value does not fit the code's alphabet.
    SymbolOutOfRange {
        /// The offending value.
        value: u16,
        /// The alphabet size.
        alphabet: u32,
    },
    /// Local decoding could not reach a majority among its query groups.
    NoMajority,
}

impl fmt::Display for CodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeError::TooManyErrors { context } => {
                write!(f, "too many errors to decode ({context})")
            }
            CodeError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected}, got {actual}")
            }
            CodeError::SymbolOutOfRange { value, alphabet } => {
                write!(f, "symbol {value} outside alphabet of size {alphabet}")
            }
            CodeError::NoMajority => write!(f, "local decoding reached no majority"),
        }
    }
}

impl Error for CodeError {}
