//! Criterion benchmarks for the storage layer: one full exchange round
//! (build → queue → deliver → read) per backend, across clique sizes and
//! load factors.
//!
//! The headline comparison is the **sparse-load** group: at ≤1% load factor
//! the sparse adjacency backend must beat the dense matrix by an order of
//! magnitude in both wall time and memory traffic (the dense backend pays
//! `Θ(n²)` allocation per round regardless of how little is sent). The
//! **full-load** group at n = 64 is the regression guard in the other
//! direction: auto-switching traffic must stay within noise of the pinned
//! dense backend on full-matrix rounds.
//!
//! A one-shot `store_bytes` report prints the measured per-round memory
//! footprint ratio before the timing runs.

use bdclique_bits::BitVec;
use bdclique_netsim::{Adversary, Backend, Network, Traffic};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Duration;

const BANDWIDTH: usize = 9;

/// Frames per node for the ≤1% load-factor rows.
fn sparse_degree(n: usize) -> usize {
    (n / 128).max(1)
}

fn fill(t: &mut Traffic, n: usize, per_node: usize) {
    for u in 0..n {
        for k in 1..=per_node {
            t.send(u, (u + k) % n, BitVec::from_bools(&[true; BANDWIDTH]));
        }
    }
}

/// One complete round on a pinned backend: build the traffic, exchange it,
/// and read every delivered frame back through the inbox API.
fn round(net: &mut Network, n: usize, backend: Backend, per_node: usize) -> u64 {
    let mut t = Traffic::with_backend(n, BANDWIDTH, backend);
    fill(&mut t, n, per_node);
    let d = net.exchange(t);
    let mut read = 0u64;
    for v in 0..n {
        read += d.inbox_of(v).count() as u64;
    }
    net.reclaim(d);
    read
}

/// Same round through the production path (`Network::traffic`, arena-backed,
/// auto-switching).
fn round_auto(net: &mut Network, n: usize, per_node: usize) -> u64 {
    let mut t = net.traffic();
    fill(&mut t, n, per_node);
    let d = net.exchange(t);
    let mut read = 0u64;
    for v in 0..n {
        read += d.inbox_of(v).count() as u64;
    }
    net.reclaim(d);
    read
}

fn report_memory_traffic() {
    println!("traffic store_bytes at ≤1% load (sparse must win ≥10x):");
    for n in [64usize, 256, 1024, 4096] {
        let per_node = sparse_degree(n);
        let mut sparse = Traffic::with_backend(n, BANDWIDTH, Backend::Sparse);
        let mut dense = Traffic::with_backend(n, BANDWIDTH, Backend::Dense);
        fill(&mut sparse, n, per_node);
        fill(&mut dense, n, per_node);
        let (s, d) = (sparse.store_bytes(), dense.store_bytes());
        println!(
            "  n={n:<5} frames={:<6} sparse={s:>12} B  dense={d:>12} B  ratio={:>8.1}x",
            n * per_node,
            d as f64 / s as f64
        );
    }
}

fn bench_sparse_load(c: &mut Criterion) {
    report_memory_traffic();
    let mut g = c.benchmark_group("traffic/sparse-load");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    for n in [64usize, 256, 1024, 4096] {
        let per_node = sparse_degree(n);
        g.bench_function(&format!("n{n}/sparse"), |b| {
            let mut net = Network::new(n, BANDWIDTH, 0.0, Adversary::none());
            b.iter(|| black_box(round(&mut net, n, Backend::Sparse, per_node)))
        });
        g.bench_function(&format!("n{n}/dense"), |b| {
            let mut net = Network::new(n, BANDWIDTH, 0.0, Adversary::none());
            b.iter(|| black_box(round(&mut net, n, Backend::Dense, per_node)))
        });
        g.bench_function(&format!("n{n}/auto"), |b| {
            let mut net = Network::new(n, BANDWIDTH, 0.0, Adversary::none());
            b.iter(|| black_box(round_auto(&mut net, n, per_node)))
        });
    }
    g.finish();
}

fn bench_full_load(c: &mut Criterion) {
    let mut g = c.benchmark_group("traffic/full-load");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    let n = 64usize;
    g.bench_function("n64/dense", |b| {
        let mut net = Network::new(n, BANDWIDTH, 0.0, Adversary::none());
        b.iter(|| black_box(round(&mut net, n, Backend::Dense, n - 1)))
    });
    g.bench_function("n64/auto", |b| {
        let mut net = Network::new(n, BANDWIDTH, 0.0, Adversary::none());
        b.iter(|| black_box(round_auto(&mut net, n, n - 1)))
    });
    g.finish();
}

criterion_group!(benches, bench_sparse_load, bench_full_load);
criterion_main!(benches);
