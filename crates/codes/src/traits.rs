//! Common traits implemented by every code in this crate.

use crate::error::CodeError;
use bdclique_bits::BitVec;

/// A block code over symbols of `symbol_bits` bits (carried as `u16`).
///
/// Implementors: [`crate::ReedSolomon`], [`crate::HammingCode`],
/// [`crate::ConcatenatedCode`], [`crate::RepetitionCode`]. The routing layer
/// is generic over this trait so experiments can swap codes (ablation
/// `A.CODE` in `DESIGN.md`).
pub trait SymbolCode {
    /// Message length in symbols.
    fn message_len(&self) -> usize;
    /// Codeword length in symbols.
    fn codeword_len(&self) -> usize;
    /// Bits per symbol (1 for binary codes).
    fn symbol_bits(&self) -> u32;
    /// Design distance (minimum Hamming distance the code guarantees).
    fn distance(&self) -> usize;

    /// Encodes a message of exactly [`Self::message_len`] symbols.
    ///
    /// # Errors
    ///
    /// [`CodeError::LengthMismatch`] or [`CodeError::SymbolOutOfRange`] on
    /// malformed input.
    fn encode(&self, msg: &[u16]) -> Result<Vec<u16>, CodeError>;

    /// Decodes a received word with per-position erasure flags.
    ///
    /// # Errors
    ///
    /// [`CodeError::TooManyErrors`] when the word is outside the decoding
    /// radius, and the input-shape errors of [`Self::encode`].
    fn decode(&self, received: &[u16], erasures: &[bool]) -> Result<Vec<u16>, CodeError>;

    /// Rate `k/n` as a float (informational).
    fn rate(&self) -> f64 {
        self.message_len() as f64 / self.codeword_len() as f64
    }

    /// Relative distance `d/n` as a float (informational).
    fn relative_distance(&self) -> f64 {
        self.distance() as f64 / self.codeword_len() as f64
    }
}

/// Bit-string convenience layer over any [`SymbolCode`].
///
/// Protocol payloads are [`BitVec`]s; this extension packs them into code
/// symbols (zero-padding the tail) and unpacks decoded messages back into
/// bit strings.
pub trait BitCode: SymbolCode {
    /// Maximum number of payload bits one codeword carries.
    fn payload_bits(&self) -> usize {
        self.message_len() * self.symbol_bits() as usize
    }

    /// Encodes up to [`Self::payload_bits`] bits into codeword symbols.
    ///
    /// # Errors
    ///
    /// [`CodeError::LengthMismatch`] when `bits` exceeds the payload size.
    fn encode_bits(&self, bits: &BitVec) -> Result<Vec<u16>, CodeError> {
        if bits.len() > self.payload_bits() {
            return Err(CodeError::LengthMismatch {
                expected: self.payload_bits(),
                actual: bits.len(),
            });
        }
        // Batch unpack straight into message symbols; positions past the end
        // of `bits` read as zero, which is exactly the padding the previous
        // clone + pad_to + to_symbols pipeline produced.
        let symbols = bits.read_uints(0, self.symbol_bits(), self.message_len());
        self.encode(&symbols)
    }

    /// Decodes a received word and returns the first `len` payload bits.
    ///
    /// # Errors
    ///
    /// Propagates the decoding errors of [`SymbolCode::decode`]; also
    /// rejects `len` larger than the payload.
    fn decode_bits(
        &self,
        received: &[u16],
        erasures: &[bool],
        len: usize,
    ) -> Result<BitVec, CodeError> {
        if len > self.payload_bits() {
            return Err(CodeError::LengthMismatch {
                expected: self.payload_bits(),
                actual: len,
            });
        }
        let msg = self.decode(received, erasures)?;
        if msg.len() * (self.symbol_bits() as usize) < len {
            return Err(CodeError::LengthMismatch {
                expected: len,
                actual: msg.len() * self.symbol_bits() as usize,
            });
        }
        // Batch repack (push_uints masks to symbol width, like from_symbols).
        let mut bits = BitVec::new();
        bits.push_uints(
            self.symbol_bits(),
            &msg[..len.div_ceil(self.symbol_bits() as usize)],
        );
        bits.truncate(len);
        Ok(bits)
    }
}

impl<T: SymbolCode + ?Sized> BitCode for T {}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy identity "code" to exercise the blanket BitCode impl.
    struct Identity {
        len: usize,
        bits: u32,
    }

    impl SymbolCode for Identity {
        fn message_len(&self) -> usize {
            self.len
        }
        fn codeword_len(&self) -> usize {
            self.len
        }
        fn symbol_bits(&self) -> u32 {
            self.bits
        }
        fn distance(&self) -> usize {
            1
        }
        fn encode(&self, msg: &[u16]) -> Result<Vec<u16>, CodeError> {
            Ok(msg.to_vec())
        }
        fn decode(&self, received: &[u16], _erasures: &[bool]) -> Result<Vec<u16>, CodeError> {
            Ok(received.to_vec())
        }
    }

    #[test]
    fn bitcode_roundtrip_and_padding() {
        let code = Identity { len: 4, bits: 3 };
        assert_eq!(code.payload_bits(), 12);
        let bits = BitVec::from_bools(&[true, false, true, true, false]);
        let cw = code.encode_bits(&bits).unwrap();
        assert_eq!(cw.len(), 4);
        let back = code.decode_bits(&cw, &[false; 4], 5).unwrap();
        assert_eq!(back, bits);
    }

    #[test]
    fn bitcode_rejects_oversized_payload() {
        let code = Identity { len: 2, bits: 1 };
        let bits = BitVec::from_bools(&[true; 3]);
        assert!(matches!(
            code.encode_bits(&bits),
            Err(CodeError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn rate_and_relative_distance() {
        let code = Identity { len: 4, bits: 1 };
        assert!((code.rate() - 1.0).abs() < 1e-9);
        assert!((code.relative_distance() - 0.25).abs() < 1e-9);
    }
}
