//! Direct use of the resilient super-message routing API (Theorem 4.1):
//! build an instance, route it under attack with both engines, and compare
//! the reports.
//!
//! ```sh
//! cargo run --release --example routing_demo
//! ```

use bdclique::adversary::adaptive::GreedyLoad;
use bdclique::adversary::Payload;
use bdclique::bits::BitVec;
use bdclique::core::routing::{route, RouterConfig, RoutingInstance, RoutingMode, SuperMessage};
use bdclique::netsim::{Adversary, Network};

fn main() {
    let n = 256usize;
    let k = 2usize;
    let payload_bits = 64usize;

    // Every node sends k super-messages; message (u, j) goes to two targets.
    let instance = RoutingInstance {
        n,
        payload_bits,
        messages: (0..n)
            .flat_map(|u| {
                (0..k).map(move |j| SuperMessage {
                    src: u,
                    slot: j,
                    payload: BitVec::from_fn(payload_bits, |i| (i * 31 + u * 7 + j) % 5 < 2),
                    targets: vec![(u + 3 * j + 1) % n],
                })
            })
            .collect(),
    };

    println!(
        "routing {} super-messages of {payload_bits} bits over n = {n} (budget 1/node/round)\n",
        instance.messages.len()
    );
    for (mode, name) in [
        (RoutingMode::CoverFree, "cover-free (§4.2)"),
        (RoutingMode::Unit, "scheduled-unit"),
    ] {
        let cfg = RouterConfig {
            mode,
            ..Default::default()
        };
        let adversary = Adversary::adaptive(GreedyLoad::new(Payload::Flip, 3));
        let mut net = Network::new(n, 18, 1.2 / n as f64, adversary);
        match route(&mut net, &instance, &cfg) {
            Ok(out) => {
                let mut wrong = 0usize;
                for msg in &instance.messages {
                    for &t in &msg.targets {
                        if out.delivered[t].get(&(msg.src, msg.slot)) != Some(&msg.payload) {
                            wrong += 1;
                        }
                    }
                }
                println!(
                    "{name:<20} rounds={:<3} stages={:<3} chunks={} decode-failures={} wrong={}",
                    out.report.rounds,
                    out.report.stages,
                    out.report.chunks,
                    out.report.decode_failures,
                    wrong
                );
            }
            Err(e) => println!("{name:<20} infeasible: {e}"),
        }
    }
    println!(
        "\nBoth engines deliver every payload; the cover-free engine routes\n\
         all k messages per node in one 2-round wave per chunk (Theorem 4.1's\n\
         O(1)-round regime), while the unit engine schedules stages."
    );
}
