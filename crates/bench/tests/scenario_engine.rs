//! Regression tests for the scenario engine: per-coordinate seed
//! sensitivity, parallel/serial bit-identity, zero-trial rendering, the
//! registry, and JSON well-formedness.

use bdclique_bench::scenario::{self, Cell, CellKind, ProtocolFactory, Scenario, TrialJob, Value};
use bdclique_bench::{AdversarySpec, Aggregate, TopologySpec};
use bdclique_core::protocols::{DetSqrt, NaiveExchange};
use std::sync::Arc;

fn naive_factory() -> ProtocolFactory {
    Arc::new(|_seed| Box::new(NaiveExchange))
}

fn present_basic(_job: &TrialJob, agg: &Aggregate) -> Vec<(&'static str, Value)> {
    vec![
        ("rounds", Value::opt_f1(agg.mean_rounds)),
        ("perfect", Value::rate(agg.perfect, agg.completed)),
        ("errors", Value::u(agg.total_errors)),
    ]
}

fn base_cell() -> Cell {
    Cell {
        coords: vec![("n", Value::u(8)), ("adversary", Value::s("none"))],
        kind: CellKind::Trials(TrialJob {
            protocol: naive_factory(),
            protocol_key: "naive",
            adversary: AdversarySpec::None,
            topology: TopologySpec::Complete,
            n: 8,
            b: 1,
            bandwidth: 9,
            alpha: 0.0,
            trials: 3,
            present: present_basic,
            trace: false,
        }),
    }
}

fn with_job(mutate: impl FnOnce(&mut TrialJob)) -> Cell {
    let mut cell = base_cell();
    if let CellKind::Trials(job) = &mut cell.kind {
        mutate(job);
    }
    cell
}

/// Acceptance criterion: changing any single cell coordinate — the
/// scenario name, a named coordinate, or any parameter of the trial job —
/// changes that cell's seed stream.
#[test]
fn any_single_coordinate_change_changes_the_seed_stream() {
    let base = base_cell().stream("s");

    assert_ne!(base, base_cell().stream("other-scenario"), "scenario name");

    let mut renamed = base_cell();
    renamed.coords[0] = ("n", Value::u(9));
    assert_ne!(base, renamed.stream("s"), "coordinate value");
    let mut rekeyed = base_cell();
    rekeyed.coords[0] = ("m", Value::u(8));
    assert_ne!(base, rekeyed.stream("s"), "coordinate key");

    let cases: Vec<(&str, Cell)> = vec![
        ("n", with_job(|j| j.n = 9)),
        ("b", with_job(|j| j.b = 2)),
        ("bandwidth", with_job(|j| j.bandwidth = 10)),
        ("alpha", with_job(|j| j.alpha = 0.125)),
        (
            "adversary",
            with_job(|j| j.adversary = AdversarySpec::GreedyFlip),
        ),
        (
            "adversary params",
            with_job(|j| j.adversary = AdversarySpec::RelayHunter(0, 1)),
        ),
        ("protocol", with_job(|j| j.protocol_key = "other-proto")),
        (
            "topology",
            with_job(|j| j.topology = TopologySpec::Hypercube),
        ),
        (
            "topology params",
            with_job(|j| j.topology = TopologySpec::RandomRegular { d: 4, seed: 1 }),
        ),
    ];
    for (what, cell) in cases {
        assert_ne!(
            base,
            cell.stream("s"),
            "changing {what} must change the stream"
        );
    }
    // Hunter pairs with the same display name still seed apart (key() is
    // parameterized even where name() collides).
    assert_ne!(
        with_job(|j| j.adversary = AdversarySpec::RelayHunter(0, 1)).stream("s"),
        with_job(|j| j.adversary = AdversarySpec::RelayHunter(2, 3)).stream("s"),
    );
    // The trial *count* is deliberately not a seed coordinate: more trials
    // extend the sequence instead of reshuffling completed ones.
    assert_eq!(base, with_job(|j| j.trials = 100).stream("s"));
    // `Complete` is the implicit historical topology: setting it explicitly
    // must NOT perturb any pre-topology cell's seed stream.
    assert_eq!(
        base,
        with_job(|j| j.topology = TopologySpec::Complete).stream("s")
    );
    // Distinct sparse generators seed apart.
    assert_ne!(
        with_job(|j| j.topology = TopologySpec::RandomRegular { d: 4, seed: 1 }).stream("s"),
        with_job(|j| j.topology = TopologySpec::RandomRegular { d: 4, seed: 2 }).stream("s"),
    );
}

fn mini_grid(trials: usize) -> Scenario {
    let mut cells = Vec::new();
    for n in [8usize, 16] {
        for adversary in [AdversarySpec::None, AdversarySpec::GreedyFlip] {
            let alpha = if adversary == AdversarySpec::None {
                0.0
            } else {
                0.2
            };
            cells.push(Cell {
                coords: vec![
                    ("n", Value::u(n)),
                    ("adversary", Value::s(adversary.name())),
                ],
                kind: CellKind::Trials(TrialJob {
                    protocol: Arc::new(|_seed| Box::new(DetSqrt::default())),
                    protocol_key: "det-sqrt",
                    adversary,
                    topology: TopologySpec::Complete,
                    n,
                    b: 1,
                    bandwidth: 18,
                    alpha,
                    trials,
                    present: present_basic,
                    trace: true,
                }),
            });
        }
    }
    Scenario {
        name: "mini-grid",
        title: "engine test grid".into(),
        headers: vec!["n", "adversary", "rounds", "perfect", "errors"],
        cells,
    }
}

/// The cell-level parallel fan-out must be invisible: seeds, metrics, and
/// aggregates bit-identical to the serial oracle.
#[test]
fn parallel_run_matches_serial_oracle() {
    let spec = mini_grid(4);
    let par = scenario::run(&spec);
    let ser = scenario::run_serial(&spec);
    assert_eq!(par.cells.len(), ser.cells.len());
    for (p, s) in par.cells.iter().zip(&ser.cells) {
        assert!(p.same_outcome(s), "diverged at {:?} vs {:?}", p, s);
    }
}

/// Re-running the same spec replays the same seeds and results (the JSON
/// perf trajectory is comparable across runs).
#[test]
fn reruns_are_reproducible() {
    let first = scenario::run(&mini_grid(3));
    let second = scenario::run(&mini_grid(3));
    for (a, b) in first.cells.iter().zip(&second.cells) {
        assert!(a.same_outcome(b));
    }
}

/// A zero-trial cell renders `n/a`, never `0/0` or `NaN`.
#[test]
fn zero_trial_cell_renders_na() {
    let spec = Scenario {
        name: "zero-trials",
        title: "zero".into(),
        headers: vec!["n", "adversary", "rounds", "perfect", "errors"],
        cells: vec![with_job(|j| j.trials = 0)],
    };
    let out = scenario::run(&spec);
    let agg = out.cells[0].aggregate.as_ref().unwrap();
    assert_eq!(agg.trials, 0);
    assert_eq!(agg.mean_rounds, None);
    assert_eq!(out.cells[0].value_of("perfect").unwrap().to_string(), "n/a");
    let rendered = out.table().render();
    assert!(rendered.contains("n/a"), "got: {rendered}");
    assert!(!rendered.contains("0/0"), "got: {rendered}");
    assert!(!rendered.contains("NaN"), "got: {rendered}");
}

/// Every registry entry builds a non-empty grid under a unique name, and
/// every declared header resolves (pure construction — nothing runs).
#[test]
fn registry_builds_unique_nonempty_scenarios() {
    let entries = bdclique_bench::experiments::registry();
    assert_eq!(entries.len(), 20);
    let mut names: Vec<&str> = entries.iter().map(|e| e.name).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), entries.len(), "registry names must be unique");
    for entry in &entries {
        let spec = (entry.build)(1);
        assert_eq!(spec.name, entry.name);
        assert!(!spec.cells.is_empty(), "{} has no cells", entry.name);
        assert!(!spec.headers.is_empty(), "{} has no headers", entry.name);
        // Cells within one scenario must not collide in seed space.
        let mut seeds: Vec<u64> = spec
            .cells
            .iter()
            .map(|c| c.stream(spec.name).seed())
            .collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(
            seeds.len(),
            spec.cells.len(),
            "{} cells collide",
            entry.name
        );
    }
}

/// The emitted JSON is well-formed (checked with a minimal strict parser)
/// and carries the documented top-level fields.
#[test]
fn emitted_json_is_well_formed() {
    let results = vec![scenario::run(&mini_grid(2))];
    let doc = scenario::emit_json(&results, 2);
    json_check::parse(&doc).unwrap_or_else(|e| panic!("invalid JSON: {e}\n{doc}"));
    for key in [
        "\"schema\":\"bdclique-bench/scenario-v1\"",
        "\"generator\":",
        "\"git\":",
        "\"base_trials\":2",
        "\"scenarios\":",
        "\"cells\":",
        "\"aggregate\":",
        "\"mean_rounds\":",
        "\"seed\":\"0x",
        // mini_grid traces: the per-round section must be present with its
        // per-round delta fields.
        "\"round_trace\":[{\"round\":0,",
        "\"corrupted_edges\":",
        "\"corrupted_frames\":",
    ] {
        assert!(doc.contains(key), "missing {key} in {doc}");
    }
}

/// Tracing rides along without perturbing outcomes: the same grid with and
/// without tracing folds to identical aggregates, and the traced cells
/// carry one frame per round summing to the aggregate totals.
#[test]
fn tracing_is_outcome_invisible_and_partitions_rounds() {
    let traced = scenario::run(&mini_grid(2));
    let untraced = {
        let mut spec = mini_grid(2);
        for cell in &mut spec.cells {
            if let CellKind::Trials(job) = &mut cell.kind {
                job.trace = false;
            }
        }
        scenario::run(&spec)
    };
    for (t, u) in traced.cells.iter().zip(&untraced.cells) {
        assert_eq!(t.aggregate, u.aggregate, "tracing changed an aggregate");
        assert_eq!(t.seed, u.seed, "tracing changed a seed");
        assert!(u.round_trace.is_none());
        if t.aggregate.as_ref().unwrap().completed == 0 {
            // All trials failed (the n = 8 non-square det-sqrt cells):
            // nothing ran, nothing to trace.
            assert!(t.round_trace.is_none());
            continue;
        }
        let frames = t.round_trace.as_ref().expect("traced cell has a trace");
        assert!(!frames.is_empty());
        for (i, frame) in frames.iter().enumerate() {
            assert_eq!(frame.round, i as u64, "rounds in order");
            assert_eq!(frame.stats.rounds, 1, "one exchange per frame");
        }
    }
}

/// PR 7 satellite: the per-cell shared codeword cache the engine attaches
/// across a cell's trials is outcome-neutral — the folded [`Aggregate`]
/// is bit-identical to the same seeded trials run without ever attaching
/// a cache. Only the hit/miss counters may differ (and those are excluded
/// from `same_outcome`).
#[test]
fn shared_codeword_cache_is_outcome_neutral() {
    use bdclique_bench::{fold_trials, run_trial_seeded_traced, TrialSeeds};
    use bdclique_core::routing::RouterConfig;

    let cell = with_job(|job| {
        job.protocol = Arc::new(|_seed| Box::new(DetSqrt::new(RouterConfig::default())));
        job.protocol_key = "det-sqrt";
        job.n = 64;
        job.bandwidth = 18;
        job.trials = 3;
    });
    let CellKind::Trials(job) = &cell.kind else {
        unreachable!()
    };
    let stream = cell.stream("cache-identity");

    let (cached, _trace, (hits, misses)) = scenario::run_trials_traced(job, &stream, false);
    assert!(
        hits + misses > 0,
        "det-sqrt encodes Reed–Solomon codewords; the cell cache must be consulted"
    );

    // The uncached oracle: identical seed derivation, no cache attached.
    let results = (0..job.trials)
        .map(|t| {
            let seeds = TrialSeeds::derive(stream.fork_u64(t as u64).seed());
            let proto = (job.protocol)(seeds.protocol);
            run_trial_seeded_traced(
                proto.as_ref(),
                job.n,
                job.b,
                job.bandwidth,
                job.alpha,
                job.adversary,
                seeds,
                false,
            )
            .map(|(trial, _)| trial)
        })
        .collect();
    let uncached = fold_trials(job.trials, results);

    assert_eq!(
        cached, uncached,
        "attaching the shared codeword cache changed a trial outcome"
    );
}

/// A minimal strict JSON syntax checker (the workspace has no serde):
/// validates the value grammar and rejects trailing garbage.
mod json_check {
    pub fn parse(s: &str) -> Result<(), String> {
        let bytes = s.as_bytes();
        let mut pos = 0usize;
        value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at {pos}"));
        }
        Ok(())
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => object(b, pos),
            Some(b'[') => array(b, pos),
            Some(b'"') => string(b, pos),
            Some(b't') => literal(b, pos, "true"),
            Some(b'f') => literal(b, pos, "false"),
            Some(b'n') => literal(b, pos, "null"),
            Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
            other => Err(format!("unexpected {other:?} at {pos}")),
        }
    }

    fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
        *pos += 1; // '{'
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(());
        }
        loop {
            skip_ws(b, pos);
            string(b, pos)?;
            skip_ws(b, pos);
            expect(b, pos, b':')?;
            value(b, pos)?;
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(());
                }
                other => return Err(format!("object: unexpected {other:?} at {pos}")),
            }
        }
    }

    fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
        *pos += 1; // '['
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(());
        }
        loop {
            value(b, pos)?;
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(());
                }
                other => return Err(format!("array: unexpected {other:?} at {pos}")),
            }
        }
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
        expect(b, pos, b'"')?;
        while let Some(&c) = b.get(*pos) {
            *pos += 1;
            match c {
                b'"' => return Ok(()),
                b'\\' => {
                    let esc = b.get(*pos).ok_or("eof in escape")?;
                    *pos += 1;
                    match esc {
                        b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => {}
                        b'u' => {
                            for _ in 0..4 {
                                let h = b.get(*pos).ok_or("eof in \\u")?;
                                if !h.is_ascii_hexdigit() {
                                    return Err(format!("bad \\u digit at {pos}"));
                                }
                                *pos += 1;
                            }
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                }
                c if c < 0x20 => return Err(format!("raw control byte at {}", *pos - 1)),
                _ => {}
            }
        }
        Err("eof in string".to_string())
    }

    fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
        let start = *pos;
        if b.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        while *pos < b.len()
            && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            *pos += 1;
        }
        let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map_err(|_| format!("bad number '{text}'"))?;
        Ok(())
    }

    fn literal(b: &[u8], pos: &mut usize, word: &str) -> Result<(), String> {
        if b[*pos..].starts_with(word.as_bytes()) {
            *pos += word.len();
            Ok(())
        } else {
            Err(format!("bad literal at {pos}, expected {word}"))
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        if b.get(*pos) == Some(&c) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at {pos}", c as char))
        }
    }
}
