// lint-fixture-as: crates/netsim/src/fixture.rs
//! Replica of the bug PR 9's corruption proptest caught: a snapshot decoder
//! allocated an `n·n` slot table from an unvalidated varint — a corrupt
//! snapshot could request a huge allocation and abort the process before
//! any bounds error was reported. An overflow check alone (`checked_mul`)
//! does not bound the magnitude. This exact shape must fire.

fn restore(dec: &mut Dec<'_>) -> Result<FrameStore, SnapError> {
    let n = dec.get_usize()?;
    if n < 2 {
        return Err(SnapError::corrupt("store with n < 2"));
    }
    if n.checked_mul(n).is_none() {
        return Err(SnapError::corrupt("store n overflow"));
    }
    // The bug: nothing above bounds n itself, so n = 2^30 sails through
    // and this tries to allocate 2^60 slots.
    let frames: Vec<Option<BitVec>> = vec![None; n * n];
    Ok(FrameStore::Dense(frames))
}
