//! Criterion benchmarks for the substrate crates: codes, LDCs, sketches,
//! cover-free families (the `A.*` ablation counterparts in wall time).

use bdclique_bits::BitVec;
use bdclique_codes::{ConcatenatedCode, Ldc, ReedSolomon, RepetitionCode, RmLdc, SymbolCode};
use bdclique_coverfree::{CoverFreeFamily, CoverFreeParams};
use bdclique_hash::SharedRandomness;
use bdclique_sketch::{RecoverySketch, SketchShape};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

fn bench_codes(c: &mut Criterion) {
    let mut g = c.benchmark_group("codes");
    g.sample_size(30).measurement_time(Duration::from_secs(2));

    let rs = ReedSolomon::new(8, 64, 32).unwrap();
    let msg: Vec<u16> = (0..32).map(|i| (i * 7) % 256).collect();
    let cw = rs.encode(&msg).unwrap();
    g.bench_function("rs[64,32]/encode", |b| b.iter(|| rs.encode(&msg).unwrap()));
    g.bench_function("rs[64,32]/decode-clean", |b| {
        b.iter(|| rs.decode(&cw, &[false; 64]).unwrap())
    });
    let mut noisy = cw.clone();
    for i in (0..64).step_by(5).take(12) {
        noisy[i] ^= 0x3c;
    }
    g.bench_function("rs[64,32]/decode-12-errors", |b| {
        b.iter(|| rs.decode(&noisy, &[false; 64]).unwrap())
    });

    let concat = ConcatenatedCode::new(32, 16).unwrap();
    let cmsg: Vec<u16> = (0..concat.message_len()).map(|i| (i % 2) as u16).collect();
    let ccw = concat.encode(&cmsg).unwrap();
    g.bench_function("concat[512b]/decode-clean", |b| {
        b.iter(|| concat.decode(&ccw, &vec![false; ccw.len()]).unwrap())
    });

    let rep = RepetitionCode::new(8, 8, 5).unwrap();
    let rmsg: Vec<u16> = (0..8).collect();
    let rcw = rep.encode(&rmsg).unwrap();
    g.bench_function("repetition-x5/decode", |b| {
        b.iter(|| rep.decode(&rcw, &vec![false; rcw.len()]).unwrap())
    });
    g.finish();
}

fn bench_ldc(c: &mut Criterion) {
    let mut g = c.benchmark_group("ldc");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    let ldc = RmLdc::new(4, 5, 3).unwrap();
    let msg: Vec<u16> = (0..ldc.message_len()).map(|i| (i % 16) as u16).collect();
    let cw = ldc.encode(&msg).unwrap();
    let shared = SharedRandomness::from_bits(&BitVec::from_fn(64, |i| i % 3 == 0));
    g.bench_function("rm-gf16-d5/encode", |b| {
        b.iter(|| ldc.encode(&msg).unwrap())
    });
    g.bench_function("rm-gf16-d5/local-decode", |b| {
        b.iter(|| {
            let qs = ldc.decode_indices(7, &shared);
            let answers: Vec<u16> = qs.iter().map(|&p| cw[p]).collect();
            ldc.local_decode(7, &answers, &shared).unwrap()
        })
    });
    g.finish();
}

fn bench_sketch(c: &mut Criterion) {
    let mut g = c.benchmark_group("sketch");
    g.sample_size(30).measurement_time(Duration::from_secs(2));
    let shape = SketchShape::for_capacity(8, 32);
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let shared = SharedRandomness::from_bits(&SharedRandomness::generate(&mut rng));
    g.bench_function("capacity8/add-256", |b| {
        b.iter(|| {
            let mut sk = RecoverySketch::new(shape, &shared);
            for k in 0..256u64 {
                sk.add(k, 1).unwrap();
            }
            sk
        })
    });
    let mut sk = RecoverySketch::new(shape, &shared);
    for k in 0..6u64 {
        sk.add(k * 1000 + 17, 1).unwrap();
    }
    g.bench_function("capacity8/recover-6-items", |b| {
        b.iter(|| sk.recover().unwrap())
    });
    g.bench_function("capacity8/wire-roundtrip", |b| {
        b.iter(|| {
            let bits = sk.to_bits().unwrap();
            RecoverySketch::from_bits(shape, &bits, &shared).unwrap()
        })
    });
    g.finish();
}

fn bench_coverfree(c: &mut Criterion) {
    let mut g = c.benchmark_group("coverfree");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    let n = 256usize;
    let params = CoverFreeParams {
        n,
        m: 2 * n,
        r: 1,
        set_size: 16,
    };
    let h: Vec<Vec<u32>> = (0..n)
        .map(|u| vec![2 * u as u32, 2 * u as u32 + 1])
        .collect();
    g.bench_function("build-verified/n256/m512", |b| {
        b.iter(|| CoverFreeFamily::build(params, &h, 0.8, 1, 16).unwrap())
    });
    g.finish();
}

fn bench_random_check(c: &mut Criterion) {
    // Keep one tiny deterministic bench exercising rng-heavy paths so perf
    // regressions in hashing show up.
    let mut g = c.benchmark_group("hashing");
    g.sample_size(30).measurement_time(Duration::from_secs(2));
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let shared = SharedRandomness::from_bits(&SharedRandomness::generate(&mut rng));
    g.bench_function("derive-1k-samples", |b| {
        b.iter(|| shared.uniform_samples("bench", 1000, 1 << 20))
    });
    let mut check = 0u64;
    g.bench_function("kwise-eval-1k", |b| {
        let fam = bdclique_hash::KWiseHashFamily::new(7, 1 << 20);
        let h = fam.sample(&mut rng);
        b.iter(|| {
            for x in 0..1000u64 {
                check = check.wrapping_add(h.hash(x));
            }
            check
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_codes,
    bench_ldc,
    bench_sketch,
    bench_coverfree,
    bench_random_check
);
criterion_main!(benches);
