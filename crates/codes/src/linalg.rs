//! Linear algebra over GF(2^m): Gaussian elimination, matrix inversion, and
//! Berlekamp–Welch decoding of evaluation-form Reed–Solomon codes.
//!
//! These routines power the Reed–Muller LDC (interpolation and line
//! decoding). All matrices are dense `Vec<Vec<u16>>`, which is appropriate
//! for the small systems that appear here (≤ a few hundred unknowns).

use crate::gf::Gf;

/// Solves `A x = b` over GF(2^m) by Gaussian elimination.
///
/// `a` is row-major with `a.len()` rows; the system may be overdetermined.
/// Returns `None` when the system is inconsistent. When the system is
/// underdetermined, free variables are set to zero (a valid solution is
/// still returned).
///
/// # Panics
///
/// Panics if the rows of `a` have inconsistent lengths or `b.len()` differs
/// from the number of rows.
pub fn solve_linear(gf: &Gf, a: &[Vec<u16>], b: &[u16]) -> Option<Vec<u16>> {
    let rows = a.len();
    assert_eq!(b.len(), rows, "rhs length must match row count");
    let cols = a.first().map_or(0, Vec::len);
    assert!(a.iter().all(|r| r.len() == cols), "ragged matrix");

    // Augmented matrix.
    let mut m: Vec<Vec<u16>> = a
        .iter()
        .zip(b)
        .map(|(row, &rhs)| {
            let mut r = row.clone();
            r.push(rhs);
            r
        })
        .collect();

    let mut pivot_of_col = vec![usize::MAX; cols];
    let mut rank = 0usize;
    for col in 0..cols {
        let Some(pivot_row) = (rank..rows).find(|&r| m[r][col] != 0) else {
            continue;
        };
        m.swap(rank, pivot_row);
        let inv = gf.inv(m[rank][col]).expect("pivot nonzero");
        gf.mul_slice(&mut m[rank][col..], inv);
        for r in 0..rows {
            if r != rank && m[r][col] != 0 {
                let factor = m[r][col];
                let (pivot, target) = split_rows(&mut m, rank, r);
                gf.axpy(&mut target[col..], factor, &pivot[col..]);
            }
        }
        pivot_of_col[col] = rank;
        rank += 1;
        if rank == rows {
            break;
        }
    }

    // Consistency: rows of zeros with nonzero rhs => no solution.
    for row in m.iter().take(rows).skip(rank) {
        if row[cols] != 0 {
            return None;
        }
    }

    let mut x = vec![0u16; cols];
    for col in 0..cols {
        let p = pivot_of_col[col];
        if p != usize::MAX {
            x[col] = m[p][cols];
        }
    }
    // Verify (cheap, and guards against elimination bugs on overdetermined
    // systems where pivoting skipped columns).
    for (row, &rhs) in a.iter().zip(b) {
        if gf.dot(row, &x) != rhs {
            return None;
        }
    }
    Some(x)
}

/// Disjoint `(&rows[a], &mut rows[b])` borrows for row elimination.
fn split_rows(rows: &mut [Vec<u16>], a: usize, b: usize) -> (&[u16], &mut Vec<u16>) {
    debug_assert_ne!(a, b);
    if a < b {
        let (lo, hi) = rows.split_at_mut(b);
        (&lo[a], &mut hi[0])
    } else {
        let (lo, hi) = rows.split_at_mut(a);
        (&hi[0], &mut lo[b])
    }
}

/// Inverts a square matrix over GF(2^m); returns `None` if singular.
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn invert_matrix(gf: &Gf, a: &[Vec<u16>]) -> Option<Vec<Vec<u16>>> {
    let n = a.len();
    assert!(a.iter().all(|r| r.len() == n), "matrix must be square");
    // Augment with identity.
    let mut m: Vec<Vec<u16>> = a
        .iter()
        .enumerate()
        .map(|(i, row)| {
            let mut r = row.clone();
            r.extend((0..n).map(|j| u16::from(i == j)));
            r
        })
        .collect();
    for col in 0..n {
        let pivot = (col..n).find(|&r| m[r][col] != 0)?;
        m.swap(col, pivot);
        let inv = gf.inv(m[col][col]).expect("pivot nonzero");
        gf.mul_slice(&mut m[col], inv);
        for r in 0..n {
            if r != col && m[r][col] != 0 {
                let factor = m[r][col];
                let (pivot_row, target) = split_rows(&mut m, col, r);
                gf.axpy(target, factor, pivot_row);
            }
        }
    }
    Some(m.into_iter().map(|row| row[n..].to_vec()).collect())
}

/// Berlekamp–Welch decoding of an evaluation-form Reed–Solomon word.
///
/// Given distinct evaluation points `xs` and received values `ys`, recovers
/// the unique polynomial `g` of degree ≤ `d` that agrees with the received
/// word on all but at most `e_max` positions — provided such `g` exists.
/// Returns the coefficient vector of `g` (low degree first, length `d+1`),
/// or `None` when decoding fails (more than `e_max` errors, or no codeword
/// within radius).
///
/// # Panics
///
/// Panics if `xs.len() != ys.len()`, if the number of points is too small
/// (`xs.len() < d + 1 + 2*e_max` is required for unique decoding), or if
/// points repeat.
pub fn berlekamp_welch(
    gf: &Gf,
    xs: &[u16],
    ys: &[u16],
    d: usize,
    e_max: usize,
) -> Option<Vec<u16>> {
    let n = xs.len();
    assert_eq!(n, ys.len(), "points and values must align");
    assert!(
        n >= d + 1 + 2 * e_max,
        "need at least d+1+2e points for unique decoding (n={n}, d={d}, e={e_max})"
    );
    debug_assert!(
        {
            let mut sorted: Vec<u16> = xs.to_vec();
            sorted.sort_unstable();
            sorted.windows(2).all(|w| w[0] != w[1])
        },
        "evaluation points must be distinct"
    );

    if e_max == 0 {
        // Plain interpolation through the first d+1 points, then verify.
        let coeffs = interpolate(gf, &xs[..d + 1], &ys[..d + 1])?;
        let ok = xs
            .iter()
            .zip(ys)
            .all(|(&x, &y)| gf.poly_eval(&coeffs, x) == y);
        return ok.then_some(coeffs);
    }

    // Unknowns: Q of degree <= e_max + d (e_max + d + 1 coefficients) and
    // E of degree exactly e_max, monic (e_max unknown coefficients).
    // Constraint per point: Q(x_i) = y_i * E(x_i)
    //   => Q(x_i) - y_i * (E_low(x_i)) = y_i * x_i^e_max
    let q_terms = e_max + d + 1;
    let mut a = Vec::with_capacity(n);
    let mut b = Vec::with_capacity(n);
    for (&x, &y) in xs.iter().zip(ys) {
        let mut row = Vec::with_capacity(q_terms + e_max);
        let mut xp = 1u16;
        for _ in 0..q_terms {
            row.push(xp);
            xp = gf.mul(xp, x);
        }
        let mut xp = 1u16;
        for _ in 0..e_max {
            row.push(gf.mul(y, xp));
            xp = gf.mul(xp, x);
        }
        a.push(row);
        b.push(gf.mul(y, gf.pow(x, e_max as u32)));
    }
    let sol = solve_linear(gf, &a, &b)?;
    let q_poly: Vec<u16> = sol[..q_terms].to_vec();
    let mut e_poly: Vec<u16> = sol[q_terms..].to_vec();
    e_poly.push(1); // monic leading coefficient

    let (g, rem) = gf.poly_divmod(&q_poly, &e_poly);
    if rem.iter().any(|&c| c != 0) {
        return None;
    }
    let mut g = g;
    if g.len() > d + 1 && g[d + 1..].iter().any(|&c| c != 0) {
        return None;
    }
    g.resize(d + 1, 0);
    // Final sanity: the decoded polynomial must be within e_max of received.
    let errors = xs
        .iter()
        .zip(ys)
        .filter(|&(&x, &y)| gf.poly_eval(&g, x) != y)
        .count();
    (errors <= e_max).then_some(g)
}

/// Lagrange interpolation through the given points. Returns `None` if points
/// repeat (which makes interpolation impossible).
pub(crate) fn interpolate(gf: &Gf, xs: &[u16], ys: &[u16]) -> Option<Vec<u16>> {
    let n = xs.len();
    let mut coeffs = vec![0u16; n.max(1)];
    for i in 0..n {
        // Basis polynomial l_i(x) = prod_{j != i} (x - x_j) / (x_i - x_j)
        let mut basis = vec![1u16];
        let mut denom = 1u16;
        for j in 0..n {
            if i == j {
                continue;
            }
            basis = gf.poly_mul(&basis, &[xs[j], 1]); // (x + x_j) in char 2
            let diff = gf.sub(xs[i], xs[j]);
            if diff == 0 {
                return None;
            }
            denom = gf.mul(denom, diff);
        }
        let scale = gf.div(ys[i], denom)?;
        gf.axpy(&mut coeffs[..basis.len()], scale, &basis);
    }
    Some(coeffs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_simple_system() {
        let gf = Gf::new(8);
        // x + y = 5, x = 3 => y = 6 (XOR arithmetic)
        let a = vec![vec![1, 1], vec![1, 0]];
        let b = vec![5, 3];
        let x = solve_linear(&gf, &a, &b).unwrap();
        assert_eq!(x, vec![3, 6]);
    }

    #[test]
    fn solve_detects_inconsistency() {
        let gf = Gf::new(8);
        let a = vec![vec![1, 1], vec![1, 1]];
        let b = vec![5, 6];
        assert_eq!(solve_linear(&gf, &a, &b), None);
    }

    #[test]
    fn invert_roundtrip() {
        let gf = Gf::new(8);
        let a = vec![vec![1, 2, 3], vec![4, 5, 6], vec![7, 9, 11]];
        if let Some(inv) = invert_matrix(&gf, &a) {
            // a * inv == identity
            for i in 0..3 {
                for j in 0..3 {
                    let mut acc = 0u16;
                    for k in 0..3 {
                        acc = gf.add(acc, gf.mul(a[i][k], inv[k][j]));
                    }
                    assert_eq!(acc, u16::from(i == j), "({i},{j})");
                }
            }
        } else {
            panic!("matrix unexpectedly singular");
        }
    }

    #[test]
    fn invert_singular_returns_none() {
        let gf = Gf::new(4);
        let a = vec![vec![1, 2], vec![1, 2]];
        assert_eq!(invert_matrix(&gf, &a), None);
    }

    #[test]
    fn interpolate_recovers_polynomial() {
        let gf = Gf::new(8);
        let coeffs = vec![7u16, 13, 99]; // degree 2
        let xs: Vec<u16> = (0..5).collect();
        let ys: Vec<u16> = xs.iter().map(|&x| gf.poly_eval(&coeffs, x)).collect();
        let mut got = interpolate(&gf, &xs[..3], &ys[..3]).unwrap();
        got.resize(3, 0);
        assert_eq!(got, coeffs);
    }

    #[test]
    fn berlekamp_welch_corrects_errors() {
        let gf = Gf::new(8);
        let d = 3;
        let coeffs = vec![11u16, 22, 33, 44];
        let xs: Vec<u16> = (0..16).collect();
        let mut ys: Vec<u16> = xs.iter().map(|&x| gf.poly_eval(&coeffs, x)).collect();
        // Inject e = 6 errors; capacity is (16 - 4) / 2 = 6.
        for i in [0usize, 3, 5, 8, 11, 15] {
            ys[i] ^= 0xAB;
        }
        let got = berlekamp_welch(&gf, &xs, &ys, d, 6).expect("decodes at capacity");
        assert_eq!(got, coeffs);
    }

    #[test]
    fn berlekamp_welch_with_fewer_errors_than_emax() {
        let gf = Gf::new(8);
        let d = 2;
        let coeffs = vec![5u16, 0, 9];
        let xs: Vec<u16> = (0..11).collect();
        let mut ys: Vec<u16> = xs.iter().map(|&x| gf.poly_eval(&coeffs, x)).collect();
        ys[2] ^= 1; // single error, e_max = 4
        let got = berlekamp_welch(&gf, &xs, &ys, d, 4).expect("decodes below capacity");
        assert_eq!(got, coeffs);
    }

    #[test]
    fn berlekamp_welch_zero_errors() {
        let gf = Gf::new(4);
        let d = 1;
        let coeffs = vec![3u16, 7];
        let xs: Vec<u16> = (0..8).collect();
        let ys: Vec<u16> = xs.iter().map(|&x| gf.poly_eval(&coeffs, x)).collect();
        assert_eq!(berlekamp_welch(&gf, &xs, &ys, d, 3), Some(coeffs.clone()));
        assert_eq!(berlekamp_welch(&gf, &xs, &ys, d, 0), Some(coeffs));
    }

    #[test]
    fn berlekamp_welch_rejects_beyond_capacity() {
        let gf = Gf::new(8);
        let d = 1;
        let coeffs = vec![1u16, 1];
        let xs: Vec<u16> = (0..8).collect();
        let mut ys: Vec<u16> = xs.iter().map(|&x| gf.poly_eval(&coeffs, x)).collect();
        // 4 errors with capacity (8-2)/2 = 3: decoding must not return a
        // wrong answer silently — either None or the true polynomial is
        // impossible to guarantee, but the distance check means any answer
        // returned must be within e_max of the received word.
        for i in 0..4 {
            ys[i] ^= 0x55;
        }
        if let Some(g) = berlekamp_welch(&gf, &xs, &ys, d, 3) {
            let errors = xs
                .iter()
                .zip(&ys)
                .filter(|&(&x, &y)| gf.poly_eval(&g, x) != y)
                .count();
            assert!(errors <= 3);
        }
    }
}
