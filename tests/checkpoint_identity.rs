//! Crash-injection identity tests for the checkpoint/resume subsystem.
//!
//! The contract under test: `snapshot_run` taken between two session steps,
//! followed by dropping **all** process state (network, session, event-path
//! workers) and `restore_run` from the bytes alone, yields an execution
//! bit-identical to the uninterrupted one — same output payloads (FNV-1a),
//! same round count, same `NetStats`, same per-round adversary corruption
//! history. Additionally, taking a snapshot must not perturb the run it was
//! taken from, and re-snapshotting a freshly restored run must reproduce
//! the original bytes exactly.

use bdclique::core::driver::{Driver, RoundBudget, RoundObserver};
use bdclique::core::protocols::{
    AdaptiveAllToAll, AdaptiveTakeOne, AllToAllProtocol, DetHypercube, DetSqrt, NaiveExchange,
    NonAdaptiveAllToAll, RelayReplication, Step,
};
use bdclique::core::routing::{RouterConfig, RoutingMode};
use bdclique::core::{restore_run, snapshot_run, AllToAllInstance, AllToAllOutput, CoreError};
use bdclique::netsim::{Adversary, Network};
use bdclique_bench::{AdversarySpec, TrialSeeds};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One checkpointed execution: protocol × network × adversary × seed.
struct Case {
    label: &'static str,
    proto: Box<dyn AllToAllProtocol>,
    n: usize,
    b: usize,
    bandwidth: usize,
    alpha: f64,
    spec: AdversarySpec,
    seed: u64,
    /// Virtual-clock rounds at which to inject the crash (0 = before the
    /// first step). Rounds past the protocol's cost are skipped.
    crash_at: &'static [u64],
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            label: "naive/greedy",
            proto: Box::new(NaiveExchange),
            n: 16,
            b: 3,
            bandwidth: 4, // 1-bit slices => multi-round, so mid-run crashes exist
            alpha: 0.07,
            spec: AdversarySpec::GreedyFlip,
            seed: 11,
            crash_at: &[0, 1, 2],
        },
        Case {
            label: "relay-x3/rotating",
            proto: Box::new(RelayReplication { copies: 3 }),
            n: 10,
            b: 2,
            bandwidth: 9,
            alpha: 1.0 / 8.0,
            spec: AdversarySpec::RotatingMatchingFlip,
            seed: 21,
            crash_at: &[0, 1, 3, 5], // odd rounds land mid-copy (Hop2 pending)
        },
        Case {
            label: "nonadaptive/matchings",
            proto: Box::new(NonAdaptiveAllToAll {
                copies: 5,
                seed: 0xabc1,
                ..Default::default()
            }),
            n: 16,
            b: 2,
            bandwidth: 18,
            alpha: 1.0 / 16.0,
            spec: AdversarySpec::RandomMatchingsFlip,
            seed: 31,
            crash_at: &[0, 2, 5, 8],
        },
        Case {
            label: "take1/greedy",
            proto: Box::new(AdaptiveTakeOne {
                line_capacity: 1,
                lines: 3,
                seed: 0xabc2,
                ..Default::default()
            }),
            n: 16,
            b: 1,
            bandwidth: 18,
            alpha: 0.07,
            spec: AdversarySpec::GreedyFlip,
            seed: 41,
            crash_at: &[0, 1, 4, 9, 16], // scatter, broadcast, and fetch phases
        },
        Case {
            label: "take2-direct/rushing",
            proto: Box::new(AdaptiveAllToAll {
                query_via_ldc: false,
                seed: 0xabc4,
                ..Default::default()
            }),
            n: 16,
            b: 1,
            bandwidth: 18,
            alpha: 0.07,
            spec: AdversarySpec::RushingRandom,
            seed: 52,
            crash_at: &[0, 1, 40, 170],
        },
        Case {
            label: "hypercube/greedy",
            proto: Box::new(DetHypercube::default()),
            n: 16,
            b: 2,
            bandwidth: 9,
            alpha: 0.07,
            spec: AdversarySpec::GreedyFlip,
            seed: 61,
            crash_at: &[0, 1, 7, 15],
        },
        Case {
            label: "det-sqrt/victim",
            proto: Box::new(DetSqrt::default()),
            n: 16,
            b: 2,
            bandwidth: 9,
            alpha: 0.07,
            spec: AdversarySpec::TargetNodeFlip(3),
            seed: 71,
            crash_at: &[0, 1, 7, 15],
        },
        // The stage-parallel unit engine with the event-driven pack
        // executor: the crash lands while prefetched encode jobs are in
        // flight, exercising the quiesce-to-pack-boundary rule.
        Case {
            label: "det-sqrt/event-unit",
            proto: Box::new(DetSqrt::new(RouterConfig {
                mode: RoutingMode::Unit,
                parallel: true,
                event_driven: true,
                ..Default::default()
            })),
            n: 16,
            b: 2,
            bandwidth: 9,
            alpha: 0.07,
            spec: AdversarySpec::TargetNodeFlip(3),
            seed: 72,
            crash_at: &[0, 1, 5, 9, 13],
        },
    ]
}

fn setup(case: &Case) -> (AllToAllInstance, Network) {
    let seeds = TrialSeeds::derive(case.seed);
    let mut rng = ChaCha8Rng::seed_from_u64(seeds.instance);
    let inst = AllToAllInstance::random(case.n, case.b, &mut rng);
    let net = Network::new(
        case.n,
        case.bandwidth,
        case.alpha,
        case.spec.build(seeds.adversary),
    );
    (inst, net)
}

fn fresh_adversary(case: &Case) -> Adversary {
    case.spec.build(TrialSeeds::derive(case.seed).adversary)
}

/// FNV-1a over every delivered payload (presence flag + bits), row-major.
fn fnv_output(out: &AllToAllOutput) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |byte: u64| {
        h ^= byte;
        h = h.wrapping_mul(0x100_0000_01b3);
    };
    for v in 0..out.n() {
        for u in 0..out.n() {
            match out.received(v, u) {
                None => eat(2),
                Some(bits) => {
                    eat(1);
                    eat(bits.len() as u64);
                    for i in 0..bits.len() {
                        eat(bits.get(i) as u64);
                    }
                }
            }
        }
    }
    h
}

/// One round of recorded adversary behavior: (round, corrupted edges,
/// frames, bits).
type RoundSig = (u64, Vec<(usize, usize)>, u64, u64);

/// The adversary's per-round behavior, as recorded by the network history.
fn history_sig(net: &Network) -> Vec<RoundSig> {
    net.history()
        .records()
        .iter()
        .map(|r| (r.round, r.corrupted.clone(), r.frames, r.bits))
        .collect()
}

/// Steps the session until the virtual clock reaches `target` rounds.
/// Returns `false` when the session finished first (crash point unused).
fn step_to_round(
    session: &mut dyn bdclique::core::protocols::ProtocolSession,
    net: &mut Network,
    target: u64,
) -> bool {
    while net.rounds() < target {
        match session.step(net).expect("stepping to crash point") {
            Step::Running => {}
            Step::Done(_) => return false,
        }
    }
    true
}

fn run_to_done(
    session: &mut dyn bdclique::core::protocols::ProtocolSession,
    net: &mut Network,
) -> AllToAllOutput {
    loop {
        if let Step::Done(out) = session.step(net).expect("running to completion") {
            return out;
        }
    }
}

/// For every protocol and crash point: snapshot → drop everything →
/// restore → run to completion ≡ the uninterrupted run, bit for bit. The
/// interrupted-but-continued run must match too (snapshots don't perturb),
/// and re-snapshotting the restored pair must reproduce the bytes.
#[test]
fn resumed_runs_are_bit_identical_for_all_protocols() {
    for case in cases() {
        // Uninterrupted reference.
        let (inst, mut net_ref) = setup(&case);
        let mut session = case.proto.session(&net_ref, &inst).unwrap();
        let out_ref = run_to_done(session.as_mut(), &mut net_ref);
        drop(session);
        let fnv_ref = fnv_output(&out_ref);
        let hist_ref = history_sig(&net_ref);

        for &crash in case.crash_at {
            if crash >= net_ref.rounds() {
                continue;
            }
            let (inst_c, mut net) = setup(&case);
            let mut session = case.proto.session(&net, &inst_c).unwrap();
            assert!(
                step_to_round(session.as_mut(), &mut net, crash),
                "{} finished before crash round {crash}",
                case.label
            );
            let bytes = snapshot_run(&mut net, session.as_mut())
                .unwrap_or_else(|e| panic!("{} snapshot at {crash}: {e}", case.label));

            // The run the snapshot was taken from continues unperturbed.
            let out_cont = run_to_done(session.as_mut(), &mut net);
            drop(session);
            assert_eq!(
                fnv_output(&out_cont),
                fnv_ref,
                "{} at {crash}: snapshotting perturbed the live run",
                case.label
            );
            assert_eq!(net.rounds(), net_ref.rounds(), "{} at {crash}", case.label);

            // Crash: nothing survives but the bytes. Restore and finish.
            drop(net);
            let (mut net2, mut session2) =
                restore_run(&bytes, fresh_adversary(&case), case.proto.as_ref(), &inst_c)
                    .unwrap_or_else(|e| panic!("{} restore at {crash}: {e}", case.label));
            assert_eq!(net2.rounds(), crash, "{} at {crash}: clock", case.label);

            // Snapshot of the restored pair reproduces the bytes exactly.
            let bytes2 = snapshot_run(&mut net2, session2.as_mut()).unwrap();
            assert_eq!(
                bytes, bytes2,
                "{} at {crash}: re-snapshot is not byte-identical",
                case.label
            );

            let out_res = run_to_done(session2.as_mut(), &mut net2);
            drop(session2);
            assert_eq!(
                fnv_output(&out_res),
                fnv_ref,
                "{} at {crash}: resumed payloads diverged",
                case.label
            );
            assert_eq!(
                inst.count_errors(&out_res),
                inst.count_errors(&out_ref),
                "{} at {crash}: error count diverged",
                case.label
            );
            assert_eq!(
                net2.rounds(),
                net_ref.rounds(),
                "{} at {crash}: round count diverged",
                case.label
            );
            assert_eq!(
                net2.stats(),
                net_ref.stats(),
                "{} at {crash}: NetStats diverged",
                case.label
            );
            assert_eq!(
                history_sig(&net2),
                hist_ref,
                "{} at {crash}: adversary history diverged",
                case.label
            );
        }
    }
}

/// The paper path of Take II (LDC-encoded sketch storage) runs for
/// thousands of rounds, so running resumed executions to completion is out
/// of tier-1 budget. Instead: snapshot at a crash point, advance the live
/// run and the restored run the same number of rounds, and compare their
/// re-snapshots byte for byte. Equal full-state snapshots at the same
/// virtual clock prove the trajectories are identical without finishing
/// the run — and the crash points land in the scatter, R3-broadcast, and
/// fetch phases the cheap cases cannot reach.
#[test]
fn take2_ldc_crash_window_is_divergence_free() {
    let case = Case {
        label: "take2-ldc/greedy",
        proto: Box::new(AdaptiveAllToAll {
            line_capacity: 1,
            seed: 0xabc3,
            ..Default::default()
        }),
        n: 16,
        b: 1,
        bandwidth: 18,
        alpha: 0.07,
        spec: AdversarySpec::GreedyFlip,
        seed: 51,
        crash_at: &[3, 60, 300],
    };
    const WINDOW: u64 = 8;
    for &crash in case.crash_at {
        let (inst, mut net) = setup(&case);
        let mut session = case.proto.session(&net, &inst).unwrap();
        assert!(
            step_to_round(session.as_mut(), &mut net, crash),
            "finished before crash round {crash}"
        );
        let bytes = snapshot_run(&mut net, session.as_mut()).unwrap();

        // Advance the live run WINDOW rounds past the crash point.
        assert!(step_to_round(session.as_mut(), &mut net, crash + WINDOW));
        let bytes_live = snapshot_run(&mut net, session.as_mut()).unwrap();
        drop(session);
        drop(net);

        // Crash, restore, advance the same window.
        let (mut net2, mut session2) =
            restore_run(&bytes, fresh_adversary(&case), case.proto.as_ref(), &inst).unwrap();
        assert!(step_to_round(session2.as_mut(), &mut net2, crash + WINDOW));
        let bytes_res = snapshot_run(&mut net2, session2.as_mut()).unwrap();
        assert_eq!(
            bytes_live, bytes_res,
            "trajectories diverged within {WINDOW} rounds of the crash at {crash}"
        );
    }
}

/// A restored session driven under a `RoundBudget` aborts exactly at the
/// cap (session-relative), with no partial exchange — budgets compose with
/// resume.
#[test]
fn round_budget_composes_with_restore() {
    let all = cases();
    let case = all.iter().find(|c| c.label == "det-sqrt/victim").unwrap();
    let (inst, mut net) = setup(case);
    let mut session = case.proto.session(&net, &inst).unwrap();
    assert!(step_to_round(session.as_mut(), &mut net, 7));
    let bytes = snapshot_run(&mut net, session.as_mut()).unwrap();
    drop(session);
    drop(net);

    for cap in [0u64, 1, 3] {
        let (mut net2, mut session2) =
            restore_run(&bytes, fresh_adversary(case), case.proto.as_ref(), &inst).unwrap();
        let mut budget = RoundBudget::new(cap);
        let mut observers: [&mut dyn RoundObserver; 1] = [&mut budget];
        let err = Driver::with_observers(&mut observers)
            .run_session(session2.as_mut(), &mut net2)
            .unwrap_err();
        assert!(matches!(err, CoreError::Aborted { .. }), "cap {cap}: {err}");
        assert_eq!(net2.rounds(), 7 + cap, "no partial exchange past the cap");
    }

    // With enough budget the resumed run completes and matches the
    // uninterrupted oracle.
    let (inst_ref, mut net_ref) = setup(case);
    let out_ref = case.proto.run(&mut net_ref, &inst_ref).unwrap();
    let (mut net2, mut session2) =
        restore_run(&bytes, fresh_adversary(case), case.proto.as_ref(), &inst).unwrap();
    let mut budget = RoundBudget::new(net_ref.rounds());
    let mut observers: [&mut dyn RoundObserver; 1] = [&mut budget];
    let out = Driver::with_observers(&mut observers)
        .run_session(session2.as_mut(), &mut net2)
        .unwrap();
    assert_eq!(fnv_output(&out), fnv_output(&out_ref));
    assert_eq!(net2.rounds(), net_ref.rounds());
}

/// Truncating or bit-flipping a snapshot yields a decode error, never a
/// panic or a silently wrong session.
#[test]
fn corrupt_snapshots_are_rejected() {
    let all = cases();
    let case = all.iter().find(|c| c.label == "det-sqrt/victim").unwrap();
    let (inst, mut net) = setup(case);
    let mut session = case.proto.session(&net, &inst).unwrap();
    assert!(step_to_round(session.as_mut(), &mut net, 5));
    let bytes = snapshot_run(&mut net, session.as_mut()).unwrap();
    drop(session);

    // Truncations at the header, early, middle, and one-byte-short.
    for cut in [0, 3, 7, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            restore_run(
                &bytes[..cut],
                fresh_adversary(case),
                case.proto.as_ref(),
                &inst
            )
            .is_err(),
            "truncation at {cut} must fail"
        );
    }
    // A corrupted magic/version header.
    let mut bad = bytes.clone();
    bad[0] ^= 0xff;
    assert!(restore_run(&bad, fresh_adversary(case), case.proto.as_ref(), &inst).is_err());
    // Trailing garbage.
    let mut long = bytes.clone();
    long.push(0);
    assert!(restore_run(&long, fresh_adversary(case), case.proto.as_ref(), &inst).is_err());
}
