//! Demo fault-free Congested Clique algorithms for the compiler.
//!
//! These are the workloads of experiment `F.COMPILE`: simple, verifiable
//! algorithms whose compiled outputs must match their fault-free runs bit
//! for bit.

use crate::compiler::CliqueAlgorithm;
use bdclique_bits::BitVec;

/// Global sum of per-node inputs: one all-to-all round, every node outputs
/// `Σ inputs mod 2^width`.
#[derive(Debug, Clone)]
pub struct SumAll {
    /// Per-node input values.
    pub inputs: Vec<u64>,
    /// Message/output width in bits.
    pub width: usize,
}

impl CliqueAlgorithm for SumAll {
    type State = u64;

    fn name(&self) -> &'static str {
        "sum-all"
    }

    fn message_bits(&self) -> usize {
        self.width
    }

    fn round_count(&self) -> usize {
        1
    }

    fn init(&self, u: usize, _n: usize) -> u64 {
        self.inputs[u]
    }

    fn send(&self, _r: usize, u: usize, _v: usize, _state: &u64) -> BitVec {
        let mut m = BitVec::zeros(self.width);
        m.write_uint(0, self.width as u32, self.inputs[u] & mask(self.width));
        m
    }

    fn receive(&self, _r: usize, _u: usize, state: &mut u64, inbox: &[BitVec]) {
        *state = inbox
            .iter()
            .map(|m| m.read_uint(0, self.width as u32))
            .fold(0u64, |a, x| (a + x) & mask(self.width));
    }

    fn output(&self, _u: usize, state: &u64) -> BitVec {
        let mut m = BitVec::zeros(self.width);
        m.write_uint(0, self.width as u32, *state & mask(self.width));
        m
    }
}

/// Global maximum via two rounds: round 1 shares inputs, round 2 shares the
/// local maxima (a deliberately multi-round workload).
#[derive(Debug, Clone)]
pub struct MaxTwoPhase {
    /// Per-node input values.
    pub inputs: Vec<u64>,
    /// Message/output width in bits.
    pub width: usize,
}

impl CliqueAlgorithm for MaxTwoPhase {
    type State = u64;

    fn name(&self) -> &'static str {
        "max-two-phase"
    }

    fn message_bits(&self) -> usize {
        self.width
    }

    fn round_count(&self) -> usize {
        2
    }

    fn init(&self, u: usize, _n: usize) -> u64 {
        self.inputs[u] & mask(self.width)
    }

    fn send(&self, _r: usize, _u: usize, v: usize, state: &u64) -> BitVec {
        // Round-oblivious: always share the current best with everyone
        // (v is unused — a broadcast-style pattern).
        let _ = v;
        let mut m = BitVec::zeros(self.width);
        m.write_uint(0, self.width as u32, *state);
        m
    }

    fn receive(&self, _r: usize, _u: usize, state: &mut u64, inbox: &[BitVec]) {
        for m in inbox {
            *state = (*state).max(m.read_uint(0, self.width as u32));
        }
    }

    fn output(&self, _u: usize, state: &u64) -> BitVec {
        let mut m = BitVec::zeros(self.width);
        m.write_uint(0, self.width as u32, *state);
        m
    }
}

/// Distributed matrix transpose: node `u` holds row `u` of an `n × n` matrix
/// of `width`-bit entries and must output column `u` — every message is
/// distinct, which stresses exactly what `AllToAllComm` must deliver.
#[derive(Debug, Clone)]
pub struct Transpose {
    /// `rows[u][v]` = matrix entry `(u, v)`.
    pub rows: Vec<Vec<u64>>,
    /// Entry width in bits.
    pub width: usize,
}

impl CliqueAlgorithm for Transpose {
    type State = Vec<u64>;

    fn name(&self) -> &'static str {
        "transpose"
    }

    fn message_bits(&self) -> usize {
        self.width
    }

    fn round_count(&self) -> usize {
        1
    }

    fn init(&self, _u: usize, n: usize) -> Vec<u64> {
        vec![0; n]
    }

    fn send(&self, _r: usize, u: usize, v: usize, _state: &Vec<u64>) -> BitVec {
        let mut m = BitVec::zeros(self.width);
        m.write_uint(0, self.width as u32, self.rows[u][v] & mask(self.width));
        m
    }

    fn receive(&self, _r: usize, _u: usize, state: &mut Vec<u64>, inbox: &[BitVec]) {
        for (s, m) in inbox.iter().enumerate() {
            state[s] = m.read_uint(0, self.width as u32);
        }
    }

    fn output(&self, _u: usize, state: &Vec<u64>) -> BitVec {
        let mut out = BitVec::zeros(self.width * state.len());
        for (i, &x) in state.iter().enumerate() {
            out.write_uint(i * self.width, self.width as u32, x & mask(self.width));
        }
        out
    }
}

/// Boolean matrix multiplication `C = A ∧∨ B`: node `u` holds row `u` of
/// both `A` and `B`; node `v` outputs column `v` of `C`. Two rounds with
/// `n`-bit messages: round 1 transposes `B` (node `v` collects column `v`),
/// round 2 every node broadcasts its `A` row so that `v` computes
/// `C[s][v] = ∨_k A[s][k] ∧ B[k][v]` for every `s`. A heterogeneous
/// two-round workload in the Censor-Hillel et al. style.
#[derive(Debug, Clone)]
pub struct BooleanMatMul {
    /// `a[u]` = row `u` of A as a bitmask (bit `k` = `A(u,k)`).
    pub a: Vec<u64>,
    /// `b[u]` = row `u` of B as a bitmask (bit `v` = `B(u,v)`).
    pub b: Vec<u64>,
}

/// Node state for [`BooleanMatMul`].
#[derive(Debug, Clone, Default)]
pub struct MatMulState {
    /// After round 1 at node `v`: column `v` of B (bit `k` = `B(k,v)`).
    pub b_col: u64,
    /// After round 2 at node `v`: column `v` of C (bit `u` = `C(u,v)`).
    pub c_col: u64,
}

impl CliqueAlgorithm for BooleanMatMul {
    type State = MatMulState;

    fn name(&self) -> &'static str {
        "bool-matmul"
    }

    fn message_bits(&self) -> usize {
        self.a.len() // n-bit messages (B = n, allowed: B ∈ {1..poly n})
    }

    fn round_count(&self) -> usize {
        2
    }

    fn init(&self, _u: usize, _n: usize) -> MatMulState {
        MatMulState::default()
    }

    fn send(&self, r: usize, u: usize, v: usize, _state: &MatMulState) -> BitVec {
        let n = self.a.len();
        let mut m = BitVec::zeros(n);
        match r {
            // Round 1: u sends B[u][v] to v (one bit, padded).
            0 => m.set(0, self.b[u] >> v & 1 == 1),
            // Round 2: u broadcasts its whole A row.
            _ => {
                let _ = v;
                for k in 0..n {
                    m.set(k, self.a[u] >> k & 1 == 1);
                }
            }
        }
        m
    }

    fn receive(&self, r: usize, _u: usize, state: &mut MatMulState, inbox: &[BitVec]) {
        let n = self.a.len();
        match r {
            0 => {
                // Node u collects column u of B.
                state.b_col = 0;
                for (k, m) in inbox.iter().enumerate() {
                    if m.get(0) {
                        state.b_col |= 1 << k;
                    }
                }
            }
            _ => {
                // Node u (as "column v = u") computes C[s][u] for all s.
                state.c_col = 0;
                for (s, m) in inbox.iter().enumerate() {
                    let mut a_row = 0u64;
                    for k in 0..n {
                        if m.get(k) {
                            a_row |= 1 << k;
                        }
                    }
                    if a_row & state.b_col != 0 {
                        state.c_col |= 1 << s;
                    }
                }
            }
        }
    }

    fn output(&self, _u: usize, state: &MatMulState) -> BitVec {
        let n = self.a.len();
        BitVec::from_fn(n, |s| state.c_col >> s & 1 == 1)
    }
}

fn mask(width: usize) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{compile, run_fault_free};
    use crate::protocols::NaiveExchange;
    use bdclique_netsim::{Adversary, Network};

    #[test]
    fn sum_fault_free_reference() {
        let algo = SumAll {
            inputs: (0..8).map(|i| i * 3 + 1).collect(),
            width: 8,
        };
        let outs = run_fault_free(&algo, 8);
        let expect: u64 = (0..8).map(|i| i * 3 + 1).sum::<u64>() & 0xff;
        for o in outs {
            assert_eq!(o.read_uint(0, 8), expect);
        }
    }

    #[test]
    fn compiled_naive_matches_fault_free_when_clean() {
        let algo = MaxTwoPhase {
            inputs: vec![3, 99, 7, 42, 13, 5, 77, 8],
            width: 8,
        };
        let reference = run_fault_free(&algo, 8);
        let mut net = Network::new(8, 8, 0.0, Adversary::none());
        let run = compile(&mut net, &algo, &NaiveExchange).unwrap();
        assert_eq!(run.outputs, reference);
        assert_eq!(run.rounds, 2);
    }

    #[test]
    fn bool_matmul_matches_direct_computation() {
        let n = 8usize;
        let a: Vec<u64> = (0..n as u64).map(|u| (u * 0x9e) & 0xff).collect();
        let b: Vec<u64> = (0..n as u64).map(|u| (u * 0x5b + 3) & 0xff).collect();
        let algo = BooleanMatMul {
            a: a.clone(),
            b: b.clone(),
        };
        let outs = run_fault_free(&algo, n);
        for v in 0..n {
            for u in 0..n {
                let mut expect = false;
                for k in 0..n {
                    if a[u] >> k & 1 == 1 && b[k] >> v & 1 == 1 {
                        expect = true;
                    }
                }
                assert_eq!(outs[v].get(u), expect, "C[{u}][{v}]");
            }
        }
    }

    #[test]
    fn transpose_fault_free() {
        let n = 4;
        let rows: Vec<Vec<u64>> = (0..n)
            .map(|u| (0..n).map(|v| (u * n + v) as u64).collect())
            .collect();
        let algo = Transpose { rows, width: 6 };
        let outs = run_fault_free(&algo, n);
        for (u, o) in outs.iter().enumerate() {
            for s in 0..n {
                assert_eq!(o.read_uint(s * 6, 6), (s * n + u) as u64, "col {u} row {s}");
            }
        }
    }
}
