// lint-fixture-as: crates/codes/src/fixture.rs
//! Known-bad: a raw thread outside core::exec and the rayon shim.

use std::thread;

fn fire_and_forget(data: Vec<u8>) {
    thread::spawn(move || {
        let _ = data.len();
    });
}

fn named_thread() {
    let _ = thread::Builder::new().name("rogue".into()).spawn(|| {});
}
