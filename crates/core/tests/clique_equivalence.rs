//! The topology refactor's bit-compatibility pin: a network opened on an
//! explicit `Topology::complete(n)` is **bit-identical** to the historical
//! `Network::new(n, …)` clique for every protocol in the suite — same
//! outputs, same rounds, same stats transcript, under the same adversary.
//!
//! This is the contract that let the topology layer land without touching a
//! single golden: `complete(n).neighbors(u)` walks `0..n` minus `u` in
//! ascending order (the historical sweep), and the degree-relative budget
//! `⌊α·(deg(v)+1)⌋` collapses to the paper's `⌊αn⌋` when `deg(v) = n - 1`.

use bdclique_adversary::adaptive::GreedyLoad;
use bdclique_adversary::corruptors::PayloadCorruptor;
use bdclique_adversary::plans::RandomMatchings;
use bdclique_adversary::Payload;
use bdclique_core::protocols::{
    AdaptiveAllToAll, AdaptiveTakeOne, AllToAllProtocol, DetHypercube, DetSqrt, NaiveExchange,
    NonAdaptiveAllToAll, RelayReplication,
};
use bdclique_core::AllToAllInstance;
use bdclique_netsim::{Adversary, Network, Topology};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const N: usize = 16;
const B: usize = 18;
const ALPHA: f64 = 0.07; // budget ⌊0.07·16⌋ = 1 on both construction paths

fn greedy() -> Adversary {
    Adversary::adaptive(GreedyLoad::new(Payload::Flip, 11))
}

fn matchings() -> Adversary {
    Adversary::non_adaptive(
        RandomMatchings::new(5),
        PayloadCorruptor::new(Payload::Flip, 6),
    )
}

/// Runs `proto` on the legacy clique constructor and on an explicit
/// `Topology::complete(N)`, with identically-seeded adversaries, and
/// asserts the full observable transcript matches bit for bit.
fn assert_equivalent(proto: &dyn AllToAllProtocol, adversary: fn() -> Adversary) {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let inst = AllToAllInstance::random(N, 1, &mut rng);

    let mut legacy = Network::new(N, B, ALPHA, adversary());
    let out_legacy = proto.run(&mut legacy, &inst).unwrap();

    let mut topo = Network::on_topology(Topology::complete(N), B, ALPHA, adversary());
    let out_topo = proto.run(&mut topo, &inst).unwrap();

    let name = proto.name();
    assert_eq!(out_legacy, out_topo, "{name}: outputs diverged");
    assert_eq!(legacy.rounds(), topo.rounds(), "{name}: rounds diverged");
    assert_eq!(
        legacy.stats(),
        topo.stats(),
        "{name}: stats transcript diverged"
    );
    assert_eq!(
        inst.count_errors(&out_legacy),
        inst.count_errors(&out_topo),
        "{name}: error counts diverged"
    );
}

#[test]
fn naive_is_bit_identical_on_explicit_clique() {
    assert_equivalent(&NaiveExchange, greedy);
}

#[test]
fn relay_is_bit_identical_on_explicit_clique() {
    assert_equivalent(&RelayReplication { copies: 3 }, greedy);
}

#[test]
fn nonadaptive_is_bit_identical_on_explicit_clique() {
    let proto = NonAdaptiveAllToAll {
        copies: 7,
        seed: 9,
        ..Default::default()
    };
    assert_equivalent(&proto, matchings);
}

#[test]
fn take_one_is_bit_identical_on_explicit_clique() {
    let proto = AdaptiveTakeOne {
        lines: 5,
        line_capacity: 1,
        ..Default::default()
    };
    assert_equivalent(&proto, greedy);
}

#[test]
fn take_two_is_bit_identical_on_explicit_clique() {
    let proto = AdaptiveAllToAll {
        line_capacity: 1,
        seed: 9,
        ..Default::default()
    };
    assert_equivalent(&proto, greedy);
}

#[test]
fn det_hypercube_is_bit_identical_on_explicit_clique() {
    // On the *complete* graph the hypercube compiler takes its routed path
    // (iteration routing), not the sparse direct-exchange mode — this pins
    // that the mode switch keys on the topology, not on n being 2^l.
    assert_equivalent(&DetHypercube::default(), greedy);
}

#[test]
fn det_sqrt_is_bit_identical_on_explicit_clique() {
    assert_equivalent(&DetSqrt::default(), greedy);
}
