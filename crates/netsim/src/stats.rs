//! Round and bit accounting — the quantities the benchmark harness reports.

/// Cumulative statistics of a [`crate::Network`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Communication rounds executed.
    pub rounds: u64,
    /// Total payload bits queued by honest nodes.
    pub bits_sent: u64,
    /// Total non-empty frames queued by honest nodes.
    pub frames_sent: u64,
    /// Total (edge, round) corruption slots used by the adversary.
    pub edges_corrupted: u64,
    /// Total frames rewritten or suppressed by the adversary.
    pub frames_corrupted: u64,
    /// Maximum faulty degree the adversary actually used in any round.
    pub peak_fault_degree: usize,
    /// Full traffic-matrix snapshots taken for the history transcript.
    /// Zero unless the network runs in [`crate::HistoryMode::Full`] — the
    /// observable guarantee that `Digest`/`None` rounds are clone-free.
    pub intended_snapshots: u64,
}

impl NetStats {
    /// Average corrupted edges per round.
    pub fn corrupted_edges_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.edges_corrupted as f64 / self.rounds as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages() {
        let s = NetStats {
            rounds: 4,
            edges_corrupted: 10,
            ..Default::default()
        };
        assert!((s.corrupted_edges_per_round() - 2.5).abs() < 1e-12);
        assert_eq!(NetStats::default().corrupted_edges_per_round(), 0.0);
    }
}
