// lint-fixture-as: crates/shims/rayon/src/fixture.rs
//! The fixed shape: shims may use `unsafe` with the invariant stated.

fn read_len(bytes: &[u8]) -> u32 {
    assert!(bytes.len() >= 4);
    // SAFETY: the assert above guarantees at least 4 readable bytes, and
    // u32 has no alignment requirement under read_unaligned.
    unsafe { (bytes.as_ptr() as *const u32).read_unaligned() }
}
