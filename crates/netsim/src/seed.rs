//! Deterministic seed derivation for experiments.
//!
//! Every random component of a simulated trial — the problem instance, the
//! adversary, the protocol's internal coins — must draw from an
//! *independent* stream, and every experiment cell (protocol × adversary ×
//! n × α × …) must own a stream distinct from every other cell's. A single
//! shared `u64` seed (or small offsets of one) silently correlates those
//! components: the adversary "knows" the instance, and neighbouring table
//! cells replay each other's randomness.
//!
//! [`SeedStream`] makes independence the default. A stream is a 64-bit
//! state; [`SeedStream::fork`] derives a child stream by hashing a textual
//! label into the state (FNV-1a) and finalizing with splitmix64, so
//!
//! * forks with distinct labels are decorrelated,
//! * the derivation is pure — the same label path always yields the same
//!   stream, independent of fork order or sibling forks, and
//! * a label path like `scenario → cell coordinates → trial index →
//!   component` gives every (cell, trial, component) its own seed.
//!
//! The `u64 → u64` finalizer is Sebastiano Vigna's splitmix64, whose output
//! function is a bijection with good avalanche behaviour — distinct states
//! never collide after finalization.

/// The splitmix64 output function: a bijective `u64 → u64` mixer.
///
/// Used to finalize hashed states into RNG seeds; being a bijection, two
/// distinct inputs always produce two distinct outputs.
#[must_use]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over `bytes`, folded into an existing state.
fn fnv1a(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(0x0000_0100_0000_01b3);
    }
    state
}

/// A forkable, label-addressed stream of RNG seeds.
///
/// See the [module docs](self) for the derivation scheme. Streams are plain
/// 64-bit values: `Copy`, comparable, and serializable as the hex state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeedStream {
    state: u64,
}

impl SeedStream {
    /// A stream rooted at a numeric seed.
    #[must_use]
    pub fn new(root: u64) -> Self {
        Self {
            state: splitmix64(root ^ 0xcbf2_9ce4_8422_2325),
        }
    }

    /// A stream rooted at a textual label (e.g. a scenario name).
    #[must_use]
    pub fn from_label(label: &str) -> Self {
        Self {
            state: splitmix64(fnv1a(0xcbf2_9ce4_8422_2325, label.as_bytes())),
        }
    }

    /// Derives the child stream for `label`.
    ///
    /// Pure in `(self, label)`: forking the same label twice yields the same
    /// child, and distinct labels yield decorrelated children.
    #[must_use]
    pub fn fork(&self, label: &str) -> Self {
        Self {
            state: splitmix64(fnv1a(self.state, label.as_bytes())),
        }
    }

    /// Derives the child stream for a numeric index (e.g. a trial number).
    #[must_use]
    pub fn fork_u64(&self, index: u64) -> Self {
        Self {
            state: splitmix64(fnv1a(self.state, &index.to_le_bytes())),
        }
    }

    /// The stream's current state as an RNG seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.state
    }

    /// Rebuilds a stream from a raw state previously read with
    /// [`SeedStream::seed`] — the checkpoint/resume constructor. Unlike
    /// [`SeedStream::new`], no mixing is applied: `from_state(s.seed())`
    /// is exactly `s`, so serialized fork cursors round-trip.
    #[must_use]
    pub fn from_state(state: u64) -> Self {
        Self { state }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_is_injective_on_a_sample() {
        use std::collections::HashSet;
        let outs: HashSet<u64> = (0..10_000u64).map(splitmix64).collect();
        assert_eq!(outs.len(), 10_000);
    }

    #[test]
    fn fork_is_pure_and_label_sensitive() {
        let root = SeedStream::new(42);
        assert_eq!(root.fork("instance"), root.fork("instance"));
        assert_ne!(root.fork("instance"), root.fork("adversary"));
        assert_ne!(root.fork("a").fork("b"), root.fork("b").fork("a"));
        assert_ne!(root.fork_u64(0), root.fork_u64(1));
        // An index fork and a label fork never alias by construction of the
        // byte encodings actually used here.
        assert_ne!(root.fork_u64(0), root.fork("0"));
    }

    #[test]
    fn distinct_roots_give_distinct_streams() {
        use std::collections::HashSet;
        let seeds: HashSet<u64> = (0..1_000u64)
            .map(|r| SeedStream::new(r).fork("x").seed())
            .collect();
        assert_eq!(seeds.len(), 1_000);
    }

    #[test]
    fn from_state_round_trips_without_remixing() {
        let s = SeedStream::new(7).fork("cell").fork_u64(3);
        assert_eq!(SeedStream::from_state(s.seed()), s);
        assert_eq!(SeedStream::from_state(s.seed()).fork("x"), s.fork("x"));
        // `new` mixes; `from_state` must not.
        assert_ne!(SeedStream::new(s.seed()), s);
    }

    #[test]
    fn label_roots_differ_from_each_other() {
        assert_ne!(
            SeedStream::from_label("t1r1"),
            SeedStream::from_label("t1r2")
        );
    }
}
