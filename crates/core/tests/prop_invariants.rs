//! Property tests for the protocol-level invariants the paper proves:
//! Lemma 6.2's hypercube message-set characterization, the compiler's
//! fault-free equivalence, and Lemma 2.8's pair cover.

// Matches the crate-wide stance: indexed loops mirror the paper's formulas.
#![allow(clippy::needless_range_loop)]

use bdclique_core::cc::{BooleanMatMul, SumAll};
use bdclique_core::compiler::{compile, run_fault_free};
use bdclique_core::protocols::{AllToAllProtocol, DetHypercube, NaiveExchange};
use bdclique_core::reduction::{covers_all_pairs, pair_cover};
use bdclique_core::AllToAllInstance;
use bdclique_netsim::{Adversary, Network};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The hypercube protocol is a permutation router: any instance,
    /// any message width, fault-free, must deliver exactly.
    #[test]
    fn hypercube_exact_for_any_instance(seed in 0u64..500, b in 1usize..5) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let inst = AllToAllInstance::random(16, b, &mut rng);
        let mut net = Network::new(16, 9, 0.0, Adversary::none());
        let out = DetHypercube::default().run(&mut net, &inst).unwrap();
        prop_assert_eq!(inst.count_errors(&out), 0);
    }

    /// Compiling with a perfect AllToAllComm protocol is the identity on
    /// algorithm semantics (the paper's simulation statement).
    #[test]
    fn compiler_preserves_semantics(seed in 0u64..500) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = 8usize;
        let algo = SumAll {
            inputs: (0..n).map(|_| rng.gen_range(0..1000u64)).collect(),
            width: 12,
        };
        let reference = run_fault_free(&algo, n);
        let mut net = Network::new(n, 12, 0.0, Adversary::none());
        let run = compile(&mut net, &algo, &NaiveExchange).unwrap();
        prop_assert_eq!(run.outputs, reference);
    }

    /// Boolean matmul agrees with the naive cubic computation for random
    /// matrices.
    #[test]
    fn matmul_agrees_with_reference(seed in 0u64..500) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = 8usize;
        let a: Vec<u64> = (0..n).map(|_| rng.gen_range(0..256u64)).collect();
        let b: Vec<u64> = (0..n).map(|_| rng.gen_range(0..256u64)).collect();
        let algo = BooleanMatMul { a: a.clone(), b: b.clone() };
        let outs = run_fault_free(&algo, n);
        for v in 0..n {
            for u in 0..n {
                let mut expect = false;
                for k in 0..n {
                    expect |= (a[u] >> k & 1 == 1) && (b[k] >> v & 1 == 1);
                }
                prop_assert_eq!(outs[v].get(u), expect, "C[{}][{}]", u, v);
            }
        }
    }

    /// Lemma 2.8's family covers every pair for any valid (n, n').
    #[test]
    fn pair_cover_is_complete(n in 10usize..60, frac in 0.55f64..1.0) {
        let n_prime = ((n as f64 * frac) as usize).clamp(n / 2 + 1, n);
        if let Ok(cover) = pair_cover(n, n_prime) {
            prop_assert_eq!(cover.len(), 10);
            prop_assert!(cover.iter().all(|s| s.len() == n_prime));
            prop_assert!(covers_all_pairs(n, &cover));
        }
    }
}
