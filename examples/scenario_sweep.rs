//! A custom experiment on the scenario engine: sweep the fault fraction α
//! for two protocols and emit both the rendered table and the JSON
//! document the perf trajectory consumes.
//!
//! ```sh
//! cargo run --release --example scenario_sweep
//! ```
//!
//! The engine handles the rest: every `(protocol, budget)` cell gets its
//! own seed stream derived from the scenario name and the cell
//! coordinates, cells run in parallel, and each trial splits its seed into
//! independent instance / adversary / protocol streams.

use bdclique_bench::scenario::{self, Cell, CellKind, Scenario, TrialJob, Value};
use bdclique_bench::{AdversarySpec, Aggregate, TopologySpec};
use bdclique_core::protocols::{DetHypercube, DetSqrt};
use std::sync::Arc;

fn present(job: &TrialJob, agg: &Aggregate) -> Vec<(&'static str, Value)> {
    vec![
        ("alpha", Value::f3(job.alpha)),
        ("rounds", Value::opt_f1(agg.mean_rounds)),
        ("perfect", Value::rate(agg.perfect, agg.completed)),
        ("errors", Value::u(agg.total_errors)),
        ("infeasible", Value::u(agg.infeasible)),
    ]
}

fn main() {
    let n = 64usize;
    let trials = 3usize;
    let mut cells = Vec::new();
    for (label, protocol) in [
        (
            "det-hypercube",
            Arc::new(|_seed: u64| {
                Box::new(DetHypercube::default())
                    as Box<dyn bdclique_core::protocols::AllToAllProtocol>
            }) as scenario::ProtocolFactory,
        ),
        (
            "det-sqrt",
            Arc::new(|_seed: u64| {
                Box::new(DetSqrt::default()) as Box<dyn bdclique_core::protocols::AllToAllProtocol>
            }) as scenario::ProtocolFactory,
        ),
    ] {
        for budget in [0usize, 1, 2, 4] {
            cells.push(Cell {
                coords: vec![("protocol", Value::s(label)), ("budget", Value::u(budget))],
                kind: CellKind::Trials(TrialJob {
                    protocol: protocol.clone(),
                    protocol_key: label,
                    adversary: AdversarySpec::GreedyFlip,
                    topology: TopologySpec::Complete,
                    n,
                    b: 1,
                    bandwidth: 18,
                    alpha: (budget as f64 + 0.2) / n as f64,
                    trials,
                    present,
                    trace: false,
                }),
            });
        }
    }
    let spec = Scenario {
        name: "alpha-sweep-demo",
        title: format!("alpha sweep, n = {n}, adaptive greedy flip"),
        headers: vec![
            "protocol",
            "budget",
            "alpha",
            "rounds",
            "perfect",
            "errors",
            "infeasible",
            "secs",
        ],
        cells,
    };

    let result = scenario::run(&spec);
    println!("{}", result.table().render());

    let json = scenario::emit_json(&[result], trials);
    let preview: String = json.chars().take(240).collect();
    println!("JSON document ({} bytes): {preview}…", json.len());
}
