//! The rule engine: file scoping, test-span masking, inline suppressions,
//! and the five determinism/concurrency rules.
//!
//! Every rule here is derived from a real past bug or a live hazard in
//! this workspace:
//!
//! * **no-hashmap-iteration** — PR 4 shipped a latent nondeterminism where
//!   the LDC query path built a routing instance by iterating a `HashMap`,
//!   so round counts varied across processes for identical seeds.
//! * **no-wallclock-nondeterminism** — all honest nodes must compute
//!   identical schedules from identical inputs; wall-clock reads and
//!   OS-entropy RNGs break that silently.
//! * **validate-before-alloc** — PR 9's corruption proptest caught an
//!   unvalidated `n·n` snapshot length aborting on allocation.
//! * **unsafe-needs-safety-comment** — `unsafe` is denied outside
//!   `crates/shims`, and inside them requires an adjacent `// SAFETY:`.
//! * **no-raw-spawn** — background threads outside `core::exec` and the
//!   rayon shim escape drop-safety and snapshot quiescing.
//!
//! The analysis is deliberately lightweight — token patterns plus
//! file-local type taint, not full type inference. False positives are
//! expected to be rare and are handled by inline suppressions that must
//! carry a reason: `// bdclique-lint: allow(rule-name) — reason`.

use crate::lexer::{lex, Comment, Tok, TokKind};

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (stable, kebab-case).
    pub rule: &'static str,
    /// Path the finding was reported against (workspace-relative).
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable diagnosis with a suggested fix.
    pub message: String,
}

/// The rule catalog: `(name, summary)`. Suppressions may only name rules
/// listed here.
pub const RULES: &[(&str, &str)] = &[
    (
        "no-hashmap-iteration",
        "forbid iteration over HashMap/HashSet in non-test code of core, netsim, codes, \
         adversary — iteration order is process-random and breaks cross-process determinism \
         (the PR 4 LDC bug class); use BTreeMap/BTreeSet, or sort first and suppress with a reason",
    ),
    (
        "no-wallclock-nondeterminism",
        "forbid SystemTime / Instant::now / thread_rng / from_entropy outside bench timing \
         and the shims — schedules must derive from seeds and virtual time only",
    ),
    (
        "validate-before-alloc",
        "flag Vec::with_capacity / vec![…; n] where n comes from a Dec read without an \
         upper-bound check in the same function (the PR 9 FrameStore n·n abort class)",
    ),
    (
        "unsafe-needs-safety-comment",
        "unsafe is denied outside crates/shims; inside them every unsafe needs an adjacent \
         // SAFETY: comment",
    ),
    (
        "no-raw-spawn",
        "std::thread::spawn only inside core::exec and the rayon shim, so background work \
         stays drop-safe and snapshot-quiescable",
    ),
];

/// Meta-rules the engine itself emits; not suppressible.
pub const META_RULES: &[(&str, &str)] = &[
    (
        "malformed-suppression",
        "a bdclique-lint allow() comment must name a known rule and carry a non-empty reason",
    ),
    (
        "unused-suppression",
        "a bdclique-lint allow() comment that suppresses nothing must be removed",
    ),
];

/// Crates whose non-test `src/` falls under `no-hashmap-iteration`.
const HASH_ITER_CRATES: &[&str] = &["core", "netsim", "codes", "adversary"];

/// Iteration-order-sensitive methods on hash containers.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "into_iter",
    "drain",
    "retain",
];

/// Where a file sits in the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Library/binary source under `src/`.
    Src,
    /// Integration tests under `tests/`.
    Tests,
    /// Benchmarks under `benches/`.
    Benches,
    /// Examples under `examples/`.
    Examples,
    /// Anything else (build scripts, stray files).
    Other,
}

/// Scoping facts derived from a workspace-relative path.
#[derive(Debug, Clone)]
pub struct FileScope {
    /// Crate name: `core`, `netsim`, `shims/rayon`, `bdclique` (the root
    /// facade), … `None` for paths outside any crate layout.
    pub crate_name: Option<String>,
    /// File kind by directory.
    pub kind: Kind,
    /// Whether the file lives under `crates/shims/`.
    pub in_shims: bool,
}

/// Classifies a workspace-relative path (forward slashes).
pub fn classify(rel: &str) -> FileScope {
    let parts: Vec<&str> = rel.split('/').collect();
    let kind_of = |dir: &str| match dir {
        "src" => Kind::Src,
        "tests" => Kind::Tests,
        "benches" => Kind::Benches,
        "examples" => Kind::Examples,
        _ => Kind::Other,
    };
    if parts.first() == Some(&"crates") {
        if parts.get(1) == Some(&"shims") {
            let name = parts.get(2).map(|s| format!("shims/{s}"));
            let kind = parts.get(3).map_or(Kind::Other, |d| kind_of(d));
            return FileScope {
                crate_name: name,
                kind,
                in_shims: true,
            };
        }
        let name = parts.get(1).map(|s| (*s).to_string());
        let kind = parts.get(2).map_or(Kind::Other, |d| kind_of(d));
        return FileScope {
            crate_name: name,
            kind,
            in_shims: false,
        };
    }
    // Root package layout: src/, tests/, examples/ at the workspace root.
    let kind = parts.first().map_or(Kind::Other, |d| kind_of(d));
    FileScope {
        crate_name: Some("bdclique".to_string()),
        kind,
        in_shims: false,
    }
}

/// Fixture directive: a first-line `// lint-fixture-as: <path>` makes the
/// engine scope the file as if it lived at `<path>`. This is how the
/// known-bad fixtures under `crates/lint/fixtures/` exercise crate-scoped
/// rules without living inside those crates.
pub const FIXTURE_AS: &str = "lint-fixture-as:";

/// Lints one source file. `path` is the reporting path (shown in
/// findings); scoping uses the fixture directive when present.
pub fn lint_source(path: &str, src: &str) -> Vec<Finding> {
    let lexed = lex(src);
    let effective = fixture_path(&lexed.comments).unwrap_or_else(|| path.to_string());
    let scope = classify(&effective);
    let mask = test_mask(&lexed.toks);
    let (suppressions, mut findings) = parse_suppressions(path, &lexed.comments);

    let ctx = Ctx {
        path,
        scope: &scope,
        toks: &lexed.toks,
        comments: &lexed.comments,
        mask: &mask,
    };
    let mut raw = Vec::new();
    no_hashmap_iteration(&ctx, &mut raw);
    no_wallclock(&ctx, &mut raw);
    validate_before_alloc(&ctx, &mut raw);
    unsafe_needs_safety_comment(&ctx, &mut raw);
    no_raw_spawn(&ctx, &mut raw);

    // Apply suppressions: a well-formed allow() covers matching findings
    // on its own line span and the line right after it.
    let mut used = vec![false; suppressions.len()];
    for f in raw {
        let mut suppressed = false;
        for (si, s) in suppressions.iter().enumerate() {
            if s.rules.iter().any(|r| r == f.rule) && f.line >= s.line && f.line <= s.end_line + 1 {
                used[si] = true;
                suppressed = true;
            }
        }
        if !suppressed {
            findings.push(f);
        }
    }
    for (si, s) in suppressions.iter().enumerate() {
        if !used[si] {
            findings.push(Finding {
                rule: "unused-suppression",
                path: path.to_string(),
                line: s.line,
                message: format!(
                    "suppression for `{}` does not match any finding; remove it",
                    s.rules.join(", ")
                ),
            });
        }
    }
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings.dedup();
    findings
}

fn fixture_path(comments: &[Comment]) -> Option<String> {
    let first = comments.first()?;
    if first.line != 1 {
        return None;
    }
    let idx = first.text.find(FIXTURE_AS)?;
    let rest = first.text[idx + FIXTURE_AS.len()..].trim();
    if rest.is_empty() {
        None
    } else {
        Some(rest.to_string())
    }
}

struct Ctx<'a> {
    path: &'a str,
    scope: &'a FileScope,
    toks: &'a [Tok],
    comments: &'a [Comment],
    mask: &'a [bool],
}

impl Ctx<'_> {
    fn finding(&self, rule: &'static str, line: u32, message: String) -> Finding {
        Finding {
            rule,
            path: self.path.to_string(),
            line,
            message,
        }
    }
}

/// Marks the token span of every `#[test]` / `#[cfg(test)]`-gated item so
/// rules can skip test-only code. `#[cfg(not(test))]` is NOT a test gate.
fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let close = matching(toks, i + 1, '[', ']');
            let gated = attr_is_test(&toks[i + 2..close.min(toks.len())]);
            if gated {
                // Find the item body: the first `{` at bracket depth 0
                // before a `;` (a `;` means a braceless item like
                // `#[cfg(test)] use x;`).
                let mut j = close + 1;
                let mut depth = 0i32;
                while j < toks.len() {
                    let t = &toks[j];
                    if t.is_punct('(') || t.is_punct('[') {
                        depth += 1;
                    } else if t.is_punct(')') || t.is_punct(']') {
                        depth -= 1;
                    } else if depth == 0 && t.is_punct(';') {
                        break;
                    } else if depth == 0 && t.is_punct('{') {
                        let end = matching(toks, j, '{', '}');
                        for m in &mut mask[i..=end.min(toks.len() - 1)] {
                            *m = true;
                        }
                        break;
                    }
                    j += 1;
                }
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Does an attribute token body (`cfg(test)`, `test`, `cfg(not(test))`, …)
/// gate on test builds?
fn attr_is_test(attr: &[Tok]) -> bool {
    for (k, t) in attr.iter().enumerate() {
        if t.is_ident("test") {
            let negated = k >= 2 && attr[k - 1].is_punct('(') && attr[k - 2].is_ident("not");
            if !negated {
                return true;
            }
        }
    }
    false
}

/// Index of the matching close bracket for the open bracket at `open`.
/// Returns the last token index if unbalanced (never panics).
fn matching(toks: &[Tok], open: usize, o: char, c: char) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    toks.len().saturating_sub(1)
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

struct Suppression {
    rules: Vec<String>,
    line: u32,
    end_line: u32,
}

/// Parses `// bdclique-lint: allow(rule) — reason` comments. Returns the
/// well-formed suppressions plus findings for malformed ones (missing
/// reason, unknown rule, bad syntax) — the suppressions are themselves
/// linted.
fn parse_suppressions(path: &str, comments: &[Comment]) -> (Vec<Suppression>, Vec<Finding>) {
    const MARKER: &str = "bdclique-lint:";
    let mut sups = Vec::new();
    let mut bad = Vec::new();
    let mut malformed = |line: u32, msg: String| {
        bad.push(Finding {
            rule: "malformed-suppression",
            path: path.to_string(),
            line,
            message: msg,
        });
    };
    for (ci, c) in comments.iter().enumerate() {
        // The marker must open the comment body (after `//`/`/*`/doc
        // markers) — prose that merely *mentions* the syntax, like this
        // sentence, is not a suppression.
        let body = c.text.trim_start_matches(['/', '*', '!']).trim_start();
        if !body.starts_with(MARKER) {
            continue;
        }
        // A reason wrapped over following comment lines extends the
        // suppression's span, so the covered code line moves with it.
        let mut end_line = c.end_line;
        for follow in &comments[ci + 1..] {
            let fb = follow.text.trim_start_matches(['/', '*', '!']).trim_start();
            if follow.line == end_line + 1 && !fb.starts_with(MARKER) {
                end_line = follow.end_line;
            } else {
                break;
            }
        }
        let rest = body[MARKER.len()..].trim_start();
        let Some(after_allow) = rest.strip_prefix("allow") else {
            malformed(
                c.line,
                "expected `allow(rule-name)` after `bdclique-lint:`".to_string(),
            );
            continue;
        };
        let after_allow = after_allow.trim_start();
        let Some(open) = after_allow.strip_prefix('(') else {
            malformed(
                c.line,
                "expected `allow(rule-name)` after `bdclique-lint:`".to_string(),
            );
            continue;
        };
        let Some(close_idx) = open.find(')') else {
            malformed(c.line, "unclosed `allow(` in suppression".to_string());
            continue;
        };
        let names: Vec<String> = open[..close_idx]
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        if names.is_empty() {
            malformed(c.line, "empty `allow()` in suppression".to_string());
            continue;
        }
        let mut ok = true;
        for n in &names {
            if !RULES.iter().any(|(r, _)| r == n) {
                malformed(
                    c.line,
                    format!("suppression names unknown rule `{n}` (see the rule catalog)"),
                );
                ok = false;
            }
        }
        // The reason: whatever follows the `)`, minus separator dashes.
        let reason = open[close_idx + 1..]
            .trim_start_matches([' ', '\t', '—', '–', '-', ':'])
            .trim();
        if reason.is_empty() {
            malformed(
                c.line,
                "suppression must carry a reason: `// bdclique-lint: allow(rule) — why`"
                    .to_string(),
            );
            ok = false;
        }
        if ok {
            sups.push(Suppression {
                rules: names,
                line: c.line,
                end_line,
            });
        }
    }
    (sups, bad)
}

// ---------------------------------------------------------------------------
// Rule: no-hashmap-iteration
// ---------------------------------------------------------------------------

fn no_hashmap_iteration(ctx: &Ctx<'_>, out: &mut Vec<Finding>) {
    let in_scope = ctx.scope.kind == Kind::Src
        && !ctx.scope.in_shims
        && ctx
            .scope
            .crate_name
            .as_deref()
            .is_some_and(|c| HASH_ITER_CRATES.contains(&c));
    if !in_scope {
        return;
    }
    let toks = ctx.toks;

    // Phase 0: hash-typed names — HashMap/HashSet plus file-local aliases
    // (`type QueryAnswers = HashMap<…>;`).
    let mut hash_types: Vec<String> = vec!["HashMap".into(), "HashSet".into()];
    for i in 0..toks.len() {
        if toks[i].is_ident("type") {
            if let (Some(name), Some(eq)) = (toks.get(i + 1), toks.get(i + 2)) {
                if name.kind == TokKind::Ident && eq.is_punct('=') {
                    let mut j = i + 3;
                    while j < toks.len() && !toks[j].is_punct(';') {
                        if toks[j].is_ident("HashMap") || toks[j].is_ident("HashSet") {
                            hash_types.push(name.text.clone());
                            break;
                        }
                        j += 1;
                    }
                }
            }
        }
    }

    // Phase 1: taint variable/field names declared with a hash type.
    let mut tainted: Vec<String> = Vec::new();
    let mut taint = |name: &str| {
        if !tainted.iter().any(|t| t == name) {
            tainted.push(name.to_string());
        }
    };
    for i in 0..toks.len() {
        let Some(id) = toks[i].ident() else { continue };
        if !hash_types.iter().any(|h| h == id) {
            continue;
        }
        // (a) `let`-binding within the same statement.
        let mut j = i;
        let mut found_let = None;
        for _ in 0..48 {
            if j == 0 {
                break;
            }
            j -= 1;
            let t = &toks[j];
            if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
                break;
            }
            if t.is_ident("let") {
                found_let = Some(j);
                break;
            }
        }
        if let Some(l) = found_let {
            let mut k = l + 1;
            while k < i {
                let t = &toks[k];
                if t.is_punct(':') || t.is_punct('=') {
                    break;
                }
                if let Some(name) = t.ident() {
                    if name != "mut" {
                        taint(name);
                    }
                }
                k += 1;
            }
            continue;
        }
        // (b) field / parameter declaration: `name : … HashMap … `.
        // Walk back across type tokens to the single `:` boundary.
        let mut j = i;
        let mut steps = 0;
        loop {
            if j == 0 || steps > 32 {
                break;
            }
            j -= 1;
            steps += 1;
            let t = &toks[j];
            if t.is_punct(':') {
                // `::` is two colons; skip path separators.
                if j > 0 && toks[j - 1].is_punct(':') {
                    j -= 1;
                    continue;
                }
                if j > 0 {
                    if let Some(name) = toks[j - 1].ident() {
                        taint(name);
                    }
                }
                break;
            }
            let type_ctx = t.kind == TokKind::Ident
                || t.kind == TokKind::Lifetime
                || t.is_punct('<')
                || t.is_punct('>')
                || t.is_punct(',')
                || t.is_punct('&')
                || t.is_punct('(')
                || t.is_punct(')')
                || t.is_punct('[')
                || t.is_punct(']');
            if !type_ctx {
                break;
            }
        }
        // (c) plain assignment / initializer: `name = HashMap::new()`.
        let mut j = i;
        let mut steps = 0;
        loop {
            if j == 0 || steps > 16 {
                break;
            }
            j -= 1;
            steps += 1;
            let t = &toks[j];
            if t.is_punct('=') {
                if j > 0 {
                    if let Some(name) = toks[j - 1].ident() {
                        if name != "type" {
                            taint(name);
                        }
                    }
                }
                break;
            }
            if !(t.kind == TokKind::Ident || t.is_punct(':') || t.is_punct('<') || t.is_punct('>'))
            {
                break;
            }
        }
    }
    if tainted.is_empty() {
        return;
    }

    // Phase 2: violations.
    for i in 0..toks.len() {
        if ctx.mask[i] {
            continue;
        }
        // `recv.iter()` — receiver chain contains a tainted name.
        if toks[i].is_punct('.') {
            let is_call = toks
                .get(i + 1)
                .and_then(|t| t.ident())
                .is_some_and(|m| ITER_METHODS.contains(&m))
                && toks.get(i + 2).is_some_and(|t| t.is_punct('('));
            if is_call {
                let chain = chain_idents(toks, i);
                if let Some(name) = chain.iter().find(|n| tainted.contains(n)) {
                    let method = &toks[i + 1].text;
                    out.push(ctx.finding(
                        "no-hashmap-iteration",
                        toks[i + 1].line,
                        format!(
                            "`.{method}()` on hash container `{name}`: iteration order is \
                             process-random and breaks cross-process determinism; use \
                             BTreeMap/BTreeSet or sort first (then suppress with a reason)"
                        ),
                    ));
                }
            }
        }
        // `for pat in <chain> {` over a tainted name.
        if toks[i].is_ident("for") {
            if let Some((expr_start, brace)) = for_in_expr(toks, i) {
                if let Some(name) = pure_chain_taint(&toks[expr_start..brace], &tainted) {
                    out.push(ctx.finding(
                        "no-hashmap-iteration",
                        toks[i].line,
                        format!(
                            "`for … in` over hash container `{name}`: iteration order is \
                             process-random and breaks cross-process determinism; use \
                             BTreeMap/BTreeSet or sort first (then suppress with a reason)"
                        ),
                    ));
                }
            }
        }
    }
}

/// Receiver-chain identifiers to the left of the `.` at `dot`, skipping
/// `self`, call-argument groups, and index groups. `a.b(x)[i].c` → `[c, b, a]`.
fn chain_idents(toks: &[Tok], dot: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut j = dot;
    loop {
        if j == 0 {
            break;
        }
        j -= 1;
        let t = &toks[j];
        if let Some(id) = t.ident() {
            if id != "self" {
                out.push(id.to_string());
            }
            // Continue the chain through `.` or `::`.
            if j >= 1 && toks[j - 1].is_punct('.') {
                j -= 1;
                continue;
            }
            if j >= 2 && toks[j - 1].is_punct(':') && toks[j - 2].is_punct(':') {
                j -= 2;
                continue;
            }
            break;
        }
        if t.is_punct(')') {
            j = open_of(toks, j, '(', ')');
            continue;
        }
        if t.is_punct(']') {
            j = open_of(toks, j, '[', ']');
            continue;
        }
        break;
    }
    out
}

/// Index of the open bracket matching the close bracket at `close`,
/// scanning backwards. Returns 0 if unbalanced.
fn open_of(toks: &[Tok], close: usize, o: char, c: char) -> usize {
    let mut depth = 0i32;
    let mut j = close;
    loop {
        let t = &toks[j];
        if t.is_punct(c) {
            depth += 1;
        } else if t.is_punct(o) {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        if j == 0 {
            return 0;
        }
        j -= 1;
    }
}

/// For a `for` keyword at `i`, locates the iterated expression: returns
/// `(expr_start, brace_index)` for `for pat in expr {`. `None` when there
/// is no `in` before the body brace (`impl Trait for Type {`).
fn for_in_expr(toks: &[Tok], i: usize) -> Option<(usize, usize)> {
    let mut depth = 0i32;
    let mut in_idx = None;
    let mut j = i + 1;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 && t.is_punct(';') {
            return None;
        } else if depth == 0 && t.is_ident("in") && in_idx.is_none() {
            in_idx = Some(j);
        } else if depth == 0 && t.is_punct('{') {
            let start = in_idx? + 1;
            return Some((start, j));
        }
        j += 1;
    }
    None
}

/// If `expr` is a pure reference chain (`&`/`mut`/idents/`self` joined by
/// `.`/`::` with optional index or call groups) ending the expression,
/// returns the first tainted identifier in it. Range expressions, arithmetic,
/// and other compound shapes return `None` — those are handled (when hash
/// iteration is actually involved) by the method-call pattern.
fn pure_chain_taint(expr: &[Tok], tainted: &[String]) -> Option<String> {
    let mut idents = Vec::new();
    let mut j = 0usize;
    // Leading borrows.
    while j < expr.len() && (expr[j].is_punct('&') || expr[j].is_ident("mut")) {
        j += 1;
    }
    while j < expr.len() {
        let t = &expr[j];
        if let Some(id) = t.ident() {
            if id != "self" {
                idents.push(id.to_string());
            }
            j += 1;
            continue;
        }
        if t.is_punct('.') || t.is_punct(':') {
            j += 1;
            continue;
        }
        if t.is_punct('(') {
            j = matching(expr, j, '(', ')') + 1;
            continue;
        }
        if t.is_punct('[') {
            j = matching(expr, j, '[', ']') + 1;
            continue;
        }
        // Anything else (operators, literals) makes this a compound
        // expression; bail out.
        return None;
    }
    idents.into_iter().find(|n| tainted.iter().any(|t| t == n))
}

// ---------------------------------------------------------------------------
// Rule: no-wallclock-nondeterminism
// ---------------------------------------------------------------------------

fn no_wallclock(ctx: &Ctx<'_>, out: &mut Vec<Finding>) {
    let in_scope = ctx.scope.kind == Kind::Src
        && !ctx.scope.in_shims
        && ctx.scope.crate_name.as_deref() != Some("bench");
    if !in_scope {
        return;
    }
    let toks = ctx.toks;
    for i in 0..toks.len() {
        if ctx.mask[i] {
            continue;
        }
        let Some(id) = toks[i].ident() else { continue };
        let hit = match id {
            "SystemTime" => Some("`SystemTime` reads the wall clock"),
            "thread_rng" => Some("`thread_rng` seeds from OS entropy"),
            "from_entropy" => Some("`from_entropy` seeds from OS entropy"),
            "Instant" => {
                let now = toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                    && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                    && toks.get(i + 3).is_some_and(|t| t.is_ident("now"));
                if now {
                    Some("`Instant::now` reads the wall clock")
                } else {
                    None
                }
            }
            _ => None,
        };
        if let Some(what) = hit {
            out.push(ctx.finding(
                "no-wallclock-nondeterminism",
                toks[i].line,
                format!(
                    "{what}: identical inputs must produce identical schedules on every \
                     process; derive randomness from SeedStream and time from \
                     Network::virtual_time (timing belongs in crates/bench)"
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: validate-before-alloc
// ---------------------------------------------------------------------------

/// Decoder reads that taint their binding with an attacker-controlled
/// magnitude. `get_len` is absent by design: it validates the announced
/// length against the remaining input before returning.
const TAINT_READS: &[&str] = &["get_usize", "get_u64", "get_u32"];

fn validate_before_alloc(ctx: &Ctx<'_>, out: &mut Vec<Finding>) {
    if ctx.scope.kind != Kind::Src {
        return;
    }
    let toks = ctx.toks;
    // Walk functions: `fn name … { body }`.
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("fn") || ctx.mask[i] {
            i += 1;
            continue;
        }
        // Find the body open brace (depth over () and [] only; `;` at
        // depth 0 means a bodyless trait method).
        let mut j = i + 1;
        let mut depth = 0i32;
        let mut body = None;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if depth == 0 && t.is_punct(';') {
                break;
            } else if depth == 0 && t.is_punct('{') {
                body = Some((j, matching(toks, j, '{', '}')));
                break;
            }
            j += 1;
        }
        let Some((open, close)) = body else {
            i = j + 1;
            continue;
        };
        check_fn_body(ctx, &toks[open..=close.min(toks.len() - 1)], out);
        i = close + 1;
    }
}

/// Analyzes one function body for Dec-tainted allocation sizes.
fn check_fn_body(ctx: &Ctx<'_>, body: &[Tok], out: &mut Vec<Finding>) {
    // 1. Taint: names bound (let or assignment) from a `.get_usize()`-class
    //    read, with the token position of the read.
    let mut taints: Vec<(String, usize)> = Vec::new();
    for i in 0..body.len() {
        let is_read = body[i].is_punct('.')
            && body
                .get(i + 1)
                .and_then(|t| t.ident())
                .is_some_and(|m| TAINT_READS.contains(&m))
            && body.get(i + 2).is_some_and(|t| t.is_punct('('));
        if !is_read {
            continue;
        }
        // Statement start: walk back to `;`, `{`, or `}` at depth 0.
        let mut s = i;
        let mut depth = 0i32;
        while s > 0 {
            let t = &body[s - 1];
            if t.is_punct(')') || t.is_punct(']') {
                depth += 1;
            } else if t.is_punct('(') || t.is_punct('[') {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            } else if depth == 0 && (t.is_punct(';') || t.is_punct('{') || t.is_punct('}')) {
                break;
            }
            s -= 1;
        }
        let stmt = &body[s..i];
        if let Some(let_pos) = stmt.iter().position(|t| t.is_ident("let")) {
            // `let [mut] a = …` / `let (a, b) = …` / `let a: T = …`.
            let mut k = let_pos + 1;
            while k < stmt.len() {
                let t = &stmt[k];
                if t.is_punct(':') || t.is_punct('=') {
                    break;
                }
                if let Some(name) = t.ident() {
                    if name != "mut" {
                        taints.push((name.to_string(), i));
                    }
                }
                k += 1;
            }
        } else if let Some(eq) = stmt.iter().position(|t| t.is_punct('=')) {
            // `lvalue = …`: taint the last identifier of the lvalue.
            if let Some(name) = stmt[..eq].iter().rev().find_map(|t| t.ident()) {
                taints.push((name.to_string(), i));
            }
        }
    }
    if taints.is_empty() {
        return;
    }

    // 2. Allocation sites; a tainted name is cleared by upper-bound
    //    evidence between its read and the allocation.
    for i in 0..body.len() {
        let alloc_args: Option<(usize, usize, &str)> = if body[i].is_ident("with_capacity")
            && body.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            Some((i + 1, matching(body, i + 1, '(', ')'), "with_capacity"))
        } else if body[i].is_ident("reserve") && body.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            Some((i + 1, matching(body, i + 1, '(', ')'), "reserve"))
        } else if body[i].is_ident("vec")
            && body.get(i + 1).is_some_and(|t| t.is_punct('!'))
            && body.get(i + 2).is_some_and(|t| t.is_punct('['))
        {
            // `vec![elem; len]`: only the length part matters.
            let close = matching(body, i + 2, '[', ']');
            let mut semi = None;
            let mut depth = 0i32;
            for (k, t) in body.iter().enumerate().take(close).skip(i + 3) {
                if t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    depth -= 1;
                } else if depth == 0 && t.is_punct(';') {
                    semi = Some(k);
                    break;
                }
            }
            semi.map(|s| (s, close, "vec![…; n]"))
        } else {
            None
        };
        let Some((args_open, args_close, what)) = alloc_args else {
            continue;
        };
        for k in args_open + 1..args_close.min(body.len()) {
            let Some(id) = body[k].ident() else { continue };
            let Some(&(_, read_pos)) = taints.iter().find(|(n, p)| n == id && *p < i) else {
                continue;
            };
            if !cleared_between(body, id, read_pos, i) {
                out.push(ctx.finding(
                    "validate-before-alloc",
                    body[k].line,
                    format!(
                        "`{what}` sized by `{id}`, which comes from a Dec read with no \
                         upper-bound check in between: a corrupt snapshot can request an \
                         absurd allocation and abort (the PR 9 n·n class); range-check \
                         `{id}` first or read it via `get_len`"
                    ),
                ));
            }
        }
    }
}

/// Upper-bound evidence for `name` in `body[from..to]`: `name >`, `name >=`,
/// `name ==`/`!=` (pinning), `< name` / `<= name`, `name <= …`, `name.min(`,
/// `name.clamp(`, or `name` inside an `assert…!(…)` group.
fn cleared_between(body: &[Tok], name: &str, from: usize, to: usize) -> bool {
    for k in from..to.min(body.len()) {
        if !body[k].is_ident(name) {
            // assert!-style macro groups containing the name.
            if body[k]
                .ident()
                .is_some_and(|id| id.starts_with("assert") || id.starts_with("debug_assert"))
                && body.get(k + 1).is_some_and(|t| t.is_punct('!'))
                && body.get(k + 2).is_some_and(|t| t.is_punct('('))
            {
                let close = matching(body, k + 2, '(', ')');
                if body[k + 2..close.min(body.len())]
                    .iter()
                    .any(|t| t.is_ident(name))
                {
                    return true;
                }
            }
            continue;
        }
        let next = body.get(k + 1);
        let next2 = body.get(k + 2);
        let prev = k.checked_sub(1).and_then(|p| body.get(p));
        let prev2 = k.checked_sub(2).and_then(|p| body.get(p));
        // name > …  |  name >= …
        if next.is_some_and(|t| t.is_punct('>')) {
            return true;
        }
        // name <= …
        if next.is_some_and(|t| t.is_punct('<')) && next2.is_some_and(|t| t.is_punct('=')) {
            return true;
        }
        // name == … | name != …
        if next.is_some_and(|t| t.is_punct('=')) && next2.is_some_and(|t| t.is_punct('=')) {
            return true;
        }
        if next.is_some_and(|t| t.is_punct('!')) && next2.is_some_and(|t| t.is_punct('=')) {
            return true;
        }
        // … < name | … <= name | … == name | … != name
        if prev.is_some_and(|t| t.is_punct('<')) {
            return true;
        }
        if prev.is_some_and(|t| t.is_punct('=')) && prev2.is_some_and(|t| t.is_punct('=')) {
            return true;
        }
        if prev.is_some_and(|t| t.is_punct('=')) && prev2.is_some_and(|t| t.is_punct('!')) {
            return true;
        }
        // name.min( | name.clamp(
        if next.is_some_and(|t| t.is_punct('.'))
            && next2.is_some_and(|t| t.is_ident("min") || t.is_ident("clamp"))
        {
            return true;
        }
        // (lo..=hi).contains(&name) — the idiomatic range check clippy
        // rewrites `n < lo || n > hi` into.
        let prev3 = k.checked_sub(3).and_then(|p| body.get(p));
        if prev.is_some_and(|t| t.is_punct('&'))
            && prev2.is_some_and(|t| t.is_punct('('))
            && prev3.is_some_and(|t| t.is_ident("contains"))
        {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Rule: unsafe-needs-safety-comment
// ---------------------------------------------------------------------------

fn unsafe_needs_safety_comment(ctx: &Ctx<'_>, out: &mut Vec<Finding>) {
    for t in ctx.toks {
        if !t.is_ident("unsafe") {
            continue;
        }
        if !ctx.scope.in_shims {
            out.push(
                ctx.finding(
                    "unsafe-needs-safety-comment",
                    t.line,
                    "`unsafe` is denied outside crates/shims: the simulator's determinism \
                 oracles assume a memory-safe core"
                        .to_string(),
                ),
            );
            continue;
        }
        let has_safety = ctx
            .comments
            .iter()
            .any(|c| c.text.contains("SAFETY:") && (c.end_line + 3 >= t.line && c.line <= t.line));
        if !has_safety {
            out.push(
                ctx.finding(
                    "unsafe-needs-safety-comment",
                    t.line,
                    "`unsafe` without an adjacent `// SAFETY:` comment (within the 3 lines \
                 above): state the invariant that makes this sound"
                        .to_string(),
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: no-raw-spawn
// ---------------------------------------------------------------------------

fn no_raw_spawn(ctx: &Ctx<'_>, out: &mut Vec<Finding>) {
    let allowed = ctx.scope.in_shims && ctx.scope.crate_name.as_deref() == Some("shims/rayon");
    if allowed {
        return;
    }
    // core::exec is the sanctioned worker pool.
    let is_exec = ctx.scope.crate_name.as_deref() == Some("core");
    let toks = ctx.toks;
    for i in 0..toks.len() {
        if ctx.mask[i] {
            continue;
        }
        if !toks[i].is_ident("spawn") {
            continue;
        }
        // `thread::spawn` (std or aliased).
        let via_path = i >= 3
            && toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
            && toks[i - 3].is_ident("thread");
        // `thread::Builder::new()…spawn(…)` — the builder chain
        // (`.name(…)` etc.) can put a couple dozen tokens between the
        // `Builder` and the `spawn`.
        let via_builder = i >= 1
            && toks[i - 1].is_punct('.')
            && toks[i.saturating_sub(24)..i]
                .iter()
                .any(|t| t.is_ident("Builder") || t.is_ident("thread"));
        if !(via_path || via_builder) {
            continue;
        }
        if is_exec && ctx.exec_file() {
            continue;
        }
        out.push(
            ctx.finding(
                "no-raw-spawn",
                toks[i].line,
                "raw `thread::spawn` outside core::exec and the rayon shim: background work \
             must be drop-safe and quiescable for snapshots — submit jobs to \
             bdclique_core::exec instead"
                    .to_string(),
            ),
        );
    }
}

impl Ctx<'_> {
    /// Is this the sanctioned worker-pool file? Matches on the *effective*
    /// path tail so fixtures can opt in via the directive.
    fn exec_file(&self) -> bool {
        let eff = fixture_path(self.comments).unwrap_or_else(|| self.path.to_string());
        eff == "crates/core/src/exec.rs"
    }
}
