//! The [`BitVec`] implementation: 64-bit blocks, LSB-first within a block.

use std::fmt;

/// A growable, compact vector of bits.
///
/// Bits are stored LSB-first inside `u64` blocks. Equality, hashing and
/// ordering consider only the logical `len` bits; trailing block padding is
/// kept zeroed as an internal invariant.
///
/// # Examples
///
/// ```
/// use bdclique_bits::BitVec;
///
/// let a = BitVec::from_bools(&[true, false, true]);
/// let b = BitVec::from_fn(3, |i| i % 2 == 0);
/// assert_eq!(a, b);
/// assert_eq!(a.count_ones(), 2);
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BitVec {
    blocks: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates an empty bit vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a bit vector of `len` zero bits.
    pub fn zeros(len: usize) -> Self {
        Self {
            blocks: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates a bit vector from a slice of booleans.
    pub fn from_bools(bools: &[bool]) -> Self {
        let mut v = Self::zeros(bools.len());
        for (i, &b) in bools.iter().enumerate() {
            if b {
                v.set(i, true);
            }
        }
        v
    }

    /// Creates a bit vector of `len` bits where bit `i` is `f(i)`.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut v = Self::zeros(len);
        for i in 0..len {
            if f(i) {
                v.set(i, true);
            }
        }
        v
    }

    /// Creates a bit vector of `len` bits from little-endian bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` has fewer than `len.div_ceil(8)` bytes.
    pub fn from_bytes(bytes: &[u8], len: usize) -> Self {
        assert!(bytes.len() >= len.div_ceil(8), "not enough bytes for len");
        let mut v = Self::zeros(len);
        let mut pos = 0usize;
        for &b in bytes.iter().take(len.div_ceil(8)) {
            let w = 8.min(len - pos) as u32;
            v.store(pos, w, b as u64 & low_mask(w));
            pos += 8;
        }
        v
    }

    /// Serializes to little-endian bytes (`len.div_ceil(8)` of them).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.len.div_ceil(8)];
        for (i, byte) in out.iter_mut().enumerate() {
            let pos = i * 8;
            *byte = self.load(pos, 8.min(self.len - pos) as u32) as u8;
        }
        out
    }

    /// Reads up to 64 bits at `pos` without range checks; the caller
    /// guarantees `pos + width <= len` (padding invariant keeps the result
    /// masked anyway).
    #[inline]
    fn load(&self, pos: usize, width: u32) -> u64 {
        if width == 0 {
            return 0;
        }
        let block = pos / 64;
        let off = (pos % 64) as u32;
        let mut out = self.blocks[block] >> off;
        if off + width > 64 {
            out |= self.blocks[block + 1] << (64 - off);
        }
        out & low_mask(width)
    }

    /// Overwrites `width` (≤ 64) bits at `pos` with `value`; the caller
    /// guarantees the range is in bounds and `value` fits `width` bits.
    #[inline]
    fn store(&mut self, pos: usize, width: u32, value: u64) {
        if width == 0 {
            return;
        }
        let block = pos / 64;
        let off = (pos % 64) as u32;
        let mask = low_mask(width);
        self.blocks[block] = (self.blocks[block] & !(mask << off)) | (value << off);
        if off + width > 64 {
            let spill = off + width - 64;
            let hi_mask = low_mask(spill);
            self.blocks[block + 1] = (self.blocks[block + 1] & !hi_mask) | (value >> (64 - off));
        }
    }

    /// Extends with `extra` zero bits, keeping the padding invariant.
    #[inline]
    fn grow_zeros(&mut self, extra: usize) {
        self.len += extra;
        self.blocks.resize(self.len.div_ceil(64), 0);
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.blocks[i / 64] >> (i % 64) & 1 == 1
    }

    /// Returns bit `i`, or `None` if out of range.
    pub fn try_get(&self, i: usize) -> Option<bool> {
        (i < self.len).then(|| self.get(i))
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.blocks[i / 64] |= mask;
        } else {
            self.blocks[i / 64] &= !mask;
        }
    }

    /// Flips bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn flip(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.blocks[i / 64] ^= 1u64 << (i % 64);
    }

    /// Appends one bit.
    pub fn push(&mut self, value: bool) {
        if self.len.is_multiple_of(64) {
            self.blocks.push(0);
        }
        self.len += 1;
        if value {
            self.set(self.len - 1, true);
        }
    }

    /// Appends the low `width` bits of `value`, LSB first.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or if `value` does not fit in `width` bits.
    pub fn push_uint(&mut self, width: u32, value: u64) {
        assert!(width <= 64, "width {width} > 64");
        if width < 64 {
            assert!(
                value < 1u64 << width,
                "value {value} does not fit width {width}"
            );
        }
        let start = self.len;
        self.grow_zeros(width as usize);
        self.store(start, width, value);
    }

    /// Appends the low `width` bits of every value, LSB first — the batch
    /// fast path behind symbol packing (`width` ≤ 16). Values are masked to
    /// `width` bits, matching the per-symbol unpack loop which only ever
    /// reads the low bits.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= width <= 16`.
    pub fn push_uints(&mut self, width: u32, values: &[u16]) {
        assert!((1..=16).contains(&width), "width {width} not in 1..=16");
        let start = self.len;
        self.grow_zeros(width as usize * values.len());
        let mask = low_mask(width);
        let mut pos = start;
        for &v in values {
            self.store(pos, width, v as u64 & mask);
            pos += width as usize;
        }
    }

    /// Reads `width` bits starting at `pos` as an LSB-first integer.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or the range is out of bounds.
    pub fn read_uint(&self, pos: usize, width: u32) -> u64 {
        assert!(width <= 64, "width {width} > 64");
        assert!(pos + width as usize <= self.len, "read out of range");
        self.load(pos, width)
    }

    /// Reads `count` values of `width` bits each starting at `pos`, LSB
    /// first — the batch fast path behind symbol unpacking (`width` ≤ 16).
    /// Bits past the end of the vector read as zero, so the tail value is
    /// zero-padded exactly like [`Self::to_symbols`].
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= width <= 16`, or if `pos > len`.
    pub fn read_uints(&self, pos: usize, width: u32, count: usize) -> Vec<u16> {
        assert!((1..=16).contains(&width), "width {width} not in 1..=16");
        assert!(pos <= self.len, "read out of range");
        let w = width as usize;
        (0..count)
            .map(|s| {
                let p = pos + s * w;
                let avail = self.len.saturating_sub(p).min(w) as u32;
                self.load(p, avail) as u16
            })
            .collect()
    }

    /// Overwrites `width` bits starting at `pos` with `value`, LSB first.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`, `value` does not fit, or the range is out of
    /// bounds.
    pub fn write_uint(&mut self, pos: usize, width: u32, value: u64) {
        assert!(width <= 64, "width {width} > 64");
        if width < 64 {
            assert!(
                value < 1u64 << width,
                "value {value} does not fit width {width}"
            );
        }
        assert!(pos + width as usize <= self.len, "write out of range");
        self.store(pos, width, value);
    }

    /// Overwrites `src.len()` bits starting at `pos` with the bits of `src`,
    /// one 64-bit block move at a time.
    ///
    /// # Panics
    ///
    /// Panics if `pos + src.len() > len`.
    pub fn write_bits(&mut self, pos: usize, src: &Self) {
        assert!(pos + src.len <= self.len, "write_bits out of range");
        let mut off = 0usize;
        while off < src.len {
            let w = 64.min(src.len - off) as u32;
            self.store(pos + off, w, src.load(off, w));
            off += 64;
        }
    }

    /// Resets this vector **in place** to `len` zero bits, reusing the
    /// existing block allocation (unlike [`Self::truncate`], which rebuilds).
    /// This is what lets pooled frame buffers be recycled without returning
    /// to the allocator.
    pub fn reset_zeros(&mut self, len: usize) {
        self.blocks.clear();
        self.blocks.resize(len.div_ceil(64), 0);
        self.len = len;
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Hamming distance to another vector of the same length.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn hamming(&self, other: &Self) -> usize {
        assert_eq!(self.len, other.len, "hamming distance needs equal lengths");
        self.blocks
            .iter()
            .zip(&other.blocks)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    /// XORs `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn xor_assign(&mut self, other: &Self) {
        assert_eq!(self.len, other.len, "xor needs equal lengths");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a ^= b;
        }
    }

    /// Appends all bits of `other` (block-wise).
    pub fn extend_bits(&mut self, other: &Self) {
        let start = self.len;
        self.grow_zeros(other.len);
        let mut off = 0usize;
        while off < other.len {
            let w = 64.min(other.len - off) as u32;
            self.store(start + off, w, other.load(off, w));
            off += 64;
        }
    }

    /// Concatenates a sequence of bit vectors.
    pub fn concat<'a>(parts: impl IntoIterator<Item = &'a Self>) -> Self {
        let mut out = Self::new();
        for p in parts {
            out.extend_bits(p);
        }
        out
    }

    /// Returns the sub-vector `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > len`.
    pub fn slice(&self, start: usize, end: usize) -> Self {
        assert!(start <= end && end <= self.len, "slice out of range");
        let len = end - start;
        let mut out = Self::zeros(len);
        for (i, block) in out.blocks.iter_mut().enumerate() {
            let pos = start + i * 64;
            *block = self.load(pos, 64.min(end - pos) as u32);
        }
        out
    }

    /// Splits into `ceil(len / chunk)` chunks of `chunk` bits; the last chunk
    /// is zero-padded to exactly `chunk` bits.
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`.
    pub fn chunks_padded(&self, chunk: usize) -> Vec<Self> {
        assert!(chunk > 0, "chunk size must be positive");
        let count = self.len.div_ceil(chunk).max(1);
        (0..count)
            .map(|c| {
                let start = (c * chunk).min(self.len);
                let mut part = self.slice(start, (start + chunk).min(self.len));
                part.pad_to(chunk);
                part
            })
            .collect()
    }

    /// Zero-pads (or leaves unchanged) so the vector has at least `len` bits.
    pub fn pad_to(&mut self, len: usize) {
        if self.len < len {
            // Padding bits in the last partial block are already zero.
            self.grow_zeros(len - self.len);
        }
    }

    /// Truncates to at most `len` bits.
    pub fn truncate(&mut self, len: usize) {
        if len >= self.len {
            return;
        }
        self.blocks.truncate(len.div_ceil(64));
        if !len.is_multiple_of(64) {
            // Re-establish the zero-padding invariant in the last block.
            self.blocks[len / 64] &= low_mask((len % 64) as u32);
        }
        self.len = len;
    }

    /// Iterates over the bits.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Packs the bits into symbols of `sym_bits` bits each (LSB first), zero
    /// padding the tail.
    ///
    /// # Panics
    ///
    /// Panics if `sym_bits == 0` or `sym_bits > 16`.
    pub fn to_symbols(&self, sym_bits: u32) -> Vec<u16> {
        assert!(
            sym_bits > 0 && sym_bits <= 16,
            "symbol width must be 1..=16"
        );
        let count = self.len.div_ceil(sym_bits as usize);
        self.read_uints(0, sym_bits, count)
    }

    /// Inverse of [`Self::to_symbols`]: unpacks symbols back into `len` bits.
    ///
    /// # Panics
    ///
    /// Panics if `sym_bits` is out of range or there are not enough symbols.
    pub fn from_symbols(symbols: &[u16], sym_bits: u32, len: usize) -> Self {
        assert!(
            sym_bits > 0 && sym_bits <= 16,
            "symbol width must be 1..=16"
        );
        assert!(
            symbols.len() * sym_bits as usize >= len,
            "not enough symbols for {len} bits"
        );
        let w = sym_bits as usize;
        let mut v = Self::new();
        v.push_uints(sym_bits, &symbols[..len.div_ceil(w)]);
        v.truncate(len);
        v
    }
}

/// A mask of the `width` (1..=64) low bits.
#[inline]
const fn low_mask(width: u32) -> u64 {
    debug_assert!(width >= 1 && width <= 64);
    u64::MAX >> (64 - width)
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[{}; ", self.len)?;
        let shown = self.len.min(64);
        for i in 0..shown {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        if self.len > shown {
            write!(f, "…")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        Ok(())
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut v = Self::new();
        for b in iter {
            v.push(b);
        }
        v
    }
}

impl Extend<bool> for BitVec {
    fn extend<I: IntoIterator<Item = bool>>(&mut self, iter: I) {
        for b in iter {
            self.push(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_set_roundtrip() {
        let mut v = BitVec::new();
        for i in 0..200 {
            v.push(i % 3 == 0);
        }
        assert_eq!(v.len(), 200);
        for i in 0..200 {
            assert_eq!(v.get(i), i % 3 == 0, "bit {i}");
        }
        v.set(100, true);
        assert!(v.get(100));
        v.set(100, false);
        assert!(!v.get(100));
    }

    #[test]
    fn uint_pack_roundtrip() {
        let mut v = BitVec::new();
        v.push_uint(13, 0x1abc);
        v.push_uint(3, 5);
        v.push_uint(64, u64::MAX);
        assert_eq!(v.read_uint(0, 13), 0x1abc);
        assert_eq!(v.read_uint(13, 3), 5);
        assert_eq!(v.read_uint(16, 64), u64::MAX);
        v.write_uint(13, 3, 2);
        assert_eq!(v.read_uint(13, 3), 2);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn push_uint_rejects_oversized_value() {
        let mut v = BitVec::new();
        v.push_uint(3, 8);
    }

    #[test]
    fn hamming_and_xor() {
        let a = BitVec::from_bools(&[true, true, false, false]);
        let b = BitVec::from_bools(&[true, false, true, false]);
        assert_eq!(a.hamming(&b), 2);
        let mut c = a.clone();
        c.xor_assign(&b);
        assert_eq!(c, BitVec::from_bools(&[false, true, true, false]));
        assert_eq!(c.count_ones(), 2);
    }

    #[test]
    fn slice_and_concat() {
        let v = BitVec::from_fn(100, |i| i % 7 == 0);
        let s = v.slice(10, 30);
        assert_eq!(s.len(), 20);
        for i in 0..20 {
            assert_eq!(s.get(i), (i + 10) % 7 == 0);
        }
        let joined = BitVec::concat([&v.slice(0, 10), &v.slice(10, 100)]);
        assert_eq!(joined, v);
    }

    #[test]
    fn chunks_padded_covers_all_bits() {
        let v = BitVec::from_fn(21, |i| i % 2 == 0);
        let chunks = v.chunks_padded(8);
        assert_eq!(chunks.len(), 3);
        assert!(chunks.iter().all(|c| c.len() == 8));
        let mut rejoined = BitVec::concat(chunks.iter());
        rejoined.truncate(21);
        assert_eq!(rejoined, v);
    }

    #[test]
    fn empty_chunks_padded_yields_one_zero_chunk() {
        let v = BitVec::new();
        let chunks = v.chunks_padded(4);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0], BitVec::zeros(4));
    }

    #[test]
    fn bytes_roundtrip() {
        let v = BitVec::from_fn(19, |i| i % 5 < 2);
        let bytes = v.to_bytes();
        assert_eq!(bytes.len(), 3);
        assert_eq!(BitVec::from_bytes(&bytes, 19), v);
    }

    #[test]
    fn symbols_roundtrip() {
        let v = BitVec::from_fn(37, |i| (i * i) % 3 == 1);
        for sym_bits in [1u32, 3, 8, 13, 16] {
            let syms = v.to_symbols(sym_bits);
            assert_eq!(syms.len(), 37usize.div_ceil(sym_bits as usize));
            let back = BitVec::from_symbols(&syms, sym_bits, 37);
            assert_eq!(back, v, "sym_bits {sym_bits}");
        }
    }

    #[test]
    fn equality_ignores_block_padding() {
        let mut a = BitVec::zeros(5);
        let b = BitVec::from_bools(&[false; 5]);
        a.set(3, true);
        a.set(3, false);
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }

    #[test]
    fn display_and_debug() {
        let v = BitVec::from_bools(&[true, false, true]);
        assert_eq!(v.to_string(), "101");
        assert!(format!("{v:?}").contains("101"));
        assert!(!format!("{:?}", BitVec::new()).is_empty());
    }

    #[test]
    fn pad_and_truncate() {
        let mut v = BitVec::from_bools(&[true, true]);
        v.pad_to(5);
        assert_eq!(v.len(), 5);
        assert_eq!(v.count_ones(), 2);
        v.truncate(1);
        assert_eq!(v, BitVec::from_bools(&[true]));
        v.truncate(10);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn write_bits_overwrites_in_place() {
        let mut v = BitVec::zeros(8);
        v.write_bits(3, &BitVec::from_bools(&[true, false, true]));
        assert_eq!(v, BitVec::from_fn(8, |i| i == 3 || i == 5));
        // Overwriting clears previous bits in the window.
        v.write_bits(3, &BitVec::from_bools(&[false, true, false]));
        assert_eq!(v, BitVec::from_fn(8, |i| i == 4));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn write_bits_rejects_overflow() {
        BitVec::zeros(4).write_bits(3, &BitVec::from_bools(&[true, true]));
    }

    #[test]
    fn reset_zeros_reuses_allocation() {
        let mut v = BitVec::from_fn(200, |i| i % 3 == 0);
        v.reset_zeros(70);
        assert_eq!(v.len(), 70);
        assert_eq!(v.count_ones(), 0);
        // Growing again within the old allocation keeps the invariant that
        // padding bits are zero.
        v.push(true);
        assert_eq!(v.len(), 71);
        assert_eq!(v.count_ones(), 1);
        v.reset_zeros(0);
        assert!(v.is_empty());
    }

    #[test]
    fn from_iterator_and_extend() {
        let v: BitVec = (0..10).map(|i| i % 2 == 0).collect();
        assert_eq!(v.len(), 10);
        let mut w = BitVec::new();
        w.extend((0..10).map(|i| i % 2 == 0));
        assert_eq!(v, w);
    }
}
