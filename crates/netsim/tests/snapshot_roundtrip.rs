//! Property tests for the netsim snapshot codecs: every public codec
//! round-trips (encode → decode → re-encode is **byte-identical**, the
//! invariant the checkpoint subsystem's re-snapshot identity rests on),
//! and malformed input — truncation at any byte, corrupted headers — is
//! rejected with an error, never a panic or a silently wrong value.

use bdclique_bits::BitVec;
use bdclique_netsim::{Backend, MessageBus, SeedStream, Topology, Traffic};
use bdclique_snapshot::{Dec, Enc};
use proptest::prelude::*;

/// Deterministic frame content derived from the slot and length.
fn payload(from: usize, to: usize, len: usize) -> BitVec {
    BitVec::from_fn(len, |i| (i * 11 + from * 5 + to * 3) % 7 < 3)
}

/// A traffic matrix populated from an op list, on a chosen backend.
fn build_traffic(
    n: usize,
    bandwidth: usize,
    backend: Backend,
    ops: &[(usize, usize, usize)],
) -> Traffic {
    let mut t = Traffic::with_backend(n, bandwidth, backend);
    for &(from, to, len) in ops {
        let (from, to) = (from % n, to % n);
        if from != to {
            t.send(from, to, payload(from, to, 1 + len % bandwidth));
        }
    }
    t
}

/// Encodes a value through its `snapshot` hook.
fn encode(f: impl FnOnce(&mut Enc)) -> Vec<u8> {
    let mut enc = Enc::new();
    f(&mut enc);
    enc.into_bytes()
}

/// Decodes with full-consumption checking, as the real restore path does.
fn decode_traffic(bytes: &[u8]) -> Result<Traffic, String> {
    let mut dec = Dec::new(bytes);
    let t = Traffic::restore(&mut dec, None).map_err(|e| e.to_string())?;
    dec.finish().map_err(|e| e.to_string())?;
    Ok(t)
}

proptest! {
    /// Traffic round-trips byte-identically on both backends, preserving
    /// the volume counters (recomputed at restore) and every frame.
    #[test]
    fn traffic_roundtrip_is_byte_identical(
        n in 2usize..12,
        bandwidth in 4usize..24,
        dense in any::<bool>(),
        ops in prop::collection::vec((0usize..12, 0usize..12, 0usize..24), 0..32),
    ) {
        let backend = if dense { Backend::Dense } else { Backend::Sparse };
        let t = build_traffic(n, bandwidth, backend, &ops);
        let bytes = encode(|e| t.snapshot(e));
        let restored = decode_traffic(&bytes).expect("well-formed encoding");
        prop_assert_eq!(restored.total_bits(), t.total_bits());
        prop_assert_eq!(restored.frame_count(), t.frame_count());
        let again = encode(|e| restored.snapshot(e));
        prop_assert_eq!(bytes, again, "re-encode must be byte-identical");
    }

    /// Every strict prefix of a traffic encoding is rejected — a torn
    /// checkpoint write can never restore as a shorter-but-valid state.
    /// (The atomic rename in the bench layer prevents torn files; this
    /// guarantees defense in depth if one appears anyway.)
    #[test]
    fn traffic_truncations_are_rejected(
        n in 2usize..8,
        ops in prop::collection::vec((0usize..8, 0usize..8, 0usize..8), 1..12),
        cut_frac in 0.0f64..1.0,
    ) {
        let t = build_traffic(n, 9, Backend::Sparse, &ops);
        let bytes = encode(|e| t.snapshot(e));
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(
            decode_traffic(&bytes[..cut]).is_err(),
            "prefix of {} bytes decoded", cut
        );
    }

    /// Single-byte corruption never panics. The property asserted is
    /// totality, not detection: the decoder must return `Ok` or `Err`, never
    /// crash — this is what caught the unvalidated `n` allocation in
    /// `FrameStore::restore`.
    #[test]
    fn traffic_corruption_never_panics(
        n in 2usize..8,
        ops in prop::collection::vec((0usize..8, 0usize..8, 0usize..8), 1..12),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let t = build_traffic(n, 9, Backend::Dense, &ops);
        let mut bytes = encode(|e| t.snapshot(e));
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= flip;
        let _ = decode_traffic(&bytes); // must return, not panic
    }

    /// The message bus round-trips byte-identically: batches restore in
    /// ascending virtual-time order with their traffic intact.
    #[test]
    fn bus_roundtrip_is_byte_identical(
        n in 2usize..8,
        vtimes in prop::collection::btree_set(0u64..64, 0..6),
        ops in prop::collection::vec((0usize..8, 0usize..8, 0usize..8), 0..10),
    ) {
        let mut bus = MessageBus::new();
        for (k, &vtime) in vtimes.iter().enumerate() {
            let slice = &ops[ops.len().min(k)..];
            bus.post(vtime, build_traffic(n, 9, Backend::Sparse, slice));
        }
        let bytes = encode(|e| bus.snapshot(e));
        let mut dec = Dec::new(&bytes);
        let restored = MessageBus::restore(&mut dec, None).expect("well-formed");
        dec.finish().expect("fully consumed");
        prop_assert_eq!(restored.earliest(), bus.earliest());
        let again = encode(|e| restored.snapshot(e));
        prop_assert_eq!(bytes, again);
    }

    /// Topologies round-trip byte-identically across every generator
    /// family, including the compact clique representation.
    #[test]
    fn topology_roundtrip_is_byte_identical(
        pick in 0usize..4,
        n_half in 3usize..16,
        seed in 0u64..100,
    ) {
        let n = 2 * n_half;
        let topo = match pick {
            0 => Topology::complete(n),
            1 => Topology::random_regular(n, 4, seed),
            2 => Topology::scale_free(n, 2, seed),
            _ => Topology::ring(n),
        };
        let bytes = encode(|e| topo.snapshot(e));
        let mut dec = Dec::new(&bytes);
        let restored = Topology::restore(&mut dec).expect("well-formed");
        dec.finish().expect("fully consumed");
        prop_assert_eq!(restored.n(), topo.n());
        prop_assert_eq!(restored.edge_count(), topo.edge_count());
        prop_assert_eq!(restored.is_complete(), topo.is_complete());
        let again = encode(|e| restored.snapshot(e));
        prop_assert_eq!(bytes, again);
    }

    /// Truncated topology encodings are rejected.
    #[test]
    fn topology_truncations_are_rejected(n in 4usize..24, cut_frac in 0.0f64..1.0) {
        let topo = Topology::random_regular(2 * (n / 2), 2, 3);
        let bytes = encode(|e| topo.snapshot(e));
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        let mut dec = Dec::new(&bytes[..cut]);
        let result = Topology::restore(&mut dec).and_then(|_| dec.finish());
        prop_assert!(result.is_err(), "prefix of {} bytes decoded", cut);
    }

    /// `SeedStream::from_state` is the exact inverse of `seed()` — fork
    /// cursors serialize as one u64 and resume producing the identical
    /// stream, the property every resumed trial's seeding rests on.
    #[test]
    fn seed_stream_state_roundtrip(root in any::<u64>(), forks in prop::collection::vec(0u64..1000, 0..8)) {
        let mut stream = SeedStream::new(root);
        for &f in &forks {
            stream = stream.fork_u64(f);
        }
        let resumed = SeedStream::from_state(stream.seed());
        prop_assert_eq!(resumed.seed(), stream.seed());
        // The resumed cursor continues identically, not just compares equal.
        prop_assert_eq!(
            resumed.fork("next").seed(),
            stream.fork("next").seed()
        );
        prop_assert_eq!(resumed.fork_u64(7).seed(), stream.fork_u64(7).seed());
    }
}

/// Corrupting the representation tag or dimension header of a traffic
/// encoding is caught by validation (pinned cases — the headers live at
/// known offsets).
#[test]
fn traffic_header_corruption_is_detected() {
    let t = build_traffic(4, 9, Backend::Sparse, &[(0, 1, 3), (2, 3, 5)]);
    let bytes = encode(|e| t.snapshot(e));
    // Zero-bandwidth header: rejected by the explicit range check.
    let mut zeroed = bytes.clone();
    zeroed[0] = 0; // first varint byte of `bandwidth`
    assert!(decode_traffic(&zeroed).is_err(), "zero bandwidth accepted");
    // Empty input and a lone header byte are truncations.
    assert!(decode_traffic(&[]).is_err());
    assert!(decode_traffic(&bytes[..1]).is_err());
}
