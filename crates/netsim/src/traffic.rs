//! Per-round message matrices: what nodes intend to send, and what arrives.

use bdclique_bits::BitVec;

/// The messages all nodes intend to send in one round.
///
/// A dense `n × n` matrix of optional frames; a frame is at most
/// `bandwidth` bits. Self-loops are not part of the clique and are rejected.
///
/// Aggregate volume ([`Traffic::total_bits`], [`Traffic::frame_count`]) is
/// maintained incrementally on every mutation, so both accessors are O(1) —
/// the round pipeline reads them several times per round and must not pay an
/// O(n²) rescan each time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Traffic {
    n: usize,
    bandwidth: usize,
    frames: Vec<Option<BitVec>>,
    total_bits: u64,
    frame_count: u64,
}

impl Traffic {
    /// Creates an empty round of traffic for `n` nodes and a bandwidth of
    /// `bandwidth` bits per ordered pair.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `bandwidth == 0`.
    pub fn new(n: usize, bandwidth: usize) -> Self {
        assert!(n >= 2, "a clique needs at least two nodes");
        assert!(bandwidth > 0, "bandwidth must be positive");
        Self {
            n,
            bandwidth,
            frames: vec![None; n * n],
            total_bits: 0,
            frame_count: 0,
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Bandwidth in bits per ordered pair per round.
    pub fn bandwidth(&self) -> usize {
        self.bandwidth
    }

    #[inline]
    fn idx(&self, from: usize, to: usize) -> usize {
        assert!(from < self.n && to < self.n, "node id out of range");
        assert_ne!(from, to, "no self-loops in the clique");
        from * self.n + to
    }

    /// Queues `bits` on the edge `from → to`, replacing any previous frame.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range ids, self-loops, or frames longer than the
    /// bandwidth.
    pub fn send(&mut self, from: usize, to: usize, bits: BitVec) {
        assert!(
            bits.len() <= self.bandwidth,
            "frame of {} bits exceeds bandwidth {}",
            bits.len(),
            self.bandwidth
        );
        self.set_frame(from, to, Some(bits));
    }

    /// Removes the frame on `from → to`, if any.
    pub fn clear(&mut self, from: usize, to: usize) {
        self.set_frame(from, to, None);
    }

    /// The frame queued on `from → to`.
    pub fn frame(&self, from: usize, to: usize) -> Option<&BitVec> {
        self.frames[self.idx(from, to)].as_ref()
    }

    /// Replaces the slot `from → to`, keeps the volume counters in sync, and
    /// returns the previous frame. All mutation funnels through here so the
    /// counters can never drift from the matrix.
    pub(crate) fn set_frame(
        &mut self,
        from: usize,
        to: usize,
        bits: Option<BitVec>,
    ) -> Option<BitVec> {
        let i = self.idx(from, to);
        if let Some(new) = &bits {
            self.total_bits += new.len() as u64;
            self.frame_count += 1;
        }
        let prev = std::mem::replace(&mut self.frames[i], bits);
        if let Some(old) = &prev {
            self.total_bits -= old.len() as u64;
            self.frame_count -= 1;
        }
        prev
    }

    /// Total bits queued this round. O(1).
    pub fn total_bits(&self) -> u64 {
        self.total_bits
    }

    /// Number of non-empty frames queued this round. O(1).
    pub fn frame_count(&self) -> u64 {
        self.frame_count
    }

    pub(crate) fn into_delivery(self) -> Delivery {
        Delivery {
            n: self.n,
            frames: self.frames,
        }
    }
}

/// The messages actually delivered in one round (after adversarial
/// corruption).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    n: usize,
    frames: Vec<Option<BitVec>>,
}

impl Delivery {
    /// The frame node `to` received from node `from`, or `None` when the
    /// sender sent nothing (or the adversary suppressed the frame).
    pub fn received(&self, to: usize, from: usize) -> Option<&BitVec> {
        assert!(from < self.n && to < self.n, "node id out of range");
        assert_ne!(from, to, "no self-loops in the clique");
        self.frames[from * self.n + to].as_ref()
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_and_frame() {
        let mut t = Traffic::new(3, 4);
        t.send(0, 2, BitVec::from_bools(&[true]));
        assert_eq!(t.frame(0, 2), Some(&BitVec::from_bools(&[true])));
        assert_eq!(t.frame(2, 0), None);
        assert_eq!(t.frame_count(), 1);
        assert_eq!(t.total_bits(), 1);
        t.clear(0, 2);
        assert_eq!(t.frame(0, 2), None);
    }

    #[test]
    #[should_panic(expected = "exceeds bandwidth")]
    fn bandwidth_is_enforced() {
        let mut t = Traffic::new(3, 2);
        t.send(0, 1, BitVec::from_bools(&[true, true, false]));
    }

    #[test]
    #[should_panic(expected = "no self-loops")]
    fn self_loops_rejected() {
        let mut t = Traffic::new(3, 2);
        t.send(1, 1, BitVec::from_bools(&[true]));
    }

    #[test]
    fn delivery_view_matches_traffic() {
        let mut t = Traffic::new(4, 8);
        t.send(1, 3, BitVec::from_bools(&[false, true]));
        let d = t.into_delivery();
        assert_eq!(d.received(3, 1), Some(&BitVec::from_bools(&[false, true])));
        assert_eq!(d.received(1, 3), None);
        assert_eq!(d.n(), 4);
    }

    /// The incremental counters must agree with a full rescan through any
    /// sequence of sends, overwrites, clears, and internal replacements.
    #[test]
    fn counters_track_every_mutation() {
        let mut t = Traffic::new(4, 8);
        let rescan_bits = |t: &Traffic| -> u64 {
            (0..4)
                .flat_map(|u| (0..4).filter(move |&v| v != u).map(move |v| (u, v)))
                .filter_map(|(u, v)| t.frame(u, v))
                .map(|f| f.len() as u64)
                .sum()
        };
        let rescan_frames = |t: &Traffic| -> u64 {
            (0..4)
                .flat_map(|u| (0..4).filter(move |&v| v != u).map(move |v| (u, v)))
                .filter(|&(u, v)| t.frame(u, v).is_some())
                .count() as u64
        };

        t.send(0, 1, BitVec::from_bools(&[true; 5]));
        t.send(2, 3, BitVec::from_bools(&[false; 3]));
        assert_eq!((t.total_bits(), t.frame_count()), (8, 2));

        // Overwrite shrinks the frame: counters must follow.
        t.send(0, 1, BitVec::from_bools(&[true]));
        assert_eq!((t.total_bits(), t.frame_count()), (4, 2));

        // Clearing an empty slot is a no-op.
        t.clear(1, 0);
        assert_eq!((t.total_bits(), t.frame_count()), (4, 2));

        t.clear(2, 3);
        assert_eq!((t.total_bits(), t.frame_count()), (1, 1));

        // Internal replacement (the corruption path) returns the original.
        let prev = t.set_frame(0, 1, Some(BitVec::from_bools(&[false; 7])));
        assert_eq!(prev, Some(BitVec::from_bools(&[true])));
        assert_eq!((t.total_bits(), t.frame_count()), (7, 1));
        let prev = t.set_frame(0, 1, None);
        assert_eq!(prev, Some(BitVec::from_bools(&[false; 7])));
        assert_eq!((t.total_bits(), t.frame_count()), (0, 0));

        assert_eq!(t.total_bits(), rescan_bits(&t));
        assert_eq!(t.frame_count(), rescan_frames(&t));
    }
}
