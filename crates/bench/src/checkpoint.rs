//! Mid-trial checkpoint/resume for long experiment runs.
//!
//! A checkpointed trial periodically captures its full execution state —
//! network, adversary, and protocol session, via
//! [`bdclique_core::snapshot_run`] — into a file under the checkpoint
//! directory, and a rerun of the same configuration picks the trial up from
//! the latest capture instead of from round 0. Because snapshots are
//! quiescent full-state captures, a resumed trial is **bit-identical** to
//! an uninterrupted one (the tier-1 `checkpoint_identity` suite pins this
//! per protocol); checkpointing only changes where the wall-clock went.
//!
//! # File discipline
//!
//! One file per trial, keyed by the cell's seed-stream state and the trial
//! index — both deterministic, so a rerun of the same scenario grid maps
//! onto the same files. Writes are atomic (`.tmp` + rename): a `SIGKILL`
//! at any byte leaves either the previous complete checkpoint or the new
//! one, never a torn file. Finished trials delete their checkpoint.
//!
//! # Wall-clock accounting
//!
//! Each checkpoint records the wall-clock seconds consumed by all previous
//! segments. A resumed cell reports `secs` as the **sum of segments** —
//! the time the computation actually cost across interruptions — which is
//! what flows into the trajectory ledger.

use crate::{AdversarySpec, TopologySpec, Trial, TrialSeeds};
use bdclique_core::protocols::{AllToAllProtocol, Step};
use bdclique_core::{restore_run, snapshot_run, AllToAllInstance, CoreError};
use bdclique_netsim::Network;
use bdclique_snapshot::{Dec, Enc, SnapError};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Magic string opening every checkpoint file (the bench-level wrapper
/// around the core snapshot payload).
const WRAPPER_MAGIC: &str = "bdck1";

/// Where and how often to checkpoint.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Directory holding the per-trial checkpoint files (created on first
    /// write).
    pub dir: PathBuf,
    /// Rounds between captures. `0` disables periodic capture (resume from
    /// existing files still works).
    pub every: u64,
}

impl CheckpointConfig {
    /// The checkpoint file for a trial key.
    pub fn path_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.ckpt"))
    }
}

/// Wraps a core snapshot payload with the bench-level header: magic,
/// accumulated prior wall-clock seconds, payload.
fn encode_wrapper(prior_secs: f64, payload: &[u8]) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.put_str(WRAPPER_MAGIC);
    enc.put_f64(prior_secs);
    enc.put_bytes(payload);
    enc.into_bytes()
}

/// Splits a checkpoint file into accumulated seconds and the core payload.
fn decode_wrapper(bytes: &[u8]) -> Result<(f64, &[u8]), SnapError> {
    let mut dec = Dec::new(bytes);
    if dec.get_str()? != WRAPPER_MAGIC {
        return Err(SnapError::corrupt("not a bench checkpoint file"));
    }
    let secs = dec.get_f64()?;
    if !secs.is_finite() || secs < 0.0 {
        return Err(SnapError::corrupt("negative or non-finite segment time"));
    }
    let payload = dec.get_bytes()?;
    dec.finish()?;
    Ok((secs, payload))
}

/// Atomically replaces `path` with `bytes`: write `<path>.tmp`, rename over
/// the target. On POSIX the rename is atomic, so a crash at any point
/// leaves either the old complete file or the new one.
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    let tmp = path.with_extension("ckpt.tmp");
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path)
}

fn io_err(what: &str, path: &Path, e: &io::Error) -> CoreError {
    CoreError::InvalidInput {
        reason: format!("checkpoint {what} {}: {e}", path.display()),
    }
}

/// Runs one trial with periodic checkpointing, resuming from an existing
/// checkpoint file when one is present. Returns the trial outcome plus the
/// wall-clock seconds prior segments consumed (zero for a fresh run); the
/// caller folds that into its own timing.
///
/// The instance, network, and adversary are derived from `seeds` exactly as
/// in [`crate::run_trial_seeded_traced_on`], so the outcome is
/// bit-identical to the uncheckpointed runner.
///
/// # Errors
///
/// Propagates protocol errors, and reports unreadable or corrupt
/// checkpoint files as [`CoreError`] (never silently restarting from
/// round 0 — a bad resume must be loud).
#[allow(clippy::too_many_arguments)]
pub fn run_trial_checkpointed(
    proto: &dyn AllToAllProtocol,
    topology: TopologySpec,
    n: usize,
    b: usize,
    bandwidth: usize,
    alpha: f64,
    spec: AdversarySpec,
    seeds: TrialSeeds,
    cfg: &CheckpointConfig,
    key: &str,
) -> Result<(Trial, f64), CoreError> {
    let start = Instant::now();
    let mut rng = ChaCha8Rng::seed_from_u64(seeds.instance);
    // Mirror the uncheckpointed runner exactly: the instance always comes
    // off the same RNG stream, and the fresh-network path is byte-identical
    // to `run_trial_seeded_traced_on`.
    let (inst, fresh) = if topology.is_complete() {
        let inst = AllToAllInstance::random(n, b, &mut rng);
        (inst, None)
    } else {
        let topo = topology.build(n);
        let inst = AllToAllInstance::random_on(&topo, b, &mut rng);
        (inst, Some(topo))
    };
    let path = cfg.path_for(key);
    let (prior_secs, mut net, mut session) = match fs::read(&path) {
        Ok(bytes) => {
            let (secs, payload) = decode_wrapper(&bytes).map_err(CoreError::from)?;
            let (net, session) = restore_run(payload, spec.build(seeds.adversary), proto, &inst)?;
            (secs, net, session)
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            let net = match fresh {
                None => Network::new(n, bandwidth, alpha, spec.build(seeds.adversary)),
                Some(topo) => {
                    Network::on_topology(topo, bandwidth, alpha, spec.build(seeds.adversary))
                }
            };
            let session = proto.session(&net, &inst)?;
            (0.0, net, session)
        }
        Err(e) => return Err(io_err("read", &path, &e)),
    };
    let mut last_mark = net.rounds();
    let out = loop {
        match session.step(&mut net)? {
            Step::Done(out) => break out,
            Step::Running => {}
        }
        if cfg.every > 0 && net.rounds() >= last_mark + cfg.every {
            let payload = snapshot_run(&mut net, session.as_mut())?;
            let doc = encode_wrapper(prior_secs + start.elapsed().as_secs_f64(), &payload);
            write_atomic(&path, &doc).map_err(|e| io_err("write", &path, &e))?;
            last_mark = net.rounds();
        }
    };
    // The trial is done: its checkpoint (if any) is spent. Removal failure
    // is harmless — the next run of this key resumes at the final rounds
    // and completes immediately with the same deterministic output.
    let _ = fs::remove_file(&path);
    let trial = Trial {
        errors: inst.count_errors(&out),
        rounds: net.rounds(),
        bits_sent: net.stats().bits_sent,
        edges_corrupted: net.stats().edges_corrupted,
        peak_fault_degree: net.stats().peak_fault_degree,
    };
    Ok((trial, prior_secs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_trial_seeded;
    use bdclique_core::protocols::RelayReplication;

    fn temp_cfg(tag: &str, every: u64) -> CheckpointConfig {
        CheckpointConfig {
            dir: std::env::temp_dir().join(format!("bdc-ckpt-{tag}-{}", std::process::id())),
            every,
        }
    }

    /// A checkpointed trial with no pre-existing file matches the plain
    /// runner bit for bit, and cleans up after itself.
    #[test]
    fn fresh_checkpointed_trial_matches_plain_runner() {
        let proto = RelayReplication { copies: 3 };
        let seeds = TrialSeeds::derive(11);
        let cfg = temp_cfg("fresh", 1);
        let (trial, prior) = run_trial_checkpointed(
            &proto,
            TopologySpec::Complete,
            16,
            2,
            9,
            0.25,
            AdversarySpec::RandomMatchingsFlip,
            seeds,
            &cfg,
            "unit-fresh",
        )
        .unwrap();
        assert_eq!(prior, 0.0);
        let plain = run_trial_seeded(
            &proto,
            16,
            2,
            9,
            0.25,
            AdversarySpec::RandomMatchingsFlip,
            seeds,
        )
        .unwrap();
        assert_eq!(trial, plain);
        assert!(
            !cfg.path_for("unit-fresh").exists(),
            "finished trial must delete its checkpoint"
        );
        let _ = fs::remove_dir_all(&cfg.dir);
    }

    /// Interrupting after the first checkpoint and rerunning resumes from
    /// the file (not round 0) and still reproduces the plain outcome, with
    /// the first segment's wall clock carried over.
    #[test]
    fn resumed_trial_reproduces_plain_outcome() {
        let proto = RelayReplication { copies: 3 };
        let seeds = TrialSeeds::derive(12);
        let cfg = temp_cfg("resume", 1);
        let key = "unit-resume";
        // Segment 1: run manually to round 2, checkpoint, "crash".
        {
            let mut rng = ChaCha8Rng::seed_from_u64(seeds.instance);
            let inst = AllToAllInstance::random(16, 2, &mut rng);
            let mut net = Network::new(
                16,
                9,
                0.25,
                AdversarySpec::RandomMatchingsFlip.build(seeds.adversary),
            );
            let mut session = proto.session(&net, &inst).unwrap();
            while net.rounds() < 2 {
                assert!(matches!(session.step(&mut net).unwrap(), Step::Running));
            }
            let payload = snapshot_run(&mut net, session.as_mut()).unwrap();
            write_atomic(&cfg.path_for(key), &encode_wrapper(1.5, &payload)).unwrap();
        }
        // Segment 2: the checkpointed runner picks the file up.
        let (trial, prior) = run_trial_checkpointed(
            &proto,
            TopologySpec::Complete,
            16,
            2,
            9,
            0.25,
            AdversarySpec::RandomMatchingsFlip,
            seeds,
            &cfg,
            key,
        )
        .unwrap();
        assert_eq!(prior, 1.5, "prior segment seconds must carry over");
        let plain = run_trial_seeded(
            &proto,
            16,
            2,
            9,
            0.25,
            AdversarySpec::RandomMatchingsFlip,
            seeds,
        )
        .unwrap();
        assert_eq!(trial, plain, "resumed trial must be bit-identical");
        assert!(!cfg.path_for(key).exists());
        let _ = fs::remove_dir_all(&cfg.dir);
    }

    /// Corrupt or truncated checkpoint files fail loudly instead of
    /// silently restarting the trial.
    #[test]
    fn corrupt_checkpoint_files_are_rejected() {
        let proto = RelayReplication { copies: 3 };
        let seeds = TrialSeeds::derive(13);
        let cfg = temp_cfg("corrupt", 4);
        fs::create_dir_all(&cfg.dir).unwrap();
        for (name, bytes) in [
            ("bad-magic", encode_wrapper(0.0, b"xx")[..4].to_vec()),
            ("garbage", b"not a checkpoint".to_vec()),
            ("empty", Vec::new()),
        ] {
            fs::write(cfg.path_for(name), &bytes).unwrap();
            let err = run_trial_checkpointed(
                &proto,
                TopologySpec::Complete,
                16,
                2,
                9,
                0.25,
                AdversarySpec::RandomMatchingsFlip,
                seeds,
                &cfg,
                name,
            );
            assert!(err.is_err(), "{name} must be rejected");
        }
        let _ = fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn wrapper_round_trips_and_rejects_truncation() {
        let doc = encode_wrapper(2.25, b"payload-bytes");
        let (secs, payload) = decode_wrapper(&doc).unwrap();
        assert_eq!(secs, 2.25);
        assert_eq!(payload, b"payload-bytes");
        for cut in [0, 1, doc.len() / 2, doc.len() - 1] {
            assert!(decode_wrapper(&doc[..cut]).is_err(), "cut at {cut}");
        }
    }
}
