//! Theorem 1.5 / 6.4: deterministic `O(1)`-round `AllToAllComm` for
//! α = Θ(1/√n), via two waves of resilient super-message routing over √n
//! node segments.

use super::{AllToAllProtocol, ProtocolSession, Step};
use crate::error::CoreError;
use crate::problem::{AllToAllInstance, AllToAllOutput};
use crate::routing::{
    shared_codeword_cache, CodewordCache, RouteSession, RouterConfig, RoutingInstance,
    SharedCodewordCache, SuperMessage,
};
use bdclique_bits::BitVec;
use bdclique_netsim::Network;
use bdclique_snapshot::{Dec, Enc};
use std::borrow::Cow;

/// The √n-segment protocol (Figure 3 of the paper).
///
/// With `n = s²` and segments `S_1, …, S_s` of `s` consecutive nodes:
///
/// 1. node `v` sends `M°({v}, S_j)` to `S_{i(v)}[j]` for every `j` — after
///    which segment `S_i` collectively holds `M(S_i, V)`;
/// 2. node `S_i[j]` sends `M°(S_i, {S_j[ℓ]})` to `S_j[ℓ]` for every `ℓ` —
///    after which every `v` holds `M(V, {v})`.
///
/// Each wave is a super-message routing instance with `k = √n` messages of
/// `√n·B` bits per node (Lemmas 6.5, 6.6).
///
/// At large `n` the cover-free margin for `k = √n` is infeasible, so the
/// waves run on the *stage-parallel unit engine* (`O(√n)` stages whose
/// per-pack encode/decode fan out across threads — see
/// [`crate::routing::unit`]); that is what carries this protocol to
/// `n = 4096` in the `alpha-largen` scenario. Pass a
/// [`RouterConfig`] with [`crate::routing::RoutingMode::Unit`] there to
/// skip the (provably failing, and at `k = 64` expensive) cover-free
/// feasibility probe per wave.
#[derive(Debug, Clone, Default)]
pub struct DetSqrt {
    /// Router configuration for both waves.
    pub router: RouterConfig,
    /// Cross-run cache from
    /// [`AllToAllProtocol::attach_codeword_cache`]; when absent each
    /// session creates its own two-wave cache.
    shared_cache: Option<SharedCodewordCache>,
}

impl DetSqrt {
    /// Creates the protocol with a router configuration.
    pub fn new(router: RouterConfig) -> Self {
        Self {
            router,
            shared_cache: None,
        }
    }
}

/// The two routed waves of Figure 3, as session phases.
enum SqrtPhase {
    Wave1(RouteSession<'static>),
    Wave2(RouteSession<'static>),
}

/// The √n-segment protocol as a state machine: one step per routing round.
struct SqrtSession<'a> {
    router: &'a RouterConfig,
    n: usize,
    s: usize,
    b: usize,
    /// One codeword cache spans both waves ([`RouteSession::new_cached`]):
    /// chunks that recur — the shared all-zero padding chunk, repeated
    /// payload content across wave boundaries — encode once per session.
    cache: SharedCodewordCache,
    phase: SqrtPhase,
}

impl<'a> SqrtSession<'a> {
    fn new(
        proto: &'a DetSqrt,
        net: &Network,
        inst: &'a AllToAllInstance,
    ) -> Result<Self, CoreError> {
        let n = inst.n();
        if n != net.n() {
            return Err(CoreError::invalid("instance size != network size"));
        }
        let s = (n as f64).sqrt().round() as usize;
        if s * s != n {
            return Err(CoreError::invalid(format!(
                "DetSqrt requires n to be a perfect square, got {n} \
                 (the paper's Lemma 2.8 reduction is replaced by parameter choice)"
            )));
        }
        let b = inst.b();
        let seg = |i: usize| (i * s)..((i + 1) * s); // S_i
        let group_of = |v: usize| v / s;
        let member = |i: usize, j: usize| i * s + j; // S_i[j]

        // ---- Wave 1: v sends M°({v}, S_j) to S_{i(v)}[j]. ----
        let wave1 = RoutingInstance {
            n,
            payload_bits: s * b,
            messages: (0..n)
                .flat_map(|v| (0..s).map(move |j| (v, j)))
                .map(|(v, j)| SuperMessage {
                    src: v,
                    slot: j,
                    payload: BitVec::concat(seg(j).map(|x| inst.message(v, x))),
                    targets: vec![member(group_of(v), j)],
                })
                .collect(),
        };
        let cache = proto
            .shared_cache
            .clone()
            .unwrap_or_else(|| shared_codeword_cache(CodewordCache::DEFAULT_MAX_SYMBOLS));
        Ok(Self {
            router: &proto.router,
            n,
            s,
            b,
            phase: SqrtPhase::Wave1(RouteSession::new_cached(
                net,
                wave1,
                &proto.router,
                cache.clone(),
            )?),
            cache,
        })
    }

    /// Rebuilds a session from a snapshot. Both waves embed their routing
    /// instance in the serialized [`RouteSession`] (wave 2's instance is
    /// built from wave 1's deliveries and cannot be re-derived), so no
    /// instance reconstruction happens here.
    fn restore(
        proto: &'a DetSqrt,
        net: &Network,
        inst: &'a AllToAllInstance,
        dec: &mut Dec<'_>,
    ) -> Result<Self, CoreError> {
        let n = inst.n();
        if n != net.n() {
            return Err(CoreError::invalid("instance size != network size"));
        }
        let s = (n as f64).sqrt().round() as usize;
        if s * s != n {
            return Err(CoreError::invalid(
                "DetSqrt requires n to be a perfect square",
            ));
        }
        let cache = proto
            .shared_cache
            .clone()
            .unwrap_or_else(|| shared_codeword_cache(CodewordCache::DEFAULT_MAX_SYMBOLS));
        let tag = dec.get_u8().map_err(CoreError::from)?;
        let route = RouteSession::restore(net, &proto.router, Some(cache.clone()), dec)?;
        let phase = match tag {
            0 => SqrtPhase::Wave1(route),
            1 => SqrtPhase::Wave2(route),
            _ => return Err(CoreError::invalid("unknown det-sqrt wave tag")),
        };
        Ok(Self {
            router: &proto.router,
            n,
            s,
            b: inst.b(),
            cache,
            phase,
        })
    }
}

impl ProtocolSession for SqrtSession<'_> {
    fn step(&mut self, net: &mut Network) -> Result<Step, CoreError> {
        let (n, s, b) = (self.n, self.s, self.b);
        let seg = |i: usize| (i * s)..((i + 1) * s);
        let member = |i: usize, j: usize| i * s + j;
        match &mut self.phase {
            SqrtPhase::Wave1(route) => {
                let Some(out1) = route.step(net)? else {
                    return Ok(Step::Running);
                };
                // Node S_i[j] now holds M(S_i, S_j): rows indexed by
                // u ∈ S_i. holdings[w] = map u -> M°({u}, S_j) for
                // w = S_i[j].
                let mut holdings: Vec<Vec<BitVec>> = vec![Vec::new(); n];
                for i in 0..s {
                    for j in 0..s {
                        let w = member(i, j);
                        let mut rows = Vec::with_capacity(s);
                        for u in seg(i) {
                            let row = out1.delivered[w]
                                .get(&(u, j))
                                .cloned()
                                .unwrap_or_else(|| BitVec::zeros(s * b));
                            rows.push(row);
                        }
                        holdings[w] = rows;
                    }
                }

                // ---- Wave 2: S_i[j] sends M°(S_i, {S_j[ℓ]}) to S_j[ℓ]. ----
                let wave2 = RoutingInstance {
                    n,
                    payload_bits: s * b,
                    messages: (0..s)
                        .flat_map(|i| (0..s).map(move |j| (i, j)))
                        .flat_map(|(i, j)| {
                            let w = member(i, j);
                            (0..s)
                                .map(|ell| {
                                    // Column ℓ of M(S_i, S_j): bits
                                    // [ℓ·b, (ℓ+1)·b) of each row.
                                    let payload = BitVec::concat(
                                        holdings[w]
                                            .iter()
                                            .map(|row| row.slice(ell * b, (ell + 1) * b))
                                            .collect::<Vec<_>>()
                                            .iter(),
                                    );
                                    SuperMessage {
                                        src: w,
                                        slot: ell,
                                        payload,
                                        targets: vec![member(j, ell)],
                                    }
                                })
                                .collect::<Vec<_>>()
                        })
                        .collect(),
                };
                self.phase = SqrtPhase::Wave2(RouteSession::new_cached(
                    net,
                    wave2,
                    self.router,
                    self.cache.clone(),
                )?);
                Ok(Step::Running)
            }
            SqrtPhase::Wave2(route) => {
                let Some(out2) = route.step(net)? else {
                    return Ok(Step::Running);
                };
                // ---- Output: v = S_j[ℓ] assembles M(V, {v}). ----
                let mut output = AllToAllOutput::empty(n);
                for j in 0..s {
                    for ell in 0..s {
                        let v = member(j, ell);
                        for i in 0..s {
                            let w = member(i, j);
                            let col = out2.delivered[v]
                                .get(&(w, ell))
                                .cloned()
                                .unwrap_or_else(|| BitVec::zeros(s * b));
                            for (offset, u) in seg(i).enumerate() {
                                output.set(v, u, col.slice(offset * b, (offset + 1) * b));
                            }
                        }
                    }
                }
                Ok(Step::Done(output))
            }
        }
    }

    fn snapshot(&mut self, net: &mut Network, enc: &mut Enc) -> Result<(), CoreError> {
        match &mut self.phase {
            SqrtPhase::Wave1(route) => {
                enc.put_u8(0);
                route.snapshot(net, enc)
            }
            SqrtPhase::Wave2(route) => {
                enc.put_u8(1);
                route.snapshot(net, enc)
            }
        }
    }
}

impl AllToAllProtocol for DetSqrt {
    fn name(&self) -> Cow<'static, str> {
        Cow::Borrowed("det-sqrt")
    }

    fn attach_codeword_cache(&mut self, cache: SharedCodewordCache) {
        self.shared_cache = Some(cache);
    }

    fn session<'a>(
        &'a self,
        net: &Network,
        inst: &'a AllToAllInstance,
    ) -> Result<Box<dyn ProtocolSession + 'a>, CoreError> {
        Ok(Box::new(SqrtSession::new(self, net, inst)?))
    }

    fn restore_session<'a>(
        &'a self,
        net: &Network,
        inst: &'a AllToAllInstance,
        dec: &mut Dec<'_>,
    ) -> Result<Box<dyn ProtocolSession + 'a>, CoreError> {
        Ok(Box::new(SqrtSession::restore(self, net, inst, dec)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdclique_netsim::Adversary;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn perfect_without_faults_n16() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let inst = AllToAllInstance::random(16, 2, &mut rng);
        let mut net = Network::new(16, 9, 0.0, Adversary::none());
        let out = DetSqrt::default().run(&mut net, &inst).unwrap();
        assert_eq!(inst.count_errors(&out), 0);
    }

    #[test]
    fn perfect_without_faults_n64() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let inst = AllToAllInstance::random(64, 1, &mut rng);
        let mut net = Network::new(64, 18, 0.0, Adversary::none());
        let out = DetSqrt::default().run(&mut net, &inst).unwrap();
        assert_eq!(inst.count_errors(&out), 0);
    }

    #[test]
    fn rejects_non_square_n() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let inst = AllToAllInstance::random(12, 1, &mut rng);
        let mut net = Network::new(12, 9, 0.0, Adversary::none());
        assert!(DetSqrt::default().run(&mut net, &inst).is_err());
    }
}
