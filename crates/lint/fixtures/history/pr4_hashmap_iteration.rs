// lint-fixture-as: crates/core/src/protocols/fixture.rs
//! Replica of the PR 4 LDC-fetch bug: the pre-session code built a routing
//! instance by iterating a `HashMap`, whose per-process random order leaked
//! into the unit engine's greedy stage coloring — round counts varied
//! *across processes* for identical seeds. This exact shape must fire.

use std::collections::HashMap;

fn fetch_instance(wanted: &[Vec<(usize, usize)>]) -> Vec<SuperMessage> {
    let mut targets_of: HashMap<(usize, usize), Vec<usize>> = HashMap::new();
    for (v, pairs) in wanted.iter().enumerate() {
        for &(c, r) in pairs {
            targets_of.entry((r, c)).or_default().push(v);
        }
    }
    let mut messages = Vec::new();
    // The bug: iteration order decides message order, which decides the
    // greedy coloring, which decides the round count.
    for ((r, c), targets) in targets_of.iter() {
        messages.push(SuperMessage {
            src: *r,
            slot: *c,
            targets: targets.clone(),
        });
    }
    messages
}
