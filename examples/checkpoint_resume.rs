//! Checkpoint/resume demo: run a protocol halfway, capture its full
//! execution state to a file, throw everything away, restore from the file
//! in a "new process", and finish — then verify the resumed run is
//! bit-identical to an uninterrupted one.
//!
//! ```sh
//! cargo run --release --example checkpoint_resume
//! ```
//!
//! The capture ([`bdclique::core::snapshot_run`]) serializes the network
//! (pending traffic, adversary RNG state, round clock, stats, history) and
//! the protocol session's dynamic state into one versioned byte document;
//! [`bdclique::core::restore_run`] rebuilds both against freshly
//! constructed protocol/instance/adversary specs. The `tables` bench binary
//! drives the same machinery via `--checkpoint-dir`.

use bdclique::adversary::adaptive::GreedyLoad;
use bdclique::adversary::Payload;
use bdclique::core::protocols::{AllToAllProtocol, DetHypercube, Step};
use bdclique::core::{restore_run, snapshot_run, AllToAllInstance};
use bdclique::netsim::{Adversary, Network};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let (n, b, bandwidth, alpha) = (16, 2, 9, 0.07);
    let crash_round = 4u64;
    let proto = DetHypercube::default();
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let inst = AllToAllInstance::random(n, b, &mut rng);
    // The adversary spec is rebuilt from the same constructor at restore;
    // its RNG *state* travels inside the snapshot, so corruption continues
    // exactly where it left off.
    let adversary = || Adversary::adaptive(GreedyLoad::new(Payload::Flip, 7));

    println!("det-hypercube, n = {n}, B = {bandwidth}, alpha = {alpha}");

    // ---- Reference: one uninterrupted run. ----
    let mut net = Network::new(n, bandwidth, alpha, adversary());
    let reference = proto.run(&mut net, &inst).expect("reference run");
    let ref_rounds = net.rounds();
    println!(
        "uninterrupted: {} rounds, {} errors",
        ref_rounds,
        inst.count_errors(&reference)
    );

    // ---- Segment 1: run to the crash point and checkpoint. ----
    let path = std::env::temp_dir().join("bdclique-checkpoint-demo.bin");
    {
        let mut net = Network::new(n, bandwidth, alpha, adversary());
        let mut session = proto.session(&net, &inst).expect("session");
        while net.rounds() < crash_round {
            match session.step(&mut net).expect("step") {
                Step::Running => {}
                Step::Done(_) => unreachable!("finished before the crash point"),
            }
        }
        let bytes = snapshot_run(&mut net, session.as_mut()).expect("snapshot");
        std::fs::write(&path, &bytes).expect("write checkpoint");
        println!(
            "checkpointed at round {} ({} bytes) -> {}",
            net.rounds(),
            bytes.len(),
            path.display()
        );
        // Everything in-memory is dropped here — the simulated crash.
    }

    // ---- Segment 2: a "fresh process" restores and finishes. ----
    let bytes = std::fs::read(&path).expect("read checkpoint");
    let (mut net, mut session) = restore_run(&bytes, adversary(), &proto, &inst).expect("restore");
    println!("restored at round {}", net.rounds());
    assert_eq!(net.rounds(), crash_round);
    let resumed = loop {
        match session.step(&mut net).expect("step") {
            Step::Running => {}
            Step::Done(out) => break out,
        }
    };
    println!(
        "resumed run:   {} rounds, {} errors",
        net.rounds(),
        inst.count_errors(&resumed)
    );

    assert_eq!(net.rounds(), ref_rounds, "round counts must match");
    assert_eq!(resumed, reference, "outputs must be bit-identical");
    let _ = std::fs::remove_file(&path);
    println!("resumed output is bit-identical to the uninterrupted run");
}
