//! Compiler demo: run fault-free Congested Clique algorithms through the
//! resilient compiler while a mobile adversary corrupts edges, and check the
//! outputs against the fault-free reference (experiment `F.COMPILE`).
//!
//! ```sh
//! cargo run --release --example compile_resilient
//! ```

use bdclique::adversary::adaptive::GreedyLoad;
use bdclique::adversary::Payload;
use bdclique::core::cc::{MaxTwoPhase, SumAll, Transpose};
use bdclique::core::compiler::{compile, run_fault_free, CliqueAlgorithm};
use bdclique::core::protocols::{AllToAllProtocol, DetHypercube, DetSqrt};
use bdclique::netsim::{Adversary, Network};

fn check<A>(algo: &A, n: usize, protocol: &dyn AllToAllProtocol, alpha: f64)
where
    A: CliqueAlgorithm + Sync,
    A::State: Send + Sync,
{
    let reference = run_fault_free(algo, n);
    let adversary = Adversary::adaptive(GreedyLoad::new(Payload::Flip, 99));
    let mut net = Network::new(n, 9, alpha, adversary);
    match compile(&mut net, algo, protocol) {
        Ok(run) => {
            let ok = run.outputs == reference;
            println!(
                "{:<14} via {:<14} n={n:<3} rounds={:<5} corrupted-edges={:<5} outputs {}",
                algo.name(),
                protocol.name(),
                run.rounds,
                net.stats().edges_corrupted,
                if ok { "MATCH fault-free" } else { "MISMATCH!" }
            );
        }
        Err(e) => println!("{:<14} via {:<14}: error {e}", algo.name(), protocol.name()),
    }
}

fn main() {
    let n = 16;
    let alpha = 0.07;
    println!("compiling fault-free Congested Clique algorithms under attack\n");

    let sum = SumAll {
        inputs: (0..n as u64).map(|i| i * 13 + 7).collect(),
        width: 8,
    };
    let max = MaxTwoPhase {
        inputs: (0..n as u64).map(|i| (i * 37) % 101).collect(),
        width: 8,
    };
    let transpose = Transpose {
        rows: (0..n)
            .map(|u| (0..n).map(|v| (u * n + v) as u64).collect())
            .collect(),
        width: 8,
    };

    let hypercube = DetHypercube::default();
    let sqrt = DetSqrt::default();
    check(&sum, n, &hypercube, alpha);
    check(&max, n, &hypercube, alpha);
    check(&transpose, n, &hypercube, alpha);
    check(&sum, n, &sqrt, alpha);
    check(&max, n, &sqrt, alpha);
    check(&transpose, n, &sqrt, alpha);
}
