//! The experiment suite: one declarative [`Scenario`] per experiment id of
//! `DESIGN.md`, all executed by the [`crate::scenario`] engine.
//!
//! Every builder here turns a hand-tuned experiment into a grid of cells —
//! the engine owns seeding, parallelism, table rendering, and JSON
//! emission. The legacy `Table`-returning wrappers (`table1_row1` …) are
//! kept as the stable names `DESIGN.md` references; `EXPERIMENTS.md`
//! records measured outcomes against the paper's claims.

use crate::scenario::{
    run, run_trials, Cell, CellCtx, CellKind, ProtocolFactory, RegistryEntry, Scenario, TrialJob,
    Value,
};
use crate::{AdversarySpec, Aggregate, Table, TopologySpec};
use bdclique_bits::BitVec;
use bdclique_codes::{ConcatenatedCode, Ldc, ReedSolomon, RepetitionCode, RmLdc, SymbolCode};
use bdclique_core::cc::{MaxTwoPhase, SumAll, Transpose};
use bdclique_core::compiler::{compile, run_fault_free, CliqueAlgorithm};
use bdclique_core::protocols::{
    AdaptiveAllToAll, AdaptiveTakeOne, AllToAllProtocol, DetHypercube, DetSqrt, NaiveExchange,
    NonAdaptiveAllToAll, RelayReplication,
};
use bdclique_core::routing::{route, RouterConfig, RoutingInstance, RoutingMode, SuperMessage};
use bdclique_coverfree::{CoverFreeFamily, CoverFreeParams};
use bdclique_hash::SharedRandomness;
use bdclique_netsim::{Adversary, Network};
use bdclique_sketch::{RecoverySketch, SketchShape};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

const BANDWIDTH: usize = 18;

/// Wraps a protocol constructor into a [`ProtocolFactory`]. The closure
/// receives the trial's protocol seed; deterministic protocols ignore it.
fn factory<P, F>(f: F) -> ProtocolFactory
where
    P: AllToAllProtocol + 'static,
    F: Fn(u64) -> P + Send + Sync + 'static,
{
    Arc::new(move |seed| Box::new(f(seed)))
}

/// The `rounds` / `perfect` / `errors` presenter shared by the Table-1
/// scenarios.
fn present_rpe(_job: &TrialJob, agg: &Aggregate) -> Vec<(&'static str, Value)> {
    vec![
        ("rounds", Value::opt_f1(agg.mean_rounds)),
        ("perfect", Value::rate(agg.perfect, agg.completed)),
        ("errors", Value::u(agg.total_errors)),
    ]
}

/// All named scenarios, in suite order. The `tables` binary and the README
/// both key off these names.
pub fn registry() -> Vec<RegistryEntry> {
    vec![
        RegistryEntry {
            name: "t1r1",
            about: "Thm 1.2: non-adaptive randomized, alpha = 1/16, O(1) rounds",
            build: t1r1,
        },
        RegistryEntry {
            name: "t1r2",
            about: "Thm 1.3: adaptive randomized (LDC + sketches)",
            build: t1r2,
        },
        RegistryEntry {
            name: "t1r3",
            about: "Thm 1.4: deterministic hypercube, O(log n) rounds",
            build: t1r3,
        },
        RegistryEntry {
            name: "t1r4",
            about: "Thm 1.5: deterministic sqrt-segments, alpha = 0.5/sqrt(n)",
            build: t1r4,
        },
        RegistryEntry {
            name: "route-margin",
            about: "Thm 4.1 router: unit-engine decode-margin sweep",
            build: route_margin,
        },
        RegistryEntry {
            name: "route-engines",
            about: "Thm 4.1 router: cover-free vs unit engine comparison",
            build: route_engines,
        },
        RegistryEntry {
            name: "matching",
            about: "Section 3: mobile matchings defeat replication baselines",
            build: matching,
        },
        RegistryEntry {
            name: "frontier",
            about: "max tolerated per-round faulty degree per protocol",
            build: frontier_scenario,
        },
        RegistryEntry {
            name: "compiler",
            about: "compiled Congested Clique algorithms under attack",
            build: compiler,
        },
        RegistryEntry {
            name: "codes",
            about: "ECC ablation: decode success vs corruption fraction",
            build: codes,
        },
        RegistryEntry {
            name: "ldc",
            about: "RM-LDC ablation: line amplification vs corruption",
            build: ldc,
        },
        RegistryEntry {
            name: "sketch",
            about: "sparse-recovery ablation: success vs load",
            build: sketch,
        },
        RegistryEntry {
            name: "cfree",
            about: "cover-free family ablation: worst cover fraction",
            build: cfree,
        },
        RegistryEntry {
            name: "querypath",
            about: "Take II ablation: LDC fetch vs direct sketch pull",
            build: querypath,
        },
        RegistryEntry {
            name: "largen",
            about: "storage-layer scaling smoke: DetSqrt at n = 1024",
            build: largen,
        },
        RegistryEntry {
            name: "schedules",
            about: "time-varying adversaries: burst and periodic phases, per-round traced",
            build: schedules,
        },
        RegistryEntry {
            name: "alpha-largen",
            about: "alpha sweep at n = 4096 on the sparse substrate (release-gated in CI)",
            build: alpha_largen,
        },
        RegistryEntry {
            name: "xlargen",
            about: "det-sqrt at n = 16384 on the event-driven executor (release-gated in CI)",
            build: xlargen,
        },
        RegistryEntry {
            name: "bandwidth",
            about: "bandwidth scaling B in {lambda, 2lambda, 4lambda} for Thm 1.2/1.5",
            build: bandwidth,
        },
        RegistryEntry {
            name: "topologies",
            about: "beyond the clique: protocols on hypercube / random-regular graphs, eclipse + partition attacks",
            build: topologies,
        },
    ]
}

/// Builds the named scenario with `trials` base trials (builders apply
/// their own historical scaling, e.g. `codes` runs `8 × trials`).
pub fn build_scenario(name: &str, trials: usize) -> Option<Scenario> {
    registry()
        .into_iter()
        .find(|entry| entry.name == name)
        .map(|entry| (entry.build)(trials))
}

/// `T1.R1` — Table 1, row 1 (Theorem 1.2): non-adaptive randomized
/// compiler, constant α, `O(1)` rounds.
pub fn t1r1(trials: usize) -> Scenario {
    let mut cells = Vec::new();
    for n in [16usize, 32, 64] {
        let alpha = 1.0 / 16.0;
        // R = Θ(log n) copies (Theorem 1.2's B = Θ(log n) bandwidth): the
        // per-message failure probability is ~C(R, R/2)·α^{R/2}.
        let copies = match n {
            16 => 7,
            32 => 9,
            _ => 13,
        };
        for adversary in [
            AdversarySpec::RandomMatchingsFlip,
            AdversarySpec::RotatingMatchingFlip,
        ] {
            cells.push(Cell {
                coords: vec![
                    ("n", Value::u(n)),
                    ("budget/node", Value::u((alpha * n as f64) as usize)),
                    ("adversary", Value::s(adversary.name())),
                ],
                kind: CellKind::Trials(TrialJob {
                    protocol: factory(move |seed| NonAdaptiveAllToAll {
                        copies,
                        seed,
                        ..Default::default()
                    }),
                    protocol_key: "nonadaptive",
                    adversary,
                    topology: TopologySpec::Complete,
                    n,
                    b: 2,
                    bandwidth: BANDWIDTH,
                    alpha,
                    trials,
                    present: present_rpe,
                    trace: false,
                }),
            });
        }
    }
    Scenario {
        name: "t1r1",
        title: "T1.R1  Thm 1.2: non-adaptive randomized, alpha = 1/16, O(1) rounds".into(),
        headers: vec![
            "n",
            "budget/node",
            "adversary",
            "rounds",
            "perfect",
            "errors",
        ],
        cells,
    }
}

/// `T1.R2` — Table 1, row 2 (Theorem 1.3): adaptive randomized compilers.
pub fn t1r2(trials: usize) -> Scenario {
    let trials = trials.min(3);
    let configs: Vec<(&'static str, usize, ProtocolFactory)> = vec![
        (
            "take1 (O(q))",
            16,
            factory(|seed| AdaptiveTakeOne {
                line_capacity: 1,
                lines: 5,
                seed,
                ..Default::default()
            }),
        ),
        (
            "take1 (O(q))",
            64,
            factory(|seed| AdaptiveTakeOne {
                lines: 5,
                seed,
                ..Default::default()
            }),
        ),
        (
            "take2 direct",
            16,
            factory(|seed| AdaptiveAllToAll {
                query_via_ldc: false,
                line_capacity: 1,
                seed,
                ..Default::default()
            }),
        ),
        (
            "take2 direct",
            64,
            factory(|seed| AdaptiveAllToAll {
                query_via_ldc: false,
                p_size: 8,
                seed,
                ..Default::default()
            }),
        ),
        (
            "take2 LDC",
            16,
            factory(|seed| AdaptiveAllToAll {
                line_capacity: 1,
                seed,
                ..Default::default()
            }),
        ),
    ];
    let mut cells = Vec::new();
    for (variant, n, protocol) in configs {
        let alpha = 1.5 / n as f64; // budget 1
        for adversary in [AdversarySpec::GreedyFlip, AdversarySpec::RushingRandom] {
            cells.push(Cell {
                coords: vec![
                    ("variant", Value::s(variant)),
                    ("n", Value::u(n)),
                    ("budget", Value::u((alpha * n as f64) as usize)),
                    ("adversary", Value::s(adversary.name())),
                ],
                kind: CellKind::Trials(TrialJob {
                    protocol: protocol.clone(),
                    protocol_key: variant,
                    adversary,
                    topology: TopologySpec::Complete,
                    n,
                    b: 1,
                    bandwidth: BANDWIDTH,
                    alpha,
                    trials,
                    present: present_rpe,
                    trace: false,
                }),
            });
        }
    }
    Scenario {
        name: "t1r2",
        title: "T1.R2  Thm 1.3: adaptive randomized (LDC + sketches)".into(),
        headers: vec![
            "variant",
            "n",
            "budget",
            "adversary",
            "rounds",
            "perfect",
            "errors",
        ],
        cells,
    }
}

/// `T1.R3` — Table 1, row 3 (Theorem 1.4): deterministic, constant α,
/// `O(log n)` rounds.
pub fn t1r3(trials: usize) -> Scenario {
    fn present(job: &TrialJob, agg: &Aggregate) -> Vec<(&'static str, Value)> {
        let log2n = (job.n as f64).log2();
        vec![
            ("rounds", Value::opt_f1(agg.mean_rounds)),
            (
                "rounds/log2(n)",
                Value::opt_f1(agg.mean_rounds.map(|r| r / log2n)),
            ),
            ("perfect", Value::rate(agg.perfect, agg.completed)),
            ("errors", Value::u(agg.total_errors)),
        ]
    }
    let alpha = 1.0 / 16.0;
    let cells = [8usize, 16, 32, 64, 128]
        .into_iter()
        .map(|n| Cell {
            coords: vec![
                ("n", Value::u(n)),
                ("budget", Value::u((alpha * n as f64) as usize)),
            ],
            kind: CellKind::Trials(TrialJob {
                protocol: factory(|_seed| DetHypercube::default()),
                protocol_key: "det-hypercube",
                adversary: AdversarySpec::GreedyFlip,
                topology: TopologySpec::Complete,
                n,
                b: 1,
                bandwidth: BANDWIDTH,
                alpha,
                trials,
                present,
                trace: false,
            }),
        })
        .collect();
    Scenario {
        name: "t1r3",
        title: "T1.R3  Thm 1.4: deterministic hypercube, alpha = 1/16, O(log n) rounds".into(),
        headers: vec![
            "n",
            "budget",
            "rounds",
            "rounds/log2(n)",
            "perfect",
            "errors",
        ],
        cells,
    }
}

/// `T1.R4` — Table 1, row 4 (Theorem 1.5): deterministic, α = Θ(1/√n),
/// `O(1)` rounds, Θ(n^1.5) total corruptions.
pub fn t1r4(trials: usize) -> Scenario {
    fn present(_job: &TrialJob, agg: &Aggregate) -> Vec<(&'static str, Value)> {
        vec![
            ("rounds", Value::opt_f1(agg.mean_rounds)),
            ("perfect", Value::rate(agg.perfect, agg.completed)),
            ("errors", Value::u(agg.total_errors)),
            ("corrupted/trial", Value::opt_f1(agg.mean_corrupted)),
        ]
    }
    let cells = [16usize, 64, 144, 256]
        .into_iter()
        .map(|n| {
            let alpha = 0.5 / (n as f64).sqrt();
            Cell {
                coords: vec![
                    ("n", Value::u(n)),
                    ("budget", Value::u((alpha * n as f64) as usize)),
                ],
                kind: CellKind::Trials(TrialJob {
                    protocol: factory(|_seed| DetSqrt::default()),
                    protocol_key: "det-sqrt",
                    adversary: AdversarySpec::GreedyFlip,
                    topology: TopologySpec::Complete,
                    n,
                    b: 1,
                    bandwidth: BANDWIDTH,
                    alpha,
                    trials,
                    present,
                    trace: false,
                }),
            }
        })
        .collect();
    Scenario {
        name: "t1r4",
        title: "T1.R4  Thm 1.5: deterministic sqrt-segments, alpha = 0.5/sqrt(n), O(1) rounds"
            .into(),
        headers: vec![
            "n",
            "budget",
            "rounds",
            "perfect",
            "errors",
            "corrupted/trial",
        ],
        cells,
    }
}

/// `F.ROUTE(a)` — the routing lemma (Theorem 1.1/4.1): unit-engine decode
/// margin sweep.
pub fn route_margin(_trials: usize) -> Scenario {
    let n = 64usize;
    let cells = [0usize, 1, 2, 4, 8, 12, 14, 16]
        .into_iter()
        .map(|budget| {
            let alpha = (budget as f64 + 0.2) / n as f64;
            Cell {
                coords: vec![("budget", Value::u(budget)), ("alpha", Value::f3(alpha))],
                kind: CellKind::Custom(Arc::new(move |ctx: &CellCtx| {
                    let instance = routing_instance(n, 64, 2);
                    let mut net = Network::new(
                        n,
                        BANDWIDTH,
                        alpha.min(0.99),
                        AdversarySpec::GreedyFlip.build(ctx.stream.fork("adversary").seed()),
                    );
                    let cfg = RouterConfig {
                        mode: RoutingMode::Unit,
                        ..Default::default()
                    };
                    match route(&mut net, &instance, &cfg) {
                        Ok(out) => vec![
                            ("feasible", Value::s("yes")),
                            ("rounds", Value::U64(out.report.rounds)),
                            ("decode-failures", Value::u(out.report.decode_failures)),
                            (
                                "payload-errors",
                                Value::u(count_routing_errors(&instance, &out.delivered)),
                            ),
                        ],
                        Err(_) => vec![
                            ("feasible", Value::s("no")),
                            ("rounds", Value::Missing),
                            ("decode-failures", Value::Missing),
                            ("payload-errors", Value::Missing),
                        ],
                    }
                })),
            }
        })
        .collect();
    Scenario {
        name: "route-margin",
        title: "F.ROUTE(a)  unit-engine margin sweep, n = 64, k = 2, lambda = 64 bits".into(),
        headers: vec![
            "budget",
            "alpha",
            "feasible",
            "rounds",
            "decode-failures",
            "payload-errors",
        ],
        cells,
    }
}

/// `F.ROUTE(b)` — engine comparison at `n = 256`, fault-free.
pub fn route_engines(_trials: usize) -> Scenario {
    let n = 256usize;
    let mut cells = Vec::new();
    for k in [1usize, 2, 4] {
        for (mode, engine) in [
            (RoutingMode::CoverFree, "cover-free"),
            (RoutingMode::Unit, "unit"),
        ] {
            cells.push(Cell {
                coords: vec![("k", Value::u(k)), ("engine", Value::s(engine))],
                kind: CellKind::Custom(Arc::new(move |_ctx: &CellCtx| {
                    let instance = routing_instance(n, 64, k);
                    let mut net = Network::new(n, BANDWIDTH, 0.0, Adversary::none());
                    let cfg = RouterConfig {
                        mode,
                        ..Default::default()
                    };
                    match route(&mut net, &instance, &cfg) {
                        Ok(out) => vec![
                            ("feasible", Value::s("yes")),
                            ("rounds", Value::U64(out.report.rounds)),
                            ("stages", Value::u(out.report.stages)),
                        ],
                        Err(_) => vec![
                            ("feasible", Value::s("no")),
                            ("rounds", Value::Missing),
                            ("stages", Value::Missing),
                        ],
                    }
                })),
            });
        }
    }
    Scenario {
        name: "route-engines",
        title: "F.ROUTE(b)  engine comparison, n = 256, lambda = 64 bits, fault-free".into(),
        headers: vec!["k", "engine", "feasible", "rounds", "stages"],
        cells,
    }
}

fn routing_instance(n: usize, payload_bits: usize, k: usize) -> RoutingInstance {
    RoutingInstance {
        n,
        payload_bits,
        messages: (0..n)
            .flat_map(|u| {
                (0..k).map(move |j| SuperMessage {
                    src: u,
                    slot: j,
                    payload: BitVec::from_fn(payload_bits, |i| (i + u + j) % 3 == 0),
                    targets: vec![(u + j * 7 + 1) % n],
                })
            })
            .collect(),
    }
}

fn count_routing_errors(
    instance: &RoutingInstance,
    delivered: &[std::collections::BTreeMap<(usize, usize), BitVec>],
) -> usize {
    let mut errors = 0;
    for msg in &instance.messages {
        for &t in &msg.targets {
            match delivered[t].get(&(msg.src, msg.slot)) {
                Some(p) if *p == msg.payload => {}
                _ => errors += 1,
            }
        }
    }
    errors
}

/// `F.MATCH` — the mobile-matching separation (Section 3): degree-1 mobile
/// faults defeat replication but not the compilers.
pub fn matching(trials: usize) -> Scenario {
    fn present(_job: &TrialJob, agg: &Aggregate) -> Vec<(&'static str, Value)> {
        vec![
            ("perfect", Value::rate(agg.perfect, agg.completed)),
            ("errors", Value::u(agg.total_errors)),
        ]
    }
    let n = 64usize;
    let protocols: Vec<(&'static str, ProtocolFactory)> = vec![
        ("naive", factory(|_| NaiveExchange)),
        ("relay(x3)", factory(|_| RelayReplication { copies: 3 })),
        ("relay(x9)", factory(|_| RelayReplication { copies: 9 })),
        ("det-hypercube", factory(|_| DetHypercube::default())),
        ("det-sqrt", factory(|_| DetSqrt::default())),
    ];
    let mut cells = Vec::new();
    for (label, protocol) in protocols {
        for adversary in [
            AdversarySpec::RotatingMatchingFlip,
            AdversarySpec::RelayHunter(3, 11),
        ] {
            cells.push(Cell {
                coords: vec![
                    ("protocol", Value::s(label)),
                    ("adversary", Value::s(adversary.name())),
                ],
                kind: CellKind::Trials(TrialJob {
                    protocol: protocol.clone(),
                    protocol_key: label,
                    adversary,
                    topology: TopologySpec::Complete,
                    n,
                    b: 1,
                    bandwidth: BANDWIDTH,
                    alpha: 1.0 / 8.0,
                    trials,
                    present,
                    trace: false,
                }),
            });
        }
    }
    Scenario {
        name: "matching",
        title: "F.MATCH  mobile matching (alpha = 1/n) vs replication baselines, n = 64".into(),
        headers: vec!["protocol", "adversary", "perfect", "errors"],
        cells,
    }
}

/// `F.FREE` — the headline frontier: maximum per-round faulty degree each
/// protocol tolerates with zero errors, and the rounds it pays. Each cell
/// sweeps the budget internally, forking the cell stream per budget so
/// every sweep point owns an independent seed sequence.
pub fn frontier_scenario(trials: usize) -> Scenario {
    let trials = trials.min(3);
    let n = 64usize;
    let protocols: Vec<(&'static str, ProtocolFactory, AdversarySpec, usize)> = vec![
        (
            "naive",
            factory(|_| NaiveExchange),
            AdversarySpec::GreedyFlip,
            8,
        ),
        (
            "relay(x3)",
            factory(|_| RelayReplication { copies: 3 }),
            AdversarySpec::GreedyFlip,
            8,
        ),
        (
            "nonadaptive",
            factory(|seed| NonAdaptiveAllToAll {
                copies: 7,
                seed,
                ..Default::default()
            }),
            // The non-adaptive protocol is scored against its own model.
            AdversarySpec::RandomMatchingsFlip,
            8,
        ),
        (
            "det-hypercube",
            factory(|_| DetHypercube::default()),
            AdversarySpec::GreedyFlip,
            8,
        ),
        (
            "det-sqrt",
            factory(|_| DetSqrt::default()),
            AdversarySpec::GreedyFlip,
            8,
        ),
        (
            "take1",
            factory(|seed| AdaptiveTakeOne {
                lines: 5,
                seed,
                ..Default::default()
            }),
            AdversarySpec::GreedyFlip,
            4,
        ),
    ];
    let cells = protocols
        .into_iter()
        .map(|(label, protocol, adversary, max_budget)| Cell {
            coords: vec![
                ("protocol", Value::s(label)),
                ("adversary", Value::s(adversary.name())),
            ],
            kind: CellKind::Custom(Arc::new(move |ctx: &CellCtx| {
                let mut best: Option<(usize, f64, Aggregate)> = None;
                for budget in 0..=max_budget {
                    let alpha = (budget as f64 + 0.2) / n as f64;
                    let job = TrialJob {
                        protocol: protocol.clone(),
                        protocol_key: label,
                        adversary,
                        topology: TopologySpec::Complete,
                        n,
                        b: 1,
                        bandwidth: BANDWIDTH,
                        alpha,
                        trials,
                        present: present_rpe,
                        trace: false,
                    };
                    let agg = run_trials(
                        &job,
                        &ctx.stream.fork(&format!("budget={budget}")),
                        ctx.parallel,
                    );
                    if agg.infeasible == 0 && agg.failed == 0 && agg.perfect == agg.trials {
                        best = Some((budget, alpha, agg));
                    }
                }
                match best {
                    Some((budget, alpha, agg)) => vec![
                        ("max budget", Value::u(budget)),
                        ("max alpha", Value::f3(alpha)),
                        ("rounds at max", Value::opt_f1(agg.mean_rounds)),
                        ("corrupt-slots/trial", Value::opt_f1(agg.mean_corrupted)),
                    ],
                    None => vec![
                        ("max budget", Value::s("none")),
                        ("max alpha", Value::Missing),
                        ("rounds at max", Value::Missing),
                        ("corrupt-slots/trial", Value::Missing),
                    ],
                }
            })),
        })
        .collect();
    Scenario {
        name: "frontier",
        title: "F.FREE  fault-tolerance frontier, n = 64 (adaptive greedy flip)".into(),
        headers: vec![
            "protocol",
            "adversary",
            "max budget",
            "max alpha",
            "rounds at max",
            "corrupt-slots/trial",
        ],
        cells,
    }
}

/// `F.COMPILE` — compiled Congested Clique algorithms under attack.
pub fn compiler(_trials: usize) -> Scenario {
    let n = 16usize;
    let alpha = 0.07;
    fn algo_cell<A, F>(label: &'static str, n: usize, alpha: f64, make: F) -> Cell
    where
        A: CliqueAlgorithm + Sync,
        A::State: Send + Sync,
        F: Fn() -> A + Send + Sync + 'static,
    {
        Cell {
            coords: vec![("algorithm", Value::s(label))],
            kind: CellKind::Custom(Arc::new(move |ctx: &CellCtx| {
                let algo = make();
                let reference = run_fault_free(&algo, n);
                let mut net = Network::new(
                    n,
                    BANDWIDTH,
                    alpha,
                    AdversarySpec::GreedyFlip.build(ctx.stream.fork("adversary").seed()),
                );
                let proto = DetHypercube::default();
                match compile(&mut net, &algo, &proto) {
                    Ok(run) => {
                        let cc_rounds = algo.round_count();
                        vec![
                            ("cc-rounds", Value::u(cc_rounds)),
                            ("compiled-rounds", Value::U64(run.rounds)),
                            ("overhead", Value::f1(run.rounds as f64 / cc_rounds as f64)),
                            (
                                "outputs",
                                Value::s(if run.outputs == reference {
                                    "MATCH"
                                } else {
                                    "MISMATCH"
                                }),
                            ),
                        ]
                    }
                    Err(e) => vec![
                        ("cc-rounds", Value::Missing),
                        ("compiled-rounds", Value::Missing),
                        ("overhead", Value::Missing),
                        ("outputs", Value::s(format!("error: {e}"))),
                    ],
                }
            })),
        }
    }
    let cells = vec![
        algo_cell("sum-all", n, alpha, move || SumAll {
            inputs: (0..n as u64).map(|i| i * 13 + 7).collect(),
            width: 8,
        }),
        algo_cell("max-two-phase", n, alpha, move || MaxTwoPhase {
            inputs: (0..n as u64).map(|i| (i * 37) % 101).collect(),
            width: 8,
        }),
        algo_cell("transpose", n, alpha, move || Transpose {
            rows: (0..n)
                .map(|u| (0..n).map(|v| (u * n + v) as u64).collect())
                .collect(),
            width: 8,
        }),
    ];
    Scenario {
        name: "compiler",
        title: "F.COMPILE  round-by-round compilation under adaptive attack, n = 16".into(),
        headers: vec![
            "algorithm",
            "cc-rounds",
            "compiled-rounds",
            "overhead",
            "outputs",
        ],
        cells,
    }
}

/// `A.CODE` — ECC ablation: decode success vs random symbol corruption.
pub fn codes(trials: usize) -> Scenario {
    let trials = trials * 8;
    const FRACTIONS: [(&str, f64); 5] = [
        ("5%", 0.05),
        ("10%", 0.10),
        ("20%", 0.20),
        ("30%", 0.30),
        ("40%", 0.40),
    ];
    fn code_cell<C, F>(label: &'static str, trials: usize, make: F) -> Cell
    where
        C: SymbolCode,
        F: Fn() -> C + Send + Sync + 'static,
    {
        Cell {
            coords: vec![("code", Value::s(label))],
            kind: CellKind::Custom(Arc::new(move |ctx: &CellCtx| {
                let code = make();
                let mut metrics = vec![("rate", Value::s(format!("{:.2}", code.rate())))];
                for (header, fraction) in FRACTIONS {
                    let mut ok = 0;
                    let mut rng = ChaCha8Rng::seed_from_u64(ctx.stream.fork(header).seed());
                    for _ in 0..trials {
                        let msg: Vec<u16> = (0..code.message_len())
                            .map(|_| rng.gen_range(0..1u32 << code.symbol_bits()) as u16)
                            .collect();
                        let mut cw = code.encode(&msg).unwrap();
                        let corrupt = ((cw.len() as f64) * fraction).round() as usize;
                        let mut idx: Vec<usize> = (0..cw.len()).collect();
                        for i in (1..idx.len()).rev() {
                            idx.swap(i, rng.gen_range(0..=i));
                        }
                        for &p in idx.iter().take(corrupt) {
                            cw[p] ^= 1 + rng.gen_range(0..(1u32 << code.symbol_bits()) - 1) as u16;
                        }
                        if code.decode(&cw, &vec![false; cw.len()]) == Ok(msg) {
                            ok += 1;
                        }
                    }
                    metrics.push((header, Value::rate(ok, trials)));
                }
                metrics
            })),
        }
    }
    let cells = vec![
        code_cell("repetition x5", trials, || {
            RepetitionCode::new(8, 3, 5).unwrap()
        }),
        code_cell("RS[16,8] GF(256)", trials, || {
            ReedSolomon::new(8, 16, 8).unwrap()
        }),
        code_cell("concat RS+Hamming", trials, || {
            ConcatenatedCode::new(16, 8).unwrap()
        }),
    ];
    Scenario {
        name: "codes",
        title: "A.CODE  decode success vs random symbol corruption (fraction of codeword)".into(),
        headers: vec!["code", "rate", "5%", "10%", "20%", "30%", "40%"],
        cells,
    }
}

/// `A.LDC` — Reed–Muller LDC ablation: line amplification vs corruption.
pub fn ldc(trials: usize) -> Scenario {
    let trials = trials * 4;
    const FRACTIONS: [(&str, f64); 4] = [("5%", 0.05), ("10%", 0.10), ("15%", 0.15), ("20%", 0.20)];
    let cells = [1usize, 3, 5, 7]
        .into_iter()
        .map(|lines| Cell {
            coords: vec![("lines", Value::u(lines))],
            kind: CellKind::Custom(Arc::new(move |ctx: &CellCtx| {
                let ldc = RmLdc::new(4, 5, lines).unwrap();
                let mut metrics = vec![("q (queries)", Value::u(ldc.query_count()))];
                for (header, fraction) in FRACTIONS {
                    let mut ok = 0;
                    let mut total = 0;
                    let mut rng = ChaCha8Rng::seed_from_u64(ctx.stream.fork(header).seed());
                    for _ in 0..trials {
                        let msg: Vec<u16> = (0..ldc.message_len())
                            .map(|_| rng.gen_range(0..16))
                            .collect();
                        let mut cw = ldc.encode(&msg).unwrap();
                        let corrupt = ((cw.len() as f64) * fraction).round() as usize;
                        for _ in 0..corrupt {
                            let p = rng.gen_range(0..cw.len());
                            cw[p] = rng.gen_range(0..16);
                        }
                        let shared_bits = BitVec::from_fn(64, |_| rng.gen());
                        let shared = SharedRandomness::from_bits(&shared_bits);
                        for i in (0..ldc.message_len()).step_by(5) {
                            total += 1;
                            let qs = ldc.decode_indices(i, &shared);
                            let answers: Vec<u16> = qs.iter().map(|&p| cw[p]).collect();
                            if ldc.local_decode(i, &answers, &shared) == Ok(msg[i]) {
                                ok += 1;
                            }
                        }
                    }
                    metrics.push((
                        header,
                        Value::s(format!("{:.0}%", 100.0 * ok as f64 / total as f64)),
                    ));
                }
                metrics
            })),
        })
        .collect();
    Scenario {
        name: "ldc",
        title: "A.LDC  RM-LDC local-decode success vs corruption, GF(16), d = 5".into(),
        headers: vec!["lines", "q (queries)", "5%", "10%", "15%", "20%"],
        cells,
    }
}

/// `A.SKETCH` — sparse-recovery ablation: success vs load.
pub fn sketch(trials: usize) -> Scenario {
    let trials = trials * 20;
    let shape = SketchShape::for_capacity(4, 32);
    let cells = [1usize, 2, 4, 8, 12, 16, 24]
        .into_iter()
        .map(|items| Cell {
            coords: vec![("items", Value::u(items))],
            kind: CellKind::Custom(Arc::new(move |ctx: &CellCtx| {
                let mut ok = 0;
                for trial in 0..trials {
                    let mut rng =
                        ChaCha8Rng::seed_from_u64(ctx.stream.fork_u64(trial as u64).seed());
                    let shared = SharedRandomness::from_bits(&SharedRandomness::generate(&mut rng));
                    let mut sk = RecoverySketch::new(shape, &shared);
                    let mut expect = Vec::new();
                    for _ in 0..items {
                        let key = rng.gen_range(0..1u64 << 32);
                        sk.add(key, 1).unwrap();
                        expect.push((key, 1i64));
                    }
                    expect.sort_unstable();
                    expect.dedup_by(|a, b| {
                        if a.0 == b.0 {
                            b.1 += a.1;
                            true
                        } else {
                            false
                        }
                    });
                    if sk.recover() == Some(expect) {
                        ok += 1;
                    }
                }
                vec![
                    ("cells", Value::u(shape.rows * shape.cols)),
                    ("recovered", Value::rate(ok, trials)),
                ]
            })),
        })
        .collect();
    Scenario {
        name: "sketch",
        title: "A.SKETCH  recovery success vs number of residual items (capacity 4 shape)".into(),
        headers: vec!["items", "cells", "recovered"],
        cells,
    }
}

/// `A.CFREE` — cover-free family ablation: measured worst cover fraction vs
/// group size.
pub fn cfree(_trials: usize) -> Scenario {
    let n = 256usize;
    let cells = [4usize, 8, 16, 32]
        .into_iter()
        .map(|group| {
            let l = n / group;
            Cell {
                coords: vec![("group", Value::u(group)), ("set size L", Value::u(l))],
                kind: CellKind::Custom(Arc::new(move |_ctx: &CellCtx| {
                    let params = CoverFreeParams {
                        n,
                        m: 2 * n,
                        r: 1,
                        set_size: l,
                    };
                    let h: Vec<Vec<u32>> = (0..n)
                        .map(|u| vec![2 * u as u32, 2 * u as u32 + 1])
                        .collect();
                    match CoverFreeFamily::build(params, &h, 1.0, 1, 8) {
                        Ok(fam) => {
                            let f = (2.0 * fam.worst_cover_fraction() * l as f64).ceil() as i64;
                            let margin = l as i64 - 2 * 5 - f; // e_allow = 2·2+1
                            vec![
                                ("worst fraction", Value::f3(fam.worst_cover_fraction())),
                                ("erasure bound f", Value::I64(f)),
                                ("margin left (L-2e-f), e=2", Value::I64(margin)),
                            ]
                        }
                        Err(e) => vec![
                            ("worst fraction", Value::s(format!("error: {e}"))),
                            ("erasure bound f", Value::Missing),
                            ("margin left (L-2e-f), e=2", Value::Missing),
                        ],
                    }
                })),
            }
        })
        .collect();
    Scenario {
        name: "cfree",
        title: "A.CFREE  measured worst cover fraction vs group size, n = 256, k = 2".into(),
        headers: vec![
            "group",
            "set size L",
            "worst fraction",
            "erasure bound f",
            "margin left (L-2e-f), e=2",
        ],
        cells,
    }
}

/// `A.QUERYPATH` — Take II ablation: LDC fetch vs direct sketch pull.
pub fn querypath(trials: usize) -> Scenario {
    let trials = trials.min(3);
    let cells = [("LDC (paper)", true), ("direct pull", false)]
        .into_iter()
        .map(|(label, via_ldc)| Cell {
            coords: vec![("path", Value::s(label))],
            kind: CellKind::Trials(TrialJob {
                protocol: factory(move |seed| AdaptiveAllToAll {
                    query_via_ldc: via_ldc,
                    line_capacity: 1,
                    seed,
                    ..Default::default()
                }),
                protocol_key: label,
                adversary: AdversarySpec::GreedyFlip,
                topology: TopologySpec::Complete,
                n: 16,
                b: 1,
                bandwidth: BANDWIDTH,
                alpha: 0.07,
                trials,
                present: present_rpe,
                trace: false,
            }),
        })
        .collect();
    Scenario {
        name: "querypath",
        title: "A.QUERYPATH  Take II sketch fetch: LDC storage vs direct pull, n = 16, budget 1"
            .into(),
        headers: vec!["path", "rounds", "perfect", "errors"],
        cells,
    }
}

/// `S.LARGE-N` — storage-layer scaling smoke: a full DetSqrt trial at
/// `n = 1024` on the sparse traffic substrate. The per-cell `secs` column
/// keeps substrate regressions visible in the rendered tables and the JSON
/// perf trajectory.
pub fn largen(_trials: usize) -> Scenario {
    fn present(_job: &TrialJob, agg: &Aggregate) -> Vec<(&'static str, Value)> {
        if agg.completed == 0 {
            return vec![
                ("errors", Value::s("failed")),
                ("rounds", Value::Missing),
                ("bits sent", Value::Missing),
            ];
        }
        vec![
            ("errors", Value::u(agg.total_errors)),
            ("rounds", Value::opt_f1(agg.mean_rounds)),
            ("bits sent", Value::opt_f1(agg.mean_bits)),
        ]
    }
    let n = 1024usize;
    let cells = vec![Cell {
        coords: vec![
            ("protocol", Value::s("det-sqrt")),
            ("n", Value::u(n)),
            ("B", Value::u(1)),
        ],
        kind: CellKind::Trials(TrialJob {
            // Event-driven pack execution (bit-identical to lockstep;
            // overlaps decode with the next pack's encode on multicore).
            protocol: factory(|_seed| {
                DetSqrt::new(RouterConfig {
                    event_driven: true,
                    ..Default::default()
                })
            }),
            protocol_key: "det-sqrt",
            adversary: AdversarySpec::None,
            topology: TopologySpec::Complete,
            n,
            b: 1,
            bandwidth: BANDWIDTH,
            alpha: 0.0,
            trials: 1,
            present,
            trace: false,
        }),
    }];
    Scenario {
        name: "largen",
        title: "S.LARGE-N  DetSqrt smoke on the sparse traffic substrate".into(),
        headers: vec![
            "protocol",
            "n",
            "B",
            "errors",
            "rounds",
            "bits sent",
            "secs",
        ],
        cells,
    }
}

/// `F.SCHED` — time-varying adversary schedules (the driver/observer API's
/// headline workload): steady matchings vs burst windows vs periodic phase
/// alternation, per protocol. Every cell records trial 0's per-round stat
/// deltas (`round_trace` in the scenario JSON), so the burst shape is
/// visible round by round, not just in the aggregate.
pub fn schedules(trials: usize) -> Scenario {
    fn present(_job: &TrialJob, agg: &Aggregate) -> Vec<(&'static str, Value)> {
        vec![
            ("rounds", Value::opt_f1(agg.mean_rounds)),
            ("perfect", Value::rate(agg.perfect, agg.completed)),
            ("errors", Value::u(agg.total_errors)),
            ("corrupted/trial", Value::opt_f1(agg.mean_corrupted)),
        ]
    }
    let n = 16usize;
    let alpha = 2.2 / n as f64; // budget 2
    let protocols: Vec<(&'static str, ProtocolFactory)> = vec![
        ("relay(x3)", factory(|_| RelayReplication { copies: 3 })),
        ("det-hypercube", factory(|_| DetHypercube::default())),
        ("det-sqrt", factory(|_| DetSqrt::default())),
    ];
    let adversaries = [
        AdversarySpec::RandomMatchingsFlip,
        AdversarySpec::BurstFlip {
            period: 6,
            burst: 2,
        },
        AdversarySpec::PhasedFlip {
            period: 6,
            split: 3,
        },
    ];
    let mut cells = Vec::new();
    for (label, protocol) in protocols {
        for adversary in adversaries {
            cells.push(Cell {
                coords: vec![
                    ("protocol", Value::s(label)),
                    ("schedule", Value::s(adversary.key())),
                ],
                kind: CellKind::Trials(TrialJob {
                    protocol: protocol.clone(),
                    protocol_key: label,
                    adversary,
                    topology: TopologySpec::Complete,
                    n,
                    b: 1,
                    bandwidth: BANDWIDTH,
                    alpha,
                    trials,
                    present,
                    trace: true,
                }),
            });
        }
    }
    Scenario {
        name: "schedules",
        title: "F.SCHED  time-varying adversary schedules, n = 16, budget 2 (traced)".into(),
        headers: vec![
            "protocol",
            "schedule",
            "rounds",
            "perfect",
            "errors",
            "corrupted/trial",
        ],
        cells,
    }
}

/// `S.ALPHA-LARGE` — the ROADMAP's α-sweep at `n ≥ 4096`: rounds/perfect
/// vs α per protocol on the sparse substrate. Kept to one trial per cell
/// and the cheap protocols (naive as the unprotected reference,
/// det-hypercube as the resilient compiler) so a single-core release run
/// stays in CI-smoke territory; release-gated alongside the large-n step.
pub fn alpha_largen(_trials: usize) -> Scenario {
    fn present(_job: &TrialJob, agg: &Aggregate) -> Vec<(&'static str, Value)> {
        vec![
            ("rounds", Value::opt_f1(agg.mean_rounds)),
            ("perfect", Value::rate(agg.perfect, agg.completed)),
            ("errors", Value::u(agg.total_errors)),
            ("corrupted/trial", Value::opt_f1(agg.mean_corrupted)),
        ]
    }
    let n = 4096usize;
    let protocols: Vec<(&'static str, ProtocolFactory, &'static [usize])> = vec![
        // Budgets ⌊αn⌋ per protocol: the naive reference degrades with any
        // faults; the hypercube compiler is swept over its tolerant range.
        ("naive", factory(|_| NaiveExchange), &[0usize, 1, 4][..]),
        (
            "det-hypercube",
            factory(|_| DetHypercube::default()),
            &[0usize, 1][..],
        ),
        // The Theorem 1.5 headline row: two √n-segment waves of k = 64
        // super-messages per node, routed by the stage-parallel unit engine
        // (forced — at this n/k the cover-free margin is known-infeasible,
        // so Auto would burn the whole family-construction probe per wave
        // only to fall back). Deliberately *lockstep*: this cell is the
        // CI wall-clock regression gate and must stay meaningful on a
        // single-core runner, where the event executor's worker handoff
        // has nothing to overlap into (~95s vs ~54s at this n). The event
        // path's scale story lives in `largen`/`xlargen`.
        // Release-gated in CI with a wall-clock budget; its per-cell `secs`
        // lands in the BENCH artifact and the trajectory ledger.
        (
            "det-sqrt",
            factory(|_| {
                DetSqrt::new(RouterConfig {
                    mode: RoutingMode::Unit,
                    ..Default::default()
                })
            }),
            &[0usize, 1][..],
        ),
    ];
    let mut cells = Vec::new();
    for (label, protocol, budgets) in protocols {
        for &budget in budgets {
            let alpha = if budget == 0 {
                0.0
            } else {
                (budget as f64 + 0.2) / n as f64
            };
            let adversary = if budget == 0 {
                AdversarySpec::None
            } else {
                AdversarySpec::RandomMatchingsFlip
            };
            cells.push(Cell {
                coords: vec![
                    ("protocol", Value::s(label)),
                    ("n", Value::u(n)),
                    ("budget", Value::u(budget)),
                    // αn ≈ 1 means α ≈ 2.4e-4 here: 3 decimals would
                    // render every row as 0.000.
                    ("alpha", Value::Float { v: alpha, prec: 6 }),
                ],
                kind: CellKind::Trials(TrialJob {
                    protocol: protocol.clone(),
                    protocol_key: label,
                    adversary,
                    topology: TopologySpec::Complete,
                    n,
                    b: 1,
                    bandwidth: BANDWIDTH,
                    alpha,
                    trials: 1,
                    present,
                    trace: false,
                }),
            });
        }
    }
    Scenario {
        name: "alpha-largen",
        title: "S.ALPHA-LARGE  rounds/perfect vs alpha at n = 4096 (sparse substrate)".into(),
        headers: vec![
            "protocol",
            "n",
            "budget",
            "alpha",
            "rounds",
            "perfect",
            "errors",
            "corrupted/trial",
            "secs",
        ],
        cells,
    }
}

/// `S.XLARGE-N` — the event-driven executor's headline cell: one fault-free
/// DetSqrt trial at `n = 16384` (`k = 128` super-messages per node, two
/// waves of 128 unit stages each) on the stage-parallel unit engine with
/// event-driven pack execution. One trial, budget 0 — the point is that the
/// cell *completes with zero errors under a CI wall-clock budget*, which no
/// pre-event-executor revision managed; the α sweep stays at `n = 4096`
/// ([`alpha_largen`]) where multiple budgets fit the same CI window.
pub fn xlargen(_trials: usize) -> Scenario {
    fn present(_job: &TrialJob, agg: &Aggregate) -> Vec<(&'static str, Value)> {
        if agg.completed == 0 {
            return vec![
                ("errors", Value::s("failed")),
                ("rounds", Value::Missing),
                ("bits sent", Value::Missing),
            ];
        }
        vec![
            ("errors", Value::u(agg.total_errors)),
            ("rounds", Value::opt_f1(agg.mean_rounds)),
            ("bits sent", Value::opt_f1(agg.mean_bits)),
        ]
    }
    let n = 16384usize;
    let cells = vec![Cell {
        coords: vec![
            ("protocol", Value::s("det-sqrt")),
            ("n", Value::u(n)),
            ("budget", Value::u(0)),
        ],
        kind: CellKind::Trials(TrialJob {
            protocol: factory(|_| {
                DetSqrt::new(RouterConfig {
                    mode: RoutingMode::Unit,
                    event_driven: true,
                    ..Default::default()
                })
            }),
            protocol_key: "det-sqrt",
            adversary: AdversarySpec::None,
            topology: TopologySpec::Complete,
            n,
            b: 1,
            bandwidth: BANDWIDTH,
            alpha: 0.0,
            trials: 1,
            present,
            trace: false,
        }),
    }];
    Scenario {
        name: "xlargen",
        title: "S.XLARGE-N  DetSqrt at n = 16384, event-driven unit engine".into(),
        headers: vec![
            "protocol",
            "n",
            "budget",
            "errors",
            "rounds",
            "bits sent",
            "secs",
        ],
        cells,
    }
}

/// `S.BANDWIDTH` — the paper's `B = Θ(log n)` knob: rounds vs bandwidth
/// `B ∈ {λ, 2λ, 4λ}` for the Thm 1.2 (non-adaptive randomized) and Thm 1.5
/// (deterministic √n) protocols. λ = 9 bits, the unit router's minimum wire
/// slot (symbol + validity bit), so every protocol runs at each column and
/// the `B`-fold lane speedup of Lemma 2.9 is directly visible.
pub fn bandwidth(trials: usize) -> Scenario {
    fn present(_job: &TrialJob, agg: &Aggregate) -> Vec<(&'static str, Value)> {
        vec![
            ("rounds", Value::opt_f1(agg.mean_rounds)),
            ("perfect", Value::rate(agg.perfect, agg.completed)),
            ("errors", Value::u(agg.total_errors)),
            ("bits/trial", Value::opt_f1(agg.mean_bits)),
        ]
    }
    const LAMBDA: usize = 9;
    let configs: Vec<(&'static str, usize, f64, AdversarySpec, ProtocolFactory)> = vec![
        (
            "nonadaptive (Thm 1.2)",
            32,
            1.0 / 16.0,
            AdversarySpec::RandomMatchingsFlip,
            factory(|seed| NonAdaptiveAllToAll {
                copies: 7,
                seed,
                ..Default::default()
            }),
        ),
        (
            "det-sqrt (Thm 1.5)",
            64,
            0.5 / 8.0,
            AdversarySpec::GreedyFlip,
            factory(|_| DetSqrt::default()),
        ),
    ];
    let mut cells = Vec::new();
    for (label, n, alpha, adversary, protocol) in configs {
        for factor in [1usize, 2, 4] {
            cells.push(Cell {
                coords: vec![
                    ("protocol", Value::s(label)),
                    ("n", Value::u(n)),
                    ("B/lambda", Value::u(factor)),
                    ("B", Value::u(factor * LAMBDA)),
                ],
                kind: CellKind::Trials(TrialJob {
                    protocol: protocol.clone(),
                    protocol_key: label,
                    adversary,
                    topology: TopologySpec::Complete,
                    n,
                    b: 1,
                    bandwidth: factor * LAMBDA,
                    alpha,
                    trials,
                    present,
                    trace: false,
                }),
            });
        }
    }
    Scenario {
        name: "bandwidth",
        title: "S.BANDWIDTH  rounds vs B in {lambda, 2lambda, 4lambda}, lambda = 9 bits".into(),
        headers: vec![
            "protocol",
            "n",
            "B/lambda",
            "B",
            "rounds",
            "perfect",
            "errors",
            "bits/trial",
        ],
        cells,
    }
}

/// `S.TOPO` — beyond the clique: the protocols that survive on sparse
/// graphs, and the attacks that only exist there. On the hypercube the
/// deterministic compiler runs in direct partner-exchange mode; on a random
/// 8-regular expander the naive and relay baselines deliver every neighbor
/// message fault-free — and then an [`AdversarySpec::Eclipse`] at
/// `α = 0.9` closes the full per-node budget `⌊0.9·9⌋ = 8 = deg` and cuts
/// the target off completely, something no `α < 1` achieves on `K_n`. A
/// clique-only protocol (the nonadaptive router) rides along to show the
/// `Infeasible` path, and a [`AdversarySpec::Partition`] cell camps a
/// balanced cut.
pub fn topologies(trials: usize) -> Scenario {
    fn present(_job: &TrialJob, agg: &Aggregate) -> Vec<(&'static str, Value)> {
        vec![
            ("rounds", Value::opt_f1(agg.mean_rounds)),
            ("perfect", Value::rate(agg.perfect, agg.completed)),
            ("errors", Value::u(agg.total_errors)),
            ("corrupted/trial", Value::opt_f1(agg.mean_corrupted)),
            ("infeasible", Value::u(agg.infeasible)),
        ]
    }
    let n = 32usize;
    let expander = TopologySpec::RandomRegular { d: 8, seed: 21 };
    // α = 0.9: per-node budget ⌊0.9·(8+1)⌋ = 8 on the expander — the whole
    // degree, so the eclipse and partition camps fully close.
    let alpha_camp = 0.9;
    let eclipse = AdversarySpec::Eclipse {
        target: 0,
        rounds: 64,
    };
    let partition = AdversarySpec::Partition { cut_seed: 5 };
    let configs: Vec<(
        &'static str,
        ProtocolFactory,
        TopologySpec,
        AdversarySpec,
        f64,
    )> = vec![
        // Structured sparse graph: the hypercube compiler in direct mode.
        (
            "det-hypercube",
            factory(|_| DetHypercube::default()),
            TopologySpec::Hypercube,
            AdversarySpec::None,
            0.0,
        ),
        // Fault-free baselines on the expander.
        (
            "naive",
            factory(|_| NaiveExchange),
            expander,
            AdversarySpec::None,
            0.0,
        ),
        (
            "relay(x3)",
            factory(|_| RelayReplication { copies: 3 }),
            expander,
            AdversarySpec::None,
            0.0,
        ),
        // The sparse-only attacks.
        (
            "naive",
            factory(|_| NaiveExchange),
            expander,
            eclipse,
            alpha_camp,
        ),
        (
            "relay(x3)",
            factory(|_| RelayReplication { copies: 3 }),
            expander,
            eclipse,
            alpha_camp,
        ),
        (
            "naive",
            factory(|_| NaiveExchange),
            expander,
            partition,
            alpha_camp,
        ),
        // Clique-only protocol: the super-message router needs every node
        // as a relay, so it reports Infeasible (not an error) off K_n.
        (
            "nonadaptive",
            factory(|seed| NonAdaptiveAllToAll {
                copies: 7,
                seed,
                ..Default::default()
            }),
            expander,
            AdversarySpec::None,
            0.0,
        ),
    ];
    let cells = configs
        .into_iter()
        .map(|(label, protocol, topology, adversary, alpha)| Cell {
            coords: vec![
                ("topology", Value::s(topology.key())),
                ("protocol", Value::s(label)),
                ("adversary", Value::s(adversary.name())),
            ],
            kind: CellKind::Trials(TrialJob {
                protocol,
                protocol_key: label,
                adversary,
                topology,
                n,
                b: 2,
                bandwidth: BANDWIDTH,
                alpha,
                trials,
                present,
                trace: false,
            }),
        })
        .collect();
    Scenario {
        name: "topologies",
        title: "S.TOPO  beyond the clique: sparse graphs, degree-relative budgets, n = 32".into(),
        headers: vec![
            "topology",
            "protocol",
            "adversary",
            "rounds",
            "perfect",
            "errors",
            "corrupted/trial",
            "infeasible",
        ],
        cells,
    }
}

// ---------------------------------------------------------------------------
// Legacy `Table`-returning wrappers: the stable experiment-id names that
// `DESIGN.md` references, now thin shims over the scenario engine.
// ---------------------------------------------------------------------------

/// `T1.R1` rendered as a table (engine-backed).
pub fn table1_row1(trials: usize) -> Table {
    run(&t1r1(trials)).table()
}

/// `T1.R2` rendered as a table (engine-backed).
pub fn table1_row2(trials: usize) -> Table {
    run(&t1r2(trials)).table()
}

/// `T1.R3` rendered as a table (engine-backed).
pub fn table1_row3(trials: usize) -> Table {
    run(&t1r3(trials)).table()
}

/// `T1.R4` rendered as a table (engine-backed).
pub fn table1_row4(trials: usize) -> Table {
    run(&t1r4(trials)).table()
}

/// `F.ROUTE` — both routing tables (engine-backed).
pub fn routing_threshold() -> Vec<Table> {
    vec![
        run(&route_margin(1)).table(),
        run(&route_engines(1)).table(),
    ]
}

/// `F.MATCH` rendered as a table (engine-backed).
pub fn matching_separation(trials: usize) -> Table {
    run(&matching(trials)).table()
}

/// `F.FREE` rendered as a table (engine-backed).
pub fn frontier(trials: usize) -> Table {
    run(&frontier_scenario(trials)).table()
}

/// `F.COMPILE` rendered as a table (engine-backed).
pub fn compiler_overhead() -> Table {
    run(&compiler(1)).table()
}

/// `A.CODE` rendered as a table (engine-backed; runs `8 × trials`).
pub fn ablation_codes(trials: usize) -> Table {
    run(&codes(trials)).table()
}

/// `A.LDC` rendered as a table (engine-backed; runs `4 × trials`).
pub fn ablation_ldc(trials: usize) -> Table {
    run(&ldc(trials)).table()
}

/// `A.SKETCH` rendered as a table (engine-backed; runs `20 × trials`).
pub fn ablation_sketch(trials: usize) -> Table {
    run(&sketch(trials)).table()
}

/// `A.CFREE` rendered as a table (engine-backed).
pub fn ablation_coverfree() -> Table {
    run(&cfree(1)).table()
}

/// `A.QUERYPATH` rendered as a table (engine-backed).
pub fn ablation_querypath(trials: usize) -> Table {
    run(&querypath(trials)).table()
}

/// `S.LARGE-N` rendered as a table (engine-backed).
pub fn large_n_smoke() -> Table {
    run(&largen(1)).table()
}
