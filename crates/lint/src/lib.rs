//! `bdclique-lint`: dependency-free determinism & concurrency lints for
//! the bdclique workspace.
//!
//! The bit-identity guarantees this reproduction makes (event vs lockstep
//! execution, checkpoint/resume identity, coordinate-derived seed streams)
//! rest on invariants the compiler cannot see: no process-random hash
//! iteration in schedule-computing code, no wall-clock or OS-entropy
//! inputs, no attacker-sized allocations in snapshot decoding, no stray
//! threads. This crate enforces them with a lightweight Rust lexer and a
//! token-pattern rule engine — see [`rules::RULES`] for the catalog.
//!
//! Run it with `cargo run -p bdclique-lint`; see the README's "Static
//! analysis" section for the suppression syntax.

pub mod lexer;
pub mod report;
pub mod rules;

pub use rules::{lint_source, Finding, META_RULES, RULES};

use std::path::{Path, PathBuf};

/// Directories never descended into during a workspace walk.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "node_modules"];

/// Path prefixes (workspace-relative, forward slashes) excluded from the
/// workspace walk. The fixtures are known-bad on purpose; the lint's own
/// sources mention forbidden identifiers in string literals and rule
/// tables, which the lexer sees as plain idents once they appear in tests.
const SKIP_PREFIXES: &[&str] = &["crates/lint/fixtures/"];

/// Recursively collects every `.rs` file under `root`, returned as
/// workspace-relative forward-slash paths, sorted for deterministic
/// reports.
pub fn collect_workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let rel = path.strip_prefix(root).unwrap_or(&path);
                let rel_str = rel.to_string_lossy().replace('\\', "/");
                if SKIP_PREFIXES.iter().any(|p| rel_str.starts_with(p)) {
                    continue;
                }
                out.push(rel.to_path_buf());
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lints every workspace source file under `root`. Findings are sorted by
/// (path, line, rule).
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let files = collect_workspace_files(root)?;
    let mut findings = Vec::new();
    for rel in files {
        let abs = root.join(&rel);
        let src = std::fs::read_to_string(&abs)?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        findings.extend(lint_source(&rel_str, &src));
    }
    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    Ok(findings)
}

/// Locates the workspace root: walks up from `start` until a directory
/// containing both `Cargo.toml` and `crates/` is found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start);
    while let Some(dir) = cur {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir.to_path_buf());
        }
        cur = dir.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_scopes_crates_and_shims() {
        let s = rules::classify("crates/core/src/routing/mod.rs");
        assert_eq!(s.crate_name.as_deref(), Some("core"));
        assert!(!s.in_shims);
        let s = rules::classify("crates/shims/rayon/src/lib.rs");
        assert_eq!(s.crate_name.as_deref(), Some("shims/rayon"));
        assert!(s.in_shims);
        let s = rules::classify("crates/netsim/tests/goldens.rs");
        assert_eq!(s.kind, rules::Kind::Tests);
        let s = rules::classify("src/lib.rs");
        assert_eq!(s.crate_name.as_deref(), Some("bdclique"));
    }

    #[test]
    fn walker_skips_fixture_tree() {
        let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("root");
        let files = collect_workspace_files(&root).expect("walk");
        assert!(!files.is_empty());
        for f in &files {
            let s = f.to_string_lossy().replace('\\', "/");
            assert!(
                !s.starts_with("crates/lint/fixtures/"),
                "fixture leaked into walk: {s}"
            );
            assert!(!s.starts_with("target/"), "target leaked into walk: {s}");
        }
    }
}
