//! The `lint` binary: `cargo run -p bdclique-lint [-- --json] [paths…]`.
//!
//! With no paths, lints the whole workspace (found by walking up from the
//! current directory). With paths, lints exactly those files — paths are
//! taken workspace-relative for rule scoping when possible.
//!
//! Exit codes: 0 clean, 1 findings, 2 usage/IO error.

use std::path::Path;
use std::process::ExitCode;

use bdclique_lint::{find_workspace_root, lint_source, lint_workspace, report, RULES};

fn main() -> ExitCode {
    let mut json = false;
    let mut list_rules = false;
    let mut paths: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--rules" => list_rules = true,
            "--help" | "-h" => {
                println!(
                    "bdclique-lint: determinism & concurrency lints for the bdclique workspace\n\
                     \n\
                     usage: cargo run -p bdclique-lint [-- OPTIONS] [FILES…]\n\
                     \n\
                     options:\n\
                     \x20 --json    machine-readable report on stdout\n\
                     \x20 --rules   print the rule catalog and exit\n\
                     \n\
                     With no FILES, lints every .rs file in the workspace."
                );
                return ExitCode::SUCCESS;
            }
            a if a.starts_with('-') => {
                eprintln!("bdclique-lint: unknown option `{a}` (try --help)");
                return ExitCode::from(2);
            }
            a => paths.push(a.to_string()),
        }
    }
    if list_rules {
        for (name, summary) in RULES {
            println!("{name}\n    {summary}\n");
        }
        return ExitCode::SUCCESS;
    }

    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bdclique-lint: cannot read current directory: {e}");
            return ExitCode::from(2);
        }
    };
    let root = find_workspace_root(&cwd);

    let findings = if paths.is_empty() {
        let Some(root) = root else {
            eprintln!(
                "bdclique-lint: no workspace root found above {}",
                cwd.display()
            );
            return ExitCode::from(2);
        };
        match lint_workspace(&root) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("bdclique-lint: workspace walk failed: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let mut findings = Vec::new();
        for p in &paths {
            let src = match std::fs::read_to_string(p) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("bdclique-lint: cannot read {p}: {e}");
                    return ExitCode::from(2);
                }
            };
            // Report under the workspace-relative path when the file sits
            // inside the workspace, so crate-scoped rules apply.
            let rel = root
                .as_deref()
                .and_then(|r| {
                    let abs = Path::new(p).canonicalize().ok()?;
                    let rootc = r.canonicalize().ok()?;
                    abs.strip_prefix(&rootc)
                        .ok()
                        .map(|s| s.to_string_lossy().replace('\\', "/"))
                })
                .unwrap_or_else(|| p.clone());
            findings.extend(lint_source(&rel, &src));
        }
        findings
    };

    if json {
        print!("{}", report::to_json(&findings));
    } else {
        print!("{}", report::to_text(&findings));
        if findings.is_empty() {
            eprintln!("bdclique-lint: clean");
        } else {
            eprintln!("bdclique-lint: {} finding(s)", findings.len());
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
