//! The scheduled unit-instance routing engine.
//!
//! Messages are colored into *stages* such that within a stage every node is
//! the source of at most one active message and the target of at most one
//! active message (multi-target messages deliver to all their targets in one
//! stage). Each stage runs the two-round scatter/gather of the paper's
//! Section 3 warm-up observation: the source spreads one Reed–Solomon
//! symbol per relay node, then relays forward to the targets. Per codeword
//! the adversary corrupts at most `⌊αn⌋` symbols in each of the two rounds,
//! against a decoding radius of `(L - k)/2` chosen as `2⌊αn⌋ + slack`;
//! suppressed frames are decoded as erasures.
//!
//! When the network bandwidth exceeds one wire slot (`symbol_bits + 1`),
//! multiple stages and payload chunks run in parallel inside a single round
//! pair — the `B`-fold speedup of Lemma 2.9 / Theorem 4.1.
//!
//! # Stage-parallel execution
//!
//! Each `(stage, chunk)` work unit is independent: it encodes its own
//! codewords, scatters and gathers its own frames, and decodes its own
//! payload chunk. The session exploits that per pack — the round-A
//! codeword encoding and the round-B erasure decoding fan out across the
//! rayon thread pool ([`RouterConfig::parallel`]), while the network
//! exchanges and the frame materialization stay strictly sequential (rounds
//! are the unit of synchrony; frame buffers come from the network's
//! [`bdclique_netsim::Network::frame_buffer`] arena). Results are always
//! folded in deterministic work-unit order, so the parallel path is
//! bit-identical to [`route_unit_serial`] — the same contract `compile`
//! keeps with `compile_serial`.
//!
//! Codewords are encoded *lazily*, per pack, instead of for the whole
//! instance up front: a `k ≈ √n` wave at `n = 4096` has ~260k messages, and
//! materializing all their codewords before round 0 would pin
//! `messages × chunks × L` symbols for the whole session.
//!
//! # Event-driven pack execution
//!
//! With [`RouterConfig::event_driven`] the lockstep "one pack at a time"
//! barrier is broken while the *virtual* round structure stays intact.
//! Every pack `p` owns two virtual rounds (`rounds_before + 2p` for the
//! scatter, `+ 2p + 1` for the forward); the session:
//!
//! * **prefetches round A** — codeword encoding and frame assembly for
//!   upcoming packs run as [`crate::exec`] jobs ahead of the clock, each
//!   producing an arena-free [`Traffic`] batch that is posted onto a
//!   [`MessageBus`] tagged with its virtual delivery time and drained only
//!   when the network clock reaches it;
//! * **decodes round B asynchronously** — the delivered frames of a
//!   finished pack move into a background decode job whose results fold
//!   into the chunk store later (bounded in-flight window, fully drained
//!   before output assembly).
//!
//! So round-B decode of early stages overlaps round-A encode of late
//! stages, and exchanges — the only part the mobile adversary observes —
//! stay strictly serialized in virtual-round order. Frames are assembled in
//! the same ascending `(src, relay)` order with the same contents, so wire
//! behavior, stats, history digests, and outputs are bit-identical to the
//! lockstep path (`tests/event_identity.rs` pins this across the protocol
//! matrix, including under budget aborts and mid-run adversary switches).

use super::{
    absorbed_error_budget, check_budget, empty_instance_code, encode_chunks, lane_symbol,
    map_units, payload_chunk, EngineUsed, Inst, RelayGrid, RouterConfig, RoutingInstance,
    RoutingOutput, RoutingReport, SharedCodewordCache,
};
use crate::error::CoreError;
use crate::exec::{self, Job};
use bdclique_bits::BitVec;
use bdclique_codes::{BitCode, ReedSolomon};
use bdclique_netsim::{Delivery, FramePool, MessageBus, Network, Traffic};
use bdclique_snapshot::{Dec, Enc};
use std::borrow::Cow;
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::sync::Arc;

/// First-fit stage coloring: same-source or shared-target messages never
/// share a stage; each message takes the smallest stage where its source
/// and all its targets are free. Returns `stage_of[msg_idx]`.
///
/// Implemented with per-endpoint counters: `src_next[u]` / `tgt_next[v]`
/// hold each endpoint's smallest free stage (its *mex*), so the scan for a
/// message starts at the maximum of its endpoints' counters — every earlier
/// stage is provably occupied by one of them — and probes occupancy in two
/// hash sets keyed `(endpoint, stage)`. This is the same coloring the old
/// `O(stages · n)`-memory occupancy matrices computed (stage-for-stage
/// identical, regression-tested below), in `O(incidences)` memory and
/// near-linear time: the scan past the counter maximum only crosses stages
/// genuinely blocked by a conflicting endpoint, so total work is bounded by
/// the conflict count rather than `messages × stages`.
///
/// Stage count never exceeds the greedy coloring bound `2·Δ − 1`, where `Δ`
/// is the maximum per-endpoint multiplicity: a single-target message
/// conflicts with at most `(deg(src) − 1) + (deg(tgt) − 1) ≤ 2Δ − 2` other
/// messages, so first-fit places it below stage `2Δ − 1`.
pub(crate) fn schedule_stages(instance: &RoutingInstance) -> Vec<usize> {
    let mut stage_of = vec![0usize; instance.messages.len()];
    let mut src_next = vec![0u32; instance.n];
    let mut tgt_next = vec![0u32; instance.n];
    let mut src_used: HashSet<(u32, u32)> = HashSet::new();
    let mut tgt_used: HashSet<(u32, u32)> = HashSet::new();
    for (idx, m) in instance.messages.iter().enumerate() {
        let src = m.src as u32;
        let mut stage = m
            .targets
            .iter()
            .map(|&t| tgt_next[t])
            .fold(src_next[m.src], u32::max);
        loop {
            let free = !src_used.contains(&(src, stage))
                && m.targets
                    .iter()
                    .all(|&t| !tgt_used.contains(&(t as u32, stage)));
            if free {
                break;
            }
            stage += 1;
        }
        src_used.insert((src, stage));
        while src_used.contains(&(src, src_next[m.src])) {
            src_next[m.src] += 1;
        }
        for &t in &m.targets {
            tgt_used.insert((t as u32, stage));
            while tgt_used.contains(&(t as u32, tgt_next[t])) {
                tgt_next[t] += 1;
            }
        }
        stage_of[idx] = stage as usize;
    }
    stage_of
}

struct UnitParams {
    /// Relay count = codeword length.
    l: usize,
    /// The code.
    code: ReedSolomon,
    /// Payload bits per chunk.
    cap_bits: usize,
    /// Chunks per message.
    chunks: usize,
    /// Wire slot width: symbol + validity bit.
    slot: usize,
    /// Parallel lanes per round pair.
    lanes: usize,
}

impl UnitParams {
    /// Parameters for the zero-message instance: nothing is ever encoded,
    /// scattered, or decoded, so no decode-margin or bandwidth constraint
    /// applies (see [`empty_instance_code`]).
    fn empty(cfg: &RouterConfig) -> Result<Self, CoreError> {
        let (code, slot) = empty_instance_code(cfg)?;
        Ok(Self {
            l: 2,
            code,
            cap_bits: cfg.symbol_bits as usize,
            chunks: 0,
            slot,
            lanes: 1,
        })
    }
}

fn derive_params(
    net: &Network,
    instance: &RoutingInstance,
    cfg: &RouterConfig,
) -> Result<UnitParams, CoreError> {
    let m = cfg.symbol_bits;
    if !(2..=8).contains(&m) {
        return Err(CoreError::invalid("symbol_bits must be in 2..=8"));
    }
    let slot = m as usize + 1;
    if net.bandwidth() < slot {
        return Err(CoreError::infeasible(format!(
            "bandwidth {} < wire slot {} (symbol + validity bit)",
            net.bandwidth(),
            slot
        )));
    }
    let l = instance.n.min((1usize << m) - 1);
    let e_allow = absorbed_error_budget(net, cfg.extra_error_slack);
    if l <= 2 * e_allow {
        return Err(CoreError::infeasible(format!(
            "relay count {l} cannot absorb 2·({e_allow}) adversarial symbols"
        )));
    }
    let k_rs = l - 2 * e_allow;
    let code = ReedSolomon::new(m, l, k_rs)
        .map_err(|e| CoreError::infeasible(format!("RS construction: {e}")))?;
    let cap_bits = k_rs * m as usize;
    let chunks = instance.payload_bits.div_ceil(cap_bits).max(1);
    let lanes = (net.bandwidth() / slot).max(1);
    Ok(UnitParams {
        l,
        code,
        cap_bits,
        chunks,
        slot,
        lanes,
    })
}

/// The session's immutable routing plan — code parameters, stage coloring,
/// and work list — separated from the mutable run state so the event path
/// can share one copy with its background jobs (`Arc`), while the lockstep
/// path reads through the same pointer at zero cost.
struct UnitPlan {
    params: UnitParams,
    symbol_bits: u32,
    num_stages: usize,
    /// Message indices per stage.
    stage_msgs: Vec<Vec<usize>>,
    /// Per stage: `(src, pos)` sorted by source id, `pos` indexing
    /// `stage_msgs[stage]` — sources are distinct within a stage, so relays
    /// attribute an incoming frame with one binary search.
    stage_src: Vec<Vec<(usize, usize)>>,
    /// Work units: (stage, chunk) pairs, executed `lanes` at a time.
    work: Vec<(usize, usize)>,
}

/// Which half of a stage/chunk pack the session will execute next.
enum UnitPhase {
    /// Scatter codeword symbols to relays.
    RoundA,
    /// Relays forward to targets, holding the [`RelayGrid`] gathered after
    /// round A: one contiguous `w`-major buffer addressed
    /// `(w, lane, pos)` where `pos` indexes the lane's stage message list
    /// (rows are ragged — per-lane offsets are prefix sums of the pack's
    /// stage sizes).
    RoundB { relay: RelayGrid },
}

/// What one round-A prefetch job produces: the pack's codeword symbols and
/// its fully assembled traffic batch.
type EncodeResult = Result<(Vec<Vec<Vec<u16>>>, Traffic), CoreError>;

/// One decoded unit: `((target, msg_idx, chunk), bits, decode_failed)`.
type DecodedUnit = ((usize, usize, usize), Option<BitVec>, bool);

/// What one background decode job produces: the decoded units plus the
/// consumed delivery, handed back for main-thread arena reclaim.
type DecodeBatch = (Vec<DecodedUnit>, Delivery);

/// How many round-A packs are encoded ahead of the virtual clock. Two keeps
/// one batch always cooking while the current one is on the wire, without
/// pinning more than one spare traffic matrix.
const PREFETCH_PACKS: usize = 2;

/// Decode jobs allowed in flight before the oldest is folded; bounds how
/// many deliveries a session keeps alive at once.
const DECODES_IN_FLIGHT: usize = 2;

/// Per-session event-executor state (see the module docs).
struct EventState {
    /// Staging area for prefetched round-A batches, keyed by virtual time.
    bus: MessageBus,
    /// `(pack_start, job)` for dispatched round-A prefetches, pack order.
    encodes: VecDeque<(usize, Job<EncodeResult>)>,
    /// Frontier of dispatched prefetches (next `pack_start` to hand out).
    next_dispatch: usize,
    /// In-flight decode jobs, pack order.
    decodes: VecDeque<Job<DecodeBatch>>,
    /// Network shape for building arena-free traffic off-thread.
    n: usize,
    bandwidth: usize,
    /// `Sync` free-list of frame buffers shared with the prefetch jobs: the
    /// network's `FrameArena` is not `Sync`, so off-thread round-A assembly
    /// used to allocate every frame fresh — the pool recycles the session's
    /// own delivered frames into the next prefetch instead.
    pool: Arc<FramePool>,
}

/// The unit engine as a resumable session: every [`UnitSession::step`]
/// executes exactly one `exchange` (round A or round B of the current
/// stage/chunk pack); the step that completes the final pack also assembles
/// the output. The round-for-round wire behavior is identical to the former
/// monolithic loop; within a step, the per-pack encode and decode fan out
/// across threads, and with [`RouterConfig::event_driven`] they additionally
/// overlap *across* packs (see the module docs).
pub(crate) struct UnitSession<'i> {
    /// Borrowed for the zero-copy [`super::route`] path, shared when a
    /// protocol session hands a wave over (or event mode needs owned data).
    instance: Inst<'i>,
    plan: Arc<UnitPlan>,
    /// Fan per-pack encode/decode out over rayon ([`RouterConfig::parallel`]).
    parallel: bool,
    /// Optional shared codeword cache ([`super::RouteSession::new_cached`]);
    /// `None` keeps the plain lazy per-pack encode path.
    cache: Option<SharedCodewordCache>,
    /// Adversarial symbols per codeword the chosen code absorbs
    /// (`2·⌊αn⌋ + slack` at construction; `usize::MAX` for the empty
    /// instance, which decodes nothing). Re-validated every step against the
    /// network's *current* budget — see [`check_budget`].
    e_allow: usize,
    extra_error_slack: usize,
    /// Start of the current pack within `plan.work`.
    pack_start: usize,
    phase: UnitPhase,
    /// Accumulated decoded chunks per (target, msg_idx); ordered so output
    /// assembly never iterates a hash map.
    chunk_store: std::collections::BTreeMap<(usize, usize), Vec<Option<BitVec>>>,
    delivered: Vec<BTreeMap<(usize, usize), BitVec>>,
    decode_failures: usize,
    rounds_before: u64,
    /// Set once the output has been assembled; stepping again is an error
    /// (the drained state could otherwise masquerade as an empty result).
    finished: bool,
    /// `Some` when running on the event-driven pack executor.
    event: Option<EventState>,
}

/// Encodes one pack's codewords and materializes its round-A traffic in
/// ascending `(src, relay)` order. The single builder behind both the
/// lockstep path (frames drawn from the network arena) and the event-mode
/// prefetch jobs (arena-free zeroed buffers) — a zeroed arena buffer and
/// `BitVec::zeros` are indistinguishable on the wire, so the two paths
/// cannot drift apart.
fn build_round_a(
    instance: &RoutingInstance,
    plan: &UnitPlan,
    cache: Option<&SharedCodewordCache>,
    parallel: bool,
    pack: &[(usize, usize)],
    mut traffic: Traffic,
    mut frame_buffer: impl FnMut(usize) -> BitVec,
) -> EncodeResult {
    let params = &plan.params;
    // ---- Encode: every lane's stage messages. Chunk extraction is a
    // cheap block copy; the encode itself is the hot part and fans out
    // per lane, with cache probe/insert batched outside the fan-out.
    let jobs: Vec<Vec<BitVec>> = pack
        .iter()
        .map(|&(stage, chunk)| {
            plan.stage_msgs[stage]
                .iter()
                .map(|&mi| payload_chunk(&instance.messages[mi].payload, chunk, params.cap_bits))
                .collect()
        })
        .collect();
    let lane_syms = encode_chunks(parallel, &params.code, cache, jobs)?;

    // ---- Materialize round-A frames in ascending (src, relay) order.
    // A frame (src, w) carries one slot per active lane; sources active
    // in several lanes of the pack share the frame at distinct offsets.
    let mut by_src: Vec<(usize, usize, usize)> = Vec::new(); // (src, lane, pos)
    for (lane, &(stage, _)) in pack.iter().enumerate() {
        for &(src, pos) in &plan.stage_src[stage] {
            by_src.push((src, lane, pos));
        }
    }
    by_src.sort_unstable();
    for group in by_src.chunk_by(|a, b| a.0 == b.0) {
        let src = group[0].0;
        for w in 0..params.l {
            if w == src {
                continue; // the source is its own relay for position src
            }
            let mut frame = frame_buffer(params.lanes * params.slot);
            for &(_, lane, pos) in group {
                frame.set(lane * params.slot, true); // validity
                frame.write_uint(
                    lane * params.slot + 1,
                    plan.symbol_bits,
                    lane_syms[lane][pos][w] as u64,
                );
            }
            traffic.send(src, w, frame);
        }
    }
    Ok((lane_syms, traffic))
}

/// Decodes one pack at its targets, one unit per `(lane, message, target)`,
/// fanned out via [`map_units`]. Shared by the lockstep path (decode right
/// after the exchange) and the event-mode background jobs (decode while
/// later packs are already on the wire); results are keyed
/// `(target, msg_idx, chunk)` so folding is order-independent.
fn decode_pack(
    instance: &RoutingInstance,
    plan: &UnitPlan,
    parallel: bool,
    pack: &[(usize, usize)],
    relay: &RelayGrid,
    delivery: &Delivery,
) -> Vec<DecodedUnit> {
    let params = &plan.params;
    let mut units: Vec<(usize, usize, usize, usize)> = Vec::new(); // (lane, chunk, pos, x)
    for (lane, &(stage, chunk)) in pack.iter().enumerate() {
        for (pos, &mi) in plan.stage_msgs[stage].iter().enumerate() {
            let msg = &instance.messages[mi];
            for &x in &msg.targets {
                if x != msg.src {
                    units.push((lane, chunk, pos, x));
                }
            }
        }
    }
    map_units(parallel, units, |(lane, chunk, pos, x)| {
        let mut received = vec![0u16; params.l];
        let mut erasures = vec![false; params.l];
        for w in 0..params.l {
            let val = if w == x {
                relay.get(w, lane, pos)
            } else {
                delivery
                    .received(x, w)
                    .and_then(|f| lane_symbol(f, lane, params.slot, plan.symbol_bits))
            };
            match val {
                Some(sym) => received[w] = sym,
                None => erasures[w] = true,
            }
        }
        let (stage, _) = pack[lane];
        let mi = plan.stage_msgs[stage][pos];
        match params
            .code
            .decode_bits(&received, &erasures, params.cap_bits)
        {
            Ok(bits) => ((x, mi, chunk), Some(bits), false),
            Err(_) => ((x, mi, chunk), None, true),
        }
    })
}

/// One relay's view after round A, as a flat sentinel-filled block: its
/// own-source symbols plus whatever its inbox carried for each lane.
fn gather_relay(
    plan: &UnitPlan,
    w: usize,
    pack: &[(usize, usize)],
    lane_offsets: &[usize],
    lane_syms: &[Vec<Vec<u16>>],
    delivery: &Delivery,
) -> Vec<u16> {
    let mut block = vec![RelayGrid::ABSENT; *lane_offsets.last().unwrap_or(&0)];
    for (lane, &(stage, _)) in pack.iter().enumerate() {
        // The source keeps its own symbol for position src — no frame.
        if let Ok(i) = plan.stage_src[stage].binary_search_by_key(&w, |e| e.0) {
            let pos = plan.stage_src[stage][i].1;
            block[lane_offsets[lane] + pos] = lane_syms[lane][pos][w];
        }
    }
    for (src, frame) in delivery.inbox_of(w) {
        for (lane, &(stage, _)) in pack.iter().enumerate() {
            let Ok(i) = plan.stage_src[stage].binary_search_by_key(&src, |e| e.0) else {
                continue;
            };
            let pos = plan.stage_src[stage][i].1;
            if let Some(sym) = lane_symbol(frame, lane, plan.params.slot, plan.symbol_bits) {
                block[lane_offsets[lane] + pos] = sym;
            }
        }
    }
    block
}

impl<'i> UnitSession<'i> {
    /// Validates parameters and schedules stages. No rounds run until the
    /// first [`UnitSession::step`]; codewords are encoded lazily, per pack.
    pub(crate) fn new(
        net: &Network,
        instance: Cow<'i, RoutingInstance>,
        cfg: &RouterConfig,
    ) -> Result<Self, CoreError> {
        let n = instance.n;
        if n != net.n() {
            return Err(CoreError::invalid("instance size != network size"));
        }
        if instance.messages.is_empty() {
            // Zero messages: the first step returns a well-formed empty
            // output without running a round — no feasibility constraint
            // can apply to an instance that routes nothing.
            let params = UnitParams::empty(cfg)?;
            return Ok(Self {
                instance: Inst::from_cow(instance, false),
                plan: Arc::new(UnitPlan {
                    params,
                    symbol_bits: cfg.symbol_bits,
                    num_stages: 0,
                    stage_msgs: Vec::new(),
                    stage_src: Vec::new(),
                    work: Vec::new(),
                }),
                parallel: cfg.parallel,
                cache: None,
                e_allow: usize::MAX,
                extra_error_slack: cfg.extra_error_slack,
                pack_start: 0,
                phase: UnitPhase::RoundA,
                chunk_store: Default::default(),
                delivered: vec![BTreeMap::new(); n],
                decode_failures: 0,
                rounds_before: net.rounds(),
                finished: false,
                event: None,
            });
        }
        let params = derive_params(net, &instance, cfg)?;
        let e_allow = absorbed_error_budget(net, cfg.extra_error_slack);
        let stage_of = schedule_stages(&instance);
        let num_stages = stage_of.iter().map(|&s| s + 1).max().unwrap_or(0);

        let mut delivered: Vec<BTreeMap<(usize, usize), BitVec>> = vec![BTreeMap::new(); n];
        // Local deliveries (target == src) never touch the network.
        for msg in &instance.messages {
            if msg.targets.contains(&msg.src) {
                delivered[msg.src].insert((msg.src, msg.slot), msg.payload.clone());
            }
        }

        let mut work: Vec<(usize, usize)> = Vec::new();
        for s in 0..num_stages {
            for c in 0..params.chunks {
                work.push((s, c));
            }
        }

        let mut stage_msgs: Vec<Vec<usize>> = vec![Vec::new(); num_stages];
        for (idx, &s) in stage_of.iter().enumerate() {
            stage_msgs[s].push(idx);
        }
        let stage_src: Vec<Vec<(usize, usize)>> = stage_msgs
            .iter()
            .map(|msgs| {
                let mut by_src: Vec<(usize, usize)> = msgs
                    .iter()
                    .enumerate()
                    .map(|(pos, &mi)| (instance.messages[mi].src, pos))
                    .collect();
                by_src.sort_unstable();
                by_src
            })
            .collect();

        Ok(Self {
            instance: Inst::from_cow(instance, cfg.event_driven),
            plan: Arc::new(UnitPlan {
                params,
                symbol_bits: cfg.symbol_bits,
                num_stages,
                stage_msgs,
                stage_src,
                work,
            }),
            parallel: cfg.parallel,
            cache: None,
            e_allow,
            extra_error_slack: cfg.extra_error_slack,
            pack_start: 0,
            phase: UnitPhase::RoundA,
            chunk_store: Default::default(),
            delivered,
            decode_failures: 0,
            rounds_before: net.rounds(),
            finished: false,
            event: cfg.event_driven.then(|| EventState {
                bus: MessageBus::new(),
                encodes: VecDeque::new(),
                next_dispatch: 0,
                decodes: VecDeque::new(),
                n,
                bandwidth: net.bandwidth(),
                pool: Arc::new(FramePool::new()),
            }),
        })
    }

    /// Attaches a shared codeword cache (a no-op handle change: encoding is
    /// deterministic, so cached and uncached sessions are bit-identical).
    pub(crate) fn with_cache(mut self, cache: Option<SharedCodewordCache>) -> Self {
        self.cache = cache;
        self
    }

    fn pack(&self) -> &[(usize, usize)] {
        let end = (self.pack_start + self.plan.params.lanes).min(self.plan.work.len());
        &self.plan.work[self.pack_start..end]
    }

    /// Dispatches round-A prefetch jobs until [`PREFETCH_PACKS`] are in
    /// flight (or the work list is exhausted). Each job encodes its pack and
    /// assembles an arena-free traffic batch off-thread.
    fn dispatch_prefetch(&mut self) {
        let Some(ev) = &mut self.event else { return };
        let lanes = self.plan.params.lanes;
        while ev.encodes.len() < PREFETCH_PACKS && ev.next_dispatch < self.plan.work.len() {
            let pack_start = ev.next_dispatch;
            ev.next_dispatch += lanes;
            let instance = self.instance.shared();
            let plan = self.plan.clone();
            let cache = self.cache.clone();
            let parallel = self.parallel;
            let (n, bandwidth) = (ev.n, ev.bandwidth);
            let pool = ev.pool.clone();
            let job = exec::spawn(move || {
                let end = (pack_start + plan.params.lanes).min(plan.work.len());
                let pack = &plan.work[pack_start..end];
                // Frame buffers come from the shared pool (zeroed, so
                // indistinguishable from `BitVec::zeros`), batched through a
                // taker to keep lock traffic off the per-frame path.
                let mut taker = pool.taker();
                build_round_a(
                    &instance,
                    &plan,
                    cache.as_ref(),
                    parallel,
                    pack,
                    Traffic::new(n, bandwidth),
                    |len| taker.take(len),
                )
            });
            ev.encodes.push_back((pack_start, job));
        }
    }

    /// Folds a decoded batch into the chunk store — pure keyed writes, so
    /// the fold is order-independent across packs.
    fn fold_decoded(&mut self, decoded: Vec<DecodedUnit>) {
        let (chunks, cap_bits) = (self.plan.params.chunks, self.plan.params.cap_bits);
        for ((x, mi, chunk), bits, failed) in decoded {
            if failed {
                self.decode_failures += 1;
            }
            let slot_entry = self
                .chunk_store
                .entry((x, mi))
                .or_insert_with(|| vec![None; chunks]);
            slot_entry[chunk] = Some(bits.unwrap_or_else(|| BitVec::zeros(cap_bits)));
        }
    }

    /// Joins in-flight decode jobs (all of them, or down to the in-flight
    /// cap), folding their results and reclaiming their deliveries.
    fn drain_decodes(&mut self, net: &mut Network, down_to: usize) {
        while self
            .event
            .as_ref()
            .is_some_and(|ev| ev.decodes.len() > down_to)
        {
            let job = self
                .event
                .as_mut()
                .and_then(|ev| ev.decodes.pop_front())
                .expect("checked non-empty");
            let (decoded, delivery) = job.join();
            // Frames feed the `Sync` pool (for the next prefetch job), the
            // sparse tables go back to the arena as usual.
            let pool = self.event.as_ref().expect("event mode").pool.clone();
            net.reclaim_split(delivery, &pool);
            self.fold_decoded(decoded);
        }
    }

    /// Round A: per-lane codeword encoding (parallel, cache-aware), frame
    /// materialization from the arena, exchange, and the relay gather
    /// (parallel per relay). In event mode the encode and frame assembly
    /// were prefetched off-thread; the batch is pulled from the message bus
    /// at the network's current virtual time.
    fn step_round_a(&mut self, net: &mut Network) -> Result<RelayGrid, CoreError> {
        let pack: Vec<(usize, usize)> = self.pack().to_vec();

        let (lane_syms, traffic) = if self.event.is_some() {
            self.dispatch_prefetch();
            let ev = self.event.as_mut().expect("event mode");
            let (start, job) = ev
                .encodes
                .pop_front()
                .expect("prefetch covers current pack");
            debug_assert_eq!(start, self.pack_start, "prefetch FIFO tracks the clock");
            let (lane_syms, batch) = job.join()?;
            // Through the bus: tagged with this pack's virtual delivery
            // time, drained at the network's clock — delivery order is the
            // virtual-time order no matter when the batch was produced.
            let vtime = net.virtual_time();
            debug_assert_eq!(
                vtime,
                self.rounds_before + 2 * (self.pack_start / self.plan.params.lanes) as u64,
                "pack round-A virtual time"
            );
            ev.bus.post(vtime, batch);
            let traffic = ev.bus.take(vtime).expect("batch staged for current vtime");
            (lane_syms, traffic)
        } else {
            let traffic = net.traffic();
            build_round_a(
                &self.instance,
                &self.plan,
                self.cache.as_ref(),
                self.parallel,
                &pack,
                traffic,
                |len| net.frame_buffer(len),
            )?
        };
        let delivery = net.exchange(traffic);

        // ---- Relay gather into the flat grid: one contiguous sentinel-
        // filled block per relay `w` (rows = lanes, ragged widths = stage
        // sizes, shared prefix-sum offsets). Each relay's inbox walk is
        // independent, so the blocks fan out and concatenate in `w` order.
        let mut lane_offsets: Vec<usize> = Vec::with_capacity(pack.len() + 1);
        lane_offsets.push(0);
        for &(stage, _) in &pack {
            lane_offsets.push(lane_offsets.last().unwrap() + self.plan.stage_msgs[stage].len());
        }
        let offsets_ref = &lane_offsets;
        let plan = &*self.plan;
        let l = plan.params.l;
        let blocks: Vec<Vec<u16>> = map_units(self.parallel, (0..l).collect::<Vec<_>>(), |w| {
            gather_relay(plan, w, &pack, offsets_ref, &lane_syms, &delivery)
        });
        net.reclaim(delivery);
        Ok(RelayGrid::from_blocks(blocks, lane_offsets))
    }

    /// Round B: per-relay forward planning (parallel), frame
    /// materialization, exchange, and per-(lane, message, target) erasure
    /// decoding — inline on the lockstep path, as a background job (joined
    /// later) in event mode.
    fn step_round_b(&mut self, net: &mut Network, relay: RelayGrid) -> Result<(), CoreError> {
        let params = &self.plan.params;
        let pack: Vec<(usize, usize)> = self.pack().to_vec();

        // ---- Plan each relay's forwards: (target, lane, symbol) sorted by
        // (target, lane). A forward frame is sent even when the relay holds
        // nothing (validity bit clear) — the wire behavior of the original
        // engine, which the adversary model and the goldens observe.
        let (plan, instance) = (&*self.plan, &*self.instance);
        let plans: Vec<Vec<(u32, u32, Option<u16>)>> =
            map_units(self.parallel, (0..params.l).collect::<Vec<_>>(), |w| {
                let mut out: Vec<(u32, u32, Option<u16>)> = Vec::new();
                for (lane, &(stage, _)) in pack.iter().enumerate() {
                    for (pos, &mi) in plan.stage_msgs[stage].iter().enumerate() {
                        let msg = &instance.messages[mi];
                        for &x in &msg.targets {
                            if x == msg.src || x == w {
                                continue; // local delivery / own-relay read
                            }
                            out.push((x as u32, lane as u32, relay.get(w, lane, pos)));
                        }
                    }
                }
                out.sort_unstable();
                out.dedup(); // duplicate targets inside one message
                out
            });

        let mut traffic = net.traffic();
        for (w, plan) in plans.iter().enumerate() {
            for group in plan.chunk_by(|a, b| a.0 == b.0) {
                let x = group[0].0 as usize;
                let mut frame = net.frame_buffer(params.lanes * params.slot);
                for &(_, lane, val) in group {
                    if let Some(sym) = val {
                        frame.set(lane as usize * params.slot, true);
                        frame.write_uint(
                            lane as usize * params.slot + 1,
                            self.plan.symbol_bits,
                            sym as u64,
                        );
                    }
                }
                traffic.send(w, x, frame);
            }
        }
        let delivery = net.exchange(traffic);

        if self.event.is_some() {
            // ---- Event mode: the decode moves off-thread; its results fold
            // in later (keyed writes — order-independent), its delivery is
            // reclaimed at join time.
            let instance = self.instance.shared();
            let plan = self.plan.clone();
            let parallel = self.parallel;
            let job = exec::spawn(move || {
                let decoded = decode_pack(&instance, &plan, parallel, &pack, &relay, &delivery);
                (decoded, delivery)
            });
            self.event
                .as_mut()
                .expect("event mode")
                .decodes
                .push_back(job);
            self.drain_decodes(net, DECODES_IN_FLIGHT);
        } else {
            let decoded = decode_pack(
                &self.instance,
                &self.plan,
                self.parallel,
                &pack,
                &relay,
                &delivery,
            );
            net.reclaim(delivery);
            self.fold_decoded(decoded);
        }
        Ok(())
    }

    /// Advances one exchange; `Some(output)` when the final pack is done.
    pub(crate) fn step(&mut self, net: &mut Network) -> Result<Option<RoutingOutput>, CoreError> {
        if self.finished {
            return Err(CoreError::invalid(
                "routing session stepped after completion",
            ));
        }
        if self.pack_start >= self.plan.work.len() {
            return Ok(Some(self.finish(net)));
        }
        check_budget(net, self.e_allow, self.extra_error_slack)?;
        match std::mem::replace(&mut self.phase, UnitPhase::RoundA) {
            UnitPhase::RoundA => {
                let relay = self.step_round_a(net)?;
                self.phase = UnitPhase::RoundB { relay };
                Ok(None)
            }
            UnitPhase::RoundB { relay } => {
                self.step_round_b(net, relay)?;
                self.pack_start += self.plan.params.lanes;
                self.phase = UnitPhase::RoundA;
                if self.pack_start >= self.plan.work.len() {
                    return Ok(Some(self.finish(net)));
                }
                Ok(None)
            }
        }
    }

    /// The engine's instance, for [`super::RouteSession::snapshot`].
    pub(crate) fn instance_ref(&self) -> &RoutingInstance {
        &self.instance
    }

    /// The dispatch frontier the event executor must sit at when the
    /// session is exactly between two steps in the current phase.
    fn quiesced_dispatch(&self) -> usize {
        self.pack_start
            + match self.phase {
                UnitPhase::RoundA => 0,
                UnitPhase::RoundB { .. } => self.plan.params.lanes,
            }
    }

    /// Quiesces event-path work to the current step boundary: joins every
    /// background decode (the fold is order-independent, so folding early
    /// is invisible), discards prefetched round-A encodes (encoding is
    /// pure — re-running it is bit-identical), and rewinds the dispatch
    /// frontier so stepping on re-dispatches them.
    fn quiesce(&mut self, net: &mut Network) {
        if self.event.is_none() {
            return;
        }
        self.drain_decodes(net, 0);
        let next = self.quiesced_dispatch();
        let ev = self.event.as_mut().expect("event mode");
        ev.encodes.clear();
        ev.next_dispatch = next;
    }

    /// Serializes the session's dynamic state (everything `new` cannot
    /// re-derive), quiescing first; see [`super::RouteSession::snapshot`].
    pub(crate) fn snapshot_state(&mut self, net: &mut Network, enc: &mut Enc) {
        self.quiesce(net);
        enc.put_usize(self.e_allow);
        enc.put_usize(self.pack_start);
        match &self.phase {
            UnitPhase::RoundA => enc.put_u8(0),
            UnitPhase::RoundB { relay } => {
                enc.put_u8(1);
                relay.snapshot(enc);
            }
        }
        type ChunkEntries<'a> = Vec<(&'a (usize, usize), &'a Vec<Option<BitVec>>)>;
        let entries: ChunkEntries<'_> = self.chunk_store.iter().collect();
        enc.put_seq(&entries, |e, ((x, mi), chunks)| {
            e.put_usize(*x);
            e.put_usize(*mi);
            e.put_seq(chunks, |e, c| e.put_opt(c.as_ref(), |e, b| e.put_bits(b)));
        });
        super::snapshot_delivered(&self.delivered, enc);
        enc.put_usize(self.decode_failures);
        enc.put_u64(self.rounds_before);
        enc.put_bool(self.finished);
    }

    /// Rebuilds a session from `new` (same plan, schedule, and code — all
    /// deterministic functions of the instance and config) and overlays the
    /// dynamic state written by [`UnitSession::snapshot_state`].
    pub(crate) fn restore(
        net: &Network,
        instance: RoutingInstance,
        cfg: &RouterConfig,
        cache: Option<SharedCodewordCache>,
        dec: &mut Dec<'_>,
    ) -> Result<UnitSession<'static>, CoreError> {
        let mut s = UnitSession::new(net, Cow::Owned(instance), cfg)?.with_cache(cache);
        let e_allow = dec.get_usize()?;
        if e_allow != s.e_allow {
            return Err(CoreError::invalid(format!(
                "snapshot: absorbed error budget drifted across restore \
                 (saved {e_allow}, rebuilt {})",
                s.e_allow
            )));
        }
        s.pack_start = dec.get_usize()?;
        s.phase = match dec.get_u8()? {
            0 => UnitPhase::RoundA,
            1 => UnitPhase::RoundB {
                relay: RelayGrid::restore(dec)?,
            },
            t => return Err(CoreError::invalid(format!("snapshot: unit phase tag {t}"))),
        };
        let entries = dec.get_seq(17, |d| {
            let x = d.get_usize()?;
            let mi = d.get_usize()?;
            let chunks = d.get_seq(1, |d| d.get_opt(Dec::get_bits))?;
            Ok(((x, mi), chunks))
        })?;
        let mut last = None;
        s.chunk_store = Default::default();
        for ((x, mi), chunks) in entries {
            if last.is_some_and(|p| p >= (x, mi)) {
                return Err(CoreError::invalid("snapshot: chunk store out of order"));
            }
            last = Some((x, mi));
            s.chunk_store.insert((x, mi), chunks);
        }
        s.delivered = super::restore_delivered(dec)?;
        if s.delivered.len() != s.instance.n {
            return Err(CoreError::invalid(
                "snapshot: delivered table size mismatch",
            ));
        }
        s.decode_failures = dec.get_usize()?;
        s.rounds_before = dec.get_u64()?;
        s.finished = dec.get_bool()?;
        let next = s.quiesced_dispatch();
        if let Some(ev) = &mut s.event {
            ev.next_dispatch = next;
        }
        Ok(s)
    }

    /// Assembles the chunked payloads into the final output. Event mode
    /// drains every outstanding decode job first.
    fn finish(&mut self, net: &mut Network) -> RoutingOutput {
        self.drain_decodes(net, 0);
        self.finished = true;
        let mut delivered = std::mem::take(&mut self.delivered);
        for ((x, mi), chunks) in std::mem::take(&mut self.chunk_store) {
            let msg = &self.instance.messages[mi];
            let mut full = BitVec::new();
            for c in chunks {
                full.extend_bits(&c.unwrap_or_else(|| BitVec::zeros(self.plan.params.cap_bits)));
            }
            full.truncate(msg.payload.len());
            delivered[x].insert((msg.src, msg.slot), full);
        }
        RoutingOutput {
            delivered,
            report: RoutingReport {
                engine: EngineUsed::Unit,
                rounds: net.rounds() - self.rounds_before,
                stages: self.plan.num_stages,
                chunks: self.plan.params.chunks,
                decode_failures: self.decode_failures,
            },
        }
    }
}

/// Runs the unit engine to completion. See the module docs.
pub fn route_unit(
    net: &mut Network,
    instance: &RoutingInstance,
    cfg: &RouterConfig,
) -> Result<RoutingOutput, CoreError> {
    let mut session = UnitSession::new(net, Cow::Borrowed(instance), cfg)?;
    loop {
        if let Some(out) = session.step(net)? {
            return Ok(out);
        }
    }
}

/// [`route_unit`] on one thread: the bit-identity oracle for the
/// stage-parallel path (regression- and property-tested in
/// `tests/stage_parallel.rs`).
///
/// # Errors
///
/// As [`route_unit`].
pub fn route_unit_serial(
    net: &mut Network,
    instance: &RoutingInstance,
    cfg: &RouterConfig,
) -> Result<RoutingOutput, CoreError> {
    let cfg = RouterConfig {
        parallel: false,
        ..cfg.clone()
    };
    route_unit(net, instance, &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::SuperMessage;
    use bdclique_netsim::Adversary;

    fn instance(
        n: usize,
        payload_bits: usize,
        msgs: Vec<(usize, usize, Vec<usize>)>,
    ) -> RoutingInstance {
        let messages = msgs
            .into_iter()
            .map(|(src, slot, targets)| SuperMessage {
                src,
                slot,
                payload: BitVec::from_fn(payload_bits, |i| (i + src + slot) % 3 == 0),
                targets,
            })
            .collect();
        RoutingInstance {
            n,
            payload_bits,
            messages,
        }
    }

    /// The original occupancy-matrix first-fit coloring, kept as the oracle
    /// for the counter-based scheduler.
    fn schedule_stages_dense_oracle(instance: &RoutingInstance) -> Vec<usize> {
        let mut stage_of = vec![usize::MAX; instance.messages.len()];
        let mut stage_sources: Vec<Vec<bool>> = Vec::new();
        let mut stage_targets: Vec<Vec<bool>> = Vec::new();
        for (idx, m) in instance.messages.iter().enumerate() {
            let mut stage = 0usize;
            loop {
                if stage == stage_sources.len() {
                    stage_sources.push(vec![false; instance.n]);
                    stage_targets.push(vec![false; instance.n]);
                }
                let src_free = !stage_sources[stage][m.src];
                let tgts_free = m.targets.iter().all(|&t| !stage_targets[stage][t]);
                if src_free && tgts_free {
                    stage_sources[stage][m.src] = true;
                    for &t in &m.targets {
                        stage_targets[stage][t] = true;
                    }
                    stage_of[idx] = stage;
                    break;
                }
                stage += 1;
            }
        }
        stage_of
    }

    #[test]
    fn stage_coloring_respects_conflicts() {
        let inst = instance(
            8,
            4,
            vec![
                (0, 0, vec![1]),
                (0, 1, vec![2]), // same src as first => different stage
                (3, 0, vec![1]), // shares target 1 with first => different stage
                (4, 0, vec![5]), // independent => can share stage 0
            ],
        );
        let stages = schedule_stages(&inst);
        assert_ne!(stages[0], stages[1]);
        assert_ne!(stages[0], stages[2]);
        assert_eq!(stages[0], stages[3]);
    }

    /// The counter-based scheduler is the first-fit coloring, stage for
    /// stage — round counts and every golden depending on them are
    /// unchanged.
    #[test]
    fn counter_scheduler_matches_first_fit_oracle() {
        let mut cases: Vec<RoutingInstance> = Vec::new();
        // A √n-wave shape (every node sends s messages, segment-local
        // targets), the workload the scheduler exists for.
        let (n, s) = (16usize, 4usize);
        cases.push(instance(
            n,
            4,
            (0..n)
                .flat_map(|v| (0..s).map(move |j| (v, j, vec![(v / s) * s + j])))
                .collect(),
        ));
        // A conflict chain (a,b),(b,c),(c,d),… that pushes naive counters
        // past the greedy bound.
        cases.push(instance(
            8,
            4,
            (0..7).map(|i| (i, 0, vec![i + 1])).collect(),
        ));
        // Multi-target messages and self-targets.
        cases.push(instance(
            8,
            4,
            vec![
                (0, 0, vec![1, 2, 3]),
                (1, 0, vec![2, 0]),
                (0, 1, vec![0, 4]),
                (5, 0, vec![1]),
                (2, 0, vec![3, 4, 5, 6]),
            ],
        ));
        // Pseudo-random dense instance.
        cases.push(instance(
            12,
            4,
            (0..60)
                .map(|i| (i * 7 % 12, i / 12, vec![(i * 5 + 3) % 12]))
                .collect(),
        ));
        for (case, inst) in cases.iter().enumerate() {
            assert_eq!(
                schedule_stages(inst),
                schedule_stages_dense_oracle(inst),
                "case {case} diverged from the first-fit oracle"
            );
        }
    }

    /// First-fit never exceeds the greedy coloring bound `2·Δ − 1` on
    /// single-target instances.
    #[test]
    fn stage_count_within_greedy_bound() {
        for seed in 0..20usize {
            let n = 8 + seed % 9;
            let msgs: Vec<(usize, usize, Vec<usize>)> = (0..(3 * n))
                .map(|i| {
                    let src = (i * 7 + seed) % n;
                    (src, i / n, vec![(i * 11 + seed * 3 + 1) % n])
                })
                .collect();
            let inst = instance(n, 4, msgs);
            let stages = schedule_stages(&inst);
            let num_stages = stages.iter().map(|&s| s + 1).max().unwrap();
            let delta = inst
                .max_source_multiplicity()
                .max(inst.max_target_multiplicity());
            assert!(
                num_stages < 2 * delta,
                "seed {seed}: {num_stages} stages > 2·{delta} − 1"
            );
        }
    }

    #[test]
    fn fault_free_roundtrip_single_message() {
        let mut net = Network::new(8, 9, 0.0, Adversary::none());
        let inst = instance(8, 12, vec![(2, 0, vec![5, 6])]);
        let out = route_unit(&mut net, &inst, &RouterConfig::default()).unwrap();
        assert_eq!(
            out.delivered[5].get(&(2, 0)),
            Some(&inst.messages[0].payload)
        );
        assert_eq!(
            out.delivered[6].get(&(2, 0)),
            Some(&inst.messages[0].payload)
        );
        assert_eq!(out.report.decode_failures, 0);
        assert_eq!(out.report.rounds, 2); // one stage, one chunk
    }

    #[test]
    fn multi_chunk_payload() {
        let mut net = Network::new(8, 9, 0.0, Adversary::none());
        // capacity per chunk: (7 - 2) symbols * 8 bits = 40 bits (slack 1).
        let inst = instance(8, 100, vec![(0, 0, vec![7])]);
        let out = route_unit(&mut net, &inst, &RouterConfig::default()).unwrap();
        assert_eq!(
            out.delivered[7].get(&(0, 0)),
            Some(&inst.messages[0].payload)
        );
        assert!(out.report.chunks >= 2);
    }

    #[test]
    fn self_target_is_local_and_free() {
        let mut net = Network::new(8, 9, 0.0, Adversary::none());
        let inst = instance(8, 8, vec![(3, 0, vec![3])]);
        let out = route_unit(&mut net, &inst, &RouterConfig::default()).unwrap();
        assert_eq!(
            out.delivered[3].get(&(3, 0)),
            Some(&inst.messages[0].payload)
        );
        assert_eq!(out.report.rounds, 2); // stage still runs (no other msgs needed it, but schedule exists)
    }

    #[test]
    fn bandwidth_lanes_reduce_rounds() {
        // Two independent messages, bandwidth for 2 lanes: 1 round pair.
        let mut wide = Network::new(8, 18, 0.0, Adversary::none());
        let inst = instance(
            8,
            8,
            vec![(0, 0, vec![1]), (0, 1, vec![2])], // same src: 2 stages
        );
        let out = route_unit(&mut wide, &inst, &RouterConfig::default()).unwrap();
        assert_eq!(out.report.rounds, 2, "two stages share one round pair");
        assert_eq!(
            out.delivered[1].get(&(0, 0)),
            Some(&inst.messages[0].payload)
        );
        assert_eq!(
            out.delivered[2].get(&(0, 1)),
            Some(&inst.messages[1].payload)
        );
    }

    #[test]
    fn infeasible_alpha_is_reported() {
        // n = 8, alpha = 0.45: budget 3, e_allow = 7, needs L > 14 > 8.
        let mut net = Network::new(8, 9, 0.45, Adversary::none());
        let inst = instance(8, 8, vec![(0, 0, vec![1])]);
        assert!(matches!(
            route_unit(&mut net, &inst, &RouterConfig::default()),
            Err(CoreError::Infeasible { .. })
        ));
    }

    /// The event-driven executor is bit-identical to the lockstep path on
    /// the unit engine: same outputs, same rounds, same stats, same
    /// corruption history — across single- and multi-pack, multi-chunk,
    /// multi-target, and adversarial instances.
    #[test]
    fn event_driven_matches_lockstep() {
        use bdclique_adversary::adaptive::GreedyLoad;
        use bdclique_adversary::Payload;

        let cases: Vec<(usize, usize, f64, RoutingInstance)> = vec![
            (8, 9, 0.0, instance(8, 12, vec![(2, 0, vec![5, 6])])),
            (8, 9, 0.0, instance(8, 100, vec![(0, 0, vec![7])])),
            (
                8,
                18,
                0.0,
                instance(8, 8, vec![(0, 0, vec![1]), (0, 1, vec![2])]),
            ),
            (
                16,
                18,
                1.2 / 16.0,
                instance(
                    16,
                    40,
                    (0..48)
                        .map(|i| (i % 16, i / 16, vec![(i * 7 + 3) % 16]))
                        .collect(),
                ),
            ),
        ];
        for (case, (n, bw, alpha, inst)) in cases.into_iter().enumerate() {
            let run = |event: bool| {
                let adversary = if alpha > 0.0 {
                    Adversary::adaptive(GreedyLoad::new(Payload::Flip, 0xe0 + case as u64))
                } else {
                    Adversary::none()
                };
                let mut net = Network::new(n, bw, alpha, adversary);
                let cfg = RouterConfig {
                    mode: crate::routing::RoutingMode::Unit,
                    event_driven: event,
                    ..RouterConfig::default()
                };
                let out = route_unit(&mut net, &inst, &cfg).unwrap();
                let corrupted: Vec<_> = net
                    .history()
                    .records()
                    .iter()
                    .map(|r| (r.round, r.corrupted.clone(), r.frames, r.bits))
                    .collect();
                let stats = *net.stats();
                (out, stats, corrupted)
            };
            let (lock_out, lock_stats, lock_hist) = run(false);
            let (ev_out, ev_stats, ev_hist) = run(true);
            assert_eq!(lock_stats, ev_stats, "case {case}: stats");
            assert_eq!(lock_hist, ev_hist, "case {case}: round history");
            assert_eq!(lock_out.report, ev_out.report, "case {case}: report");
            for (x, (a, b)) in lock_out
                .delivered
                .iter()
                .zip(ev_out.delivered.iter())
                .enumerate()
            {
                assert_eq!(a, b, "case {case}: delivered payloads at node {x}");
            }
        }
    }
}
