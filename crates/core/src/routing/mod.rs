//! Resilient super-message routing (Theorem 4.1 / Theorem 1.1).
//!
//! An instance consists of super-messages, each identified by `(src, slot)`
//! with a payload of at most `payload_bits` bits and a target list known to
//! all nodes. Two execution engines implement the same contract:
//!
//! * [`mod@unit`] — the *scheduled unit-instance* engine: messages are greedily
//!   colored into stages so that each stage has per-node source- and
//!   target-multiplicity 1, and every stage scatters one Reed–Solomon
//!   codeword symbol per relay node. Maximal decode margin
//!   (`2·⌊αn⌋` errors against a radius of `(L-k)/2`), round cost
//!   `O(stages · chunks)`.
//! * [`coverfree`] — the paper's Section 4.2 engine: all `k` messages per
//!   node route *simultaneously* through a `(k-1, δ)`-cover-free family of
//!   receiver sets with the `InLoad`/`OutLoad` = 1 filters; overlap
//!   positions become *known erasures* (our erasure-aware refinement of
//!   Lemma 4.6). Round cost `O(chunks)` — constant in `k` — at the price of
//!   a tighter decode margin.
//!
//! [`route`] picks the engine per [`RouterConfig::mode`]; `Auto` uses the
//! cover-free engine whenever its margin validates and falls back to unit
//! scheduling otherwise, which mirrors how the paper trades the two (its
//! constants make the cover-free margin positive only asymptotically; see
//! `DESIGN.md`, substitution 4).

pub mod coverfree;
pub mod unit;

use crate::error::CoreError;
use bdclique_bits::BitVec;
use bdclique_netsim::Network;
use std::collections::HashMap;

/// One super-message: `slot` disambiguates multiple messages from the same
/// source (the paper's index `j`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuperMessage {
    /// Source node.
    pub src: usize,
    /// Source-local slot `j`.
    pub slot: usize,
    /// Payload (at most the instance's `payload_bits`).
    pub payload: BitVec,
    /// Target nodes (may include `src`; duplicates ignored).
    pub targets: Vec<usize>,
}

/// A routing instance: the global knowledge shared by all nodes (message
/// identities, payload sizes, and target lists — but of course not payload
/// *contents*, which only sources hold).
#[derive(Debug, Clone)]
pub struct RoutingInstance {
    /// Clique size.
    pub n: usize,
    /// Upper bound λ on payload bits (all payloads padded to this on the
    /// wire).
    pub payload_bits: usize,
    /// The super-messages.
    pub messages: Vec<SuperMessage>,
}

impl RoutingInstance {
    /// Validates shape invariants.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidInput`] with a diagnosis.
    pub fn validate(&self) -> Result<(), CoreError> {
        let mut seen = std::collections::HashSet::new();
        for m in &self.messages {
            if m.src >= self.n {
                return Err(CoreError::invalid(format!("src {} out of range", m.src)));
            }
            if m.payload.len() > self.payload_bits {
                return Err(CoreError::invalid(format!(
                    "payload of ({}, {}) has {} bits > λ = {}",
                    m.src,
                    m.slot,
                    m.payload.len(),
                    self.payload_bits
                )));
            }
            if m.targets.is_empty() {
                return Err(CoreError::invalid(format!(
                    "message ({}, {}) has no targets",
                    m.src, m.slot
                )));
            }
            if m.targets.iter().any(|&t| t >= self.n) {
                return Err(CoreError::invalid("target out of range".to_string()));
            }
            if !seen.insert((m.src, m.slot)) {
                return Err(CoreError::invalid(format!(
                    "duplicate message id ({}, {})",
                    m.src, m.slot
                )));
            }
        }
        Ok(())
    }

    /// Maximum number of messages per source node.
    pub fn max_source_multiplicity(&self) -> usize {
        let mut counts = vec![0usize; self.n];
        for m in &self.messages {
            counts[m.src] += 1;
        }
        counts.into_iter().max().unwrap_or(0)
    }

    /// Maximum number of messages targeting any single node.
    pub fn max_target_multiplicity(&self) -> usize {
        let mut counts = vec![0usize; self.n];
        for m in &self.messages {
            let mut uniq: Vec<usize> = m.targets.clone();
            uniq.sort_unstable();
            uniq.dedup();
            for t in uniq {
                counts[t] += 1;
            }
        }
        counts.into_iter().max().unwrap_or(0)
    }
}

/// Which engine to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingMode {
    /// Cover-free when its margin validates, otherwise unit scheduling.
    #[default]
    Auto,
    /// Force the scheduled unit-instance engine.
    Unit,
    /// Force the cover-free engine (error if infeasible).
    CoverFree,
}

/// Router tuning knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterConfig {
    /// Engine selection.
    pub mode: RoutingMode,
    /// Fan the per-pack encode (round-A frame assembly) and decode (round-B
    /// erasure decoding) out across the rayon thread pool. Bit-identical to
    /// the serial path (`false` — the oracle behind
    /// [`unit::route_unit_serial`] / [`coverfree::route_coverfree_serial`]);
    /// network rounds themselves stay strictly sequential either way.
    pub parallel: bool,
    /// Bits per Reed–Solomon symbol (field GF(2^m)); the wire slot is one
    /// bit wider (a validity flag).
    pub symbol_bits: u32,
    /// Extra error-correction slack added on top of the `2·⌊αn⌋` worst-case
    /// adversarial symbol corruptions.
    pub extra_error_slack: usize,
    /// Cover-free engine: ground-group size (elements per group); the
    /// receiver-set size is `n / group_size`. `None` picks
    /// `max(4, 2·k)` where `k` is the instance's multiplicity.
    pub cf_group_size: Option<usize>,
    /// Cover-free engine: maximum acceptable verified cover fraction δ.
    pub cf_delta: f64,
    /// Cover-free engine: seed-retry budget for the verified construction.
    pub cf_seed_tries: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            mode: RoutingMode::Auto,
            parallel: true,
            symbol_bits: 8,
            extra_error_slack: 1,
            cf_group_size: None,
            cf_delta: 0.5,
            cf_seed_tries: 64,
        }
    }
}

/// Which engine actually ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineUsed {
    /// Scheduled unit instances.
    Unit,
    /// Cover-free parallel routing.
    CoverFree,
}

/// Execution report for a routing call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingReport {
    /// Engine that ran.
    pub engine: EngineUsed,
    /// Network rounds consumed.
    pub rounds: u64,
    /// Unit engine: number of stages scheduled (1 for cover-free).
    pub stages: usize,
    /// Payload chunks per message.
    pub chunks: usize,
    /// Codeword decodes that failed (0 when the adversary is within the
    /// validated margin).
    pub decode_failures: usize,
}

/// Routing results: `delivered[v]` maps `(src, slot)` to the payload `v`
/// decoded.
#[derive(Debug, Clone)]
pub struct RoutingOutput {
    /// Per-node delivered payloads.
    pub delivered: Vec<HashMap<(usize, usize), BitVec>>,
    /// Execution report.
    pub report: RoutingReport,
}

/// A routing call in flight: one [`RouteSession::step`] advances exactly one
/// network `exchange`, so callers (protocol sessions, the driver) can observe
/// or intervene between rounds. Engine selection, feasibility validation,
/// and codeword pre-encoding all happen at construction, before any round
/// runs — exactly as [`route`] behaved, which is now a thin loop over this
/// type.
pub struct RouteSession<'i> {
    engine: EngineSession<'i>,
}

enum EngineSession<'i> {
    Unit(unit::UnitSession<'i>),
    CoverFree(coverfree::CfSession<'i>),
}

impl RouteSession<'static> {
    /// Validates the instance and constructs the configured engine's
    /// session. Takes the instance by value — protocol sessions hand over
    /// the waves they build, clone-free.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidInput`] for malformed instances and
    /// [`CoreError::Infeasible`] when no engine's decode margin validates
    /// for the network's α. No rounds run on the error path.
    pub fn new(
        net: &Network,
        instance: RoutingInstance,
        cfg: &RouterConfig,
    ) -> Result<Self, CoreError> {
        Self::with_instance(net, std::borrow::Cow::Owned(instance), cfg)
    }
}

impl<'i> RouteSession<'i> {
    /// [`RouteSession::new`] over a borrowed instance — the zero-copy path
    /// behind [`route`] for callers that keep ownership.
    ///
    /// # Errors
    ///
    /// As [`RouteSession::new`].
    pub fn borrowed(
        net: &Network,
        instance: &'i RoutingInstance,
        cfg: &RouterConfig,
    ) -> Result<Self, CoreError> {
        Self::with_instance(net, std::borrow::Cow::Borrowed(instance), cfg)
    }

    fn with_instance(
        net: &Network,
        instance: std::borrow::Cow<'i, RoutingInstance>,
        cfg: &RouterConfig,
    ) -> Result<Self, CoreError> {
        instance.validate()?;
        if instance.n != net.n() {
            return Err(CoreError::invalid("instance size != network size"));
        }
        let engine = match cfg.mode {
            RoutingMode::Unit => EngineSession::Unit(unit::UnitSession::new(net, instance, cfg)?),
            RoutingMode::CoverFree => {
                EngineSession::CoverFree(coverfree::CfSession::new(net, instance, cfg)?)
            }
            // Auto probes the cover-free margin first (all its infeasibility
            // checks live in parameter derivation, before any round), and
            // falls back to unit scheduling while keeping ownership of the
            // instance.
            RoutingMode::Auto => match coverfree::derive_params(net, &instance, cfg) {
                Ok(params) => EngineSession::CoverFree(coverfree::CfSession::from_params(
                    net, instance, cfg, params,
                )?),
                Err(CoreError::Infeasible { .. }) => {
                    EngineSession::Unit(unit::UnitSession::new(net, instance, cfg)?)
                }
                Err(e) => return Err(e),
            },
        };
        Ok(Self { engine })
    }

    /// Advances at most one `exchange`; returns `Some(output)` once the
    /// final round of the instance has run. Stepping a completed session is
    /// an error, not an empty result.
    ///
    /// # Errors
    ///
    /// Propagates engine errors ([`CoreError`]).
    pub fn step(&mut self, net: &mut Network) -> Result<Option<RoutingOutput>, CoreError> {
        match &mut self.engine {
            EngineSession::Unit(s) => s.step(net),
            EngineSession::CoverFree(s) => s.step(net),
        }
    }
}

/// Routes an instance over the network with the configured engine, running
/// the session to completion. Borrows the instance — no payload copies.
///
/// # Errors
///
/// [`CoreError::InvalidInput`] for malformed instances and
/// [`CoreError::Infeasible`] when no engine's decode margin validates for
/// the network's α.
pub fn route(
    net: &mut Network,
    instance: &RoutingInstance,
    cfg: &RouterConfig,
) -> Result<RoutingOutput, CoreError> {
    let mut session = RouteSession::borrowed(net, instance, cfg)?;
    loop {
        if let Some(out) = session.step(net)? {
            return Ok(out);
        }
    }
}

/// [`route`] on one thread: the bit-identity oracle for the stage-parallel
/// engines (same pattern as `compile` vs `compile_serial`).
///
/// # Errors
///
/// As [`route`].
pub fn route_serial(
    net: &mut Network,
    instance: &RoutingInstance,
    cfg: &RouterConfig,
) -> Result<RoutingOutput, CoreError> {
    let cfg = RouterConfig {
        parallel: false,
        ..cfg.clone()
    };
    route(net, instance, &cfg)
}

/// Maps `f` over work units, fanned out across the rayon pool or on one
/// thread, always collecting in input order — the single switch point
/// between the engines' parallel paths and their serial oracles, so the two
/// cannot drift apart (the `compile` / `compile_serial` pattern).
pub(crate) fn map_units<T, U, F>(parallel: bool, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Send + Sync,
{
    use rayon::prelude::*;
    if parallel {
        items.into_par_iter().map(f).collect()
    } else {
        items.into_iter().map(f).collect()
    }
}

/// Reads lane `lane`'s symbol out of a wire frame, `None` when the frame is
/// too short or its validity bit is clear. Shared wire format of both
/// engines: `lanes` slots of `slot = symbol_bits + 1` bits, validity first.
pub(crate) fn lane_symbol(
    frame: &bdclique_bits::BitVec,
    lane: usize,
    slot: usize,
    symbol_bits: u32,
) -> Option<u16> {
    (frame.len() >= (lane + 1) * slot && frame.get(lane * slot))
        .then(|| frame.read_uint(lane * slot + 1, symbol_bits) as u16)
}

/// Adversarial symbols per codeword a session must absorb at the network's
/// *current* fault budget: `2·⌊αn⌋` (one budget's worth per round of the
/// two-round scatter/gather) plus the configured slack. The single
/// definition both engines size their codes from at construction **and**
/// [`check_budget`] re-evaluates on every step — keeping them one function
/// is what makes the mid-session re-validation trustworthy.
pub(crate) fn absorbed_error_budget(net: &Network, slack: usize) -> usize {
    2 * net.fault_budget() + slack
}

/// Decode margins are fixed at session construction from the then-current
/// fault budget; a [`Network::set_alpha`](bdclique_netsim::Network::set_alpha)
/// (e.g. from a scheduled observer) that *raises* the budget mid-session
/// would silently undershoot the decoding radius, so both engines
/// re-validate it before every exchange and refuse to continue once it has
/// grown past the `e_allow` symbols their code absorbs.
pub(crate) fn check_budget(net: &Network, e_allow: usize, slack: usize) -> Result<(), CoreError> {
    let e_now = absorbed_error_budget(net, slack);
    if e_now > e_allow {
        return Err(CoreError::infeasible(format!(
            "fault budget grew mid-session: the code absorbs {e_allow} adversarial symbols \
             per codeword but the current budget implies {e_now}"
        )));
    }
    Ok(())
}

/// The placeholder code for a zero-message session (nothing is encoded or
/// decoded, so only the symbol width must be representable), plus its wire
/// slot width. Shared by both engines' empty-instance guards.
pub(crate) fn empty_instance_code(
    cfg: &RouterConfig,
) -> Result<(bdclique_codes::ReedSolomon, usize), CoreError> {
    let m = cfg.symbol_bits;
    if !(2..=8).contains(&m) {
        return Err(CoreError::invalid("symbol_bits must be in 2..=8"));
    }
    let code = bdclique_codes::ReedSolomon::new(m, 2, 1)
        .map_err(|e| CoreError::invalid(format!("RS construction: {e}")))?;
    Ok((code, m as usize + 1))
}
