//! The `AllToAllComm` problem (Definition 1 of the paper).

use bdclique_bits::BitVec;
use bdclique_snapshot::{Dec, Enc, Restore, SnapError, Snapshot};
use rand::Rng;

/// An instance of `AllToAllComm`: node `u` holds a `B`-bit message `m_{u,v}`
/// for every `v`; the goal is for every `v` to learn `{m_{u,v}}_u`.
///
/// # Examples
///
/// ```
/// use bdclique_core::AllToAllInstance;
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let inst = AllToAllInstance::random(8, 4, &mut rng);
/// assert_eq!(inst.message(3, 5).len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllToAllInstance {
    n: usize,
    b: usize,
    /// Row-major: `messages[u * n + v]`; the diagonal holds `u`'s message to
    /// itself (delivered locally, never on the wire).
    messages: Vec<BitVec>,
}

impl AllToAllInstance {
    /// Builds an instance from explicit messages (`messages[u][v]`), moving
    /// the rows in without cloning.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not `n × n` or some message is not exactly
    /// `b` bits.
    pub fn new(n: usize, b: usize, messages: Vec<Vec<BitVec>>) -> Self {
        assert_eq!(messages.len(), n, "need one row per node");
        let mut flat = Vec::with_capacity(n * n);
        for row in messages {
            assert_eq!(row.len(), n, "need one message per target");
            for m in row {
                assert_eq!(m.len(), b, "every message must be exactly {b} bits");
                flat.push(m);
            }
        }
        Self {
            n,
            b,
            messages: flat,
        }
    }

    /// A uniformly random instance.
    pub fn random(n: usize, b: usize, rng: &mut impl Rng) -> Self {
        let messages = (0..n * n)
            .map(|_| BitVec::from_fn(b, |_| rng.gen()))
            .collect();
        Self { n, b, messages }
    }

    /// A random instance masked to a topology: `m_{u,v}` is uniformly random
    /// when `(u, v)` is an edge (or `u = v`), and all-zeros otherwise — the
    /// natural all-to-all workload on a sparse graph, where non-adjacent
    /// pairs have nothing to exchange and a receiver may assume the zero
    /// message for them. On [`bdclique_netsim::Topology::complete`] this is
    /// distributed exactly like [`AllToAllInstance::random`] (every pair is
    /// an edge), though the draw order differs.
    pub fn random_on(topo: &bdclique_netsim::Topology, b: usize, rng: &mut impl Rng) -> Self {
        let n = topo.n();
        let messages = (0..n * n)
            .map(|i| {
                let (u, v) = (i / n, i % n);
                if u == v || topo.contains(u, v) {
                    BitVec::from_fn(b, |_| rng.gen())
                } else {
                    BitVec::zeros(b)
                }
            })
            .collect();
        Self { n, b, messages }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Message size `B` in bits.
    pub fn b(&self) -> usize {
        self.b
    }

    /// The message `m_{u,v}`.
    pub fn message(&self, u: usize, v: usize) -> &BitVec {
        &self.messages[u * self.n + v]
    }

    /// The concatenation `M°({u}, V)` (all of `u`'s outgoing messages in
    /// target order) — the node-local input of node `u`.
    pub fn outgoing_concat(&self, u: usize) -> BitVec {
        BitVec::concat((0..self.n).map(|v| self.message(u, v)))
    }

    /// Checks a protocol output: `output[v][u]` should equal `m_{u,v}`.
    /// Returns the number of wrong or missing messages.
    pub fn count_errors(&self, output: &AllToAllOutput) -> usize {
        let mut errors = 0;
        for v in 0..self.n {
            for u in 0..self.n {
                match output.received(v, u) {
                    Some(m) if m == self.message(u, v) => {}
                    _ => errors += 1,
                }
            }
        }
        errors
    }
}

/// A protocol's answer to an [`AllToAllInstance`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllToAllOutput {
    n: usize,
    /// `received[v * n + u]` = what `v` believes `m_{u,v}` is.
    received: Vec<Option<BitVec>>,
}

impl AllToAllOutput {
    /// An output with nothing received yet.
    pub fn empty(n: usize) -> Self {
        Self {
            n,
            received: vec![None; n * n],
        }
    }

    /// Records `v`'s belief about `m_{u,v}`.
    pub fn set(&mut self, v: usize, u: usize, message: BitVec) {
        self.received[v * self.n + u] = Some(message);
    }

    /// What `v` believes `m_{u,v}` is.
    pub fn received(&self, v: usize, u: usize) -> Option<&BitVec> {
        self.received[v * self.n + u].as_ref()
    }

    /// Consumes the output into receiver-major rows (`rows[v][u]`), moving
    /// every message out without cloning — the compiler's inbox transpose.
    pub fn into_received_rows(self) -> Vec<Vec<Option<BitVec>>> {
        let n = self.n;
        let mut it = self.received.into_iter();
        (0..n).map(|_| it.by_ref().take(n).collect()).collect()
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }
}

impl Snapshot for AllToAllOutput {
    fn snapshot(&self, enc: &mut Enc) {
        enc.put_usize(self.n);
        for slot in &self.received {
            enc.put_opt(slot.as_ref(), |e, bits| e.put_bits(bits));
        }
    }
}

impl Restore for AllToAllOutput {
    fn restore(dec: &mut Dec<'_>) -> Result<Self, SnapError> {
        let n = dec.get_usize()?;
        let cells = n
            .checked_mul(n)
            .ok_or_else(|| SnapError::corrupt(format!("output size {n} overflows")))?;
        if cells > dec.remaining() {
            return Err(SnapError::Truncated {
                needed: cells,
                remaining: dec.remaining(),
            });
        }
        let mut received = Vec::with_capacity(cells);
        for _ in 0..cells {
            received.push(dec.get_opt(Dec::get_bits)?);
        }
        Ok(Self { n, received })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn random_instance_shape() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let inst = AllToAllInstance::random(5, 3, &mut rng);
        assert_eq!(inst.n(), 5);
        assert_eq!(inst.b(), 3);
        assert_eq!(inst.outgoing_concat(2).len(), 15);
    }

    #[test]
    fn perfect_output_has_zero_errors() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let inst = AllToAllInstance::random(4, 2, &mut rng);
        let mut out = AllToAllOutput::empty(4);
        for v in 0..4 {
            for u in 0..4 {
                out.set(v, u, inst.message(u, v).clone());
            }
        }
        assert_eq!(inst.count_errors(&out), 0);
    }

    #[test]
    fn errors_are_counted() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let inst = AllToAllInstance::random(3, 2, &mut rng);
        let mut out = AllToAllOutput::empty(3);
        for v in 0..3 {
            for u in 0..3 {
                out.set(v, u, inst.message(u, v).clone());
            }
        }
        // One wrong, one missing.
        let mut wrong = inst.message(0, 1).clone();
        wrong.flip(0);
        out.set(1, 0, wrong);
        out.received[2 * 3 + 2] = None;
        assert_eq!(inst.count_errors(&out), 2);
    }

    #[test]
    fn explicit_construction() {
        let rows = vec![
            vec![BitVec::from_bools(&[true]), BitVec::from_bools(&[false])],
            vec![BitVec::from_bools(&[false]), BitVec::from_bools(&[true])],
        ];
        let inst = AllToAllInstance::new(2, 1, rows);
        assert_eq!(inst.message(0, 0), &BitVec::from_bools(&[true]));
        assert_eq!(inst.message(1, 0), &BitVec::from_bools(&[false]));
    }
}
