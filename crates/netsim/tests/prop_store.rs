//! Property tests: the dense and sparse [`Traffic`] backends are
//! observationally identical through arbitrary interleavings of sends,
//! overwrites, clears, and adversarial corruption — same frames, same
//! volume counters, same [`Delivery`], same [`NetStats`], same history
//! transcript.

use bdclique_bits::BitVec;
use bdclique_netsim::{
    Adversary, AdversaryView, Backend, CorruptionScope, Corruptor, EdgeSet, HistoryMode, Network,
    Traffic,
};
use proptest::prelude::*;

const BANDWIDTH: usize = 12;

/// Deterministic frame content derived from the slot and length.
fn payload(from: usize, to: usize, len: usize) -> BitVec {
    BitVec::from_fn(len, |i| (i * 7 + from * 3 + to) % 5 < 2)
}

/// One random operation batch applied identically to every backend.
#[derive(Debug, Clone)]
struct Op {
    from: usize,
    to: usize,
    len: usize,
    clear: bool,
}

fn apply_ops(t: &mut Traffic, n: usize, ops: &[Op]) {
    for op in ops {
        let (from, to) = (op.from % n, op.to % n);
        if from == to {
            continue;
        }
        if op.clear {
            t.clear(from, to);
        } else {
            t.send(from, to, payload(from, to, op.len));
        }
    }
}

/// Flips every even-length frame, suppresses odd-length ones, and injects
/// into the intended-empty reverse slot — exercising rewrite, erasure, and
/// injection on both backends identically.
struct MixedCorruptor;

impl Corruptor for MixedCorruptor {
    fn corrupt(
        &mut self,
        _view: &AdversaryView<'_>,
        edges: &EdgeSet,
        scope: &mut CorruptionScope<'_>,
    ) {
        let mut edge_list: Vec<(usize, usize)> = edges.iter().collect();
        edge_list.sort_unstable();
        for (u, v) in edge_list {
            for (a, b) in [(u, v), (v, u)] {
                match scope.intended(a, b).cloned() {
                    Some(frame) if frame.len() % 2 == 1 => scope.set(a, b, None),
                    Some(mut frame) => {
                        for i in 0..frame.len() {
                            frame.flip(i);
                        }
                        scope.set(a, b, Some(frame));
                    }
                    None => scope.set(a, b, Some(BitVec::from_bools(&[true, false]))),
                }
            }
        }
    }
}

/// A degree-capped edge set derived from raw pairs (same for every run).
fn edge_plan(pairs: Vec<(usize, usize)>) -> impl FnMut(u64, usize, usize) -> EdgeSet {
    move |_round, n, budget| {
        let mut set = EdgeSet::new(n);
        for &(a, b) in &pairs {
            let (u, v) = (a % n, b % n);
            if u == v || set.contains(u, v) {
                continue;
            }
            if set.degree(u) < budget && set.degree(v) < budget {
                set.insert(u, v);
            }
        }
        set
    }
}

fn run_round(
    n: usize,
    ops: &[Op],
    pairs: &[(usize, usize)],
    backend: Backend,
) -> (Network, bdclique_netsim::Delivery) {
    let adversary = Adversary::non_adaptive(edge_plan(pairs.to_vec()), MixedCorruptor);
    let mut net = Network::new(n, BANDWIDTH, 0.9, adversary);
    net.set_history_mode(HistoryMode::Full);
    let mut t = Traffic::with_backend(n, BANDWIDTH, backend);
    apply_ops(&mut t, n, ops);
    let d = net.exchange(t);
    (net, d)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Identical op sequences on pinned-dense, pinned-sparse, and
    /// auto-switching traffic yield logically equal matrices and counters.
    #[test]
    fn backends_agree_before_exchange(
        n in 4usize..10,
        raw_ops in prop::collection::vec(
            (any::<usize>(), any::<usize>(), 0usize..BANDWIDTH, any::<bool>()),
            0..60,
        ),
    ) {
        let ops: Vec<Op> = raw_ops
            .into_iter()
            .map(|(from, to, len, clear)| Op { from, to, len, clear })
            .collect();
        let mut dense = Traffic::with_backend(n, BANDWIDTH, Backend::Dense);
        let mut sparse = Traffic::with_backend(n, BANDWIDTH, Backend::Sparse);
        let mut auto = Traffic::new(n, BANDWIDTH);
        apply_ops(&mut dense, n, &ops);
        apply_ops(&mut sparse, n, &ops);
        apply_ops(&mut auto, n, &ops);
        prop_assert_eq!(dense.total_bits(), sparse.total_bits());
        prop_assert_eq!(dense.frame_count(), sparse.frame_count());
        prop_assert_eq!(&dense, &sparse);
        prop_assert_eq!(&dense, &auto);
        // Slot-level agreement, including empty slots.
        for from in 0..n {
            for to in 0..n {
                if from != to {
                    prop_assert_eq!(dense.frame(from, to), sparse.frame(from, to));
                }
            }
        }
    }

    /// A full queue → corrupt → deliver round observes no difference between
    /// the backends: delivery, per-receiver inboxes, stats, and the Full-mode
    /// history transcript (digests + intended snapshots) all match.
    #[test]
    fn corrupted_rounds_agree_across_backends(
        n in 4usize..10,
        raw_ops in prop::collection::vec(
            (any::<usize>(), any::<usize>(), 0usize..BANDWIDTH, any::<bool>()),
            0..60,
        ),
        pairs in prop::collection::vec((any::<usize>(), any::<usize>()), 0..6),
    ) {
        let ops: Vec<Op> = raw_ops
            .into_iter()
            .map(|(from, to, len, clear)| Op { from, to, len, clear })
            .collect();
        let (dense_net, dense_d) = run_round(n, &ops, &pairs, Backend::Dense);
        let (sparse_net, sparse_d) = run_round(n, &ops, &pairs, Backend::Sparse);

        prop_assert_eq!(&dense_d, &sparse_d, "deliveries diverged");
        for to in 0..n {
            let d: Vec<(usize, BitVec)> =
                dense_d.inbox_of(to).map(|(f, b)| (f, b.clone())).collect();
            let s: Vec<(usize, BitVec)> =
                sparse_d.inbox_of(to).map(|(f, b)| (f, b.clone())).collect();
            prop_assert_eq!(d, s, "inbox {} diverged", to);
            for from in 0..n {
                if from != to {
                    prop_assert_eq!(dense_d.received(to, from), sparse_d.received(to, from));
                }
            }
        }

        prop_assert_eq!(dense_net.stats(), sparse_net.stats(), "stats diverged");

        let dh = dense_net.history().records();
        let sh = sparse_net.history().records();
        prop_assert_eq!(dh.len(), sh.len());
        for (a, b) in dh.iter().zip(sh) {
            prop_assert_eq!(&a.corrupted, &b.corrupted);
            prop_assert_eq!(a.frames, b.frames);
            prop_assert_eq!(a.bits, b.bits);
            let (ai, bi) = (a.intended.as_ref().unwrap(), b.intended.as_ref().unwrap());
            prop_assert_eq!(ai, bi, "intended snapshots diverged");
        }
    }
}
