//! The unprotected direct exchange: one round, zero resilience.

use super::{AllToAllProtocol, ProtocolSession, Step};
use crate::error::CoreError;
use crate::problem::{AllToAllInstance, AllToAllOutput};
use bdclique_netsim::Network;
use bdclique_snapshot::{Dec, Enc};
use std::borrow::Cow;

/// Direct exchange: `u` sends `m_{u,v}` straight to `v`. The fault-free
/// optimum (and the first step of the adaptive compilers); every corrupted
/// edge is a corrupted message.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveExchange;

/// The direct exchange as a state machine: one step per bandwidth slice.
/// Also embedded by `AdaptiveAllToAll` as its Step I.
pub(crate) struct NaiveSession<'a> {
    inst: &'a AllToAllInstance,
    n: usize,
    b: usize,
    slices: usize,
    per: usize,
    /// Next slice to exchange.
    s: usize,
    /// Pre-zeroed assembly buffers: delivered slices are written in place,
    /// missing or short frames simply leave zeros behind.
    partial: Vec<Vec<bdclique_bits::BitVec>>,
}

impl<'a> NaiveSession<'a> {
    pub(crate) fn new(net: &Network, inst: &'a AllToAllInstance) -> Result<Self, CoreError> {
        let n = inst.n();
        if n != net.n() {
            return Err(CoreError::invalid("instance size != network size"));
        }
        let b = inst.b();
        let slices = b.div_ceil(net.bandwidth()).max(1);
        let per = b.div_ceil(slices);
        Ok(Self {
            inst,
            n,
            b,
            slices,
            per,
            s: 0,
            partial: vec![vec![bdclique_bits::BitVec::zeros(b); n]; n],
        })
    }

    /// Rebuilds a session serialized by its `ProtocolSession::snapshot`.
    /// Derived geometry (`slices`, `per`) comes back from `new`; only the
    /// cursor and the assembly buffers are overlaid.
    pub(crate) fn restore(
        net: &Network,
        inst: &'a AllToAllInstance,
        dec: &mut Dec<'_>,
    ) -> Result<Self, CoreError> {
        let mut s = Self::new(net, inst)?;
        s.s = dec.get_usize().map_err(CoreError::from)?;
        if s.s >= s.slices {
            return Err(CoreError::invalid("naive snapshot cursor out of range"));
        }
        for row in &mut s.partial {
            for cell in row {
                *cell = dec.get_bits().map_err(CoreError::from)?;
            }
        }
        Ok(s)
    }

    fn finish(&mut self) -> AllToAllOutput {
        let mut out = AllToAllOutput::empty(self.n);
        for (v, row) in std::mem::take(&mut self.partial).into_iter().enumerate() {
            for (u, assembled) in row.into_iter().enumerate() {
                if u == v {
                    out.set(v, u, self.inst.message(u, u).clone());
                } else {
                    out.set(v, u, assembled);
                }
            }
        }
        out
    }
}

impl ProtocolSession for NaiveSession<'_> {
    fn step(&mut self, net: &mut Network) -> Result<Step, CoreError> {
        if self.s >= self.slices {
            return Err(CoreError::invalid("session stepped after completion"));
        }
        let (n, b) = (self.n, self.b);
        let lo = self.s * self.per;
        let hi = ((self.s + 1) * self.per).min(b);
        // Walk the topology's neighborhoods (ascending) — on the clique this
        // is exactly the historical `0..n` minus `u` sweep; on a sparse graph
        // only real edges carry frames, and non-adjacent pairs keep their
        // pre-zeroed assembly buffers (the zero message of masked instances).
        let topo = net.topology_handle();
        let mut traffic = net.traffic();
        for u in 0..n {
            for v in topo.neighbors(u) {
                if hi > lo {
                    traffic.send(u, v, self.inst.message(u, v).slice(lo, hi));
                }
            }
        }
        let delivery = net.exchange(traffic);
        for v in 0..n {
            for (u, piece) in delivery.inbox_of(v) {
                let dst = &mut self.partial[v][u];
                if piece.len() <= hi - lo {
                    // Common case: the slice fits its window exactly.
                    dst.write_bits(lo, piece);
                } else {
                    // Overlong (adversarial) frame: clamp to the window.
                    for i in 0..hi - lo {
                        dst.set(lo + i, piece.get(i));
                    }
                }
            }
        }
        net.reclaim(delivery);
        self.s += 1;
        if self.s == self.slices {
            return Ok(Step::Done(self.finish()));
        }
        Ok(Step::Running)
    }

    fn snapshot(&mut self, _net: &mut Network, enc: &mut Enc) -> Result<(), CoreError> {
        enc.put_usize(self.s);
        for row in &self.partial {
            for cell in row {
                enc.put_bits(cell);
            }
        }
        Ok(())
    }
}

impl AllToAllProtocol for NaiveExchange {
    fn name(&self) -> Cow<'static, str> {
        Cow::Borrowed("naive")
    }

    fn session<'a>(
        &'a self,
        net: &Network,
        inst: &'a AllToAllInstance,
    ) -> Result<Box<dyn ProtocolSession + 'a>, CoreError> {
        Ok(Box::new(NaiveSession::new(net, inst)?))
    }

    fn restore_session<'a>(
        &'a self,
        net: &Network,
        inst: &'a AllToAllInstance,
        dec: &mut Dec<'_>,
    ) -> Result<Box<dyn ProtocolSession + 'a>, CoreError> {
        Ok(Box::new(NaiveSession::restore(net, inst, dec)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdclique_netsim::Adversary;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn perfect_without_faults() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let inst = AllToAllInstance::random(8, 4, &mut rng);
        let mut net = Network::new(8, 8, 0.0, Adversary::none());
        let out = NaiveExchange.run(&mut net, &inst).unwrap();
        assert_eq!(inst.count_errors(&out), 0);
        assert_eq!(net.rounds(), 1);
    }

    #[test]
    fn sparse_topology_delivers_neighbor_messages() {
        use bdclique_netsim::Topology;
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let topo = Topology::ring(8);
        let inst = AllToAllInstance::random_on(&topo, 4, &mut rng);
        let mut net = Network::on_topology(topo, 8, 0.0, Adversary::none());
        let out = NaiveExchange.run(&mut net, &inst).unwrap();
        // Neighbor messages arrive on the wire; non-adjacent pairs keep the
        // zero message the masked instance holds for them.
        assert_eq!(inst.count_errors(&out), 0);
        assert_eq!(net.rounds(), 1);
    }

    #[test]
    fn wide_messages_use_multiple_rounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let inst = AllToAllInstance::random(4, 10, &mut rng);
        let mut net = Network::new(4, 4, 0.0, Adversary::none());
        let out = NaiveExchange.run(&mut net, &inst).unwrap();
        assert_eq!(inst.count_errors(&out), 0);
        assert_eq!(net.rounds(), 3);
    }
}
