//! Non-adaptive edge plans: the per-round fault sets `F_i`, fixed before the
//! protocol runs (a function of the round index and topology only).
//!
//! Plans that are meaningful off the clique ([`EclipseCamp`],
//! [`PartitionCut`]) override [`EdgePlan::edges_on`] to walk real topology
//! edges under the per-node budgets `⌊α·(deg(v)+1)⌋`; the schedule wrappers
//! ([`RoundSelective`], [`Burst`], [`Alternate`]) forward `edges_on` so
//! their gating composes with topology-aware inner plans.

use bdclique_netsim::{EdgePlan, EdgeSet, Topology};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The fault-free plan.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl EdgePlan for NoFaults {
    fn edges(&mut self, _round: u64, n: usize, _budget: usize) -> EdgeSet {
        EdgeSet::new(n)
    }
}

/// Each round: the union of `budget` random perfect matchings — a maximal
/// random fault set saturating the degree budget at (almost) every node.
#[derive(Debug, Clone)]
pub struct RandomMatchings {
    seed: u64,
}

impl RandomMatchings {
    /// Creates the plan; the per-round sets are derived from `seed` and the
    /// round index only (non-adaptivity by construction).
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }
}

impl EdgePlan for RandomMatchings {
    fn edges(&mut self, round: u64, n: usize, budget: usize) -> EdgeSet {
        let mut es = EdgeSet::new(n);
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ round.wrapping_mul(0x9e37_79b9));
        for _ in 0..budget {
            let mut nodes: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                nodes.swap(i, rng.gen_range(0..=i));
            }
            for pair in nodes.chunks(2) {
                if let [a, b] = pair {
                    // The union of matchings can repeat an edge; the degree
                    // bound still holds because each matching adds ≤ 1 per
                    // node.
                    es.insert(*a, *b);
                }
            }
        }
        debug_assert!(es.max_degree() <= budget);
        es
    }
}

/// One perfect matching per round, rotating through the round-robin
/// tournament schedule so that over `n-1` rounds every edge is hit exactly
/// once.
///
/// This is the α = 1/n adversary of the paper's Section 3: with faulty
/// degree just **one**, it places a fault inside *every* spanning tree of
/// the clique simultaneously, which is why the tree-based aggregation of
/// Fischer–Parter PODC 2023 (and any replication-over-relays baseline)
/// breaks while the bounded-degree compilers survive.
#[derive(Debug, Clone, Copy)]
pub struct RotatingMatching {
    /// Offset added to the round index (varies the schedule phase).
    pub phase: u64,
}

impl RotatingMatching {
    /// Creates the plan with phase 0.
    pub fn new() -> Self {
        Self { phase: 0 }
    }
}

impl Default for RotatingMatching {
    fn default() -> Self {
        Self::new()
    }
}

impl EdgePlan for RotatingMatching {
    fn edges(&mut self, round: u64, n: usize, budget: usize) -> EdgeSet {
        let mut es = EdgeSet::new(n);
        if budget == 0 || n < 2 {
            return es;
        }
        // Circle method with a dummy node when n is odd: nodes 0..m-2 sit on
        // a rotating circle, node m-1 is fixed (the dummy for odd n).
        let m = if n.is_multiple_of(2) { n } else { n + 1 };
        let cycle = m - 1;
        let r = ((round + self.phase) % cycle as u64) as usize;
        // `at` maps a circle position to the node currently sitting there.
        let at = |pos: usize| (pos + r) % cycle;
        // Fixed node pairs with circle position 0.
        if m - 1 < n {
            es.insert(m - 1, at(0));
        }
        // Fold the circle: position j pairs with position cycle - j.
        for j in 1..=(cycle - 1) / 2 {
            let (a, b) = (at(j), at(cycle - j));
            if a < n && b < n {
                es.insert(a, b);
            }
        }
        debug_assert!(es.max_degree() <= 1);
        es
    }
}

/// Saturates the budget around a single victim node (rotating the spokes
/// each round), modeling a degree-concentrated attack.
#[derive(Debug, Clone, Copy)]
pub struct RotatingStar {
    /// The node whose incident edges are attacked.
    pub victim: usize,
}

impl EdgePlan for RotatingStar {
    fn edges(&mut self, round: u64, n: usize, budget: usize) -> EdgeSet {
        let mut es = EdgeSet::new(n);
        for i in 0..budget.min(n - 1) {
            let other = (self.victim + 1 + (round as usize + i) % (n - 1)) % n;
            if other != self.victim {
                es.insert(self.victim, other);
            }
        }
        es
    }
}

/// Hunts one message pair through the deterministic relay-replication
/// baseline, with faulty degree **one**.
///
/// The baseline's copy `i` of `m_{u,v}` crosses `u → (u+v+1+i) mod n → v` in
/// rounds `2i` and `2i+1`. Since the baseline is deterministic, the paper's
/// observation that *non-adaptive and adaptive adversaries coincide for
/// deterministic algorithms* applies: this plan corrupts exactly one hop of
/// every copy, killing the pair for **any** replication factor while never
/// touching more than one edge per node per round — the sharpest form of
/// the "mobile matching beats replication" separation (Section 3).
#[derive(Debug, Clone, Copy)]
pub struct RelayPathHunter {
    /// Source of the hunted message.
    pub src: usize,
    /// Target of the hunted message.
    pub dst: usize,
}

impl EdgePlan for RelayPathHunter {
    fn edges(&mut self, round: u64, n: usize, budget: usize) -> EdgeSet {
        let mut es = EdgeSet::new(n);
        if budget == 0 || self.src == self.dst {
            return es;
        }
        // Corrupt exactly ONE hop of each copy (poisoning both hops of the
        // same copy with an involution like a bit-flip would cancel out).
        let i = (round / 2) as usize;
        let relay = (self.src + self.dst + 1 + i) % n;
        if round.is_multiple_of(2) && relay != self.src {
            es.insert(self.src, relay);
        }
        debug_assert!(es.max_degree() <= 1);
        es
    }
}

/// Camps on **all** of one node's incident edges for the first `rounds`
/// rounds — the eclipse attack, and the first plan that is only fully
/// realizable *off* the clique.
///
/// On the clique the target's degree is `n - 1` while the budget is
/// `⌊αn⌋ < n - 1` for any `α < 1`, so an eclipse can never close; the plan
/// camps the `budget` lowest-id spokes, exactly what the α-BD bound is
/// designed to absorb. On a constant-degree graph the per-node budget
/// `⌊α·(deg(v)+1)⌋` reaches `deg(v)` already at `α ≥ deg/(deg+1)` — e.g.
/// `α = 0.9` on an 8-regular expander — and the target is *completely* cut
/// off for the camped window.
#[derive(Debug, Clone, Copy)]
pub struct EclipseCamp {
    /// The eclipsed node.
    pub target: usize,
    /// Camp duration: active on rounds `0..rounds`.
    pub rounds: u64,
}

impl EdgePlan for EclipseCamp {
    fn edges(&mut self, round: u64, n: usize, budget: usize) -> EdgeSet {
        let mut es = EdgeSet::new(n);
        if round >= self.rounds {
            return es;
        }
        for v in (0..n).filter(|&v| v != self.target).take(budget) {
            es.insert(self.target, v);
        }
        es
    }

    fn edges_on(&mut self, round: u64, topo: &Topology, alpha: f64) -> EdgeSet {
        let n = topo.n();
        let mut es = EdgeSet::new(n);
        if round >= self.rounds {
            return es;
        }
        let target_budget = topo.budget_of(self.target, alpha);
        for v in topo.neighbors(self.target) {
            if es.degree(self.target) >= target_budget {
                break;
            }
            // Each spoke costs the neighbor one unit of its own budget.
            if topo.budget_of(v, alpha) >= 1 {
                es.insert(self.target, v);
            }
        }
        es
    }
}

/// Camps on the crossing edges of a seeded random balanced bipartition,
/// greedily within every node's budget — the partition attack. Like the
/// eclipse it cannot close on the clique (the cut has `Θ(n²)` edges against
/// an `O(n)` per-node budget), but on a constant-degree graph with `α`
/// near `deg/(deg+1)` the entire cut fits inside the budgets and the two
/// sides are fully disconnected every round the camp holds.
#[derive(Debug, Clone, Copy)]
pub struct PartitionCut {
    /// Seed for the bipartition (fixed for the whole run — the adversary
    /// *camps* the same cut every round).
    pub cut_seed: u64,
}

impl PartitionCut {
    /// The seeded balanced side assignment: `side[v]` is `true` for the
    /// `⌈n/2⌉` nodes shuffled into the first half.
    fn sides(&self, n: usize) -> Vec<bool> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.cut_seed);
        let mut nodes: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            nodes.swap(i, rng.gen_range(0..=i));
        }
        let mut side = vec![false; n];
        for &v in &nodes[..n.div_ceil(2)] {
            side[v] = true;
        }
        side
    }

    /// Greedily camps crossing edges from `candidates` while both endpoint
    /// budgets admit another fault edge.
    fn camp(
        &self,
        n: usize,
        side: &[bool],
        candidates: impl Iterator<Item = (usize, usize)>,
        budget_of: impl Fn(usize) -> usize,
    ) -> EdgeSet {
        let mut es = EdgeSet::new(n);
        for (u, v) in candidates {
            if side[u] != side[v] && es.degree(u) < budget_of(u) && es.degree(v) < budget_of(v) {
                es.insert(u, v);
            }
        }
        es
    }
}

impl EdgePlan for PartitionCut {
    fn edges(&mut self, _round: u64, n: usize, budget: usize) -> EdgeSet {
        let side = self.sides(n);
        let pairs = (0..n).flat_map(|u| ((u + 1)..n).map(move |v| (u, v)));
        self.camp(n, &side, pairs, |_| budget)
    }

    fn edges_on(&mut self, _round: u64, topo: &Topology, alpha: f64) -> EdgeSet {
        let side = self.sides(topo.n());
        self.camp(topo.n(), &side, topo.edges(), |v| topo.budget_of(v, alpha))
    }
}

/// Wraps any plan, activating it only on rounds `r` with
/// `r % period ∈ phases` — for striking specific phases of a round-structured
/// protocol while staying dormant otherwise.
#[derive(Debug, Clone)]
pub struct RoundSelective<P> {
    inner: P,
    period: u64,
    phases: Vec<u64>,
}

impl<P: EdgePlan> RoundSelective<P> {
    /// Creates the wrapper.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn new(inner: P, period: u64, phases: Vec<u64>) -> Self {
        assert!(period > 0, "period must be positive");
        Self {
            inner,
            period,
            phases,
        }
    }
}

impl<P: EdgePlan> EdgePlan for RoundSelective<P> {
    fn edges(&mut self, round: u64, n: usize, budget: usize) -> EdgeSet {
        if self.phases.contains(&(round % self.period)) {
            self.inner.edges(round, n, budget)
        } else {
            EdgeSet::new(n)
        }
    }

    fn edges_on(&mut self, round: u64, topo: &Topology, alpha: f64) -> EdgeSet {
        if self.phases.contains(&(round % self.period)) {
            self.inner.edges_on(round, topo, alpha)
        } else {
            EdgeSet::new(topo.n())
        }
    }
}

/// Burst schedule: the inner plan is active for the first `burst` rounds of
/// every `period`-round window and dormant otherwise — the ROADMAP's "burst
/// rounds" attack shape, composed from any base plan.
#[derive(Debug, Clone)]
pub struct Burst<P> {
    inner: P,
    period: u64,
    burst: u64,
}

impl<P: EdgePlan> Burst<P> {
    /// Creates the wrapper: active on rounds `r` with `r % period < burst`.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0` or `burst > period`.
    pub fn new(inner: P, period: u64, burst: u64) -> Self {
        assert!(period > 0, "period must be positive");
        assert!(burst <= period, "burst cannot exceed the period");
        Self {
            inner,
            period,
            burst,
        }
    }
}

impl<P: EdgePlan> EdgePlan for Burst<P> {
    fn edges(&mut self, round: u64, n: usize, budget: usize) -> EdgeSet {
        if round % self.period < self.burst {
            self.inner.edges(round, n, budget)
        } else {
            EdgeSet::new(n)
        }
    }

    fn edges_on(&mut self, round: u64, topo: &Topology, alpha: f64) -> EdgeSet {
        if round % self.period < self.burst {
            self.inner.edges_on(round, topo, alpha)
        } else {
            EdgeSet::new(topo.n())
        }
    }
}

/// Alternates two plans on a fixed period: plan `a` drives the first
/// `a_rounds` of every window, plan `b` the rest — periodic *phases* where
/// the attack shape itself changes over time (e.g. matchings alternating
/// with a star), not merely on/off gating.
#[derive(Debug, Clone)]
pub struct Alternate<A, B> {
    a: A,
    b: B,
    a_rounds: u64,
    period: u64,
}

impl<A: EdgePlan, B: EdgePlan> Alternate<A, B> {
    /// Creates the wrapper: `a` on rounds `r` with `r % period < a_rounds`,
    /// `b` otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0` or `a_rounds > period`.
    pub fn new(a: A, b: B, a_rounds: u64, period: u64) -> Self {
        assert!(period > 0, "period must be positive");
        assert!(a_rounds <= period, "a_rounds cannot exceed the period");
        Self {
            a,
            b,
            a_rounds,
            period,
        }
    }
}

impl<A: EdgePlan, B: EdgePlan> EdgePlan for Alternate<A, B> {
    fn edges(&mut self, round: u64, n: usize, budget: usize) -> EdgeSet {
        if round % self.period < self.a_rounds {
            self.a.edges(round, n, budget)
        } else {
            self.b.edges(round, n, budget)
        }
    }

    fn edges_on(&mut self, round: u64, topo: &Topology, alpha: f64) -> EdgeSet {
        if round % self.period < self.a_rounds {
            self.a.edges_on(round, topo, alpha)
        } else {
            self.b.edges_on(round, topo, alpha)
        }
    }
}

/// Cycles through an explicit list of edge sets (for targeted tests).
#[derive(Debug, Clone)]
pub struct FixedEdges {
    sets: Vec<Vec<(usize, usize)>>,
}

impl FixedEdges {
    /// Creates the plan from per-round edge lists (cycled).
    pub fn new(sets: Vec<Vec<(usize, usize)>>) -> Self {
        Self { sets }
    }
}

impl EdgePlan for FixedEdges {
    fn edges(&mut self, round: u64, n: usize, _budget: usize) -> EdgeSet {
        let mut es = EdgeSet::new(n);
        if self.sets.is_empty() {
            return es;
        }
        let idx = (round % self.sets.len() as u64) as usize;
        for &(u, v) in &self.sets[idx] {
            es.insert(u, v);
        }
        es
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_matchings_respect_budget() {
        let mut plan = RandomMatchings::new(7);
        for n in [8usize, 9, 16] {
            for budget in [1usize, 2, 4] {
                for round in 0..8 {
                    let es = plan.edges(round, n, budget);
                    assert!(es.max_degree() <= budget, "n={n} budget={budget}");
                    assert!(!es.is_empty());
                }
            }
        }
    }

    #[test]
    fn random_matchings_move_between_rounds() {
        let mut plan = RandomMatchings::new(7);
        let a = plan.edges(0, 16, 2);
        let b = plan.edges(1, 16, 2);
        assert_ne!(
            a.iter().collect::<std::collections::BTreeSet<_>>(),
            b.iter().collect::<std::collections::BTreeSet<_>>()
        );
    }

    #[test]
    fn rotating_matching_is_perfect_for_even_n() {
        let mut plan = RotatingMatching::new();
        for round in 0..7 {
            let es = plan.edges(round, 8, 1);
            assert_eq!(es.len(), 4, "round {round}");
            assert_eq!(es.max_degree(), 1);
        }
    }

    #[test]
    fn rotating_matching_covers_all_edges_over_n_minus_1_rounds() {
        let mut plan = RotatingMatching::new();
        let n = 8;
        let mut seen = std::collections::BTreeSet::new();
        for round in 0..(n - 1) as u64 {
            for e in plan.edges(round, n, 1).iter() {
                seen.insert(e);
            }
        }
        assert_eq!(seen.len(), n * (n - 1) / 2, "tournament covers the clique");
    }

    #[test]
    fn rotating_matching_odd_n() {
        let mut plan = RotatingMatching::new();
        let es = plan.edges(3, 9, 1);
        assert_eq!(es.max_degree(), 1);
        assert_eq!(es.len(), 4); // one node sits out
    }

    #[test]
    fn star_concentrates_on_victim() {
        let mut plan = RotatingStar { victim: 3 };
        let es = plan.edges(5, 16, 4);
        assert_eq!(es.degree(3), 4);
        assert_eq!(es.len(), 4);
    }

    #[test]
    fn relay_path_hunter_is_degree_one() {
        let mut plan = RelayPathHunter { src: 2, dst: 9 };
        for round in 0..12 {
            let es = plan.edges(round, 16, 1);
            assert!(es.max_degree() <= 1, "round {round}");
        }
    }

    #[test]
    fn round_selective_gates_the_inner_plan() {
        let mut plan = RoundSelective::new(RotatingMatching::new(), 3, vec![0]);
        assert!(!plan.edges(0, 8, 1).is_empty());
        assert!(plan.edges(1, 8, 1).is_empty());
        assert!(plan.edges(2, 8, 1).is_empty());
        assert!(!plan.edges(3, 8, 1).is_empty());
    }

    #[test]
    fn burst_gates_by_window_prefix() {
        let mut plan = Burst::new(RotatingMatching::new(), 4, 2);
        for round in 0..12u64 {
            let active = !plan.edges(round, 8, 1).is_empty();
            assert_eq!(active, round % 4 < 2, "round {round}");
        }
    }

    #[test]
    fn alternate_switches_plan_shapes() {
        // Matchings (degree 1, many edges) for 2 rounds, then a budget-wide
        // star: the shape change is observable in the degree profile.
        let mut plan = Alternate::new(RotatingMatching::new(), RotatingStar { victim: 0 }, 2, 3);
        for round in 0..9u64 {
            let es = plan.edges(round, 8, 3);
            if round % 3 < 2 {
                assert!(es.max_degree() <= 1, "round {round} should be a matching");
                assert!(es.len() >= 3);
            } else {
                assert_eq!(es.degree(0), 3, "round {round} should be the star");
            }
        }
    }

    #[test]
    #[should_panic(expected = "burst cannot exceed the period")]
    fn burst_rejects_overlong_burst() {
        let _ = Burst::new(NoFaults, 2, 3);
    }

    #[test]
    fn eclipse_camp_is_partial_on_the_clique_and_total_on_an_expander() {
        let mut plan = EclipseCamp {
            target: 3,
            rounds: 4,
        };
        // Clique path: the budget caps the camp well below deg = n - 1.
        let es = plan.edges(0, 16, 4);
        assert_eq!(es.degree(3), 4);
        assert!(plan.edges(4, 16, 4).is_empty(), "camp expires after rounds");
        // Sparse path: α = 0.9 on an 8-regular graph gives every node a
        // budget of ⌊0.9·9⌋ = 8 = deg, so the eclipse closes completely.
        let topo = Topology::random_regular(16, 8, 11);
        let es = plan.edges_on(0, &topo, 0.9);
        assert_eq!(es.degree(3), 8, "every incident edge is camped");
        for v in topo.neighbors(3) {
            assert!(es.contains(3, v));
        }
        assert!(plan.edges_on(4, &topo, 0.9).is_empty());
        // Tight budgets keep the camp partial and legal.
        let es = plan.edges_on(0, &topo, 0.5); // ⌊0.5·9⌋ = 4
        assert_eq!(es.degree(3), 4);
    }

    #[test]
    fn partition_cut_disconnects_sides_on_an_expander() {
        let mut plan = PartitionCut { cut_seed: 5 };
        let topo = Topology::random_regular(16, 4, 9);
        let es = plan.edges_on(0, &topo, 0.75); // budget ⌊0.75·5⌋ = 3 per node
        assert!(!es.is_empty());
        for v in 0..16 {
            assert!(es.degree(v) <= 3, "node {v} over budget");
        }
        for (u, v) in es.iter() {
            assert!(topo.contains(u, v), "camped edges must be real wires");
        }
        // Same seed, same cut, every round.
        let again = plan.edges_on(7, &topo, 0.75);
        assert_eq!(
            es.iter().collect::<std::collections::BTreeSet<_>>(),
            again.iter().collect::<std::collections::BTreeSet<_>>()
        );
        // Clique path stays inside the uniform budget.
        let es = plan.edges(0, 16, 2);
        assert!(!es.is_empty());
        assert!(es.max_degree() <= 2);
    }

    #[test]
    fn wrappers_forward_edges_on_to_topology_aware_inner_plans() {
        let topo = Topology::random_regular(16, 8, 11);
        let inner = EclipseCamp {
            target: 0,
            rounds: u64::MAX,
        };
        let mut burst = Burst::new(inner, 4, 2);
        assert!(!burst.edges_on(0, &topo, 0.9).is_empty());
        assert!(burst.edges_on(2, &topo, 0.9).is_empty(), "dormant window");
        let mut alt = Alternate::new(inner, NoFaults, 1, 2);
        assert_eq!(alt.edges_on(0, &topo, 0.9).degree(0), 8);
        assert!(alt.edges_on(1, &topo, 0.9).is_empty());
        let mut sel = RoundSelective::new(inner, 3, vec![1]);
        assert!(sel.edges_on(0, &topo, 0.9).is_empty());
        assert!(!sel.edges_on(1, &topo, 0.9).is_empty());
    }

    #[test]
    fn fixed_edges_cycle() {
        let mut plan = FixedEdges::new(vec![vec![(0, 1)], vec![(2, 3)]]);
        assert!(plan.edges(0, 4, 1).contains(0, 1));
        assert!(plan.edges(1, 4, 1).contains(2, 3));
        assert!(plan.edges(2, 4, 1).contains(0, 1));
    }
}
