//! Property tests pinning the compiled batch kernels (`mul_slice`, `axpy`,
//! `dot`, `poly_eval`) to the scalar `Gf` operations for every field
//! GF(2^m), m ∈ 1..=16 — including zero operands (the branchless sentinel
//! paths) and the `axpy` accumulate contract.

use bdclique_codes::Gf;
use proptest::prelude::*;

/// Strategy: a symbol vector over GF(2^m) with zeros injected (indices
/// divisible by `zero_stride` are forced to zero so the sentinel paths are
/// always exercised, whatever the random draw).
fn syms(m: u32, len: usize) -> impl Strategy<Value = Vec<u16>> {
    let order = (1u32 << m) - 1;
    prop::collection::vec(0u16..=(order as u16), len).prop_map(|mut v| {
        for (i, s) in v.iter_mut().enumerate() {
            if i % 5 == 0 {
                *s = 0;
            }
        }
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `mul_slice(dst, c)` is the scalar map `dst[i] = mul(dst[i], c)`,
    /// for every field size and for `c = 0` (the all-zero result).
    #[test]
    fn mul_slice_matches_scalar(
        m in 1u32..=16,
        data in syms(16, 33),
        c_raw in any::<u16>(),
    ) {
        let gf = Gf::new(m);
        let mask = ((1u32 << m) - 1) as u16;
        let c = c_raw & mask;
        let data: Vec<u16> = data.iter().map(|&s| s & mask).collect();
        for c in [c, 0, 1] {
            let mut dst = data.clone();
            gf.mul_slice(&mut dst, c);
            let expect: Vec<u16> = data.iter().map(|&s| gf.mul(s, c)).collect();
            prop_assert_eq!(dst, expect, "m = {}, c = {}", m, c);
        }
    }

    /// `axpy(dst, c, src)` is the scalar accumulate
    /// `dst[i] ^= mul(c, src[i])`; `c = 0` leaves `dst` untouched, and a
    /// double application cancels (GF(2^m) addition is xor).
    #[test]
    fn axpy_matches_scalar_and_cancels(
        m in 1u32..=16,
        a in syms(16, 29),
        b in syms(16, 29),
        c_raw in any::<u16>(),
    ) {
        let gf = Gf::new(m);
        let mask = ((1u32 << m) - 1) as u16;
        let c = c_raw & mask;
        let a: Vec<u16> = a.iter().map(|&s| s & mask).collect();
        let b: Vec<u16> = b.iter().map(|&s| s & mask).collect();

        let mut dst = a.clone();
        gf.axpy(&mut dst, c, &b);
        let expect: Vec<u16> = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| x ^ gf.mul(c, y))
            .collect();
        prop_assert_eq!(&dst, &expect, "m = {}, c = {}", m, c);

        // Accumulate contract: applying the same axpy again restores `a`.
        gf.axpy(&mut dst, c, &b);
        prop_assert_eq!(&dst, &a);

        // c = 0 is a no-op on any dst, including one holding zeros.
        let mut dst = a.clone();
        gf.axpy(&mut dst, 0, &b);
        prop_assert_eq!(&dst, &a);
    }

    /// `dot(a, b)` is the scalar sum of products.
    #[test]
    fn dot_matches_scalar(
        m in 1u32..=16,
        a in syms(16, 21),
        b in syms(16, 21),
    ) {
        let gf = Gf::new(m);
        let mask = ((1u32 << m) - 1) as u16;
        let a: Vec<u16> = a.iter().map(|&s| s & mask).collect();
        let b: Vec<u16> = b.iter().map(|&s| s & mask).collect();
        let expect = a
            .iter()
            .zip(&b)
            .fold(0u16, |acc, (&x, &y)| acc ^ gf.mul(x, y));
        prop_assert_eq!(gf.dot(&a, &b), expect, "m = {}", m);
    }

    /// Horner evaluation matches the naive power-sum definition, zero
    /// points and zero coefficients included.
    #[test]
    fn poly_eval_matches_power_sum(
        m in 1u32..=16,
        coeffs in syms(16, 17),
        x_raw in any::<u16>(),
    ) {
        let gf = Gf::new(m);
        let mask = ((1u32 << m) - 1) as u16;
        let coeffs: Vec<u16> = coeffs.iter().map(|&s| s & mask).collect();
        for x in [x_raw & mask, 0, 1] {
            let expect = coeffs
                .iter()
                .enumerate()
                .fold(0u16, |acc, (i, &c)| acc ^ gf.mul(c, gf.pow(x, i as u32)));
            prop_assert_eq!(gf.poly_eval(&coeffs, x), expect, "m = {}, x = {}", m, x);
        }
    }

    /// Scalar zero-operand identities hold in every field: the branchless
    /// table/sentinel paths agree with the mathematical definition.
    #[test]
    fn zero_operand_identities(m in 1u32..=16, s_raw in any::<u16>()) {
        let gf = Gf::new(m);
        let mask = ((1u32 << m) - 1) as u16;
        let s = s_raw & mask;
        prop_assert_eq!(gf.mul(0, s), 0);
        prop_assert_eq!(gf.mul(s, 0), 0);
        prop_assert_eq!(gf.mul(1, s), s);
        prop_assert_eq!(gf.pow(s, 0), 1);
        if s != 0 {
            prop_assert_eq!(gf.mul(s, gf.inv(s).unwrap()), 1);
        }
    }
}
