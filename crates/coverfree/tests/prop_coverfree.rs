//! Property tests: the verified (r, δ)-cover-free property holds for
//! arbitrary constraint collections, and construction is deterministic.

use bdclique_coverfree::{CoverFreeFamily, CoverFreeParams};
use proptest::prelude::*;

/// Random constraint collections over `m` sets with tuples of size ≤ r+1.
fn h_strategy(m: usize, r: usize, tuples: usize) -> impl Strategy<Value = Vec<Vec<u32>>> {
    prop::collection::vec(
        prop::collection::btree_set(0u32..m as u32, 2..=(r + 1)),
        1..=tuples,
    )
    .prop_map(|sets| sets.into_iter().map(|s| s.into_iter().collect()).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn verified_family_satisfies_reported_bound(
        h in h_strategy(24, 2, 12),
        seed in 0u64..100,
    ) {
        let params = CoverFreeParams { n: 240, m: 24, r: 2, set_size: 24 };
        let Ok(fam) = CoverFreeFamily::build(params, &h, 0.6, seed, 32) else {
            // Some unlucky H may exhaust the budget at delta 0.6; that is a
            // legal outcome, not a property violation.
            return Ok(());
        };
        // Re-verify from the public accessors: for every (tuple, member),
        // the fraction of the member's elements covered by the union of the
        // other members is at most the reported worst fraction.
        for tuple in &h {
            for (pos, &a) in tuple.iter().enumerate() {
                let mine = fam.set(a as usize);
                let mut covered = 0usize;
                for &e in &mine {
                    let hit = tuple.iter().enumerate().any(|(q, &b)| {
                        q != pos && fam.set(b as usize).contains(&e)
                    });
                    if hit {
                        covered += 1;
                    }
                }
                let frac = covered as f64 / mine.len() as f64;
                prop_assert!(
                    frac <= fam.worst_cover_fraction() + 1e-12,
                    "member {a}: {frac} > {}",
                    fam.worst_cover_fraction()
                );
            }
        }
    }

    #[test]
    fn construction_is_deterministic(h in h_strategy(12, 1, 6), seed in 0u64..50) {
        let params = CoverFreeParams { n: 120, m: 12, r: 1, set_size: 12 };
        let a = CoverFreeFamily::build(params, &h, 0.8, seed, 16);
        let b = CoverFreeFamily::build(params, &h, 0.8, seed, 16);
        match (a, b) {
            (Ok(fa), Ok(fb)) => {
                prop_assert_eq!(fa.seed_used(), fb.seed_used());
                for i in 0..12 {
                    prop_assert_eq!(fa.set(i), fb.set(i));
                }
            }
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "nondeterministic outcome"),
        }
    }

    #[test]
    fn sets_pick_one_element_per_group(seed in 0u64..50) {
        let params = CoverFreeParams { n: 64, m: 6, r: 1, set_size: 8 };
        let h = vec![vec![0u32, 1], vec![2, 3], vec![4, 5]];
        if let Ok(fam) = CoverFreeFamily::build(params, &h, 0.9, seed, 8) {
            let g = params.group_size();
            for i in 0..6 {
                let s = fam.set(i);
                prop_assert_eq!(s.len(), 8);
                for (grp, &e) in s.iter().enumerate() {
                    prop_assert!((e as usize) / g == grp, "element outside its group");
                }
            }
        }
    }
}
