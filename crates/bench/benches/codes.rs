//! Criterion benchmarks for the codes layer at the det-sqrt `n = 4096`
//! operating point: RS `[255, 249]` over GF(2^8) (budget 1, slack 1 ⇒
//! `2t = 6`), plus GF kernel micro-benches.
//!
//! Every compiled path is benched side by side with a `*-reference`
//! twin — the same algorithm written against the scalar public `Gf` API
//! (one `mul` call per product, no batch kernels) — so a single criterion
//! run shows the kernel speedup without cross-run comparison. The
//! reference decoder is asserted equal to the compiled one at setup.

use bdclique_codes::{Gf, ReedSolomon, SymbolCode};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Duration;

/// det-sqrt `n = 4096` code parameters (budget 1, slack 1).
const M: u32 = 8;
const N: usize = 255;
const K: usize = 249;

/// The pre-kernel scalar Reed–Solomon path: the identical systematic
/// encode / BM-with-erasures decode pipeline, with every batch primitive
/// (`axpy`, `mul_slice`, `poly_eval`, `dot`) expanded into a scalar
/// `Gf::mul` loop.
struct ScalarRs {
    gf: Gf,
    n: usize,
    k: usize,
    gen_taps: Vec<u16>,
}

impl ScalarRs {
    fn new(m: u32, n: usize, k: usize) -> Self {
        let gf = Gf::new(m);
        let mut generator = vec![1u16];
        for j in 1..=(n - k) as u32 {
            generator = gf.poly_mul(&generator, &[gf.alpha_pow(j), 1]);
        }
        let gen_taps = generator[..n - k].to_vec();
        Self { gf, n, k, gen_taps }
    }

    fn encode(&self, msg: &[u16]) -> Vec<u16> {
        let gf = &self.gf;
        let two_t = self.n - self.k;
        let mut parity = vec![0u16; two_t];
        for &sym in msg.iter().rev() {
            let fb = sym ^ parity[two_t - 1];
            for i in (1..two_t).rev() {
                parity[i] = parity[i - 1] ^ gf.mul(fb, self.gen_taps[i]);
            }
            parity[0] = gf.mul(fb, self.gen_taps[0]);
        }
        let mut out = Vec::with_capacity(self.n);
        out.extend_from_slice(msg);
        out.extend_from_slice(&parity);
        out
    }

    fn poly_eval_scalar(&self, coeffs: &[u16], x: u16) -> u16 {
        let gf = &self.gf;
        let mut acc = 0u16;
        for &c in coeffs.iter().rev() {
            acc = gf.mul(acc, x) ^ c;
        }
        acc
    }

    fn decode(&self, received: &[u16], erasures: &[bool]) -> Option<Vec<u16>> {
        let gf = &self.gf;
        let two_t = self.n - self.k;
        let to_coeff = |p: usize| if p < self.k { p + two_t } else { p - self.k };
        let mut word = vec![0u16; self.n];
        let mut eras_coeff = vec![false; self.n];
        for (p, &sym) in received.iter().enumerate() {
            word[to_coeff(p)] = sym;
            eras_coeff[to_coeff(p)] = erasures[p];
        }
        let erased: Vec<usize> = (0..self.n).filter(|&i| eras_coeff[i]).collect();
        let f = erased.len();
        if f > two_t {
            return None;
        }
        for &i in &erased {
            word[i] = 0;
        }

        let synd: Vec<u16> = (1..=two_t as u32)
            .map(|j| self.poly_eval_scalar(&word, gf.alpha_pow(j)))
            .collect();
        if synd.iter().all(|&s| s == 0) {
            return Some(word[two_t..].to_vec());
        }

        let mut lambda = vec![0u16; two_t + 2];
        lambda[0] = 1;
        let mut deg_lambda = 0usize;
        for &pos in &erased {
            let x_i = gf.alpha_pow(pos as u32);
            for d in (0..=deg_lambda).rev() {
                let add = gf.mul(lambda[d], x_i);
                lambda[d + 1] ^= add;
            }
            deg_lambda += 1;
        }

        let mut b = lambda.clone();
        let mut el = f;
        for r in (f + 1)..=two_t {
            let mut discr = 0u16;
            for i in 0..=deg_lambda.min(r - 1) {
                discr ^= gf.mul(lambda[i], synd[r - 1 - i]);
            }
            if discr == 0 {
                b.rotate_right(1);
                b[0] = 0;
            } else {
                let mut t = lambda.clone();
                for i in 0..b.len() - 1 {
                    t[i + 1] ^= gf.mul(discr, b[i]);
                }
                if 2 * el < r + f {
                    el = r + f - el;
                    let dinv = gf.inv(discr)?;
                    b = lambda.clone();
                    for c in &mut b {
                        *c = gf.mul(*c, dinv);
                    }
                    lambda = t;
                } else {
                    lambda = t;
                    b.rotate_right(1);
                    b[0] = 0;
                }
                deg_lambda = lambda.iter().rposition(|&c| c != 0).unwrap_or(0);
            }
        }

        let nu = deg_lambda;
        if nu > two_t {
            return None;
        }
        let mut positions = Vec::with_capacity(nu);
        for i in 0..self.n {
            let x_inv = gf.inv(gf.alpha_pow(i as u32))?;
            if self.poly_eval_scalar(&lambda[..=nu], x_inv) == 0 {
                positions.push(i);
            }
        }
        if positions.len() != nu {
            return None;
        }

        let mut omega = vec![0u16; two_t];
        for i in 0..=nu.min(two_t.saturating_sub(1)) {
            let li = lambda[i];
            if li == 0 {
                continue;
            }
            for (jj, &s) in synd.iter().take(two_t - i).enumerate() {
                omega[i + jj] ^= gf.mul(li, s);
            }
        }
        let lambda_deriv: Vec<u16> = (0..nu)
            .map(|d| if d % 2 == 0 { lambda[d + 1] } else { 0 })
            .collect();
        for &pos in &positions {
            let x_inv = gf.inv(gf.alpha_pow(pos as u32))?;
            let num = self.poly_eval_scalar(&omega, x_inv);
            let den = self.poly_eval_scalar(&lambda_deriv, x_inv);
            word[pos] ^= gf.div(num, den)?;
        }
        if (1..=two_t as u32).any(|j| self.poly_eval_scalar(&word, gf.alpha_pow(j)) != 0) {
            return None;
        }
        Some(word[two_t..].to_vec())
    }
}

fn message() -> Vec<u16> {
    (0..K).map(|i| ((i * 37 + 11) % 256) as u16).collect()
}

/// A received word with 2 errors and 2 erasures — `2e + f = 6 = 2t`, the
/// full decode margin the routing layer provisions at budget 1.
fn corrupted(cw: &[u16]) -> (Vec<u16>, Vec<bool>) {
    let mut recv = cw.to_vec();
    let mut eras = vec![false; N];
    recv[7] ^= 0x5a;
    recv[140] ^= 0x21;
    recv[33] = 0;
    eras[33] = true;
    recv[200] = 0xff;
    eras[200] = true;
    (recv, eras)
}

fn bench_codes(c: &mut Criterion) {
    let rs = ReedSolomon::new(M, N, K).unwrap();
    let scalar = ScalarRs::new(M, N, K);
    let msg = message();
    let cw = rs.encode(&msg).unwrap();
    assert_eq!(scalar.encode(&msg), cw, "reference encoder diverges");
    let (recv, eras) = corrupted(&cw);
    assert_eq!(rs.decode(&recv, &eras).unwrap(), msg);
    assert_eq!(
        scalar.decode(&recv, &eras).as_deref(),
        Some(msg.as_slice()),
        "reference decoder diverges"
    );

    let mut g = c.benchmark_group("codes");
    g.sample_size(20).measurement_time(Duration::from_secs(2));

    // ---- The acceptance pair: full encode + errors-and-erasures decode
    // at det-sqrt n=4096 parameters, compiled kernels vs scalar reference.
    g.bench_function("rs-encode-decode/n255k249/compiled", |b| {
        b.iter(|| {
            let cw = rs.encode(black_box(&msg)).unwrap();
            let (recv, eras) = corrupted(&cw);
            rs.decode(black_box(&recv), black_box(&eras)).unwrap()
        })
    });
    g.bench_function("rs-encode-decode/n255k249/reference", |b| {
        b.iter(|| {
            let cw = scalar.encode(black_box(&msg));
            let (recv, eras) = corrupted(&cw);
            scalar.decode(black_box(&recv), black_box(&eras)).unwrap()
        })
    });

    g.bench_function("rs-encode/n255k249/compiled", |b| {
        b.iter(|| rs.encode(black_box(&msg)).unwrap())
    });
    g.bench_function("rs-encode/n255k249/reference", |b| {
        b.iter(|| scalar.encode(black_box(&msg)))
    });

    g.bench_function("rs-decode-2e2f/n255k249/compiled", |b| {
        b.iter(|| rs.decode(black_box(&recv), black_box(&eras)).unwrap())
    });
    g.bench_function("rs-decode-2e2f/n255k249/reference", |b| {
        b.iter(|| scalar.decode(black_box(&recv), black_box(&eras)).unwrap())
    });
    g.finish();

    // ---- GF kernel micro-benches over codeword-sized slices.
    let gf = Gf::new(M);
    let a: Vec<u16> = (0..N).map(|i| ((i * 13 + 5) % 256) as u16).collect();
    let b_vec: Vec<u16> = (0..N).map(|i| ((i * 29 + 3) % 256) as u16).collect();

    let mut g = c.benchmark_group("gf");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    g.bench_function("axpy/m8/len255/kernel", |bch| {
        bch.iter(|| {
            let mut dst = a.clone();
            gf.axpy(&mut dst, black_box(0x3d), &b_vec);
            dst
        })
    });
    g.bench_function("axpy/m8/len255/reference", |bch| {
        bch.iter(|| {
            let mut dst = a.clone();
            for (d, &s) in dst.iter_mut().zip(&b_vec) {
                *d ^= gf.mul(black_box(0x3d), s);
            }
            dst
        })
    });
    g.bench_function("poly_eval/m8/len255/kernel", |bch| {
        bch.iter(|| gf.poly_eval(black_box(&a), black_box(0x7f)))
    });
    g.bench_function("poly_eval/m8/len255/reference", |bch| {
        bch.iter(|| {
            let mut acc = 0u16;
            for &c in a.iter().rev() {
                acc = gf.mul(acc, black_box(0x7f)) ^ c;
            }
            acc
        })
    });
    g.bench_function("mul-throughput/m8", |bch| {
        bch.iter(|| {
            let mut acc = 0u16;
            for &x in &a {
                for &y in &b_vec[..16] {
                    acc ^= gf.mul(x, y);
                }
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(benches, bench_codes);
criterion_main!(benches);
