// lint-fixture-as: crates/netsim/src/fixture.rs
//! The fixed shapes: an explicit upper bound before the allocation, or a
//! `get_len` read that validates against the remaining input.

fn restore(dec: &mut Dec<'_>) -> Result<Vec<u8>, SnapError> {
    const MAX: usize = 1 << 20;
    let n = dec.get_usize()?;
    if n > MAX {
        return Err(SnapError::corrupt("n out of range"));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(dec.get_u8()?);
    }
    Ok(out)
}

fn restore_table(dec: &mut Dec<'_>) -> Result<Vec<u64>, SnapError> {
    let count = dec.get_len(8)?;
    Ok(vec![0u64; count])
}

fn restore_range_checked(dec: &mut Dec<'_>) -> Result<Vec<u8>, SnapError> {
    const MAX: usize = 1 << 17;
    let n = dec.get_usize()?;
    if !(2..=MAX).contains(&n) {
        return Err(SnapError::corrupt("n out of range"));
    }
    Ok(vec![0u8; n])
}
