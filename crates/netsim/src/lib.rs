//! Synchronous B-Congested-Clique simulator with mobile bounded-degree
//! Byzantine edge adversaries (the model of Section 2 of the paper).
//!
//! # Model
//!
//! * `n` nodes with ids `0..n` (KT1: everyone knows all ids), connected by
//!   a [`Topology`] — the paper's complete graph `K_n` by default
//!   ([`Network::new`]), or any generated graph via
//!   [`Network::on_topology`].
//! * Communication proceeds in synchronous rounds; in each round every
//!   ordered pair `(u, v)` **that shares a topology edge** may carry up to
//!   `B` bits ([`Traffic`]); frames queued on non-edges are rejected.
//! * A mobile **α-BD adversary** controls a per-round edge set `F_i` whose
//!   faulty degree at every node `v` is at most `⌊α·(deg(v)+1)⌋` — on the
//!   clique this is exactly the paper's `⌊αn⌋` — and may replace the
//!   messages crossing controlled edges (both directions) arbitrarily. The
//!   simulator *enforces* the degree constraint (and topology membership):
//!   a strategy that oversteps its budget is rejected.
//! * **Non-adaptive** ([`Adversary::non_adaptive`]): the edge sets are a
//!   function of the round index only — chosen before any traffic flows —
//!   while corrupted *contents* may depend on the current intended traffic
//!   (the "rushing" refinement of the paper's footnote 3).
//! * **Adaptive** ([`Adversary::adaptive`]): both the edge set and the
//!   contents may depend on everything — the full history, the current
//!   round's intended messages, and any randomness the protocol has
//!   published (footnote 4's rushing adaptive adversary).
//!
//! # Storage layer
//!
//! A round's frame matrix lives in a [`Backend`]-selected store: sparse
//! per-sender adjacency rows by default, auto-densifying to the flat matrix
//! at load factor ≥ 1/16. Deliveries expose per-receiver iteration
//! ([`Delivery::inbox_of`]) so receiving costs `O(frames)` rather than
//! `O(n)` probes per node, and the [`Network`] recycles tables and frame
//! buffers across rounds ([`Network::reclaim`], [`Network::frame_buffer`]).
//! This is what scales experiments from `n = 64` to `n ≥ 4096`.
//!
//! # Examples
//!
//! ```
//! use bdclique_netsim::{Adversary, Network, Traffic};
//! use bdclique_bits::BitVec;
//!
//! let mut net = Network::new(4, 8, 0.0, Adversary::none());
//! let mut traffic = net.traffic();
//! traffic.send(0, 1, BitVec::from_bools(&[true, false, true]));
//! let delivery = net.exchange(traffic);
//! assert_eq!(delivery.received(1, 0), Some(&BitVec::from_bools(&[true, false, true])));
//! assert_eq!(net.rounds(), 1);
//! ```

mod adversary;
mod bus;
mod history;
mod network;
mod pool;
pub mod seed;
mod stats;
mod store;
mod topology;
mod traffic;

pub use adversary::{
    AdaptiveScope, AdaptiveStrategy, Adversary, AdversaryView, CorruptionScope, Corruptor,
    EdgePlan, EdgeSet,
};
pub use bus::MessageBus;
pub use history::{History, HistoryMode, RoundRecord};
pub use network::{Network, NetworkError, PublishedLog};
pub use pool::{FramePool, PoolTaker};
pub use seed::SeedStream;
pub use stats::NetStats;
pub use store::Backend;
pub use topology::Topology;
pub use traffic::{Delivery, Inbox, Traffic};
