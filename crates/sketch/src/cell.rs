//! A single sketch cell: `(count, key_sum, check_sum)`.

use bdclique_hash::{KWiseHash, MersenneField};

/// One cell of a [`crate::RecoverySketch`].
///
/// The cell is a linear function of the inserted multiset:
/// `count = Σ f_i`, `key_sum = Σ f_i · key_i` (exact integer arithmetic),
/// `check_sum = Σ f_i · h(key_i) mod p` for the sketch's checksum hash `h`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Cell {
    /// Net frequency of all keys hashed into this cell.
    pub count: i64,
    /// Frequency-weighted key sum.
    pub key_sum: i128,
    /// Frequency-weighted checksum over F_p, `p = 2^61 - 1`.
    pub check_sum: u64,
}

impl Cell {
    /// Adds `freq` copies of `key` (hash value precomputed by the caller).
    pub fn add(&mut self, key: u64, freq: i64, key_hash: u64) {
        self.count += freq;
        self.key_sum += key as i128 * freq as i128;
        self.check_sum = MersenneField::add(self.check_sum, scale(key_hash, freq));
    }

    /// Merges another cell (linearity).
    pub fn merge(&mut self, other: &Cell) {
        self.count += other.count;
        self.key_sum += other.key_sum;
        self.check_sum = MersenneField::add(self.check_sum, other.check_sum);
    }

    /// Whether the cell is all-zero.
    pub fn is_zero(&self) -> bool {
        self.count == 0 && self.key_sum == 0 && self.check_sum == 0
    }

    /// If this cell holds exactly one distinct key, returns `(key, count)`.
    ///
    /// A *pure* cell satisfies `key_sum = count · key` for a valid key and
    /// `check_sum = count · h(key)`; the checksum makes a false positive
    /// exponentially unlikely.
    pub fn decode_pure(&self, key_bits: u32, check: &KWiseHash) -> Option<(u64, i64)> {
        if self.count == 0 {
            return None;
        }
        let count = self.count as i128;
        if self.key_sum % count != 0 {
            return None;
        }
        let key = self.key_sum / count;
        if key < 0 || (key_bits < 64 && key >= (1i128 << key_bits)) {
            return None;
        }
        let key = key as u64;
        let expect = scale(check.eval_field(key), self.count);
        (expect == self.check_sum).then_some((key, self.count))
    }
}

/// `freq · x mod p` with signed `freq`.
fn scale(x: u64, freq: i64) -> u64 {
    let m = MersenneField::mul(x, freq.unsigned_abs() % MersenneField::P);
    if freq >= 0 {
        m
    } else {
        MersenneField::sub(0, m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_hash() -> KWiseHash {
        KWiseHash::from_coeffs(vec![12345, 678, 91011, 1213, 1415], 1 << 20)
    }

    #[test]
    fn add_then_remove_is_zero() {
        let h = check_hash();
        let mut c = Cell::default();
        c.add(42, 3, h.eval_field(42));
        c.add(42, -3, h.eval_field(42));
        assert!(c.is_zero());
    }

    #[test]
    fn pure_cell_decodes() {
        let h = check_hash();
        let mut c = Cell::default();
        c.add(99, 2, h.eval_field(99));
        assert_eq!(c.decode_pure(20, &h), Some((99, 2)));
    }

    #[test]
    fn pure_cell_with_negative_count_decodes() {
        let h = check_hash();
        let mut c = Cell::default();
        c.add(7, -1, h.eval_field(7));
        assert_eq!(c.decode_pure(20, &h), Some((7, -1)));
    }

    #[test]
    fn mixed_cell_is_not_pure() {
        let h = check_hash();
        let mut c = Cell::default();
        c.add(1, 1, h.eval_field(1));
        c.add(100, 1, h.eval_field(100));
        // key_sum/count = 101/2 — not integral, or checksum mismatch.
        assert_eq!(c.decode_pure(20, &h), None);
    }

    #[test]
    fn checksum_catches_collision_like_sums() {
        let h = check_hash();
        let mut c = Cell::default();
        // keys 10 and 30 with freq 1 each: key_sum/count = 20, a valid key,
        // but the checksum exposes the lie.
        c.add(10, 1, h.eval_field(10));
        c.add(30, 1, h.eval_field(30));
        assert_eq!(c.decode_pure(20, &h), None);
    }

    #[test]
    fn merge_is_cellwise_addition() {
        let h = check_hash();
        let mut a = Cell::default();
        a.add(5, 1, h.eval_field(5));
        let mut b = Cell::default();
        b.add(5, 2, h.eval_field(5));
        a.merge(&b);
        assert_eq!(a.decode_pure(20, &h), Some((5, 3)));
    }
}
