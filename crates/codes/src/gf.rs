//! Arithmetic in the binary extension fields GF(2^m), 1 ≤ m ≤ 16.

use std::fmt;
use std::sync::Arc;

/// Primitive polynomials for GF(2^m), m = 1..=16, written with the leading
/// term included (e.g. `0x11d = x^8 + x^4 + x^3 + x^2 + 1`).
const PRIMITIVE_POLYS: [u32; 16] = [
    0x3,     // m=1:  x + 1
    0x7,     // m=2:  x^2 + x + 1
    0xb,     // m=3:  x^3 + x + 1
    0x13,    // m=4:  x^4 + x + 1
    0x25,    // m=5:  x^5 + x^2 + 1
    0x43,    // m=6:  x^6 + x + 1
    0x89,    // m=7:  x^7 + x^3 + 1
    0x11d,   // m=8:  x^8 + x^4 + x^3 + x^2 + 1
    0x211,   // m=9:  x^9 + x^4 + 1
    0x409,   // m=10: x^10 + x^3 + 1
    0x805,   // m=11: x^11 + x^2 + 1
    0x1053,  // m=12: x^12 + x^6 + x^4 + x + 1
    0x201b,  // m=13: x^13 + x^4 + x^3 + x + 1
    0x402b,  // m=14: x^14 + x^5 + x^3 + x + 1
    0x8003,  // m=15: x^15 + x + 1
    0x1100b, // m=16: x^16 + x^12 + x^3 + x + 1
];

#[derive(Debug)]
struct GfInner {
    m: u32,
    size: u32,
    exp: Vec<u16>, // exp[i] = alpha^i, length 2*(size-1) to avoid mod
    log: Vec<u16>, // log[x] for x != 0
}

/// The finite field GF(2^m) with precomputed log/exp tables.
///
/// Cloning is cheap (the tables are shared behind an [`Arc`]).
///
/// # Examples
///
/// ```
/// use bdclique_codes::Gf;
///
/// let gf = Gf::new(8);
/// let a = 0x57;
/// let b = 0x83;
/// let p = gf.mul(a, b);
/// assert_eq!(gf.div(p, b).unwrap(), a);
/// ```
#[derive(Clone)]
pub struct Gf {
    inner: Arc<GfInner>,
}

impl fmt::Debug for Gf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf(2^{})", self.inner.m)
    }
}

impl PartialEq for Gf {
    fn eq(&self, other: &Self) -> bool {
        self.inner.m == other.inner.m
    }
}

impl Eq for Gf {}

impl Gf {
    /// Builds GF(2^m).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= m <= 16`.
    pub fn new(m: u32) -> Self {
        assert!((1..=16).contains(&m), "GF(2^m) supported for m in 1..=16");
        let size = 1u32 << m;
        let poly = PRIMITIVE_POLYS[(m - 1) as usize];
        let order = size - 1;
        let mut exp = vec![0u16; (2 * order) as usize + 2];
        let mut log = vec![0u16; size as usize];
        let mut x = 1u32;
        for i in 0..order {
            exp[i as usize] = x as u16;
            log[x as usize] = i as u16;
            x <<= 1;
            if x & size != 0 {
                x ^= poly;
            }
        }
        for i in order..(2 * order + 2) {
            exp[i as usize] = exp[(i - order) as usize];
        }
        Self {
            inner: Arc::new(GfInner { m, size, exp, log }),
        }
    }

    /// Field extension degree `m`.
    pub fn m(&self) -> u32 {
        self.inner.m
    }

    /// Field size `2^m`.
    pub fn size(&self) -> u32 {
        self.inner.size
    }

    /// Multiplicative group order `2^m - 1`.
    pub fn order(&self) -> u32 {
        self.inner.size - 1
    }

    /// Checks that `x` is a field element.
    #[inline]
    fn check(&self, x: u16) {
        debug_assert!(
            (x as u32) < self.inner.size,
            "element {x} outside GF(2^{})",
            self.inner.m
        );
    }

    /// Addition (XOR in characteristic 2).
    #[inline]
    pub fn add(&self, a: u16, b: u16) -> u16 {
        self.check(a);
        self.check(b);
        a ^ b
    }

    /// Subtraction (identical to addition in characteristic 2).
    #[inline]
    pub fn sub(&self, a: u16, b: u16) -> u16 {
        self.add(a, b)
    }

    /// Multiplication via log/exp tables.
    #[inline]
    pub fn mul(&self, a: u16, b: u16) -> u16 {
        self.check(a);
        self.check(b);
        if a == 0 || b == 0 {
            return 0;
        }
        let inner = &self.inner;
        let idx = inner.log[a as usize] as usize + inner.log[b as usize] as usize;
        inner.exp[idx]
    }

    /// Multiplicative inverse; `None` for zero.
    #[inline]
    pub fn inv(&self, a: u16) -> Option<u16> {
        self.check(a);
        if a == 0 {
            return None;
        }
        let inner = &self.inner;
        Some(inner.exp[(inner.size - 1) as usize - inner.log[a as usize] as usize])
    }

    /// Division; `None` when dividing by zero.
    #[inline]
    pub fn div(&self, a: u16, b: u16) -> Option<u16> {
        Some(self.mul(a, self.inv(b)?))
    }

    /// `alpha^i` for the fixed primitive element alpha.
    #[inline]
    pub fn alpha_pow(&self, i: u32) -> u16 {
        self.inner.exp[(i % self.order()) as usize]
    }

    /// Discrete log base alpha; `None` for zero.
    pub fn log(&self, a: u16) -> Option<u16> {
        self.check(a);
        if a == 0 {
            None
        } else {
            Some(self.inner.log[a as usize])
        }
    }

    /// `a^e` for a field element `a`.
    pub fn pow(&self, a: u16, e: u32) -> u16 {
        self.check(a);
        if a == 0 {
            return if e == 0 { 1 } else { 0 };
        }
        let l = self.inner.log[a as usize] as u64 * e as u64;
        self.inner.exp[(l % self.order() as u64) as usize]
    }

    /// Evaluates a polynomial (coefficients low-degree first) at `x`.
    pub fn poly_eval(&self, coeffs: &[u16], x: u16) -> u16 {
        let mut acc = 0u16;
        for &c in coeffs.iter().rev() {
            acc = self.add(self.mul(acc, x), c);
        }
        acc
    }

    /// Multiplies two polynomials (coefficients low-degree first).
    pub fn poly_mul(&self, a: &[u16], b: &[u16]) -> Vec<u16> {
        if a.is_empty() || b.is_empty() {
            return vec![];
        }
        let mut out = vec![0u16; a.len() + b.len() - 1];
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            for (j, &bj) in b.iter().enumerate() {
                out[i + j] ^= self.mul(ai, bj);
            }
        }
        out
    }

    /// Formal derivative of a polynomial (characteristic 2: odd-degree terms
    /// survive).
    pub fn poly_derivative(&self, a: &[u16]) -> Vec<u16> {
        if a.len() <= 1 {
            return vec![0];
        }
        let mut out = vec![0u16; a.len() - 1];
        for (i, item) in out.iter_mut().enumerate() {
            // coefficient of x^i in derivative = (i+1) * a[i+1]; in char 2
            // this is a[i+1] when i is even, 0 when odd.
            *item = if i % 2 == 0 { a[i + 1] } else { 0 };
        }
        out
    }

    /// Divides polynomial `num` by `den`, returning `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics if `den` is the zero polynomial.
    pub fn poly_divmod(&self, num: &[u16], den: &[u16]) -> (Vec<u16>, Vec<u16>) {
        let dd = den
            .iter()
            .rposition(|&c| c != 0)
            .expect("division by zero polynomial");
        let mut rem: Vec<u16> = num.to_vec();
        let nd = rem.iter().rposition(|&c| c != 0).unwrap_or(0);
        if nd < dd {
            return (vec![0], rem);
        }
        let mut quot = vec![0u16; nd - dd + 1];
        let lead_inv = self.inv(den[dd]).expect("nonzero leading coefficient");
        for i in (dd..=nd).rev() {
            if rem[i] == 0 {
                continue;
            }
            let q = self.mul(rem[i], lead_inv);
            quot[i - dd] = q;
            for (j, &dc) in den.iter().enumerate().take(dd + 1) {
                rem[i - dd + j] ^= self.mul(q, dc);
            }
        }
        rem.truncate(dd.max(1));
        (quot, rem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_consistent_for_all_supported_m() {
        for m in 1..=16u32 {
            let gf = Gf::new(m);
            // alpha generates the multiplicative group: alpha^(order) == 1
            // and all powers below are distinct (checked via log roundtrip).
            assert_eq!(gf.alpha_pow(gf.order()), 1, "m={m}");
            for i in 0..gf.order().min(1000) {
                let x = gf.alpha_pow(i);
                assert_eq!(gf.log(x), Some(i as u16), "m={m}, i={i}");
            }
        }
    }

    #[test]
    fn gf256_known_products() {
        let gf = Gf::new(8);
        // Known AES-adjacent products under poly 0x11d.
        assert_eq!(gf.mul(0, 123), 0);
        assert_eq!(gf.mul(1, 123), 123);
        assert_eq!(gf.mul(2, 0x80), 0x1d); // x * x^7 = x^8 = 0x1d mod 0x11d
    }

    #[test]
    fn inverses() {
        let gf = Gf::new(8);
        assert_eq!(gf.inv(0), None);
        for a in 1..=255u16 {
            let inv = gf.inv(a).unwrap();
            assert_eq!(gf.mul(a, inv), 1, "a={a}");
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let gf = Gf::new(5);
        for a in 0..32u16 {
            let mut acc = 1u16;
            for e in 0..10u32 {
                assert_eq!(gf.pow(a, e), acc, "a={a}, e={e}");
                acc = gf.mul(acc, a);
            }
        }
        assert_eq!(gf.pow(0, 0), 1);
        assert_eq!(gf.pow(0, 3), 0);
    }

    #[test]
    fn poly_eval_horner() {
        let gf = Gf::new(4);
        // p(x) = 3 + 5x + 7x^2
        let p = [3u16, 5, 7];
        for x in 0..16u16 {
            let direct = gf.add(gf.add(3, gf.mul(5, x)), gf.mul(7, gf.mul(x, x)));
            assert_eq!(gf.poly_eval(&p, x), direct);
        }
    }

    #[test]
    fn poly_mul_then_divmod_roundtrip() {
        let gf = Gf::new(8);
        let a = [1u16, 2, 3, 4];
        let b = [5u16, 6, 7];
        let prod = gf.poly_mul(&a, &b);
        let (q, r) = gf.poly_divmod(&prod, &b);
        assert_eq!(q, a.to_vec());
        assert!(r.iter().all(|&c| c == 0), "remainder {r:?}");
    }

    #[test]
    fn poly_derivative_char2() {
        let gf = Gf::new(4);
        // d/dx (a + bx + cx^2 + dx^3) = b + dx^2 in characteristic 2.
        let d = gf.poly_derivative(&[9, 8, 7, 6]);
        assert_eq!(d, vec![8, 0, 6]);
        assert_eq!(gf.poly_derivative(&[5]), vec![0]);
    }
}
