//! Offline API-subset shim of the [`rand`](https://crates.io/crates/rand)
//! crate (0.8 API surface).
//!
//! This build environment has no registry access, so the workspace vendors
//! the small slice of `rand` it actually uses: [`RngCore`], [`SeedableRng`]
//! (with a SplitMix64-based `seed_from_u64` seed expansion), and the [`Rng`]
//! extension trait with `gen`, `gen_range`, and `gen_bool`. Swapping back to
//! the real crate is a one-line change in the workspace manifest — but note
//! the streams are **not** value-compatible with upstream (`rand_core`
//! expands `seed_from_u64` with PCG32, not SplitMix64), so seeded
//! experiment outputs will change; nothing here is part of the public
//! bdclique API.

#![forbid(unsafe_code)]

/// The core of a random number generator: a source of random words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates the generator from a `u64`, expanding it with SplitMix64.
    ///
    /// Deterministic and stable within this workspace, but **not** the same
    /// expansion as upstream `rand_core` (which uses PCG32): swapping in the
    /// real crate changes every seeded stream.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 (Vigna), as used by rand::SeedableRng.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z = z ^ (z >> 31);
            let bytes = (z as u32).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that [`Rng::gen`] can produce uniformly.
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types [`Rng::gen_range`] can sample uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from the half-open range `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;

    /// Uniform sample from the closed range `[low, high]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Unbiased uniform draw from `[0, span)` by rejection (widening to u128
/// keeps the multiply-shift trick exact for 64-bit spans).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Lemire's multiply-shift rejection method.
    let mut m = (rng.next_u64() as u128) * (span as u128);
    let mut low = m as u64;
    if low < span {
        let threshold = span.wrapping_neg() % span;
        while low < threshold {
            m = (rng.next_u64() as u128) * (span as u128);
            low = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: low must be < high");
                let span = (high as u64) - (low as u64);
                low + uniform_below(rng, span) as $t
            }

            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
            ) -> Self {
                assert!(low <= high, "gen_range: low must be <= high");
                let span = (high as u64).wrapping_sub(low as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                low + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: low must be < high");
                let span = (high as $u).wrapping_sub(low as $u) as u64;
                low.wrapping_add(uniform_below(rng, span) as $t)
            }

            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
            ) -> Self {
                assert!(low <= high, "gen_range: low must be <= high");
                let span = ((high as $u).wrapping_sub(low as $u) as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: low must be < high");
                let unit = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                low + (high - low) * unit
            }

            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
            ) -> Self {
                Self::sample_range(rng, low, high)
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from the type's natural domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Fills `dest` with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: i32 = rng.gen_range(-3..=3);
            assert!((-3..=3).contains(&y));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = Counter(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
