//! Theorem 1.4 / 6.1: deterministic `O(log n)`-round `AllToAllComm` for
//! constant α, via the hypercube exchange pattern.

use super::{AllToAllProtocol, ProtocolSession, Step};
use crate::error::CoreError;
use crate::problem::{AllToAllInstance, AllToAllOutput};
use crate::routing::{
    RouteSession, RouterConfig, RoutingInstance, RoutingOutput, SharedCodewordCache, SuperMessage,
};
use bdclique_bits::BitVec;
use bdclique_netsim::Network;
use bdclique_snapshot::{Dec, Enc};
use std::borrow::Cow;

/// The hypercube protocol (Figure 2 of the paper).
///
/// With `n = 2^ℓ` and ids read MSB-first, iteration `i ∈ 1..=ℓ` matches
/// every node `u` with `u' = Flip(u, i)` (ids equal except bit `i`). Each
/// node splits its current message set `M_i(u)` — sorted by target, then
/// source — into halves `M⁻ / M⁺` and routes them so that the partner with
/// bit `i = 0` collects both `M⁻` sets and the partner with bit `i = 1` both
/// `M⁺` sets. Lemma 6.2's invariant `M_i(u) = M(S(u,i), P(u,i))` lets every
/// receiver reconstruct all message identities *implicitly* (no id bits on
/// the wire); each iteration is one `k = 2` super-message routing instance
/// of `n·B/2`-bit messages (Lemma 6.3).
#[derive(Debug, Clone, Default)]
pub struct DetHypercube {
    /// Router configuration for every iteration.
    pub router: RouterConfig,
    /// Cross-run cache from
    /// [`AllToAllProtocol::attach_codeword_cache`]; when absent the
    /// iterations encode without one.
    shared_cache: Option<SharedCodewordCache>,
}

impl DetHypercube {
    /// Creates the protocol with a router configuration.
    pub fn new(router: RouterConfig) -> Self {
        Self {
            router,
            shared_cache: None,
        }
    }
}

/// `S(u, i)`: ids agreeing with `u` on bit positions `i..=ℓ` (MSB-first),
/// i.e. on the low `ℓ - i + 1` bits. Ascending.
fn s_set(u: usize, i: usize, ell: usize) -> Vec<usize> {
    let low_bits = (ell + 1) - i;
    let mask = (1usize << low_bits) - 1;
    let fixed = u & mask;
    (0..1usize << (ell - low_bits))
        .map(|hi| (hi << low_bits) | fixed)
        .collect()
}

/// `P(u, i)`: ids agreeing with `u` on bit positions `1..i` (MSB-first),
/// i.e. on the high `i - 1` bits. Ascending.
fn p_set(u: usize, i: usize, ell: usize) -> Vec<usize> {
    let low_bits = ell - (i - 1);
    let hi = u >> low_bits;
    (0..1usize << low_bits)
        .map(|lo| (hi << low_bits) | lo)
        .collect()
}

/// The (target, source) id list of `M_i(u)` in ascending (target, source)
/// order — the implicit wire format of an iteration-`i` message set.
fn message_ids(u: usize, i: usize, ell: usize) -> Vec<(usize, usize)> {
    let sources = s_set(u, i, ell);
    let targets = p_set(u, i, ell);
    let mut ids = Vec::with_capacity(sources.len() * targets.len());
    for &t in &targets {
        for &s in &sources {
            ids.push((t, s));
        }
    }
    ids
}

/// The hypercube protocol as a state machine: `ℓ` iterations, one step per
/// network round.
struct HypercubeSession<'a> {
    router: &'a RouterConfig,
    /// Optional cross-run codeword cache; iteration payloads recur rarely,
    /// but the shared all-zero padding chunk always hits.
    cache: Option<SharedCodewordCache>,
    n: usize,
    ell: usize,
    b: usize,
    /// Current iteration `i ∈ 1..=ℓ`.
    i: usize,
    /// state[u]: payloads of M_i(u), aligned with message_ids(u, i, ell).
    state: Vec<Vec<BitVec>>,
    engine: HcEngine,
}

/// How one iteration's half exchange executes.
// One engine lives per session, so the variant size gap costs nothing.
#[allow(clippy::large_enum_variant)]
enum HcEngine {
    /// Complete topology: each iteration is a `k = 2` routed super-message
    /// instance (the paper's construction, resilient to the α-BD adversary).
    Routed(RouteSession<'static>),
    /// Sparse topology containing every hypercube dimension edge: each
    /// iteration sends the partner's half *directly* over the matching edge
    /// `(u, Flip(u, i))`, sliced to the bandwidth — the classical (fault-
    /// sensitive) hypercube exchange, since the routed compiler needs K_n.
    Direct {
        /// Network rounds this iteration needs.
        rounds: usize,
        /// Rounds already exchanged this iteration.
        done: usize,
        /// outbox[u]: the half payload `u` sends to its partner.
        outbox: Vec<BitVec>,
        /// received[v]: the partner's half, assembled slice by slice
        /// (pre-zeroed; missing frames leave zeros).
        received: Vec<BitVec>,
    },
}

/// What an iteration's exchange produced, consumed by the shared rebuild.
enum HcDone {
    Routed(RoutingOutput),
    Direct(Vec<BitVec>),
}

impl<'a> HypercubeSession<'a> {
    fn new(
        proto: &'a DetHypercube,
        net: &Network,
        inst: &'a AllToAllInstance,
    ) -> Result<Self, CoreError> {
        let n = inst.n();
        if n != net.n() {
            return Err(CoreError::invalid("instance size != network size"));
        }
        if !n.is_power_of_two() || n < 2 {
            return Err(CoreError::invalid(format!(
                "DetHypercube requires n to be a power of two, got {n}"
            )));
        }
        let ell = n.trailing_zeros() as usize;
        let b = inst.b();
        let state: Vec<Vec<BitVec>> = (0..n)
            .map(|u| {
                message_ids(u, 1, ell)
                    .into_iter()
                    .map(|(t, s)| {
                        debug_assert_eq!(s, u);
                        inst.message(u, t).clone()
                    })
                    .collect()
            })
            .collect();
        let engine = if net.topology().is_complete() {
            HcEngine::Routed(Self::iteration_route(
                net,
                &proto.router,
                proto.shared_cache.as_ref(),
                &state,
                n,
                ell,
                b,
                1,
            )?)
        } else {
            let topo = net.topology();
            let has_dims = (0..n).all(|u| (0..ell).all(|j| topo.contains(u, u ^ (1 << j))));
            if !has_dims {
                return Err(CoreError::infeasible(
                    "det-hypercube on a sparse topology needs every dimension edge \
                     (u, u XOR 2^j); the given graph is missing some"
                        .to_string(),
                ));
            }
            Self::direct_engine(&state, net.bandwidth(), n, ell, b, 1)
        };
        Ok(Self {
            router: &proto.router,
            cache: proto.shared_cache.clone(),
            n,
            ell,
            b,
            i: 1,
            state,
            engine,
        })
    }

    /// Opens iteration `i`'s direct partner exchange: precomputes each
    /// node's outgoing half (the half its partner collects) and sizes the
    /// round count to the bandwidth.
    fn direct_engine(
        state: &[Vec<BitVec>],
        bandwidth: usize,
        n: usize,
        ell: usize,
        b: usize,
        i: usize,
    ) -> HcEngine {
        let bit_shift = ell - i;
        let half = n / 2;
        let outbox = (0..n)
            .map(|u| {
                // The partner's bit is the complement of u's: partners with
                // bit 0 collect lower halves, bit 1 upper halves.
                if (u >> bit_shift) & 1 == 1 {
                    BitVec::concat(state[u][..half].iter())
                } else {
                    BitVec::concat(state[u][half..].iter())
                }
            })
            .collect();
        let total = half * b;
        HcEngine::Direct {
            rounds: total.div_ceil(bandwidth).max(1),
            done: 0,
            outbox,
            received: vec![BitVec::zeros(total); n],
        }
    }

    /// Builds iteration `i`'s `k = 2` routing instance and opens its
    /// session.
    #[allow(clippy::too_many_arguments)]
    fn iteration_route(
        net: &Network,
        router: &RouterConfig,
        cache: Option<&SharedCodewordCache>,
        state: &[Vec<BitVec>],
        n: usize,
        ell: usize,
        b: usize,
        i: usize,
    ) -> Result<RouteSession<'static>, CoreError> {
        let bit_shift = ell - i; // MSB-first bit i == LSB bit ell - i
        let half = n / 2; // |M_i(u)| = n, halves of n/2 messages
        let instance = RoutingInstance {
            n,
            payload_bits: half * b,
            messages: (0..n)
                .flat_map(|u| {
                    // Slot 0 = lower-target half (goes to partner with
                    // bit i = 0), slot 1 = upper half.
                    let lower = BitVec::concat(state[u][..half].iter());
                    let upper = BitVec::concat(state[u][half..].iter());
                    let t0 = u & !(1 << bit_shift);
                    let t1 = u | (1 << bit_shift);
                    [
                        SuperMessage {
                            src: u,
                            slot: 0,
                            payload: lower,
                            targets: vec![t0],
                        },
                        SuperMessage {
                            src: u,
                            slot: 1,
                            payload: upper,
                            targets: vec![t1],
                        },
                    ]
                })
                .collect(),
        };
        match cache {
            Some(c) => RouteSession::new_cached(net, instance, router, c.clone()),
            None => RouteSession::new(net, instance, router),
        }
    }

    /// Rebuilds a session from a snapshot. The routed engine carries its
    /// iteration instance in the serialized [`RouteSession`]; the direct
    /// engine re-derives its outbox and round count from the restored
    /// `state` and only overlays the exchange cursor and assembly buffers.
    fn restore(
        proto: &'a DetHypercube,
        net: &Network,
        inst: &'a AllToAllInstance,
        dec: &mut Dec<'_>,
    ) -> Result<Self, CoreError> {
        let n = inst.n();
        if n != net.n() {
            return Err(CoreError::invalid("instance size != network size"));
        }
        if !n.is_power_of_two() || n < 2 {
            return Err(CoreError::invalid(
                "DetHypercube requires n to be a power of two",
            ));
        }
        let ell = n.trailing_zeros() as usize;
        let b = inst.b();
        let i = dec.get_usize().map_err(CoreError::from)?;
        if i < 1 || i > ell {
            return Err(CoreError::invalid(
                "hypercube snapshot iteration out of range",
            ));
        }
        let mut state: Vec<Vec<BitVec>> = Vec::with_capacity(n);
        for _ in 0..n {
            let row = dec.get_seq(1, Dec::get_bits).map_err(CoreError::from)?;
            if row.len() != n {
                return Err(CoreError::invalid(
                    "hypercube snapshot state row size mismatch",
                ));
            }
            state.push(row);
        }
        let engine = match dec.get_u8().map_err(CoreError::from)? {
            0 => HcEngine::Routed(RouteSession::restore(
                net,
                &proto.router,
                proto.shared_cache.clone(),
                dec,
            )?),
            1 => {
                let mut engine = Self::direct_engine(&state, net.bandwidth(), n, ell, b, i);
                let HcEngine::Direct {
                    rounds,
                    done,
                    received,
                    ..
                } = &mut engine
                else {
                    unreachable!("direct_engine builds a Direct engine");
                };
                *done = dec.get_usize().map_err(CoreError::from)?;
                if *done >= *rounds {
                    return Err(CoreError::invalid(
                        "hypercube snapshot round cursor out of range",
                    ));
                }
                for dst in received.iter_mut() {
                    *dst = dec.get_bits().map_err(CoreError::from)?;
                }
                engine
            }
            _ => return Err(CoreError::invalid("unknown hypercube engine tag")),
        };
        Ok(Self {
            router: &proto.router,
            cache: proto.shared_cache.clone(),
            n,
            ell,
            b,
            i,
            state,
            engine,
        })
    }
}

impl ProtocolSession for HypercubeSession<'_> {
    fn step(&mut self, net: &mut Network) -> Result<Step, CoreError> {
        let (n, ell, b) = (self.n, self.ell, self.b);
        let i = self.i;
        if i > ell {
            return Err(CoreError::invalid("stepping a completed session"));
        }
        let bit_shift = ell - i;
        let half = n / 2;
        let outcome = match &mut self.engine {
            HcEngine::Routed(route) => match route.step(net)? {
                None => return Ok(Step::Running),
                Some(routed) => HcDone::Routed(routed),
            },
            HcEngine::Direct {
                rounds,
                done,
                outbox,
                received,
            } => {
                let bw = net.bandwidth();
                let total = half * b;
                let lo = *done * bw;
                let hi = ((*done + 1) * bw).min(total);
                let mut traffic = net.traffic();
                for (u, out) in outbox.iter().enumerate() {
                    if hi > lo {
                        traffic.send(u, u ^ (1 << bit_shift), out.slice(lo, hi));
                    }
                }
                let delivery = net.exchange(traffic);
                for (v, dst) in received.iter_mut().enumerate() {
                    let partner = v ^ (1 << bit_shift);
                    for (u, piece) in delivery.inbox_of(v) {
                        if u != partner {
                            continue;
                        }
                        if piece.len() <= hi - lo {
                            dst.write_bits(lo, piece);
                        } else {
                            // Overlong (adversarial) frame: clamp.
                            for idx in 0..hi - lo {
                                dst.set(lo + idx, piece.get(idx));
                            }
                        }
                    }
                }
                net.reclaim(delivery);
                *done += 1;
                if *done < *rounds {
                    return Ok(Step::Running);
                }
                HcDone::Direct(std::mem::take(received))
            }
        };
        // Iteration i's exchange finished: rebuild M_{i+1}(v) from the two
        // received halves.
        let mut next: Vec<Vec<BitVec>> = Vec::with_capacity(n);
        for v in 0..n {
            let my_bit = (v >> bit_shift) & 1;
            let partner = v ^ (1 << bit_shift);
            let expected_ids = message_ids(v, i + 1, ell);
            let mut collected: std::collections::HashMap<(usize, usize), BitVec> =
                std::collections::HashMap::with_capacity(expected_ids.len());
            for sender in [v, partner] {
                let payload = match &outcome {
                    HcDone::Routed(routed) => routed.delivered[v]
                        .get(&(sender, my_bit))
                        .cloned()
                        .unwrap_or_else(|| BitVec::zeros(half * b)),
                    HcDone::Direct(_) if sender == v => {
                        // The own half never leaves the node.
                        if my_bit == 0 {
                            BitVec::concat(self.state[v][..half].iter())
                        } else {
                            BitVec::concat(self.state[v][half..].iter())
                        }
                    }
                    HcDone::Direct(received) => received[v].clone(),
                };
                // The sender's half ids: sender's iteration-i ids,
                // lower or upper half by my_bit.
                let sender_ids = message_ids(sender, i, ell);
                let half_ids = if my_bit == 0 {
                    &sender_ids[..half]
                } else {
                    &sender_ids[half..]
                };
                for (idx, &(t, s)) in half_ids.iter().enumerate() {
                    collected.insert((t, s), payload.slice(idx * b, (idx + 1) * b));
                }
            }
            next.push(
                expected_ids
                    .iter()
                    .map(|id| collected.remove(id).unwrap_or_else(|| BitVec::zeros(b)))
                    .collect(),
            );
        }
        self.state = next;
        self.i += 1;
        if self.i <= ell {
            self.engine = match &self.engine {
                HcEngine::Routed(_) => HcEngine::Routed(Self::iteration_route(
                    net,
                    self.router,
                    self.cache.as_ref(),
                    &self.state,
                    n,
                    ell,
                    b,
                    self.i,
                )?),
                HcEngine::Direct { .. } => {
                    Self::direct_engine(&self.state, net.bandwidth(), n, ell, b, self.i)
                }
            };
            return Ok(Step::Running);
        }
        // M_{ℓ+1}(v) = M(V, {v}), sorted by (target = v, source ascending).
        let mut output = AllToAllOutput::empty(n);
        for v in 0..n {
            let ids = message_ids(v, ell + 1, ell);
            debug_assert!(ids.iter().all(|&(t, _)| t == v));
            for (idx, &(_, s)) in ids.iter().enumerate() {
                output.set(v, s, self.state[v][idx].clone());
            }
        }
        Ok(Step::Done(output))
    }

    fn snapshot(&mut self, net: &mut Network, enc: &mut Enc) -> Result<(), CoreError> {
        enc.put_usize(self.i);
        for row in &self.state {
            enc.put_seq(row, Enc::put_bits);
        }
        match &mut self.engine {
            HcEngine::Routed(route) => {
                enc.put_u8(0);
                route.snapshot(net, enc)?;
            }
            HcEngine::Direct { done, received, .. } => {
                enc.put_u8(1);
                enc.put_usize(*done);
                for dst in received.iter() {
                    enc.put_bits(dst);
                }
            }
        }
        Ok(())
    }
}

impl AllToAllProtocol for DetHypercube {
    fn name(&self) -> Cow<'static, str> {
        Cow::Borrowed("det-hypercube")
    }

    fn attach_codeword_cache(&mut self, cache: SharedCodewordCache) {
        self.shared_cache = Some(cache);
    }

    fn session<'a>(
        &'a self,
        net: &Network,
        inst: &'a AllToAllInstance,
    ) -> Result<Box<dyn ProtocolSession + 'a>, CoreError> {
        Ok(Box::new(HypercubeSession::new(self, net, inst)?))
    }

    fn restore_session<'a>(
        &'a self,
        net: &Network,
        inst: &'a AllToAllInstance,
        dec: &mut Dec<'_>,
    ) -> Result<Box<dyn ProtocolSession + 'a>, CoreError> {
        Ok(Box::new(HypercubeSession::restore(self, net, inst, dec)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdclique_netsim::Adversary;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn set_algebra_matches_lemma() {
        // n = 8, ell = 3.
        assert_eq!(s_set(0b101, 1, 3), vec![0b101]); // S(u,1) = {u}
        assert_eq!(p_set(0b101, 1, 3).len(), 8); // P(u,1) = V
        assert_eq!(s_set(0b101, 4, 3).len(), 8); // S(u, ell+1) = V
        assert_eq!(p_set(0b101, 4, 3), vec![0b101]); // P(u, ell+1) = {u}
                                                     // Sizes: |S| = 2^{i-1}, |P| = 2^{ell-i+1}.
        for i in 1..=4usize {
            assert_eq!(s_set(5, i, 3).len(), 1 << (i - 1));
            assert_eq!(p_set(5, i, 3).len(), 1 << (4 - i));
        }
    }

    #[test]
    fn message_ids_are_sorted_by_target_then_source() {
        let ids = message_ids(3, 2, 3);
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
        assert_eq!(ids.len(), 8);
    }

    #[test]
    fn perfect_without_faults_n8() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let inst = AllToAllInstance::random(8, 2, &mut rng);
        let mut net = Network::new(8, 9, 0.0, Adversary::none());
        let out = DetHypercube::default().run(&mut net, &inst).unwrap();
        assert_eq!(inst.count_errors(&out), 0);
    }

    #[test]
    fn perfect_without_faults_n32() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let inst = AllToAllInstance::random(32, 1, &mut rng);
        let mut net = Network::new(32, 9, 0.0, Adversary::none());
        let out = DetHypercube::default().run(&mut net, &inst).unwrap();
        assert_eq!(inst.count_errors(&out), 0);
    }

    #[test]
    fn direct_mode_on_hypercube_topology() {
        use bdclique_netsim::Topology;
        for (n, b, bw) in [(8usize, 2usize, 9usize), (16, 3, 5)] {
            let mut rng = ChaCha8Rng::seed_from_u64(4);
            let topo = Topology::hypercube(n);
            let inst = AllToAllInstance::random_on(&topo, b, &mut rng);
            let mut net = Network::on_topology(topo, bw, 0.0, Adversary::none());
            let out = DetHypercube::default().run(&mut net, &inst).unwrap();
            assert_eq!(inst.count_errors(&out), 0, "n = {n}");
            // ℓ iterations of ⌈(n/2)·b / B⌉ direct rounds each.
            let ell = n.trailing_zeros() as u64;
            let per = ((n / 2 * b).div_ceil(bw)) as u64;
            assert_eq!(net.rounds(), ell * per, "n = {n}");
        }
    }

    #[test]
    fn direct_mode_refuses_restepping_a_completed_session() {
        use bdclique_netsim::Topology;
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let topo = Topology::hypercube(8);
        let inst = AllToAllInstance::random_on(&topo, 2, &mut rng);
        let mut net = Network::on_topology(topo, 9, 0.0, Adversary::none());
        let proto = DetHypercube::default();
        let mut session = proto.session(&net, &inst).unwrap();
        loop {
            if let Step::Done(_) = session.step(&mut net).unwrap() {
                break;
            }
        }
        assert!(session.step(&mut net).is_err());
    }

    #[test]
    fn sparse_graph_without_dimension_edges_is_infeasible() {
        use bdclique_netsim::Topology;
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let topo = Topology::ring(8); // misses the higher-dimension edges
        let inst = AllToAllInstance::random_on(&topo, 2, &mut rng);
        let mut net = Network::on_topology(topo, 9, 0.0, Adversary::none());
        assert!(matches!(
            DetHypercube::default().run(&mut net, &inst),
            Err(CoreError::Infeasible { .. })
        ));
    }

    #[test]
    fn rejects_non_power_of_two() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let inst = AllToAllInstance::random(6, 1, &mut rng);
        let mut net = Network::new(6, 9, 0.0, Adversary::none());
        assert!(DetHypercube::default().run(&mut net, &inst).is_err());
    }
}
