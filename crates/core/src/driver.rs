//! The round-stepped execution driver: runs a [`ProtocolSession`] to
//! completion while letting pluggable [`RoundObserver`]s watch — or
//! intervene in — the network **between** rounds.
//!
//! The paper's mobile adversary re-chooses its corrupted edge set every
//! round; the driver is the honest-side mirror of that granularity. Before
//! each round an observer may mutate the network (e.g. [`ScheduleSwitch`]
//! swaps the adversary plan, modeling burst and periodic attack phases) or
//! abort the run ([`RoundBudget`]); after each round it sees the exact
//! per-round stat deltas ([`RoundTrace`] records them for the bench
//! harness's per-round JSON section).

use crate::error::CoreError;
use crate::problem::{AllToAllInstance, AllToAllOutput};
use crate::protocols::{AllToAllProtocol, ProtocolSession, Step};
use bdclique_netsim::{Adversary, NetStats, Network};

/// What one completed round changed, as seen by [`RoundObserver::on_round_end`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundDelta {
    /// Index of the completed round **within the driven session** (0-based;
    /// equals the absolute network round when the session starts on a fresh
    /// network).
    pub round: u64,
    /// Absolute **virtual time** of the completed round
    /// ([`Network::virtual_time`] when the round started): `round` plus the
    /// network's round count at session start. Interleaved or resumed
    /// sessions sharing one network correlate their traces on this axis —
    /// two deltas with equal `vtime` describe the same wire round,
    /// whatever each session calls it locally.
    pub vtime: u64,
    /// Stat deltas for exactly this round ([`NetStats::delta_since`]);
    /// `peak_fault_degree` carries the cumulative peak, not a per-round
    /// value.
    pub stats: NetStats,
}

/// Hooks invoked by the [`Driver`] around every network round.
///
/// `on_round_start` fires once per round index, *before* the session step
/// that will execute that round — with mutable network access, so observers
/// can swap the adversary or abort; `on_round_end` fires after the round's
/// `exchange` with the per-round stat deltas. A session step that performs
/// no `exchange` (only the final output-assembling step may) triggers no
/// `on_round_end`.
pub trait RoundObserver {
    /// Called before round `round` runs. Returning an error aborts the run
    /// cleanly — the round never executes, no partial `exchange`.
    ///
    /// # Errors
    ///
    /// Any [`CoreError`] to abort; [`CoreError::Aborted`] is conventional.
    fn on_round_start(&mut self, net: &mut Network, round: u64) -> Result<(), CoreError> {
        let _ = (net, round);
        Ok(())
    }

    /// Called after a round completed, with that round's stat deltas.
    ///
    /// # Errors
    ///
    /// Any [`CoreError`] to abort the run after this round. An abort takes
    /// precedence even when that round was the session's last: the
    /// completed output is discarded and the error is returned — "abort on
    /// condition X" means the caller never sees a result from a run where
    /// X occurred, final round included.
    fn on_round_end(&mut self, net: &Network, delta: &RoundDelta) -> Result<(), CoreError> {
        let _ = (net, delta);
        Ok(())
    }
}

/// Drives a [`ProtocolSession`] step by step, dispatching round hooks.
///
/// With no observers, [`Driver::run`] is behaviorally identical to
/// [`AllToAllProtocol::run`] (the default `step()` loop).
pub struct Driver<'d, 'o> {
    observers: &'d mut [&'o mut dyn RoundObserver],
}

impl<'d, 'o> Driver<'d, 'o> {
    /// A driver dispatching to the given observers, in order.
    pub fn with_observers(observers: &'d mut [&'o mut dyn RoundObserver]) -> Self {
        Self { observers }
    }

    /// Opens a session for `protocol` and runs it to completion.
    ///
    /// # Errors
    ///
    /// Propagates protocol errors and observer aborts ([`CoreError`]).
    pub fn run(
        &mut self,
        protocol: &dyn AllToAllProtocol,
        net: &mut Network,
        inst: &AllToAllInstance,
    ) -> Result<AllToAllOutput, CoreError> {
        let mut session = protocol.session(net, inst)?;
        self.run_session(session.as_mut(), net)
    }

    /// Runs an already-open session to completion. Round indices handed to
    /// observers are **session-relative** (the first round this driver
    /// executes is round 0), so budgets and schedules apply to *this* run
    /// even on a network that already carries rounds from earlier sessions.
    ///
    /// # Errors
    ///
    /// Propagates protocol errors and observer aborts ([`CoreError`]).
    pub fn run_session(
        &mut self,
        session: &mut dyn ProtocolSession,
        net: &mut Network,
    ) -> Result<AllToAllOutput, CoreError> {
        let start = net.rounds();
        let mut last_started: Option<u64> = None;
        loop {
            let round = net.rounds() - start;
            // A step that declares itself exchange-free (e.g. the
            // output-assembling final step of a zero-round session) gets no
            // round hooks: round `round` is not about to run, so observers
            // must neither see it nor abort on it.
            let declared_exchange_free = !session.next_step_exchanges();
            if !declared_exchange_free && last_started != Some(round) {
                for obs in self.observers.iter_mut() {
                    obs.on_round_start(net, round)?;
                }
                last_started = Some(round);
            }
            let before = *net.stats();
            let step = session.step(net)?;
            if declared_exchange_free && net.rounds() - start > round {
                // The declaration is load-bearing: it suppressed the round
                // hooks, so an exchange behind it would bypass budgets and
                // schedules silently. Fail loudly instead.
                return Err(CoreError::invalid(
                    "session declared an exchange-free step but ran an exchange",
                ));
            }
            if net.rounds() - start > round {
                let delta = RoundDelta {
                    round,
                    vtime: start + round,
                    stats: net.stats().delta_since(&before),
                };
                for obs in self.observers.iter_mut() {
                    obs.on_round_end(net, &delta)?;
                }
            }
            if let Step::Done(out) = step {
                return Ok(out);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Shipped observers
// ---------------------------------------------------------------------------

/// Records every round's stat deltas — the per-round perf trajectory that
/// `bdclique-bench` surfaces into the scenario JSON's `round_trace` section.
#[derive(Debug, Default)]
pub struct RoundTrace {
    /// One entry per completed round, in order.
    pub frames: Vec<RoundDelta>,
}

impl RoundTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }
}

impl RoundObserver for RoundTrace {
    fn on_round_end(&mut self, _net: &Network, delta: &RoundDelta) -> Result<(), CoreError> {
        self.frames.push(*delta);
        Ok(())
    }
}

/// Aborts the run with a clean [`CoreError::Aborted`] the moment a session
/// would start round `cap` — instead of letting a buggy or adversarially
/// stalled protocol loop forever. The round at the cap never executes: no
/// partial `exchange`, and `net.rounds()` stays at exactly `cap`.
#[derive(Debug, Clone, Copy)]
pub struct RoundBudget {
    /// Maximum number of rounds the session may execute.
    pub cap: u64,
}

impl RoundBudget {
    /// A budget of `cap` rounds.
    pub fn new(cap: u64) -> Self {
        Self { cap }
    }
}

impl RoundObserver for RoundBudget {
    fn on_round_start(&mut self, _net: &mut Network, round: u64) -> Result<(), CoreError> {
        if round >= self.cap {
            return Err(CoreError::aborted(format!(
                "round budget exhausted: {round} rounds run, cap {}",
                self.cap
            )));
        }
        Ok(())
    }
}

/// Swaps the network's adversary on a round schedule — the time-varying
/// attack of the ROADMAP: burst windows, periodic phases, or a mid-run
/// switch between adversary *classes* (something no single
/// `bdclique_netsim::EdgePlan` can express, since a plan cannot turn a
/// non-adaptive adversary into an adaptive one).
///
/// Built from `(start_round, adversary)` segments: when the driver reaches
/// session-relative round `start_round`, that segment's adversary is
/// installed via [`Network::set_adversary`] and stays until the next
/// segment starts.
pub struct ScheduleSwitch {
    /// `(start_round, adversary)` — sorted ascending by start round; each
    /// adversary is taken exactly once when its segment begins.
    segments: Vec<(u64, Option<Adversary>)>,
    next: usize,
}

impl ScheduleSwitch {
    /// Creates the schedule. Segments are sorted by start round; a segment
    /// starting at round 0 replaces the network's initial adversary before
    /// the first round.
    pub fn new(segments: Vec<(u64, Adversary)>) -> Self {
        let mut segments: Vec<(u64, Option<Adversary>)> = segments
            .into_iter()
            .map(|(round, adversary)| (round, Some(adversary)))
            .collect();
        segments.sort_by_key(|(round, _)| *round);
        Self { segments, next: 0 }
    }
}

impl RoundObserver for ScheduleSwitch {
    fn on_round_start(&mut self, net: &mut Network, round: u64) -> Result<(), CoreError> {
        while let Some((start, adversary)) = self.segments.get_mut(self.next) {
            if *start > round {
                break;
            }
            if let Some(adversary) = adversary.take() {
                net.set_adversary(adversary);
            }
            self.next += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::NaiveExchange;
    use bdclique_netsim::Adversary;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn instance(n: usize, b: usize, seed: u64) -> AllToAllInstance {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        AllToAllInstance::random(n, b, &mut rng)
    }

    #[test]
    fn driver_without_observers_matches_run() {
        let inst = instance(8, 4, 1);
        let mut net_a = Network::new(8, 8, 0.0, Adversary::none());
        let out_a = NaiveExchange.run(&mut net_a, &inst).unwrap();
        let mut net_b = Network::new(8, 8, 0.0, Adversary::none());
        let out_b = Driver::with_observers(&mut [])
            .run(&NaiveExchange, &mut net_b, &inst)
            .unwrap();
        assert_eq!(inst.count_errors(&out_a), inst.count_errors(&out_b));
        assert_eq!(net_a.rounds(), net_b.rounds());
        assert_eq!(net_a.stats().bits_sent, net_b.stats().bits_sent);
    }

    #[test]
    fn round_trace_records_one_delta_per_round() {
        let inst = instance(4, 10, 2); // 3 slices -> 3 rounds
        let mut net = Network::new(4, 4, 0.0, Adversary::none());
        let mut trace = RoundTrace::new();
        let mut observers: [&mut dyn RoundObserver; 1] = [&mut trace];
        Driver::with_observers(&mut observers)
            .run(&NaiveExchange, &mut net, &inst)
            .unwrap();
        assert_eq!(net.rounds(), 3);
        assert_eq!(trace.frames.len(), 3);
        assert_eq!(
            trace.frames.iter().map(|f| f.round).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        for frame in &trace.frames {
            assert_eq!(frame.stats.rounds, 1);
            assert!(frame.stats.bits_sent > 0);
        }
        let traced: u64 = trace.frames.iter().map(|f| f.stats.bits_sent).sum();
        assert_eq!(traced, net.stats().bits_sent, "deltas partition the totals");
    }

    #[test]
    fn round_budget_aborts_exactly_at_cap() {
        let inst = instance(4, 10, 3); // needs 3 rounds
        let mut net = Network::new(4, 4, 0.0, Adversary::none());
        let mut budget = RoundBudget::new(2);
        let mut observers: [&mut dyn RoundObserver; 1] = [&mut budget];
        let err = Driver::with_observers(&mut observers)
            .run(&NaiveExchange, &mut net, &inst)
            .unwrap_err();
        assert!(matches!(err, CoreError::Aborted { .. }), "{err}");
        assert_eq!(net.rounds(), 2, "the capped round must never execute");
    }

    #[test]
    fn round_budget_at_exact_cost_completes() {
        let inst = instance(4, 10, 4); // exactly 3 rounds
        let mut net = Network::new(4, 4, 0.0, Adversary::none());
        let mut budget = RoundBudget::new(3);
        let mut observers: [&mut dyn RoundObserver; 1] = [&mut budget];
        let out = Driver::with_observers(&mut observers)
            .run(&NaiveExchange, &mut net, &inst)
            .unwrap();
        assert_eq!(inst.count_errors(&out), 0);
        assert_eq!(net.rounds(), 3);
    }

    /// A session whose completing step performs no `exchange` (permitted by
    /// the `ProtocolSession` contract, and declared via
    /// `next_step_exchanges`) triggers no phantom round hooks: a budget
    /// equal to its true round cost completes, and observers see exactly
    /// the rounds that ran.
    #[test]
    fn exchange_free_final_step_sees_no_phantom_round() {
        use crate::protocols::{ProtocolSession, Step};

        /// `exchanges` real rounds, then one exchange-free assembly step.
        struct TrailingAssembly {
            n: usize,
            remaining: usize,
        }
        impl ProtocolSession for TrailingAssembly {
            fn step(&mut self, net: &mut Network) -> Result<Step, CoreError> {
                if self.remaining == 0 {
                    return Ok(Step::Done(AllToAllOutput::empty(self.n)));
                }
                self.remaining -= 1;
                let mut t = net.traffic();
                t.send(0, 1, bdclique_bits::BitVec::from_bools(&[true]));
                net.exchange(t);
                Ok(Step::Running)
            }

            fn next_step_exchanges(&self) -> bool {
                self.remaining > 0
            }
        }

        for exchanges in [0usize, 2] {
            let mut net = Network::new(4, 4, 0.0, Adversary::none());
            let mut session = TrailingAssembly {
                n: 4,
                remaining: exchanges,
            };
            let mut budget = RoundBudget::new(exchanges as u64);
            let mut trace = RoundTrace::new();
            let mut observers: [&mut dyn RoundObserver; 2] = [&mut budget, &mut trace];
            Driver::with_observers(&mut observers)
                .run_session(&mut session, &mut net)
                .unwrap_or_else(|e| panic!("budget {exchanges} must cover the run: {e}"));
            assert_eq!(net.rounds(), exchanges as u64);
            assert_eq!(trace.frames.len(), exchanges, "no phantom rounds traced");
        }

        // One short is still one short: the budget guard keeps its teeth.
        let mut net = Network::new(4, 4, 0.0, Adversary::none());
        let mut session = TrailingAssembly { n: 4, remaining: 2 };
        let mut budget = RoundBudget::new(1);
        let mut observers: [&mut dyn RoundObserver; 1] = [&mut budget];
        let err = Driver::with_observers(&mut observers)
            .run_session(&mut session, &mut net)
            .unwrap_err();
        assert!(matches!(err, CoreError::Aborted { .. }));
        assert_eq!(net.rounds(), 1);
    }

    /// A session that *lies* — declares an exchange-free step, then
    /// exchanges anyway — is rejected loudly instead of silently slipping
    /// its round past budgets and schedules.
    #[test]
    fn mis_declared_exchange_free_step_is_an_error() {
        use crate::protocols::{ProtocolSession, Step};

        struct Liar;
        impl ProtocolSession for Liar {
            fn step(&mut self, net: &mut Network) -> Result<Step, CoreError> {
                let t = net.traffic();
                net.exchange(t);
                Ok(Step::Done(AllToAllOutput::empty(4)))
            }

            fn next_step_exchanges(&self) -> bool {
                false
            }
        }

        let mut net = Network::new(4, 4, 0.0, Adversary::none());
        let err = Driver::with_observers(&mut [])
            .run_session(&mut Liar, &mut net)
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidInput { .. }), "{err}");
    }

    /// On a reused network, budgets and schedules are relative to the
    /// driven session, not to the network's lifetime round counter.
    #[test]
    fn observer_rounds_are_session_relative_on_reused_networks() {
        let inst = instance(4, 10, 6); // 3 rounds per run
        let mut net = Network::new(4, 4, 0.0, Adversary::none());
        NaiveExchange.run(&mut net, &inst).unwrap(); // rounds 0..3 consumed
        assert_eq!(net.rounds(), 3);

        // A budget of 3 covers the SECOND run in full…
        let mut budget = RoundBudget::new(3);
        let mut trace = RoundTrace::new();
        let mut observers: [&mut dyn RoundObserver; 2] = [&mut budget, &mut trace];
        Driver::with_observers(&mut observers)
            .run(&NaiveExchange, &mut net, &inst)
            .unwrap();
        assert_eq!(net.rounds(), 6);
        // …and the trace restarts at session round 0, while `vtime` keeps
        // counting on the shared network's absolute clock.
        assert_eq!(
            trace.frames.iter().map(|f| f.round).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(
            trace.frames.iter().map(|f| f.vtime).collect::<Vec<_>>(),
            vec![3, 4, 5]
        );

        // A budget of 2 cuts a third run after exactly 2 more rounds.
        let mut budget = RoundBudget::new(2);
        let mut observers: [&mut dyn RoundObserver; 1] = [&mut budget];
        let err = Driver::with_observers(&mut observers)
            .run(&NaiveExchange, &mut net, &inst)
            .unwrap_err();
        assert!(matches!(err, CoreError::Aborted { .. }));
        assert_eq!(net.rounds(), 8);
    }

    #[test]
    fn schedule_switch_swaps_adversary_mid_run() {
        struct FlipAll;
        impl bdclique_netsim::AdaptiveStrategy for FlipAll {
            fn corrupt(
                &mut self,
                _view: &bdclique_netsim::AdversaryView<'_>,
                scope: &mut bdclique_netsim::AdaptiveScope<'_>,
            ) {
                for (from, to, _) in scope.intended_frames() {
                    if let Some(frame) = scope.intended(from, to).cloned() {
                        let mut flipped = frame;
                        for i in 0..flipped.len() {
                            flipped.flip(i);
                        }
                        scope.try_corrupt(from, to, Some(flipped));
                    }
                }
            }
        }
        // Fault-free start; the flipper arrives at round 2 of 3.
        let inst = instance(4, 10, 5);
        let mut net = Network::new(4, 4, 0.25, Adversary::none());
        let mut schedule = ScheduleSwitch::new(vec![(2, Adversary::adaptive(FlipAll))]);
        let mut trace = RoundTrace::new();
        let mut observers: [&mut dyn RoundObserver; 2] = [&mut schedule, &mut trace];
        Driver::with_observers(&mut observers)
            .run(&NaiveExchange, &mut net, &inst)
            .unwrap();
        assert_eq!(net.rounds(), 3);
        assert_eq!(trace.frames[0].stats.edges_corrupted, 0);
        assert_eq!(trace.frames[1].stats.edges_corrupted, 0);
        assert!(
            trace.frames[2].stats.edges_corrupted > 0,
            "the scheduled adversary must act from round 2 on"
        );
    }
}
