//! Concrete mobile α-BD adversary strategies.
//!
//! The benchmark harness runs every protocol against every compatible
//! strategy here. Strategies divide along the paper's axes:
//!
//! * **Edge plans** (non-adaptive, [`bdclique_netsim::EdgePlan`]):
//!   [`plans::NoFaults`], [`plans::RandomMatchings`],
//!   [`plans::RotatingMatching`] (the α = 1/n matching that defeats
//!   tree-based aggregation — Section 3 of the paper),
//!   [`plans::RotatingStar`], [`plans::FixedEdges`], and the
//!   topology-aware camps [`plans::EclipseCamp`] and
//!   [`plans::PartitionCut`] — attacks that only fully close under the
//!   per-node budgets `⌊α·(deg(v)+1)⌋` of sparse graphs.
//! * **Corruptors** (payload rewriting on planned edges):
//!   [`corruptors::PayloadCorruptor`] with a [`Payload`] policy.
//! * **Adaptive strategies** ([`bdclique_netsim::AdaptiveStrategy`]):
//!   [`adaptive::GreedyLoad`] (corrupt the busiest edges),
//!   [`adaptive::TargetNode`] (concentrate the budget on one victim),
//!   [`adaptive::RushingRandom`] (random edges chosen among busy ones).

pub mod adaptive;
pub mod corruptors;
pub mod plans;

pub use corruptors::Payload;

/// Codec for a [`rand_chacha::ChaCha8Rng`] stream position, shared by every
/// stateful strategy's `save_state`/`load_state` hooks.
pub(crate) mod rng_state {
    use bdclique_snapshot::{Dec, Enc, SnapError};
    use rand_chacha::ChaCha8Rng;

    pub(crate) fn save(enc: &mut Enc, rng: &ChaCha8Rng) {
        let (key, counter, idx) = rng.position();
        for word in key {
            enc.put_u32(word);
        }
        enc.put_u64(counter);
        enc.put_usize(idx);
    }

    pub(crate) fn load(dec: &mut Dec<'_>) -> Result<ChaCha8Rng, SnapError> {
        let mut key = [0u32; 8];
        for word in &mut key {
            *word = dec.get_u32()?;
        }
        let counter = dec.get_u64()?;
        let idx = dec.get_usize()?;
        if idx > 16 {
            return Err(SnapError::corrupt(format!("rng buffer index {idx}")));
        }
        Ok(ChaCha8Rng::from_position(key, counter, idx))
    }
}
