//! Property tests for the topology generators: every generator is
//! seed-deterministic, respects its declared degree bounds, and produces a
//! connected simple graph; the clique representation matches the historical
//! all-pairs iteration order exactly (ascending neighbors, degree `n - 1`,
//! per-node budget `⌊α·(deg+1)⌋ = ⌊αn⌋`).

use bdclique_netsim::Topology;
use proptest::prelude::*;

/// Canonical undirected edge list for structural comparison.
fn edge_set(topo: &Topology) -> Vec<(usize, usize)> {
    let mut edges: Vec<(usize, usize)> = topo.edges().collect();
    edges.sort_unstable();
    edges
}

/// Simplicity: no self-loops, no duplicate edges, endpoints in range.
fn assert_simple(topo: &Topology) {
    let edges = edge_set(topo);
    let mut seen = std::collections::HashSet::new();
    for &(u, v) in &edges {
        assert!(u < topo.n() && v < topo.n(), "endpoint out of range");
        assert_ne!(u, v, "self-loop");
        assert!(
            seen.insert((u.min(v), u.max(v))),
            "duplicate edge ({u},{v})"
        );
    }
    assert_eq!(edges.len(), topo.edge_count());
}

proptest! {
    /// `random_regular` is exactly `d`-regular, simple, connected, and
    /// bit-deterministic in its seed.
    #[test]
    fn random_regular_is_regular_connected_deterministic(
        n_half in 3usize..24,
        d in 2usize..8,
        seed in 0u64..1000,
    ) {
        // n even keeps n·d even for every d.
        let n = 2 * n_half;
        prop_assume!(d < n);
        let topo = Topology::random_regular(n, d, seed);
        prop_assert_eq!(topo.n(), n);
        for v in 0..n {
            prop_assert_eq!(topo.degree(v), d, "node {} degree", v);
        }
        prop_assert!(topo.is_connected());
        assert_simple(&topo);
        prop_assert!(!topo.is_complete() || d == n - 1);
        // Seed-determinism: same seed, same graph; the sampler never
        // consults ambient randomness.
        let again = Topology::random_regular(n, d, seed);
        prop_assert_eq!(edge_set(&topo), edge_set(&again));
    }

    /// `small_world` keeps every node's lattice degree within the rewiring
    /// bound (`≥ k`: a rewire moves only the edge's far endpoint), stays
    /// connected, and is seed-deterministic.
    #[test]
    fn small_world_is_connected_deterministic(
        n in 8usize..48,
        k in 1usize..3,
        seed in 0u64..1000,
    ) {
        prop_assume!(2 * k < n);
        let topo = Topology::small_world(n, k, seed);
        prop_assert!(topo.is_connected());
        assert_simple(&topo);
        prop_assert_eq!(topo.edge_count(), n * k, "rewiring preserves edge count");
        let again = Topology::small_world(n, k, seed);
        prop_assert_eq!(edge_set(&topo), edge_set(&again));
    }

    /// The clique representation reproduces the historical all-pairs sweep:
    /// ascending `0..n` minus `u` neighbors, degree `n - 1`, and the
    /// degree-relative budget collapsing to the paper's `⌊αn⌋`.
    #[test]
    fn complete_matches_historical_iteration_and_budget(
        n in 2usize..64,
        alpha in 0.0f64..1.0,
    ) {
        let topo = Topology::complete(n);
        prop_assert!(topo.is_complete());
        prop_assert!(topo.is_connected());
        for u in 0..n {
            prop_assert_eq!(topo.degree(u), n - 1);
            let walked: Vec<usize> = topo.neighbors(u).collect();
            let legacy: Vec<usize> = (0..n).filter(|&v| v != u).collect();
            prop_assert_eq!(walked, legacy, "neighbor order at {}", u);
            prop_assert_eq!(
                topo.budget_of(u, alpha),
                (alpha * n as f64).floor() as usize,
                "degree-relative budget must reduce to the clique's floor(alpha*n)"
            );
        }
    }

    /// `torus2d` is 4-regular (3-regular on 2-wide dimensions, where the
    /// wraparound edge collapses), connected, and simple.
    #[test]
    fn torus_degrees_and_connectivity(rows in 2usize..8, cols in 2usize..8) {
        let topo = Topology::torus2d(rows, cols);
        prop_assert!(topo.is_connected());
        assert_simple(&topo);
        let expect = (if rows == 2 { 1 } else { 2 }) + (if cols == 2 { 1 } else { 2 });
        for v in 0..rows * cols {
            prop_assert_eq!(topo.degree(v), expect);
        }
    }

    /// `scale_free` (Barabási–Albert preferential attachment) carries its
    /// structural invariants for every `(n, m, seed)`: exact edge count
    /// (the `m+1`-clique core plus `m` edges per arrival), minimum degree
    /// `m`, simple, connected, and bit-deterministic in its seed.
    #[test]
    fn scale_free_invariants(
        n in 8usize..96,
        m in 1usize..5,
        seed in 0u64..500,
    ) {
        prop_assume!(m < n);
        let topo = Topology::scale_free(n, m, seed);
        prop_assert_eq!(topo.n(), n);
        prop_assert!(topo.is_connected());
        assert_simple(&topo);
        prop_assert_eq!(
            topo.edge_count(),
            m * (m + 1) / 2 + (n - m - 1) * m,
            "clique core + m edges per arrival"
        );
        // Every node keeps at least its attachment degree; arrivals have
        // exactly m out-edges but can gain more as later targets.
        for v in 0..n {
            prop_assert!(topo.degree(v) >= m, "node {} degree {} < m = {}", v, topo.degree(v), m);
        }
        let again = Topology::scale_free(n, m, seed);
        prop_assert_eq!(edge_set(&topo), edge_set(&again));
    }

    /// Preferential attachment concentrates degree: at any nontrivial size
    /// the maximum degree strictly exceeds the attachment parameter (a hub
    /// exists), and the degree distribution is not regular — the defining
    /// contrast with `random_regular`.
    #[test]
    fn scale_free_grows_hubs(n in 24usize..96, seed in 0u64..200) {
        let m = 2;
        let topo = Topology::scale_free(n, m, seed);
        let max_degree = (0..n).map(|v| topo.degree(v)).max().unwrap();
        let min_degree = (0..n).map(|v| topo.degree(v)).min().unwrap();
        prop_assert!(max_degree > m, "no hub: max degree {} at m = {}", max_degree, m);
        prop_assert!(
            max_degree > min_degree,
            "degree distribution collapsed to regular"
        );
    }
}

/// The structured generators are pinned structurally (they take no seed).
#[test]
fn structured_generators_are_as_documented() {
    let hc = Topology::hypercube(16);
    assert!(hc.is_connected());
    assert_simple(&hc);
    for v in 0..16 {
        assert_eq!(hc.degree(v), 4);
        for j in 0..4 {
            assert!(hc.contains(v, v ^ (1 << j)), "dimension edge {v}^{j}");
        }
    }

    let ring = Topology::ring(9);
    assert!(ring.is_connected());
    assert_simple(&ring);
    for v in 0..9 {
        assert_eq!(ring.degree(v), 2);
        assert!(ring.contains(v, (v + 1) % 9));
    }
}

/// Different seeds produce different random-regular graphs (overwhelmingly;
/// pinned for two specific seeds so the test is deterministic).
#[test]
fn random_regular_seeds_decorrelate() {
    let a = Topology::random_regular(32, 6, 1);
    let b = Topology::random_regular(32, 6, 2);
    assert_ne!(edge_set(&a), edge_set(&b));
}

/// Different seeds produce different scale-free graphs (pinned seeds, same
/// rationale as above).
#[test]
fn scale_free_seeds_decorrelate() {
    let a = Topology::scale_free(48, 2, 1);
    let b = Topology::scale_free(48, 2, 2);
    assert_ne!(edge_set(&a), edge_set(&b));
}
