//! Regenerates Table 1 and every figure-shaped experiment of the paper
//! through the declarative scenario engine.
//!
//! ```sh
//! cargo run --release -p bdclique-bench --bin tables                     # everything
//! cargo run --release -p bdclique-bench --bin tables -- --list          # name the scenarios
//! cargo run --release -p bdclique-bench --bin tables -- --scenario t1r3 # one scenario
//! cargo run --release -p bdclique-bench --bin tables -- \
//!     --scenario largen --trials 3 --json bench.json                    # machine-readable
//! ```
//!
//! Bare scenario names (`tables t1r3 frontier`) are accepted as shorthand
//! for `--scenario`; `route` expands to `route-margin` + `route-engines`.
//! `--trials N` overrides the `BDC_TRIALS` environment variable (default
//! 5); scenarios apply their historical per-suite scaling (e.g. `codes`
//! runs `8 × N`). `--json PATH` additionally writes every selected
//! scenario's cells, aggregates, seeds, and wall times as one JSON document
//! (schema documented in the README).

use bdclique_bench::experiments;
use bdclique_bench::scenario::{self, ScenarioResult};
use bdclique_bench::trajectory;
use std::process::ExitCode;

const USAGE: &str = "usage: tables [--scenario NAME]... [--trials N] [--json PATH] \
                    [--append-trajectory PATH] [--trajectory-gate] \
                    [--trace] [--list] [NAME]...";

struct Args {
    scenarios: Vec<String>,
    trials: Option<usize>,
    json: Option<String>,
    /// Append this run's per-cell `secs`/`mean_rounds` to the trajectory
    /// ledger at PATH and diff against the previous same-runner entry.
    trajectory: Option<String>,
    /// Make a trajectory gate violation fail the process (CI mode).
    trajectory_gate: bool,
    trace: bool,
    list: bool,
    help: bool,
}

fn parse_args(raw: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        scenarios: Vec::new(),
        trials: None,
        json: None,
        trajectory: None,
        trajectory_gate: false,
        trace: false,
        list: false,
        help: false,
    };
    let mut raw = raw.peekable();
    while let Some(arg) = raw.next() {
        match arg.as_str() {
            "--scenario" => {
                let name = raw.next().ok_or("--scenario requires a name")?;
                args.scenarios.push(name);
            }
            "--trials" => {
                let n = raw.next().ok_or("--trials requires a count")?;
                args.trials = Some(n.parse().map_err(|_| format!("bad trial count: {n}"))?);
            }
            "--json" => {
                let path = raw.next().ok_or("--json requires a path")?;
                args.json = Some(path);
            }
            "--append-trajectory" => {
                let path = raw.next().ok_or("--append-trajectory requires a path")?;
                args.trajectory = Some(path);
            }
            "--trajectory-gate" => args.trajectory_gate = true,
            "--trace" => args.trace = true,
            "--list" => args.list = true,
            "--help" | "-h" => args.help = true,
            flag if flag.starts_with("--") => return Err(format!("unknown flag: {flag}\n{USAGE}")),
            // Bare experiment ids, as the old CLI accepted.
            name => args.scenarios.push(name.to_string()),
        }
    }
    Ok(args)
}

/// Expands selection shorthands (`all`, empty, `route`) against the
/// registry; errors on unknown names so typos don't silently run nothing.
fn select(requested: &[String]) -> Result<Vec<&'static str>, String> {
    let known: Vec<&'static str> = experiments::registry()
        .iter()
        .map(|entry| entry.name)
        .collect();
    if requested.is_empty() || requested.iter().any(|r| r == "all") {
        return Ok(known);
    }
    let mut selected = Vec::new();
    for name in requested {
        match name.as_str() {
            "route" => selected.extend(["route-margin", "route-engines"]),
            other => match known.iter().find(|k| **k == other) {
                Some(k) => selected.push(*k),
                None => {
                    return Err(format!(
                        "unknown scenario '{other}'; try --list (known: {})",
                        known.join(", ")
                    ))
                }
            },
        }
    }
    Ok(selected)
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    if args.help {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }

    if args.list {
        println!("available scenarios:");
        for entry in experiments::registry() {
            println!("  {:<14} {}", entry.name, entry.about);
        }
        return ExitCode::SUCCESS;
    }

    let selected = match select(&args.scenarios) {
        Ok(selected) => selected,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let trials = args
        .trials
        .or_else(|| {
            std::env::var("BDC_TRIALS")
                .ok()
                .and_then(|s| s.parse().ok())
        })
        .unwrap_or(5usize);

    println!("bdclique experiment suite (base trials per config: {trials})");
    println!("paper: Fischer-Parter, PODC 2025 (arXiv:2505.05735)");

    let mut results: Vec<ScenarioResult> = Vec::new();
    for name in selected {
        let mut spec =
            experiments::build_scenario(name, trials).expect("registry names are always buildable");
        if args.trace {
            // Force per-round tracing (trial 0) on every trial cell of the
            // selected scenarios; scenarios like `schedules` opt in anyway.
            // Custom-measurement cells have no engine-run trials to trace.
            let mut traced = 0usize;
            for cell in &mut spec.cells {
                if let scenario::CellKind::Trials(job) = &mut cell.kind {
                    job.trace = true;
                    traced += 1;
                }
            }
            if traced == 0 {
                eprintln!(
                    "note: --trace has no effect on '{name}' (custom-measurement cells only)"
                );
            }
        }
        let result = scenario::run(&spec);
        println!("{}", result.table().render());
        results.push(result);
    }

    if let Some(path) = args.json {
        let doc = scenario::emit_json(&results, trials);
        if let Err(e) = std::fs::write(&path, &doc) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "wrote {path}: {} scenarios, {} cells ({})",
            results.len(),
            results.iter().map(|r| r.cells.len()).sum::<usize>(),
            scenario::SCHEMA
        );
    }

    if let Some(path) = args.trajectory {
        let runner = std::env::var("BDC_RUNNER").unwrap_or_else(|_| "local".to_string());
        let entry = trajectory::entry_from_results(&scenario::git_describe(), &runner, &results);
        let entries = match trajectory::append(std::path::Path::new(&path), entry) {
            Ok(entries) => entries,
            Err(e) => {
                eprintln!("failed to append trajectory {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "appended trajectory entry #{} (runner '{runner}') to {path}",
            entries.len()
        );
        let violations = trajectory::check_latest(&entries);
        for v in &violations {
            eprintln!("trajectory gate: {v}");
        }
        if violations.is_empty() {
            println!("trajectory gate: ok (±20% vs previous '{runner}' entry)");
        } else if args.trajectory_gate {
            eprintln!(
                "trajectory gate FAILED: {} violation(s) vs previous '{runner}' entry",
                violations.len()
            );
            return ExitCode::FAILURE;
        } else {
            println!(
                "trajectory gate: {} warning(s) (pass --trajectory-gate to make this fatal)",
                violations.len()
            );
        }
    }
    ExitCode::SUCCESS
}
