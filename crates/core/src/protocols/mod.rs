//! The `AllToAllComm` protocols of Table 1, plus baselines.
//!
//! | Protocol | Paper result | Adversary | Rounds | α regime |
//! |---|---|---|---|---|
//! | [`NaiveExchange`] | — (baseline) | none | 1 | 0 |
//! | [`RelayReplication`] | — (static-FT baseline) | static | `O(R)` | breaks under mobile matchings |
//! | [`NonAdaptiveAllToAll`] | Thm 1.2 | α-NBD | `O(1)` | `Θ(1)` |
//! | [`AdaptiveTakeOne`] | §3 "Take I" | α-ABD | `O(q)` | `Θ̃(1/q)` |
//! | [`AdaptiveAllToAll`] | Thm 1.3 "Take II" | α-ABD | `O(1)`* | `Θ̃(1/(q·t·b))` |
//! | [`DetHypercube`] | Thm 1.4 | α-ABD | `O(log n)` | `Θ(1)` |
//! | [`DetSqrt`] | Thm 1.5 | α-ABD | `O(1)` | `Θ(1/√n)` |
//!
//! (*) asymptotically; see `EXPERIMENTS.md` for the measured constants.

mod adaptive;
mod det_logn;
mod det_sqrt;
mod naive;
mod nonadaptive;
mod relay;

pub use adaptive::{AdaptiveAllToAll, AdaptiveTakeOne};
pub use det_logn::DetHypercube;
pub use det_sqrt::DetSqrt;
pub use naive::NaiveExchange;
pub use nonadaptive::NonAdaptiveAllToAll;
pub use relay::RelayReplication;

use crate::error::CoreError;
use crate::problem::{AllToAllInstance, AllToAllOutput};
use bdclique_netsim::Network;

/// A solution to the `AllToAllComm` problem.
///
/// `Send + Sync` is a supertrait so that a `&dyn AllToAllProtocol` can be
/// shared across the bench harness's parallel trial runners; every protocol
/// here is plain configuration data, and per-run state lives in the network.
pub trait AllToAllProtocol: Send + Sync {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Runs the protocol. Node locality discipline: the implementation may
    /// read `inst.message(u, v)` only while computing node `u`'s sends, and
    /// must route everything else through `net`.
    ///
    /// # Errors
    ///
    /// [`CoreError`] on malformed inputs or infeasible parameters for the
    /// network's α.
    fn run(&self, net: &mut Network, inst: &AllToAllInstance) -> Result<AllToAllOutput, CoreError>;
}

/// Outcome of running a protocol against an instance on a network.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Protocol name.
    pub protocol: &'static str,
    /// Wrong or missing messages out of `n²`.
    pub errors: usize,
    /// Network rounds consumed.
    pub rounds: u64,
    /// Total bits put on the wire by honest nodes.
    pub bits_sent: u64,
    /// Corrupted (edge, round) slots the adversary used.
    pub edges_corrupted: u64,
}

/// Runs `protocol` and scores the result against the instance.
///
/// # Errors
///
/// Propagates protocol errors.
pub fn run_and_score(
    protocol: &dyn AllToAllProtocol,
    net: &mut Network,
    inst: &AllToAllInstance,
) -> Result<Outcome, CoreError> {
    let rounds_before = net.rounds();
    let bits_before = net.stats().bits_sent;
    let corrupted_before = net.stats().edges_corrupted;
    let output = protocol.run(net, inst)?;
    Ok(Outcome {
        protocol: protocol.name(),
        errors: inst.count_errors(&output),
        rounds: net.rounds() - rounds_before,
        bits_sent: net.stats().bits_sent - bits_before,
        edges_corrupted: net.stats().edges_corrupted - corrupted_before,
    })
}
