//! The mobile α-BD adversary framework: edge sets, budgets, and the
//! non-adaptive / adaptive strategy interfaces.
//!
//! # Clone-free rushing view
//!
//! The rushing adversary may read the round's *intended* traffic while it
//! rewrites frames. Earlier revisions materialized that view by cloning the
//! full `n × n` matrix every round; the scopes now keep a **copy-on-write
//! overlay** instead: the first rewrite of a slot moves the original frame
//! into the overlay, and [`CorruptionScope::intended`] /
//! [`AdaptiveScope::intended`] resolve reads through it. A round in which
//! the adversary touches `k` frames costs O(k) saved frames — never a
//! matrix clone, and nothing at all for frames it only reads.

use crate::history::History;
use crate::network::PublishedLog;
use crate::topology::Topology;
use crate::traffic::Traffic;
use bdclique_bits::BitVec;
use bdclique_snapshot::{Dec, Enc, SnapError};
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// A set of undirected clique edges with per-node degree tracking.
///
/// This is the per-round fault set `F_i`; the simulator rejects any set
/// whose degree exceeds the adversary's budget `⌊αn⌋`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeSet {
    // BTreeSet so `iter()` yields ascending edges on every process — the
    // adversary's claim order feeds corruption decisions, and those must
    // be identical across processes (no-hashmap-iteration invariant).
    edges: BTreeSet<(usize, usize)>,
    degrees: Vec<usize>,
}

impl EdgeSet {
    /// An empty edge set over `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            edges: BTreeSet::new(),
            degrees: vec![0; n],
        }
    }

    fn norm(u: usize, v: usize) -> (usize, usize) {
        if u < v {
            (u, v)
        } else {
            (v, u)
        }
    }

    /// Inserts the undirected edge `{u, v}`. Returns `false` if already
    /// present.
    ///
    /// # Panics
    ///
    /// Panics on self-loops or out-of-range endpoints.
    pub fn insert(&mut self, u: usize, v: usize) -> bool {
        assert_ne!(u, v, "no self-loops");
        assert!(
            u < self.degrees.len() && v < self.degrees.len(),
            "node out of range"
        );
        let inserted = self.edges.insert(Self::norm(u, v));
        if inserted {
            self.degrees[u] += 1;
            self.degrees[v] += 1;
        }
        inserted
    }

    /// Whether `{u, v}` is in the set.
    pub fn contains(&self, u: usize, v: usize) -> bool {
        self.edges.contains(&Self::norm(u, v))
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The faulty degree `deg(F)` — the maximum number of set edges incident
    /// to any single node (the quantity the α-BD model bounds).
    pub fn max_degree(&self) -> usize {
        self.degrees.iter().copied().max().unwrap_or(0)
    }

    /// Degree of one node.
    pub fn degree(&self, u: usize) -> usize {
        self.degrees[u]
    }

    /// Iterates over the (normalized) edges in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.edges.iter().copied()
    }
}

/// What an adversary may observe when acting, beyond the traffic itself.
///
/// The round's intended traffic is read through the scope
/// ([`CorruptionScope::intended`] / [`AdaptiveScope::intended`]), which
/// serves pre-corruption values without snapshotting the matrix. Adaptive
/// strategies additionally see everything the protocol
/// [`crate::Network::publish`]ed (internal randomness) and the round history
/// digest; for non-adaptive ones both are empty.
#[derive(Debug)]
pub struct AdversaryView<'a> {
    /// Current round index (0-based).
    pub round: u64,
    /// Bit strings published by the protocol (e.g. broadcast randomness),
    /// indexed by label — visible to *adaptive* adversaries only; empty for
    /// non-adaptive ones.
    pub published: &'a PublishedLog,
    /// The recorded transcript of prior rounds (footnote 4's knowledge) —
    /// adaptive adversaries only; empty for non-adaptive ones.
    pub history: &'a History,
}

/// Copy-on-write record of pre-corruption frames, shared by both scopes.
///
/// Keys are **directed** `(from, to)` slots; a slot is captured at most
/// once, on its first rewrite, by *moving* the displaced frame in (no clone).
#[derive(Debug, Default)]
struct IntendedOverlay {
    // BTreeMap: `intended_frames` iterates this, and its order reaches
    // adaptive strategies' corruption choices.
    originals: BTreeMap<(usize, usize), Option<BitVec>>,
}

impl IntendedOverlay {
    /// Records the frame displaced from `(from, to)` if this is the slot's
    /// first rewrite this round.
    fn capture(&mut self, from: usize, to: usize, displaced: Option<BitVec>) {
        self.originals.entry((from, to)).or_insert(displaced);
    }

    /// The round's intended frame on `from → to`: the saved original if the
    /// slot was rewritten, the live frame otherwise.
    fn resolve<'a>(&'a self, traffic: &'a Traffic, from: usize, to: usize) -> Option<&'a BitVec> {
        match self.originals.get(&(from, to)) {
            Some(original) => original.as_ref(),
            None => traffic.frame(from, to),
        }
    }

    /// All directed slots carrying *intended* traffic, as
    /// `(from, to, frame bits)` in ascending `(from, to)` order —
    /// `O(frames + rewrites)` on the sparse backend, never an `n²` scan.
    /// This is the substrate behind the strategies' busy-edge discovery.
    fn intended_frames(&self, traffic: &Traffic) -> Vec<(usize, usize, usize)> {
        let mut out = Vec::new();
        traffic.for_each_frame(|from, to, bits| {
            if !self.originals.contains_key(&(from, to)) {
                out.push((from, to, bits.len()));
            }
        });
        for (&(from, to), original) in &self.originals {
            if let Some(bits) = original {
                out.push((from, to, bits.len()));
            }
        }
        out.sort_unstable();
        out
    }

    /// The one corruption sequence both scopes share: enforce the bandwidth
    /// bound, displace the frame, capture the original, count the touch.
    /// Keeping it in one place keeps the two scopes' rushing-view semantics
    /// from drifting apart.
    ///
    /// # Panics
    ///
    /// Panics if the replacement exceeds the bandwidth.
    fn apply(
        &mut self,
        traffic: &mut Traffic,
        from: usize,
        to: usize,
        bits: Option<BitVec>,
        frames_touched: &mut u64,
    ) {
        if let Some(b) = &bits {
            assert!(
                b.len() <= traffic.bandwidth(),
                "corrupted frame exceeds bandwidth"
            );
        }
        let displaced = traffic.set_frame(from, to, bits);
        self.capture(from, to, displaced);
        *frames_touched += 1;
    }
}

/// Round-indexed choice of fault edges for a **non-adaptive** adversary.
///
/// The signature is the enforcement: the plan sees only the round index and
/// the topology, never traffic or randomness.
pub trait EdgePlan {
    /// The fault set for round `round`; must have `max_degree() ≤ budget`.
    fn edges(&mut self, round: u64, n: usize, budget: usize) -> EdgeSet;

    /// Topology-aware variant, consulted on *sparse* graphs (the clique
    /// keeps the legacy [`EdgePlan::edges`] path verbatim). The returned
    /// set must lie inside the topology's edge set and respect every
    /// node's budget `⌊α·(deg(v)+1)⌋`; the simulator validates both.
    ///
    /// The default falls back to [`EdgePlan::edges`] with the
    /// clique-equivalent advisory budget `⌊αn⌋`, so clique-oriented plans
    /// fail sparse validation loudly ([`crate::NetworkError`]) instead of
    /// silently camping on wires that do not exist. Plans that are
    /// meaningful off the clique (eclipse, partition) override this.
    fn edges_on(&mut self, round: u64, topo: &Topology, alpha: f64) -> EdgeSet {
        let advisory = (alpha * topo.n() as f64).floor() as usize;
        self.edges(round, topo.n(), advisory)
    }

    /// Serializes any round-to-round mutable state (RNG positions, learned
    /// load tables). Plans that are pure functions of the round index — the
    /// common case — keep the empty default.
    fn save_state(&self, _enc: &mut Enc) {}

    /// Restores state written by [`EdgePlan::save_state`].
    ///
    /// # Errors
    ///
    /// [`SnapError`] on truncated or corrupt input.
    fn load_state(&mut self, _dec: &mut Dec<'_>) -> Result<(), SnapError> {
        Ok(())
    }
}

impl<F: FnMut(u64, usize, usize) -> EdgeSet> EdgePlan for F {
    fn edges(&mut self, round: u64, n: usize, budget: usize) -> EdgeSet {
        self(round, n, budget)
    }
}

/// Content corruption for a **non-adaptive** adversary: restricted to the
/// planned edge set, but free to choose payloads based on intended traffic
/// (read via [`CorruptionScope::intended`]).
pub trait Corruptor {
    /// Rewrites frames crossing the controlled edges via `scope`.
    fn corrupt(
        &mut self,
        view: &AdversaryView<'_>,
        edges: &EdgeSet,
        scope: &mut CorruptionScope<'_>,
    );

    /// Serializes any round-to-round mutable state (typically an RNG
    /// position). Stateless corruptors keep the empty default.
    fn save_state(&self, _enc: &mut Enc) {}

    /// Restores state written by [`Corruptor::save_state`].
    ///
    /// # Errors
    ///
    /// [`SnapError`] on truncated or corrupt input.
    fn load_state(&mut self, _dec: &mut Dec<'_>) -> Result<(), SnapError> {
        Ok(())
    }
}

/// Mutation handle restricted to a fixed edge set.
#[derive(Debug)]
pub struct CorruptionScope<'a> {
    traffic: &'a mut Traffic,
    allowed: &'a EdgeSet,
    overlay: IntendedOverlay,
    frames_touched: u64,
}

impl<'a> CorruptionScope<'a> {
    fn new(traffic: &'a mut Traffic, allowed: &'a EdgeSet) -> Self {
        Self {
            traffic,
            allowed,
            overlay: IntendedOverlay::default(),
            frames_touched: 0,
        }
    }

    /// Replaces (or suppresses, with `None`) the frame on `from → to`.
    ///
    /// # Panics
    ///
    /// Panics if `{from, to}` is not a controlled edge or the replacement
    /// exceeds the bandwidth.
    pub fn set(&mut self, from: usize, to: usize, bits: Option<BitVec>) {
        assert!(
            self.allowed.contains(from, to),
            "edge {{{from},{to}}} is not controlled this round"
        );
        self.overlay
            .apply(self.traffic, from, to, bits, &mut self.frames_touched);
    }

    /// The frame the honest sender *intended* on `from → to` this round —
    /// unaffected by any rewrites already applied (the rushing view).
    pub fn intended(&self, from: usize, to: usize) -> Option<&BitVec> {
        self.overlay.resolve(self.traffic, from, to)
    }

    /// The frame currently queued on `from → to` (post any prior rewrites).
    pub fn current(&self, from: usize, to: usize) -> Option<&BitVec> {
        self.traffic.frame(from, to)
    }

    /// All directed slots carrying intended traffic, as
    /// `(from, to, frame bits)` in ascending `(from, to)` order.
    /// `O(frames + rewrites)` — strategies should prefer this over probing
    /// all `n²` slots with [`CorruptionScope::intended`].
    pub fn intended_frames(&self) -> Vec<(usize, usize, usize)> {
        self.overlay.intended_frames(self.traffic)
    }

    /// Network size.
    pub fn n(&self) -> usize {
        self.traffic.n()
    }
}

/// An **adaptive** adversary: chooses edges and contents together, with the
/// degree budget enforced transactionally by [`AdaptiveScope`].
pub trait AdaptiveStrategy {
    /// Acts on the current round.
    fn corrupt(&mut self, view: &AdversaryView<'_>, scope: &mut AdaptiveScope<'_>);

    /// Serializes any round-to-round mutable state (RNG positions, learned
    /// load tables). Stateless strategies keep the empty default.
    fn save_state(&self, _enc: &mut Enc) {}

    /// Restores state written by [`AdaptiveStrategy::save_state`].
    ///
    /// # Errors
    ///
    /// [`SnapError`] on truncated or corrupt input.
    fn load_state(&mut self, _dec: &mut Dec<'_>) -> Result<(), SnapError> {
        Ok(())
    }
}

/// Mutation handle that *acquires* edges on first touch, refusing any
/// acquisition that would push some node's faulty degree past the budget.
#[derive(Debug)]
pub struct AdaptiveScope<'a> {
    traffic: &'a mut Traffic,
    edges: EdgeSet,
    topo: &'a Topology,
    alpha: f64,
    overlay: IntendedOverlay,
    frames_touched: u64,
}

impl<'a> AdaptiveScope<'a> {
    fn new(traffic: &'a mut Traffic, topo: &'a Topology, alpha: f64) -> Self {
        let n = traffic.n();
        Self {
            traffic,
            edges: EdgeSet::new(n),
            topo,
            alpha,
            overlay: IntendedOverlay::default(),
            frames_touched: 0,
        }
    }

    /// Tries to corrupt the frame on `from → to` (acquiring the edge if not
    /// yet controlled). Returns `false` — without modifying anything — when
    /// acquiring the edge would exceed the degree budget.
    ///
    /// # Panics
    ///
    /// Panics if the replacement exceeds the bandwidth.
    pub fn try_corrupt(&mut self, from: usize, to: usize, bits: Option<BitVec>) -> bool {
        if !self.try_acquire(from, to) {
            return false;
        }
        self.overlay
            .apply(self.traffic, from, to, bits, &mut self.frames_touched);
        true
    }

    /// Tries to take control of edge `{from, to}` without touching traffic.
    /// Refused when the pair is not a topology edge, or when the
    /// acquisition would push either endpoint past its per-node budget
    /// `⌊α·(deg(v)+1)⌋` (on the clique: the uniform `⌊αn⌋`).
    pub fn try_acquire(&mut self, from: usize, to: usize) -> bool {
        if self.edges.contains(from, to) {
            return true;
        }
        if !self.topo.contains(from, to) {
            return false;
        }
        if self.edges.degree(from) + 1 > self.budget_of(from)
            || self.edges.degree(to) + 1 > self.budget_of(to)
        {
            return false;
        }
        self.edges.insert(from, to);
        true
    }

    /// How many more fault edges may touch `node` this round.
    pub fn remaining_degree(&self, node: usize) -> usize {
        self.budget_of(node).saturating_sub(self.edges.degree(node))
    }

    /// The clique-global per-round degree budget `⌊αn⌋`. On sparse
    /// topologies the binding constraint is the per-node
    /// [`AdaptiveScope::budget_of`]; on the clique the two coincide.
    pub fn budget(&self) -> usize {
        (self.alpha * self.traffic.n() as f64).floor() as usize
    }

    /// The per-node budget `⌊α·(deg(node)+1)⌋` — `⌊αn⌋` on the clique.
    pub fn budget_of(&self, node: usize) -> usize {
        self.topo.budget_of(node, self.alpha)
    }

    /// The communication graph — strategies walk real neighborhoods
    /// through this instead of probing all `n²` pairs.
    pub fn topology(&self) -> &Topology {
        self.topo
    }

    /// The frame the honest sender *intended* on `from → to` this round —
    /// unaffected by any rewrites already applied (the rushing view).
    pub fn intended(&self, from: usize, to: usize) -> Option<&BitVec> {
        self.overlay.resolve(self.traffic, from, to)
    }

    /// The frame currently queued on `from → to`.
    pub fn current(&self, from: usize, to: usize) -> Option<&BitVec> {
        self.traffic.frame(from, to)
    }

    /// All directed slots carrying intended traffic, as
    /// `(from, to, frame bits)` in ascending `(from, to)` order.
    /// `O(frames + rewrites)` — strategies should prefer this over probing
    /// all `n²` slots with [`AdaptiveScope::intended`].
    pub fn intended_frames(&self) -> Vec<(usize, usize, usize)> {
        self.overlay.intended_frames(self.traffic)
    }

    /// Network size.
    pub fn n(&self) -> usize {
        self.traffic.n()
    }
}

enum Kind {
    None,
    NonAdaptive {
        plan: Box<dyn EdgePlan>,
        corruptor: Box<dyn Corruptor>,
    },
    Adaptive(Box<dyn AdaptiveStrategy>),
}

impl std::fmt::Debug for Kind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Kind::None => write!(f, "None"),
            Kind::NonAdaptive { .. } => write!(f, "NonAdaptive"),
            Kind::Adaptive(_) => write!(f, "Adaptive"),
        }
    }
}

/// The adversary attached to a [`crate::Network`].
#[derive(Debug)]
pub struct Adversary {
    kind: Kind,
}

impl Adversary {
    /// The fault-free setting.
    pub fn none() -> Self {
        Self { kind: Kind::None }
    }

    /// An α-NBD adversary: `plan` fixes the per-round edge sets up front,
    /// `corruptor` rewrites contents on those edges (rushing).
    pub fn non_adaptive(
        plan: impl EdgePlan + 'static,
        corruptor: impl Corruptor + 'static,
    ) -> Self {
        Self {
            kind: Kind::NonAdaptive {
                plan: Box::new(plan),
                corruptor: Box::new(corruptor),
            },
        }
    }

    /// An α-ABD adversary.
    pub fn adaptive(strategy: impl AdaptiveStrategy + 'static) -> Self {
        Self {
            kind: Kind::Adaptive(Box::new(strategy)),
        }
    }

    /// Whether this adversary is adaptive (sees published randomness).
    pub fn is_adaptive(&self) -> bool {
        matches!(self.kind, Kind::Adaptive(_))
    }

    fn kind_tag(&self) -> u8 {
        match self.kind {
            Kind::None => 0,
            Kind::NonAdaptive { .. } => 1,
            Kind::Adaptive(_) => 2,
        }
    }

    /// Serializes the adversary's mutable state (RNG positions, learned
    /// tables). Boxed plans and strategies cannot be *materialized* from
    /// bytes — the caller rebuilds the adversary from its spec at restore
    /// and overlays this state via [`Adversary::load_state`].
    pub fn save_state(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        enc.put_u8(self.kind_tag());
        match &self.kind {
            Kind::None => {}
            Kind::NonAdaptive { plan, corruptor } => {
                plan.save_state(&mut enc);
                corruptor.save_state(&mut enc);
            }
            Kind::Adaptive(strategy) => strategy.save_state(&mut enc),
        }
        enc.into_bytes()
    }

    /// Overlays state written by [`Adversary::save_state`] onto a freshly
    /// rebuilt adversary of the *same kind*.
    ///
    /// # Errors
    ///
    /// [`SnapError`] if the saved kind differs from this adversary's, or on
    /// truncated/corrupt input.
    pub fn load_state(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        let mut dec = Dec::new(bytes);
        let saved = dec.get_u8()?;
        if saved != self.kind_tag() {
            return Err(SnapError::corrupt(format!(
                "adversary kind mismatch: saved {saved}, rebuilt {}",
                self.kind_tag()
            )));
        }
        match &mut self.kind {
            Kind::None => {}
            Kind::NonAdaptive { plan, corruptor } => {
                plan.load_state(&mut dec)?;
                corruptor.load_state(&mut dec)?;
            }
            Kind::Adaptive(strategy) => strategy.load_state(&mut dec)?,
        }
        dec.finish()
    }

    /// Runs one round of corruption; returns `(edge set used, frames touched)`.
    ///
    /// On the clique, non-adaptive plans go through the legacy
    /// [`EdgePlan::edges`] path with the uniform `⌊αn⌋` check — bit-for-bit
    /// the pre-topology pipeline. On sparse graphs, plans go through
    /// [`EdgePlan::edges_on`] and the returned set is validated for
    /// topology membership and per-node budgets `⌊α·(deg(v)+1)⌋`.
    pub(crate) fn act(
        &mut self,
        round: u64,
        traffic: &mut Traffic,
        published: &PublishedLog,
        history: &History,
        topo: &Topology,
        alpha: f64,
    ) -> Result<(EdgeSet, u64), crate::network::NetworkError> {
        let n = traffic.n();
        let empty_history = History::default();
        let empty_published = PublishedLog::default();
        match &mut self.kind {
            Kind::None => Ok((EdgeSet::new(n), 0)),
            Kind::NonAdaptive { plan, corruptor } => {
                let edges = if topo.is_complete() {
                    let budget = (alpha * n as f64).floor() as usize;
                    let edges = plan.edges(round, n, budget);
                    if edges.max_degree() > budget {
                        return Err(crate::network::NetworkError::BudgetExceeded {
                            round,
                            degree: edges.max_degree(),
                            budget,
                        });
                    }
                    edges
                } else {
                    let edges = plan.edges_on(round, topo, alpha);
                    let mut claimed: Vec<(usize, usize)> = edges.iter().collect();
                    claimed.sort_unstable();
                    for (u, v) in claimed {
                        if !topo.contains(u, v) {
                            return Err(crate::network::NetworkError::EdgeOffTopology {
                                round,
                                from: u,
                                to: v,
                            });
                        }
                    }
                    for v in 0..n {
                        let budget = topo.budget_of(v, alpha);
                        if edges.degree(v) > budget {
                            return Err(crate::network::NetworkError::NodeBudgetExceeded {
                                round,
                                node: v,
                                degree: edges.degree(v),
                                budget,
                            });
                        }
                    }
                    edges
                };
                let view = AdversaryView {
                    round,
                    // Non-adaptive adversaries never see randomness.
                    published: &empty_published,
                    history: &empty_history,
                };
                let mut scope = CorruptionScope::new(traffic, &edges);
                corruptor.corrupt(&view, &edges, &mut scope);
                let touched = scope.frames_touched;
                Ok((edges, touched))
            }
            Kind::Adaptive(strategy) => {
                let view = AdversaryView {
                    round,
                    published,
                    history,
                };
                let mut scope = AdaptiveScope::new(traffic, topo, alpha);
                strategy.corrupt(&view, &mut scope);
                let touched = scope.frames_touched;
                let edges = scope.edges;
                debug_assert!((0..n).all(|v| edges.degree(v) <= topo.budget_of(v, alpha)));
                Ok((edges, touched))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_set_degree_tracking() {
        let mut es = EdgeSet::new(5);
        assert!(es.insert(0, 1));
        assert!(es.insert(1, 2));
        assert!(!es.insert(2, 1)); // duplicate, normalized
        assert_eq!(es.len(), 2);
        assert_eq!(es.degree(1), 2);
        assert_eq!(es.max_degree(), 2);
        assert!(es.contains(1, 0));
        assert!(!es.contains(0, 2));
    }

    #[test]
    #[should_panic(expected = "no self-loops")]
    fn edge_set_rejects_self_loop() {
        EdgeSet::new(3).insert(2, 2);
    }

    #[test]
    fn adaptive_scope_enforces_budget() {
        let mut traffic = Traffic::new(4, 4);
        traffic.send(0, 1, BitVec::from_bools(&[true]));
        let topo = Topology::complete(4);
        // ⌊0.25·4⌋ = 1 fault edge per node.
        let mut scope = AdaptiveScope::new(&mut traffic, &topo, 0.25);
        assert!(scope.try_corrupt(0, 1, None));
        // Node 0 is at budget: a second edge at node 0 must be refused.
        assert!(!scope.try_corrupt(0, 2, None));
        // Re-touching the same edge is fine.
        assert!(scope.try_corrupt(1, 0, Some(BitVec::from_bools(&[false]))));
        assert_eq!(scope.remaining_degree(0), 0);
        assert_eq!(scope.remaining_degree(3), 1);
    }

    #[test]
    fn adaptive_scope_respects_sparse_topology() {
        let mut traffic = Traffic::new(4, 4);
        traffic.send(0, 1, BitVec::from_bools(&[true]));
        // Star at node 0. α = 0.5: the hub (deg 3) gets ⌊0.5·4⌋ = 2 fault
        // edges, the leaves (deg 1) get ⌊0.5·2⌋ = 1.
        let topo = Topology::from_edges(4, [(0, 1), (0, 2), (0, 3)]);
        let mut scope = AdaptiveScope::new(&mut traffic, &topo, 0.5);
        assert_eq!(scope.budget_of(0), 2);
        assert_eq!(scope.budget_of(1), 1);
        assert!(!scope.try_acquire(1, 2), "non-edges can never be acquired");
        assert!(scope.try_corrupt(0, 1, None));
        assert!(scope.try_acquire(0, 2));
        assert!(!scope.try_acquire(0, 3), "hub is at its per-node budget");
        assert_eq!(scope.remaining_degree(1), 0);
        assert_eq!(scope.remaining_degree(3), 1);
    }

    #[test]
    fn corruption_scope_restricted_to_allowed_edges() {
        let mut traffic = Traffic::new(4, 4);
        traffic.send(2, 3, BitVec::from_bools(&[true, true]));
        let mut allowed = EdgeSet::new(4);
        allowed.insert(2, 3);
        let mut scope = CorruptionScope::new(&mut traffic, &allowed);
        scope.set(3, 2, Some(BitVec::from_bools(&[false])));
        assert_eq!(scope.current(3, 2), Some(&BitVec::from_bools(&[false])));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            scope.set(0, 1, None);
        }));
        assert!(result.is_err(), "uncontrolled edge must be rejected");
    }

    /// The copy-on-write view must keep serving the *original* frame through
    /// any sequence of rewrites of the same slot, and must not be fooled by
    /// rewrites of other slots.
    #[test]
    fn intended_view_survives_rewrites() {
        let original = BitVec::from_bools(&[true, false, true]);
        let mut traffic = Traffic::new(3, 4);
        traffic.send(0, 1, original.clone());
        traffic.send(1, 0, BitVec::from_bools(&[false]));
        let topo = Topology::complete(3);
        // ⌊0.7·3⌋ = 2 fault edges per node.
        let mut scope = AdaptiveScope::new(&mut traffic, &topo, 0.7);

        // Before any rewrite, intended == current == the live frame.
        assert_eq!(scope.intended(0, 1), Some(&original));
        assert_eq!(scope.current(0, 1), Some(&original));

        // First rewrite: suppress. The view keeps the original.
        assert!(scope.try_corrupt(0, 1, None));
        assert_eq!(scope.intended(0, 1), Some(&original));
        assert_eq!(scope.current(0, 1), None);

        // Second rewrite of the same slot: still the original, not the
        // intermediate suppression.
        assert!(scope.try_corrupt(0, 1, Some(BitVec::from_bools(&[false, false]))));
        assert_eq!(scope.intended(0, 1), Some(&original));
        assert_eq!(
            scope.current(0, 1),
            Some(&BitVec::from_bools(&[false, false]))
        );

        // Untouched slots read through to the live matrix.
        assert_eq!(scope.intended(1, 0), Some(&BitVec::from_bools(&[false])));
        // An empty slot is empty in both views.
        assert_eq!(scope.intended(2, 0), None);
        assert_eq!(scope.current(2, 0), None);
    }

    /// Busy-edge discovery must list exactly the pre-corruption slots, in
    /// ascending order, unaffected by suppressions or injections.
    #[test]
    fn intended_frames_lists_precorruption_slots() {
        let mut traffic = Traffic::new(4, 4);
        traffic.send(2, 3, BitVec::from_bools(&[false]));
        traffic.send(0, 1, BitVec::from_bools(&[true, true]));
        let topo = Topology::complete(4);
        // ⌊0.5·4⌋ = 2 fault edges per node.
        let mut scope = AdaptiveScope::new(&mut traffic, &topo, 0.5);
        assert_eq!(scope.intended_frames(), vec![(0, 1, 2), (2, 3, 1)]);
        // Suppress one slot, inject on an intended-empty one: the intended
        // view is unchanged.
        assert!(scope.try_corrupt(0, 1, None));
        assert!(scope.try_corrupt(1, 0, Some(BitVec::from_bools(&[true]))));
        assert_eq!(scope.intended_frames(), vec![(0, 1, 2), (2, 3, 1)]);
    }

    /// Same property for the non-adaptive scope, including slots that were
    /// intended-empty and get a frame injected.
    #[test]
    fn corruption_scope_intended_view_is_precorruption() {
        let mut traffic = Traffic::new(3, 4);
        traffic.send(0, 1, BitVec::from_bools(&[true]));
        let mut allowed = EdgeSet::new(3);
        allowed.insert(0, 1);
        let mut scope = CorruptionScope::new(&mut traffic, &allowed);

        // Inject into the intended-empty reverse direction: intended stays
        // empty, current shows the injection.
        scope.set(1, 0, Some(BitVec::from_bools(&[true, true])));
        assert_eq!(scope.intended(1, 0), None);
        assert_eq!(
            scope.current(1, 0),
            Some(&BitVec::from_bools(&[true, true]))
        );

        scope.set(0, 1, None);
        assert_eq!(scope.intended(0, 1), Some(&BitVec::from_bools(&[true])));
        assert_eq!(scope.current(0, 1), None);
    }
}
