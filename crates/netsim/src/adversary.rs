//! The mobile α-BD adversary framework: edge sets, budgets, and the
//! non-adaptive / adaptive strategy interfaces.

use crate::history::History;
use crate::traffic::Traffic;
use bdclique_bits::BitVec;
use std::collections::HashSet;

/// A set of undirected clique edges with per-node degree tracking.
///
/// This is the per-round fault set `F_i`; the simulator rejects any set
/// whose degree exceeds the adversary's budget `⌊αn⌋`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeSet {
    edges: HashSet<(usize, usize)>,
    degrees: Vec<usize>,
}

impl EdgeSet {
    /// An empty edge set over `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            edges: HashSet::new(),
            degrees: vec![0; n],
        }
    }

    fn norm(u: usize, v: usize) -> (usize, usize) {
        if u < v {
            (u, v)
        } else {
            (v, u)
        }
    }

    /// Inserts the undirected edge `{u, v}`. Returns `false` if already
    /// present.
    ///
    /// # Panics
    ///
    /// Panics on self-loops or out-of-range endpoints.
    pub fn insert(&mut self, u: usize, v: usize) -> bool {
        assert_ne!(u, v, "no self-loops");
        assert!(u < self.degrees.len() && v < self.degrees.len(), "node out of range");
        let inserted = self.edges.insert(Self::norm(u, v));
        if inserted {
            self.degrees[u] += 1;
            self.degrees[v] += 1;
        }
        inserted
    }

    /// Whether `{u, v}` is in the set.
    pub fn contains(&self, u: usize, v: usize) -> bool {
        self.edges.contains(&Self::norm(u, v))
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The faulty degree `deg(F)` — the maximum number of set edges incident
    /// to any single node (the quantity the α-BD model bounds).
    pub fn max_degree(&self) -> usize {
        self.degrees.iter().copied().max().unwrap_or(0)
    }

    /// Degree of one node.
    pub fn degree(&self, u: usize) -> usize {
        self.degrees[u]
    }

    /// Iterates over the (normalized) edges.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.edges.iter().copied()
    }
}

/// What an adversary may observe when acting.
///
/// Non-adaptive corruptors see the current round's intended traffic (the
/// rushing refinement); adaptive strategies additionally see everything the
/// protocol [`crate::Network::publish`]ed (internal randomness) and the
/// round history digest.
#[derive(Debug)]
pub struct AdversaryView<'a> {
    /// Current round index (0-based).
    pub round: u64,
    /// The messages the nodes intend to send this round.
    pub intended: &'a Traffic,
    /// Bit strings published by the protocol (e.g. broadcast randomness) —
    /// visible to *adaptive* adversaries only; empty for non-adaptive ones.
    pub published: &'a [(String, BitVec)],
    /// The recorded transcript of prior rounds (footnote 4's knowledge) —
    /// adaptive adversaries only; empty for non-adaptive ones.
    pub history: &'a History,
}

/// Round-indexed choice of fault edges for a **non-adaptive** adversary.
///
/// The signature is the enforcement: the plan sees only the round index and
/// the topology, never traffic or randomness.
pub trait EdgePlan {
    /// The fault set for round `round`; must have `max_degree() ≤ budget`.
    fn edges(&mut self, round: u64, n: usize, budget: usize) -> EdgeSet;
}

impl<F: FnMut(u64, usize, usize) -> EdgeSet> EdgePlan for F {
    fn edges(&mut self, round: u64, n: usize, budget: usize) -> EdgeSet {
        self(round, n, budget)
    }
}

/// Content corruption for a **non-adaptive** adversary: restricted to the
/// planned edge set, but free to choose payloads based on intended traffic.
pub trait Corruptor {
    /// Rewrites frames crossing the controlled edges via `scope`.
    fn corrupt(&mut self, view: &AdversaryView<'_>, edges: &EdgeSet, scope: &mut CorruptionScope<'_>);
}

/// Mutation handle restricted to a fixed edge set.
#[derive(Debug)]
pub struct CorruptionScope<'a> {
    pub(crate) traffic: &'a mut Traffic,
    pub(crate) allowed: &'a EdgeSet,
    pub(crate) frames_touched: u64,
}

impl CorruptionScope<'_> {
    /// Replaces (or suppresses, with `None`) the frame on `from → to`.
    ///
    /// # Panics
    ///
    /// Panics if `{from, to}` is not a controlled edge or the replacement
    /// exceeds the bandwidth.
    pub fn set(&mut self, from: usize, to: usize, bits: Option<BitVec>) {
        assert!(
            self.allowed.contains(from, to),
            "edge {{{from},{to}}} is not controlled this round"
        );
        if let Some(b) = &bits {
            assert!(
                b.len() <= self.traffic.bandwidth(),
                "corrupted frame exceeds bandwidth"
            );
        }
        *self.traffic.frame_mut_slot(from, to) = bits;
        self.frames_touched += 1;
    }

    /// The frame currently queued on `from → to` (post any prior rewrites).
    pub fn current(&self, from: usize, to: usize) -> Option<&BitVec> {
        self.traffic.frame(from, to)
    }

    /// Network size.
    pub fn n(&self) -> usize {
        self.traffic.n()
    }
}

/// An **adaptive** adversary: chooses edges and contents together, with the
/// degree budget enforced transactionally by [`AdaptiveScope`].
pub trait AdaptiveStrategy {
    /// Acts on the current round.
    fn corrupt(&mut self, view: &AdversaryView<'_>, scope: &mut AdaptiveScope<'_>);
}

/// Mutation handle that *acquires* edges on first touch, refusing any
/// acquisition that would push some node's faulty degree past the budget.
#[derive(Debug)]
pub struct AdaptiveScope<'a> {
    pub(crate) traffic: &'a mut Traffic,
    pub(crate) edges: EdgeSet,
    pub(crate) budget: usize,
    pub(crate) frames_touched: u64,
}

impl AdaptiveScope<'_> {
    /// Tries to corrupt the frame on `from → to` (acquiring the edge if not
    /// yet controlled). Returns `false` — without modifying anything — when
    /// acquiring the edge would exceed the degree budget.
    ///
    /// # Panics
    ///
    /// Panics if the replacement exceeds the bandwidth.
    pub fn try_corrupt(&mut self, from: usize, to: usize, bits: Option<BitVec>) -> bool {
        if !self.try_acquire(from, to) {
            return false;
        }
        if let Some(b) = &bits {
            assert!(
                b.len() <= self.traffic.bandwidth(),
                "corrupted frame exceeds bandwidth"
            );
        }
        *self.traffic.frame_mut_slot(from, to) = bits;
        self.frames_touched += 1;
        true
    }

    /// Tries to take control of edge `{from, to}` without touching traffic.
    pub fn try_acquire(&mut self, from: usize, to: usize) -> bool {
        if self.edges.contains(from, to) {
            return true;
        }
        if self.edges.degree(from) + 1 > self.budget || self.edges.degree(to) + 1 > self.budget {
            return false;
        }
        self.edges.insert(from, to);
        true
    }

    /// How many more fault edges may touch `node` this round.
    pub fn remaining_degree(&self, node: usize) -> usize {
        self.budget.saturating_sub(self.edges.degree(node))
    }

    /// The per-round degree budget `⌊αn⌋`.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// The frame currently queued on `from → to`.
    pub fn current(&self, from: usize, to: usize) -> Option<&BitVec> {
        self.traffic.frame(from, to)
    }

    /// Network size.
    pub fn n(&self) -> usize {
        self.traffic.n()
    }
}

enum Kind {
    None,
    NonAdaptive {
        plan: Box<dyn EdgePlan>,
        corruptor: Box<dyn Corruptor>,
    },
    Adaptive(Box<dyn AdaptiveStrategy>),
}

impl std::fmt::Debug for Kind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Kind::None => write!(f, "None"),
            Kind::NonAdaptive { .. } => write!(f, "NonAdaptive"),
            Kind::Adaptive(_) => write!(f, "Adaptive"),
        }
    }
}

/// The adversary attached to a [`crate::Network`].
#[derive(Debug)]
pub struct Adversary {
    kind: Kind,
}

impl Adversary {
    /// The fault-free setting.
    pub fn none() -> Self {
        Self { kind: Kind::None }
    }

    /// An α-NBD adversary: `plan` fixes the per-round edge sets up front,
    /// `corruptor` rewrites contents on those edges (rushing).
    pub fn non_adaptive(plan: impl EdgePlan + 'static, corruptor: impl Corruptor + 'static) -> Self {
        Self {
            kind: Kind::NonAdaptive {
                plan: Box::new(plan),
                corruptor: Box::new(corruptor),
            },
        }
    }

    /// An α-ABD adversary.
    pub fn adaptive(strategy: impl AdaptiveStrategy + 'static) -> Self {
        Self {
            kind: Kind::Adaptive(Box::new(strategy)),
        }
    }

    /// Whether this adversary is adaptive (sees published randomness).
    pub fn is_adaptive(&self) -> bool {
        matches!(self.kind, Kind::Adaptive(_))
    }

    /// Runs one round of corruption; returns `(edge set used, frames touched)`.
    pub(crate) fn act(
        &mut self,
        round: u64,
        traffic: &mut Traffic,
        published: &[(String, BitVec)],
        history: &History,
        budget: usize,
    ) -> Result<(EdgeSet, u64), crate::network::NetworkError> {
        let n = traffic.n();
        let empty_history = History::default();
        match &mut self.kind {
            Kind::None => Ok((EdgeSet::new(n), 0)),
            Kind::NonAdaptive { plan, corruptor } => {
                let edges = plan.edges(round, n, budget);
                if edges.max_degree() > budget {
                    return Err(crate::network::NetworkError::BudgetExceeded {
                        round,
                        degree: edges.max_degree(),
                        budget,
                    });
                }
                let intended = traffic.clone();
                let view = AdversaryView {
                    round,
                    intended: &intended,
                    published: &[], // non-adaptive adversaries never see randomness
                    history: &empty_history,
                };
                let mut scope = CorruptionScope {
                    traffic,
                    allowed: &edges,
                    frames_touched: 0,
                };
                corruptor.corrupt(&view, &edges, &mut scope);
                let touched = scope.frames_touched;
                Ok((edges, touched))
            }
            Kind::Adaptive(strategy) => {
                let intended = traffic.clone();
                let view = AdversaryView {
                    round,
                    intended: &intended,
                    published,
                    history,
                };
                let mut scope = AdaptiveScope {
                    traffic,
                    edges: EdgeSet::new(n),
                    budget,
                    frames_touched: 0,
                };
                strategy.corrupt(&view, &mut scope);
                let touched = scope.frames_touched;
                let edges = scope.edges;
                debug_assert!(edges.max_degree() <= budget);
                Ok((edges, touched))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_set_degree_tracking() {
        let mut es = EdgeSet::new(5);
        assert!(es.insert(0, 1));
        assert!(es.insert(1, 2));
        assert!(!es.insert(2, 1)); // duplicate, normalized
        assert_eq!(es.len(), 2);
        assert_eq!(es.degree(1), 2);
        assert_eq!(es.max_degree(), 2);
        assert!(es.contains(1, 0));
        assert!(!es.contains(0, 2));
    }

    #[test]
    #[should_panic(expected = "no self-loops")]
    fn edge_set_rejects_self_loop() {
        EdgeSet::new(3).insert(2, 2);
    }

    #[test]
    fn adaptive_scope_enforces_budget() {
        let mut traffic = Traffic::new(4, 4);
        traffic.send(0, 1, BitVec::from_bools(&[true]));
        let mut scope = AdaptiveScope {
            traffic: &mut traffic,
            edges: EdgeSet::new(4),
            budget: 1,
            frames_touched: 0,
        };
        assert!(scope.try_corrupt(0, 1, None));
        // Node 0 is at budget: a second edge at node 0 must be refused.
        assert!(!scope.try_corrupt(0, 2, None));
        // Re-touching the same edge is fine.
        assert!(scope.try_corrupt(1, 0, Some(BitVec::from_bools(&[false]))));
        assert_eq!(scope.remaining_degree(0), 0);
        assert_eq!(scope.remaining_degree(3), 1);
    }

    #[test]
    fn corruption_scope_restricted_to_allowed_edges() {
        let mut traffic = Traffic::new(4, 4);
        traffic.send(2, 3, BitVec::from_bools(&[true, true]));
        let mut allowed = EdgeSet::new(4);
        allowed.insert(2, 3);
        let mut scope = CorruptionScope {
            traffic: &mut traffic,
            allowed: &allowed,
            frames_touched: 0,
        };
        scope.set(3, 2, Some(BitVec::from_bools(&[false])));
        assert_eq!(scope.current(3, 2), Some(&BitVec::from_bools(&[false])));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            scope.set(0, 1, None);
        }));
        assert!(result.is_err(), "uncontrolled edge must be rejected");
    }
}
