//! The experiment suite: one function per experiment id of `DESIGN.md`.
//!
//! Every function returns rendered tables; the `tables` binary dispatches on
//! experiment ids and `EXPERIMENTS.md` records reference output.

use crate::{aggregate, AdversarySpec, Table};
use bdclique_bits::BitVec;
use bdclique_codes::{ConcatenatedCode, Ldc, ReedSolomon, RepetitionCode, RmLdc, SymbolCode};
use bdclique_core::cc::{MaxTwoPhase, SumAll, Transpose};
use bdclique_core::compiler::{compile, run_fault_free};
use bdclique_core::protocols::{
    AdaptiveAllToAll, AdaptiveTakeOne, AllToAllProtocol, DetHypercube, DetSqrt, NaiveExchange,
    NonAdaptiveAllToAll, RelayReplication,
};
use bdclique_core::routing::{route, RouterConfig, RoutingInstance, RoutingMode, SuperMessage};
use bdclique_coverfree::{CoverFreeFamily, CoverFreeParams};
use bdclique_hash::SharedRandomness;
use bdclique_netsim::{Adversary, Network};
use bdclique_sketch::{RecoverySketch, SketchShape};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const BANDWIDTH: usize = 18;

fn fmt_f(x: f64) -> String {
    format!("{x:.1}")
}

fn fmt_rate(perfect: usize, trials: usize) -> String {
    format!("{perfect}/{trials}")
}

/// `T1.R1` — Table 1, row 1 (Theorem 1.2): non-adaptive randomized
/// compiler, constant α, `O(1)` rounds.
pub fn table1_row1(trials: usize) -> Table {
    let mut t = Table::new(
        "T1.R1  Thm 1.2: non-adaptive randomized, alpha = 1/16, O(1) rounds",
        &[
            "n",
            "budget/node",
            "adversary",
            "rounds",
            "perfect",
            "errors",
        ],
    );
    for n in [16usize, 32, 64] {
        let alpha = 1.0 / 16.0;
        // R = Θ(log n) copies (Theorem 1.2's B = Θ(log n) bandwidth): the
        // per-message failure probability is ~C(R, R/2)·α^{R/2}.
        let copies = match n {
            16 => 7,
            32 => 9,
            _ => 13,
        };
        let proto = NonAdaptiveAllToAll {
            copies,
            ..Default::default()
        };
        for spec in [
            AdversarySpec::RandomMatchingsFlip,
            AdversarySpec::RotatingMatchingFlip,
        ] {
            let agg = aggregate(&proto, n, 2, BANDWIDTH, alpha, spec, trials);
            t.row(vec![
                n.to_string(),
                ((alpha * n as f64) as usize).to_string(),
                spec.name().into(),
                fmt_f(agg.mean_rounds),
                fmt_rate(agg.perfect, agg.trials),
                agg.total_errors.to_string(),
            ]);
        }
    }
    t
}

/// `T1.R2` — Table 1, row 2 (Theorem 1.3): adaptive randomized compilers.
pub fn table1_row2(trials: usize) -> Table {
    let mut t = Table::new(
        "T1.R2  Thm 1.3: adaptive randomized (LDC + sketches)",
        &[
            "variant",
            "n",
            "budget",
            "adversary",
            "rounds",
            "perfect",
            "errors",
        ],
    );
    let configs: Vec<(&str, usize, Box<dyn AllToAllProtocol>)> = vec![
        (
            "take1 (O(q))",
            16,
            Box::new(AdaptiveTakeOne {
                line_capacity: 1,
                lines: 5,
                ..Default::default()
            }),
        ),
        (
            "take1 (O(q))",
            64,
            Box::new(AdaptiveTakeOne {
                lines: 5,
                ..Default::default()
            }),
        ),
        (
            "take2 direct",
            16,
            Box::new(AdaptiveAllToAll {
                query_via_ldc: false,
                line_capacity: 1,
                ..Default::default()
            }),
        ),
        (
            "take2 direct",
            64,
            Box::new(AdaptiveAllToAll {
                query_via_ldc: false,
                p_size: 8,
                ..Default::default()
            }),
        ),
        (
            "take2 LDC",
            16,
            Box::new(AdaptiveAllToAll {
                line_capacity: 1,
                ..Default::default()
            }),
        ),
    ];
    for (variant, n, proto) in &configs {
        let alpha = 1.5 / *n as f64; // budget 1
        for spec in [AdversarySpec::GreedyFlip, AdversarySpec::RushingRandom] {
            let agg = aggregate(proto.as_ref(), *n, 1, BANDWIDTH, alpha, spec, trials);
            t.row(vec![
                variant.to_string(),
                n.to_string(),
                ((alpha * *n as f64) as usize).to_string(),
                spec.name().into(),
                fmt_f(agg.mean_rounds),
                fmt_rate(agg.perfect, agg.trials),
                agg.total_errors.to_string(),
            ]);
        }
    }
    t
}

/// `T1.R3` — Table 1, row 3 (Theorem 1.4): deterministic, constant α,
/// `O(log n)` rounds.
pub fn table1_row3(trials: usize) -> Table {
    let mut t = Table::new(
        "T1.R3  Thm 1.4: deterministic hypercube, alpha = 1/16, O(log n) rounds",
        &[
            "n",
            "budget",
            "rounds",
            "rounds/log2(n)",
            "perfect",
            "errors",
        ],
    );
    for n in [8usize, 16, 32, 64, 128] {
        let alpha = 1.0 / 16.0;
        let proto = DetHypercube::default();
        let agg = aggregate(
            &proto,
            n,
            1,
            BANDWIDTH,
            alpha,
            AdversarySpec::GreedyFlip,
            trials,
        );
        let log2n = (n as f64).log2();
        t.row(vec![
            n.to_string(),
            ((alpha * n as f64) as usize).to_string(),
            fmt_f(agg.mean_rounds),
            fmt_f(agg.mean_rounds / log2n),
            fmt_rate(agg.perfect, agg.trials),
            agg.total_errors.to_string(),
        ]);
    }
    t
}

/// `T1.R4` — Table 1, row 4 (Theorem 1.5): deterministic, α = Θ(1/√n),
/// `O(1)` rounds, Θ(n^1.5) total corruptions.
pub fn table1_row4(trials: usize) -> Table {
    let mut t = Table::new(
        "T1.R4  Thm 1.5: deterministic sqrt-segments, alpha = 0.5/sqrt(n), O(1) rounds",
        &[
            "n",
            "budget",
            "rounds",
            "perfect",
            "errors",
            "corrupted/trial",
        ],
    );
    for n in [16usize, 64, 144, 256] {
        let alpha = 0.5 / (n as f64).sqrt();
        let proto = DetSqrt::default();
        let agg = aggregate(
            &proto,
            n,
            1,
            BANDWIDTH,
            alpha,
            AdversarySpec::GreedyFlip,
            trials,
        );
        t.row(vec![
            n.to_string(),
            ((alpha * n as f64) as usize).to_string(),
            fmt_f(agg.mean_rounds),
            fmt_rate(agg.perfect, agg.trials),
            agg.total_errors.to_string(),
            fmt_f(agg.mean_corrupted),
        ]);
    }
    t
}

/// `F.ROUTE` — the routing lemma (Theorem 1.1/4.1): decode margin threshold
/// and engine comparison.
pub fn routing_threshold() -> Vec<Table> {
    let mut margin = Table::new(
        "F.ROUTE(a)  unit-engine margin sweep, n = 64, k = 2, lambda = 64 bits",
        &[
            "budget",
            "alpha",
            "feasible",
            "rounds",
            "decode-failures",
            "payload-errors",
        ],
    );
    let n = 64usize;
    for budget in [0usize, 1, 2, 4, 8, 12, 14, 16] {
        let alpha = (budget as f64 + 0.2) / n as f64;
        let instance = routing_instance(n, 64, 2);
        let mut net = Network::new(
            n,
            BANDWIDTH,
            alpha.min(0.99),
            AdversarySpec::GreedyFlip.build(5),
        );
        let cfg = RouterConfig {
            mode: RoutingMode::Unit,
            ..Default::default()
        };
        match route(&mut net, &instance, &cfg) {
            Ok(out) => {
                let errors = count_routing_errors(&instance, &out.delivered);
                margin.row(vec![
                    budget.to_string(),
                    format!("{alpha:.3}"),
                    "yes".into(),
                    out.report.rounds.to_string(),
                    out.report.decode_failures.to_string(),
                    errors.to_string(),
                ]);
            }
            Err(_) => margin.row(vec![
                budget.to_string(),
                format!("{alpha:.3}"),
                "no".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]),
        }
    }

    let mut engines = Table::new(
        "F.ROUTE(b)  engine comparison, n = 256, lambda = 64 bits, fault-free",
        &["k", "engine", "feasible", "rounds", "stages"],
    );
    let n = 256usize;
    for k in [1usize, 2, 4] {
        let instance = routing_instance(n, 64, k);
        for (mode, name) in [
            (RoutingMode::CoverFree, "cover-free"),
            (RoutingMode::Unit, "unit"),
        ] {
            let mut net = Network::new(n, BANDWIDTH, 0.0, Adversary::none());
            let cfg = RouterConfig {
                mode,
                ..Default::default()
            };
            match route(&mut net, &instance, &cfg) {
                Ok(out) => engines.row(vec![
                    k.to_string(),
                    name.into(),
                    "yes".into(),
                    out.report.rounds.to_string(),
                    out.report.stages.to_string(),
                ]),
                Err(_) => engines.row(vec![
                    k.to_string(),
                    name.into(),
                    "no".into(),
                    "-".into(),
                    "-".into(),
                ]),
            }
        }
    }
    vec![margin, engines]
}

fn routing_instance(n: usize, payload_bits: usize, k: usize) -> RoutingInstance {
    RoutingInstance {
        n,
        payload_bits,
        messages: (0..n)
            .flat_map(|u| {
                (0..k).map(move |j| SuperMessage {
                    src: u,
                    slot: j,
                    payload: BitVec::from_fn(payload_bits, |i| (i + u + j) % 3 == 0),
                    targets: vec![(u + j * 7 + 1) % n],
                })
            })
            .collect(),
    }
}

fn count_routing_errors(
    instance: &RoutingInstance,
    delivered: &[std::collections::HashMap<(usize, usize), BitVec>],
) -> usize {
    let mut errors = 0;
    for msg in &instance.messages {
        for &t in &msg.targets {
            match delivered[t].get(&(msg.src, msg.slot)) {
                Some(p) if *p == msg.payload => {}
                _ => errors += 1,
            }
        }
    }
    errors
}

/// `F.MATCH` — the mobile-matching separation (Section 3): degree-1 mobile
/// faults defeat replication but not the compilers.
pub fn matching_separation(trials: usize) -> Table {
    let mut t = Table::new(
        "F.MATCH  mobile matching (alpha = 1/n) vs replication baselines, n = 64",
        &["protocol", "adversary", "perfect", "errors"],
    );
    let n = 64usize;
    let protocols: Vec<Box<dyn AllToAllProtocol>> = vec![
        Box::new(NaiveExchange),
        Box::new(RelayReplication { copies: 3 }),
        Box::new(RelayReplication { copies: 9 }),
        Box::new(DetHypercube::default()),
        Box::new(DetSqrt::default()),
    ];
    for proto in &protocols {
        for spec in [
            AdversarySpec::RotatingMatchingFlip,
            AdversarySpec::RelayHunter(3, 11),
        ] {
            let agg = aggregate(proto.as_ref(), n, 1, BANDWIDTH, 1.0 / 8.0, spec, trials);
            t.row(vec![
                proto.name().into(),
                spec.name().into(),
                fmt_rate(agg.perfect, agg.trials),
                agg.total_errors.to_string(),
            ]);
        }
    }
    t
}

/// `F.FREE` — the headline frontier: maximum per-round faulty degree each
/// protocol tolerates with zero errors, and the rounds it pays.
pub fn frontier(trials: usize) -> Table {
    let mut t = Table::new(
        "F.FREE  fault-tolerance frontier, n = 64 (adaptive greedy flip)",
        &[
            "protocol",
            "max budget",
            "max alpha",
            "rounds at max",
            "corrupt-slots/trial",
        ],
    );
    let n = 64usize;
    let protocols: Vec<(Box<dyn AllToAllProtocol>, AdversarySpec, usize)> = vec![
        (Box::new(NaiveExchange), AdversarySpec::GreedyFlip, 8),
        (
            Box::new(RelayReplication { copies: 3 }),
            AdversarySpec::GreedyFlip,
            8,
        ),
        (
            Box::new(NonAdaptiveAllToAll {
                copies: 7,
                ..Default::default()
            }),
            // The non-adaptive protocol is scored against its own model.
            AdversarySpec::RandomMatchingsFlip,
            8,
        ),
        (
            Box::new(DetHypercube::default()),
            AdversarySpec::GreedyFlip,
            8,
        ),
        (Box::new(DetSqrt::default()), AdversarySpec::GreedyFlip, 8),
        (
            Box::new(AdaptiveTakeOne {
                lines: 5,
                ..Default::default()
            }),
            AdversarySpec::GreedyFlip,
            4,
        ),
    ];
    for (proto, spec, max_budget) in &protocols {
        let mut best: Option<(usize, f64, f64, f64)> = None;
        for budget in 0..=*max_budget {
            let alpha = (budget as f64 + 0.2) / n as f64;
            let agg = aggregate(proto.as_ref(), n, 1, BANDWIDTH, alpha, *spec, trials);
            if agg.infeasible == 0 && agg.perfect == agg.trials {
                best = Some((budget, alpha, agg.mean_rounds, agg.mean_corrupted));
            }
        }
        match best {
            Some((budget, alpha, rounds, corrupted)) => t.row(vec![
                proto.name().into(),
                budget.to_string(),
                format!("{alpha:.3}"),
                fmt_f(rounds),
                fmt_f(corrupted),
            ]),
            None => t.row(vec![
                proto.name().into(),
                "none".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    t
}

/// `F.COMPILE` — compiled Congested Clique algorithms under attack.
pub fn compiler_overhead() -> Table {
    let mut t = Table::new(
        "F.COMPILE  round-by-round compilation under adaptive attack, n = 16",
        &[
            "algorithm",
            "cc-rounds",
            "compiled-rounds",
            "overhead",
            "outputs",
        ],
    );
    let n = 16usize;
    let alpha = 0.07;
    let sum = SumAll {
        inputs: (0..n as u64).map(|i| i * 13 + 7).collect(),
        width: 8,
    };
    let max = MaxTwoPhase {
        inputs: (0..n as u64).map(|i| (i * 37) % 101).collect(),
        width: 8,
    };
    let transpose = Transpose {
        rows: (0..n)
            .map(|u| (0..n).map(|v| (u * n + v) as u64).collect())
            .collect(),
        width: 8,
    };
    let proto = DetHypercube::default();

    macro_rules! run_algo {
        ($algo:expr) => {{
            let reference = run_fault_free(&$algo, n);
            let mut net = Network::new(n, BANDWIDTH, alpha, AdversarySpec::GreedyFlip.build(3));
            match compile(&mut net, &$algo, &proto) {
                Ok(run) => {
                    let cc_rounds = bdclique_core::compiler::CliqueAlgorithm::round_count(&$algo);
                    t.row(vec![
                        bdclique_core::compiler::CliqueAlgorithm::name(&$algo).into(),
                        cc_rounds.to_string(),
                        run.rounds.to_string(),
                        fmt_f(run.rounds as f64 / cc_rounds as f64),
                        if run.outputs == reference {
                            "MATCH".into()
                        } else {
                            "MISMATCH".into()
                        },
                    ]);
                }
                Err(e) => t.row(vec![
                    bdclique_core::compiler::CliqueAlgorithm::name(&$algo).into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    format!("error: {e}"),
                ]),
            }
        }};
    }
    run_algo!(sum);
    run_algo!(max);
    run_algo!(transpose);
    t
}

/// `A.CODE` — ECC ablation: decode success vs corruption fraction.
pub fn ablation_codes(trials: usize) -> Table {
    let mut t = Table::new(
        "A.CODE  decode success vs random symbol corruption (fraction of codeword)",
        &["code", "rate", "5%", "10%", "20%", "30%", "40%"],
    );
    let rep = RepetitionCode::new(8, 3, 5).unwrap();
    let rs = ReedSolomon::new(8, 16, 8).unwrap();
    let concat = ConcatenatedCode::new(16, 8).unwrap();
    let codes: Vec<(&str, &dyn SymbolCode)> = vec![
        ("repetition x5", &rep),
        ("RS[16,8] GF(256)", &rs),
        ("concat RS+Hamming", &concat),
    ];
    let fractions = [0.05, 0.10, 0.20, 0.30, 0.40];
    for (name, code) in codes {
        let mut cells = vec![name.to_string(), format!("{:.2}", code.rate())];
        for &f in &fractions {
            let mut ok = 0;
            let mut rng = ChaCha8Rng::seed_from_u64(777);
            for _ in 0..trials {
                let msg: Vec<u16> = (0..code.message_len())
                    .map(|_| rng.gen_range(0..1u32 << code.symbol_bits()) as u16)
                    .collect();
                let mut cw = code.encode(&msg).unwrap();
                let corrupt = ((cw.len() as f64) * f).round() as usize;
                let mut idx: Vec<usize> = (0..cw.len()).collect();
                for i in (1..idx.len()).rev() {
                    idx.swap(i, rng.gen_range(0..=i));
                }
                for &p in idx.iter().take(corrupt) {
                    cw[p] ^= 1 + rng.gen_range(0..(1u32 << code.symbol_bits()) - 1) as u16;
                }
                if code.decode(&cw, &vec![false; cw.len()]) == Ok(msg) {
                    ok += 1;
                }
            }
            cells.push(fmt_rate(ok, trials));
        }
        t.row(cells);
    }
    t
}

/// `A.LDC` — Reed–Muller LDC ablation: line amplification vs corruption.
pub fn ablation_ldc(trials: usize) -> Table {
    let mut t = Table::new(
        "A.LDC  RM-LDC local-decode success vs corruption, GF(16), d = 5",
        &["lines", "q (queries)", "5%", "10%", "15%", "20%"],
    );
    for lines in [1usize, 3, 5, 7] {
        let ldc = RmLdc::new(4, 5, lines).unwrap();
        let mut cells = vec![lines.to_string(), ldc.query_count().to_string()];
        for &f in &[0.05, 0.10, 0.15, 0.20] {
            let mut ok = 0;
            let mut total = 0;
            let mut rng = ChaCha8Rng::seed_from_u64(888);
            for trial in 0..trials {
                let msg: Vec<u16> = (0..ldc.message_len())
                    .map(|_| rng.gen_range(0..16))
                    .collect();
                let mut cw = ldc.encode(&msg).unwrap();
                let corrupt = ((cw.len() as f64) * f).round() as usize;
                for _ in 0..corrupt {
                    let p = rng.gen_range(0..cw.len());
                    cw[p] = rng.gen_range(0..16);
                }
                let shared = SharedRandomness::from_bits(&BitVec::from_fn(64, |i| {
                    (i as u64 + trial as u64).is_multiple_of(3)
                }));
                for i in (0..ldc.message_len()).step_by(5) {
                    total += 1;
                    let qs = ldc.decode_indices(i, &shared);
                    let answers: Vec<u16> = qs.iter().map(|&p| cw[p]).collect();
                    if ldc.local_decode(i, &answers, &shared) == Ok(msg[i]) {
                        ok += 1;
                    }
                }
            }
            cells.push(format!("{:.0}%", 100.0 * ok as f64 / total as f64));
        }
        t.row(cells);
    }
    t
}

/// `A.SKETCH` — sparse-recovery ablation: success vs load.
pub fn ablation_sketch(trials: usize) -> Table {
    let mut t = Table::new(
        "A.SKETCH  recovery success vs number of residual items (capacity 4 shape)",
        &["items", "cells", "recovered"],
    );
    let shape = SketchShape::for_capacity(4, 32);
    for items in [1usize, 2, 4, 8, 12, 16, 24] {
        let mut ok = 0;
        for trial in 0..trials {
            let mut rng = ChaCha8Rng::seed_from_u64(trial as u64);
            let shared = SharedRandomness::from_bits(&SharedRandomness::generate(&mut rng));
            let mut sk = RecoverySketch::new(shape, &shared);
            let mut expect = Vec::new();
            for _ in 0..items {
                let key = rng.gen_range(0..1u64 << 32);
                sk.add(key, 1).unwrap();
                expect.push((key, 1i64));
            }
            expect.sort_unstable();
            expect.dedup_by(|a, b| {
                if a.0 == b.0 {
                    b.1 += a.1;
                    true
                } else {
                    false
                }
            });
            if sk.recover() == Some(expect) {
                ok += 1;
            }
        }
        t.row(vec![
            items.to_string(),
            (shape.rows * shape.cols).to_string(),
            fmt_rate(ok, trials),
        ]);
    }
    t
}

/// `A.CFREE` — cover-free family ablation: measured worst cover fraction vs
/// group size.
pub fn ablation_coverfree() -> Table {
    let mut t = Table::new(
        "A.CFREE  measured worst cover fraction vs group size, n = 256, k = 2",
        &[
            "group",
            "set size L",
            "worst fraction",
            "erasure bound f",
            "margin left (L-2e-f), e=2",
        ],
    );
    let n = 256usize;
    for group in [4usize, 8, 16, 32] {
        let l = n / group;
        let params = CoverFreeParams {
            n,
            m: 2 * n,
            r: 1,
            set_size: l,
        };
        let h: Vec<Vec<u32>> = (0..n)
            .map(|u| vec![2 * u as u32, 2 * u as u32 + 1])
            .collect();
        match CoverFreeFamily::build(params, &h, 1.0, 1, 8) {
            Ok(fam) => {
                let f = (2.0 * fam.worst_cover_fraction() * l as f64).ceil() as i64;
                let margin = l as i64 - 2 * 5 - f; // e_allow = 2·2+1
                t.row(vec![
                    group.to_string(),
                    l.to_string(),
                    format!("{:.3}", fam.worst_cover_fraction()),
                    f.to_string(),
                    margin.to_string(),
                ]);
            }
            Err(e) => t.row(vec![
                group.to_string(),
                l.to_string(),
                format!("error: {e}"),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    t
}

/// `S.LARGE-N` — storage-layer scaling smoke: a full DetSqrt trial at
/// `n = 1024` (and the sparse exchange substrate it rides on). The old
/// dense `n²` frame matrix made this size unreachable; the row records the
/// wall time so regressions in the sparse substrate are visible in the
/// rendered tables.
pub fn large_n_smoke() -> Table {
    let mut t = Table::new(
        "S.LARGE-N  DetSqrt smoke on the sparse traffic substrate",
        &[
            "protocol",
            "n",
            "B",
            "errors",
            "rounds",
            "bits sent",
            "secs",
        ],
    );
    let n = 1024usize;
    let start = std::time::Instant::now();
    match crate::run_trial(
        &DetSqrt::default(),
        n,
        1,
        BANDWIDTH,
        0.0,
        AdversarySpec::None,
        1,
    ) {
        Ok(trial) => t.row(vec![
            "det-sqrt".into(),
            n.to_string(),
            "1".into(),
            trial.errors.to_string(),
            trial.rounds.to_string(),
            trial.bits_sent.to_string(),
            fmt_f(start.elapsed().as_secs_f64()),
        ]),
        Err(e) => t.row(vec![
            "det-sqrt".into(),
            n.to_string(),
            "1".into(),
            format!("error: {e}"),
            "-".into(),
            "-".into(),
            fmt_f(start.elapsed().as_secs_f64()),
        ]),
    }
    t
}

/// `A.QUERYPATH` — Take II ablation: LDC fetch vs direct sketch pull.
pub fn ablation_querypath(trials: usize) -> Table {
    let mut t = Table::new(
        "A.QUERYPATH  Take II sketch fetch: LDC storage vs direct pull, n = 16, budget 1",
        &["path", "rounds", "perfect", "errors"],
    );
    let n = 16usize;
    let alpha = 0.07;
    for (name, via_ldc) in [("LDC (paper)", true), ("direct pull", false)] {
        let proto = AdaptiveAllToAll {
            query_via_ldc: via_ldc,
            line_capacity: 1,
            ..Default::default()
        };
        let agg = aggregate(
            &proto,
            n,
            1,
            BANDWIDTH,
            alpha,
            AdversarySpec::GreedyFlip,
            trials,
        );
        t.row(vec![
            name.into(),
            fmt_f(agg.mean_rounds),
            fmt_rate(agg.perfect, agg.trials),
            agg.total_errors.to_string(),
        ]);
    }
    t
}
