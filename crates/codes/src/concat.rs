//! Justesen-style concatenated binary code: Reed–Solomon outer over
//! GF(2^8), extended-Hamming `[8,4,4]` inner.
//!
//! Lemma 2.1 of the paper invokes the Justesen code — a binary code with
//! constant rate and constant relative distance. Justesen's specific inner
//! ensemble only pays off asymptotically; this concatenation is the same
//! object class at simulation scale (see `DESIGN.md`, substitution 2):
//! rate `k_o / (2 n_o)` and design distance `4 (n_o - k_o + 1)` bits.

use crate::error::CodeError;
use crate::hamming::HammingCode;
use crate::rs::ReedSolomon;
use crate::traits::SymbolCode;

/// A binary concatenated code: outer `[n_o, k_o]` Reed–Solomon over GF(2^8),
/// inner extended Hamming `[8,4,4]` applied to each nibble.
///
/// * message length: `8 k_o` bits
/// * codeword length: `16 n_o` bits
/// * decoding: per-nibble ML inner decode (ambiguity or ≥ 2 erased bits
///   escalates the outer byte to an erasure), then Reed–Solomon
///   errors-and-erasures.
///
/// # Examples
///
/// ```
/// use bdclique_codes::{ConcatenatedCode, SymbolCode};
///
/// let code = ConcatenatedCode::new(16, 8).unwrap();
/// let msg: Vec<u16> = (0..64).map(|i| (i % 2) as u16).collect();
/// let mut cw = code.encode(&msg).unwrap();
/// for i in 0..12 { cw[i * 16] ^= 1; } // scattered bit errors
/// assert_eq!(code.decode(&cw, &vec![false; cw.len()]).unwrap(), msg);
/// ```
#[derive(Debug, Clone)]
pub struct ConcatenatedCode {
    outer: ReedSolomon,
    inner: HammingCode,
    outer_n: usize,
    outer_k: usize,
}

impl ConcatenatedCode {
    /// Builds the concatenated code with outer parameters `[n_o, k_o]`.
    ///
    /// # Errors
    ///
    /// Propagates outer-code parameter validation (`k_o < n_o ≤ 255`).
    pub fn new(outer_n: usize, outer_k: usize) -> Result<Self, CodeError> {
        Ok(Self {
            outer: ReedSolomon::new(8, outer_n, outer_k)?,
            inner: HammingCode::new(),
            outer_n,
            outer_k,
        })
    }

    /// Number of bit errors guaranteed correctable when spread adversarially
    /// (each inner block needs ≥ 2 bit errors to corrupt an outer symbol,
    /// and the outer code corrects `⌊(n_o - k_o)/2⌋` symbol errors).
    pub fn guaranteed_bit_errors(&self) -> usize {
        // An outer symbol flips only if one of its two nibbles suffers >= 2
        // bit errors; e bit errors therefore corrupt at most e/2 symbols.
        (self.outer_n - self.outer_k) / 2 * 2 - 1
    }
}

impl SymbolCode for ConcatenatedCode {
    fn message_len(&self) -> usize {
        self.outer_k * 8
    }

    fn codeword_len(&self) -> usize {
        self.outer_n * 16
    }

    fn symbol_bits(&self) -> u32 {
        1
    }

    fn distance(&self) -> usize {
        (self.outer_n - self.outer_k + 1) * 4
    }

    fn encode(&self, msg: &[u16]) -> Result<Vec<u16>, CodeError> {
        if msg.len() != self.message_len() {
            return Err(CodeError::LengthMismatch {
                expected: self.message_len(),
                actual: msg.len(),
            });
        }
        // Pack bits into outer bytes, LSB-first.
        let mut bytes = vec![0u16; self.outer_k];
        for (i, &b) in msg.iter().enumerate() {
            if b > 1 {
                return Err(CodeError::SymbolOutOfRange {
                    value: b,
                    alphabet: 2,
                });
            }
            bytes[i / 8] |= b << (i % 8);
        }
        let outer_cw = self.outer.encode(&bytes)?;
        // Inner-encode each byte as two Hamming blocks (low nibble, high).
        let mut bits = Vec::with_capacity(self.codeword_len());
        for &byte in &outer_cw {
            for nib in [byte as u8 & 0xf, (byte as u8) >> 4] {
                let block = self.inner.encode_nibble(nib);
                bits.extend((0..8).map(|i| u16::from(block >> i & 1)));
            }
        }
        Ok(bits)
    }

    fn decode(&self, received: &[u16], erasures: &[bool]) -> Result<Vec<u16>, CodeError> {
        if received.len() != self.codeword_len() || erasures.len() != self.codeword_len() {
            return Err(CodeError::LengthMismatch {
                expected: self.codeword_len(),
                actual: received.len().min(erasures.len()),
            });
        }
        let mut outer_word = vec![0u16; self.outer_n];
        let mut outer_erasures = vec![false; self.outer_n];
        for sym in 0..self.outer_n {
            let mut byte = 0u16;
            let mut erased_symbol = false;
            for half in 0..2 {
                let base = sym * 16 + half * 8;
                let mut word = 0u8;
                let mut mask = 0u8;
                let mut erased_bits = 0;
                for i in 0..8 {
                    if received[base + i] > 1 {
                        return Err(CodeError::SymbolOutOfRange {
                            value: received[base + i],
                            alphabet: 2,
                        });
                    }
                    word |= (received[base + i] as u8) << i;
                    if erasures[base + i] {
                        mask |= 1 << i;
                        erased_bits += 1;
                    }
                }
                if erased_bits >= 4 {
                    erased_symbol = true;
                    continue;
                }
                let (nibble, ambiguous) = self.inner.decode_nibble(word, mask);
                if ambiguous {
                    erased_symbol = true;
                } else {
                    byte |= (nibble as u16) << (half * 4);
                }
            }
            outer_word[sym] = byte;
            outer_erasures[sym] = erased_symbol;
        }
        let bytes = self.outer.decode(&outer_word, &outer_erasures)?;
        Ok((0..self.message_len())
            .map(|i| bytes[i / 8] >> (i % 8) & 1)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn sample_msg(code: &ConcatenatedCode, seed: u64) -> Vec<u16> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..code.message_len())
            .map(|_| rng.gen_range(0..2u16))
            .collect()
    }

    #[test]
    fn parameters() {
        let code = ConcatenatedCode::new(32, 16).unwrap();
        assert_eq!(code.message_len(), 128);
        assert_eq!(code.codeword_len(), 512);
        assert!((code.rate() - 0.25).abs() < 1e-9);
        assert_eq!(code.distance(), 17 * 4);
    }

    #[test]
    fn clean_roundtrip() {
        let code = ConcatenatedCode::new(16, 8).unwrap();
        let msg = sample_msg(&code, 1);
        let cw = code.encode(&msg).unwrap();
        assert_eq!(code.decode(&cw, &vec![false; cw.len()]).unwrap(), msg);
    }

    #[test]
    fn corrects_guaranteed_scattered_errors() {
        let code = ConcatenatedCode::new(16, 8).unwrap();
        let msg = sample_msg(&code, 2);
        let cw = code.encode(&msg).unwrap();
        // One bit error per inner block never produces an outer error at
        // all: every inner block ML-corrects.
        let mut recv = cw.clone();
        for block in 0..32 {
            recv[block * 8 + (block % 8)] ^= 1;
        }
        assert_eq!(code.decode(&recv, &vec![false; recv.len()]).unwrap(), msg);
    }

    #[test]
    fn corrects_concentrated_symbol_errors() {
        let code = ConcatenatedCode::new(16, 8).unwrap();
        let msg = sample_msg(&code, 3);
        let cw = code.encode(&msg).unwrap();
        // Destroy 4 outer symbols completely (t = 4 for [16,8]).
        let mut recv = cw.clone();
        for sym in [0usize, 5, 9, 15] {
            for b in 0..16 {
                recv[sym * 16 + b] ^= u16::from(b % 3 != 0);
            }
        }
        assert_eq!(code.decode(&recv, &vec![false; recv.len()]).unwrap(), msg);
    }

    #[test]
    fn erased_blocks_become_outer_erasures() {
        let code = ConcatenatedCode::new(16, 8).unwrap();
        let msg = sample_msg(&code, 4);
        let cw = code.encode(&msg).unwrap();
        // Erase 7 whole outer symbols (within the erasure budget of 8) and
        // fill them with garbage.
        let mut recv = cw.clone();
        let mut eras = vec![false; recv.len()];
        for sym in 0..7 {
            for b in 0..16 {
                recv[sym * 16 + b] = u16::from((sym + b) % 2 == 0);
                eras[sym * 16 + b] = true;
            }
        }
        assert_eq!(code.decode(&recv, &eras).unwrap(), msg);
    }

    #[test]
    fn random_bit_noise_within_radius() {
        let code = ConcatenatedCode::new(32, 16).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for trial in 0..10 {
            let msg = sample_msg(&code, 100 + trial);
            let cw = code.encode(&msg).unwrap();
            let mut recv = cw.clone();
            // 4% random bit noise: comfortably inside the decode radius.
            for bit in recv.iter_mut() {
                if rng.gen_bool(0.04) {
                    *bit ^= 1;
                }
            }
            assert_eq!(
                code.decode(&recv, &vec![false; recv.len()]).unwrap(),
                msg,
                "trial {trial}"
            );
        }
    }
}
