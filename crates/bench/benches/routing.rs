//! Criterion benchmarks for the resilient super-message router
//! (Theorem 4.1): both engines, with and without faults.

use bdclique_bench::AdversarySpec;
use bdclique_bits::BitVec;
use bdclique_core::routing::{route, RouterConfig, RoutingInstance, RoutingMode, SuperMessage};
use bdclique_netsim::{Adversary, Network};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn instance(n: usize, payload_bits: usize, k: usize) -> RoutingInstance {
    RoutingInstance {
        n,
        payload_bits,
        messages: (0..n)
            .flat_map(|u| {
                (0..k).map(move |j| SuperMessage {
                    src: u,
                    slot: j,
                    payload: BitVec::from_fn(payload_bits, |i| (i * 3 + u + j) % 5 < 2),
                    targets: vec![(u + 11 * j + 1) % n],
                })
            })
            .collect(),
    }
}

fn bench_routing(c: &mut Criterion) {
    let mut g = c.benchmark_group("routing");
    g.sample_size(10).measurement_time(Duration::from_secs(3));

    g.bench_function("unit/n64/k2/clean", |b| {
        let inst = instance(64, 64, 2);
        let cfg = RouterConfig {
            mode: RoutingMode::Unit,
            ..Default::default()
        };
        b.iter(|| {
            let mut net = Network::new(64, 18, 0.0, Adversary::none());
            route(&mut net, &inst, &cfg).unwrap()
        })
    });
    g.bench_function("unit/n64/k2/attacked", |b| {
        let inst = instance(64, 64, 2);
        let cfg = RouterConfig {
            mode: RoutingMode::Unit,
            ..Default::default()
        };
        b.iter(|| {
            let mut net = Network::new(64, 18, 0.04, AdversarySpec::GreedyFlip.build(9));
            route(&mut net, &inst, &cfg).unwrap()
        })
    });
    g.bench_function("coverfree/n256/k2/clean", |b| {
        let inst = instance(256, 64, 2);
        let cfg = RouterConfig {
            mode: RoutingMode::CoverFree,
            ..Default::default()
        };
        b.iter(|| {
            let mut net = Network::new(256, 18, 0.0, Adversary::none());
            route(&mut net, &inst, &cfg).unwrap()
        })
    });
    g.bench_function("broadcast/n64", |b| {
        let payload = BitVec::from_fn(128, |i| i % 7 == 0);
        b.iter(|| {
            let mut net = Network::new(64, 18, 0.02, AdversarySpec::GreedyFlip.build(10));
            bdclique_core::broadcast::broadcast(&mut net, 0, &payload, &RouterConfig::default())
                .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
