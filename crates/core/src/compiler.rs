//! The round-by-round Congested Clique compiler.
//!
//! The paper's framing: an `r`-round resilient `AllToAllComm` protocol turns
//! any fault-free `r'`-round Congested Clique algorithm into an
//! `O(r'·r)`-round algorithm resilient to the same adversary — simulate each
//! fault-free round by one `AllToAllComm` instance. [`compile`] implements
//! exactly that loop; [`crate::cc`] provides fault-free algorithms to feed
//! it.

use crate::error::CoreError;
use crate::problem::AllToAllInstance;
use crate::protocols::AllToAllProtocol;
use bdclique_bits::BitVec;
use bdclique_netsim::Network;

/// A fault-free Congested Clique algorithm, written node-locally.
pub trait CliqueAlgorithm {
    /// Per-node state.
    type State: Clone;

    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Message width `B` in bits.
    fn message_bits(&self) -> usize;

    /// Number of communication rounds.
    fn round_count(&self) -> usize;

    /// Initial state of node `u` in an `n`-clique.
    fn init(&self, u: usize, n: usize) -> Self::State;

    /// The message node `u` sends to `v` in round `r` (exactly
    /// [`Self::message_bits`] bits).
    fn send(&self, r: usize, u: usize, v: usize, state: &Self::State) -> BitVec;

    /// Delivers round `r`'s received messages (`inbox[u']` = message from
    /// `u'`; `inbox[u]` is `u`'s own message to itself).
    fn receive(&self, r: usize, u: usize, state: &mut Self::State, inbox: &[BitVec]);

    /// Node `u`'s output after the final round.
    fn output(&self, u: usize, state: &Self::State) -> BitVec;
}

/// Result of a compiled execution.
#[derive(Debug, Clone)]
pub struct CompiledRun {
    /// Per-node outputs.
    pub outputs: Vec<BitVec>,
    /// Total network rounds consumed (the simulation overhead × algorithm
    /// rounds).
    pub rounds: u64,
}

/// Runs `algo` on `net` by simulating each of its rounds with `protocol`
/// (Definition 1's reduction). The fault-free behaviour is recovered exactly
/// whenever the protocol delivers all messages correctly.
///
/// # Errors
///
/// Propagates the protocol's [`CoreError`]s.
pub fn compile<A: CliqueAlgorithm>(
    net: &mut Network,
    algo: &A,
    protocol: &dyn AllToAllProtocol,
) -> Result<CompiledRun, CoreError> {
    let n = net.n();
    let b = algo.message_bits();
    let rounds_before = net.rounds();
    let mut states: Vec<A::State> = (0..n).map(|u| algo.init(u, n)).collect();
    for r in 0..algo.round_count() {
        let messages: Vec<Vec<BitVec>> = (0..n)
            .map(|u| {
                (0..n)
                    .map(|v| {
                        let m = algo.send(r, u, v, &states[u]);
                        assert_eq!(m.len(), b, "algorithm produced wrong message width");
                        m
                    })
                    .collect()
            })
            .collect();
        let inst = AllToAllInstance::new(n, b, messages);
        let output = protocol.run(net, &inst)?;
        for u in 0..n {
            let inbox: Vec<BitVec> = (0..n)
                .map(|s| {
                    if s == u {
                        inst.message(u, u).clone()
                    } else {
                        output
                            .received(u, s)
                            .cloned()
                            .unwrap_or_else(|| BitVec::zeros(b))
                    }
                })
                .collect();
            algo.receive(r, u, &mut states[u], &inbox);
        }
    }
    Ok(CompiledRun {
        outputs: (0..n).map(|u| algo.output(u, &states[u])).collect(),
        rounds: net.rounds() - rounds_before,
    })
}

/// Runs `algo` with no adversary and no simulation (the ground truth).
pub fn run_fault_free<A: CliqueAlgorithm>(algo: &A, n: usize) -> Vec<BitVec> {
    let b = algo.message_bits();
    let mut states: Vec<A::State> = (0..n).map(|u| algo.init(u, n)).collect();
    for r in 0..algo.round_count() {
        let all: Vec<Vec<BitVec>> = (0..n)
            .map(|u| (0..n).map(|v| algo.send(r, u, v, &states[u])).collect())
            .collect();
        for u in 0..n {
            let inbox: Vec<BitVec> = (0..n).map(|s| all[s][u].clone()).collect();
            let _ = b;
            algo.receive(r, u, &mut states[u], &inbox);
        }
    }
    (0..n).map(|u| algo.output(u, &states[u])).collect()
}
