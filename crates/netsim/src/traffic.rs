//! Per-round message matrices: what nodes intend to send, and what arrives.

use crate::pool::FramePool;
use crate::store::{Backend, FrameArena, FrameStore, DENSE_SWITCH_DIVISOR};
use crate::topology::Topology;
use bdclique_bits::BitVec;
use bdclique_snapshot::{Dec, Enc, SnapError};
use std::sync::Arc;

/// The messages all nodes intend to send in one round.
///
/// Logically an `n × n` matrix of optional frames (a frame is at most
/// `bandwidth` bits; self-loops are not part of the clique and are
/// rejected), physically a [`Backend`]-selected frame store: rounds start
/// on the sparse per-sender adjacency backend and **auto-densify** once the
/// load factor reaches `1/16` (`frame_count ≥ n²/16`), so sparse protocol
/// rounds cost `O(frames)` while full-matrix rounds keep the flat-matrix
/// representation they had before the storage layer existed.
///
/// Aggregate volume ([`Traffic::total_bits`], [`Traffic::frame_count`]) is
/// maintained incrementally on every mutation, so both accessors are O(1) —
/// the round pipeline reads them several times per round and must not pay a
/// rescan each time.
#[derive(Debug)]
pub struct Traffic {
    n: usize,
    bandwidth: usize,
    store: FrameStore,
    total_bits: u64,
    frame_count: u64,
    /// Auto-densify enabled (off when a backend was pinned explicitly).
    auto: bool,
    /// Sparse communication graph to validate sends against; `None` on the
    /// clique (and for handle-less [`Traffic::new`] traffic), where every
    /// pair is an edge and per-frame checks would be pure overhead.
    topology: Option<Arc<Topology>>,
    /// Round-local recycling: tables spent by densification and frames
    /// displaced by `clear` pool here, and rejoin the network-wide arena
    /// when the round is exchanged.
    arena: FrameArena,
}

/// Clones the logical matrix; the round-local recycling pool is *not*
/// cloned (a snapshot needs contents, not allocator bookkeeping).
impl Clone for Traffic {
    fn clone(&self) -> Self {
        Self {
            n: self.n,
            bandwidth: self.bandwidth,
            store: self.store.clone(),
            total_bits: self.total_bits,
            frame_count: self.frame_count,
            auto: self.auto,
            topology: self.topology.clone(),
            arena: FrameArena::default(),
        }
    }
}

impl Traffic {
    /// Creates an empty round of traffic for `n` nodes and a bandwidth of
    /// `bandwidth` bits per ordered pair. Starts on the sparse backend and
    /// auto-densifies by load factor.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `bandwidth == 0`.
    pub fn new(n: usize, bandwidth: usize) -> Self {
        Self::build(n, bandwidth, FrameStore::new_sparse(n), true)
    }

    /// Creates empty traffic pinned to `backend` (no auto-switching). Used
    /// by the storage-layer benches and the dense/sparse equivalence tests;
    /// protocol code should use [`Traffic::new`] / [`crate::Network::traffic`].
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `bandwidth == 0`.
    pub fn with_backend(n: usize, bandwidth: usize, backend: Backend) -> Self {
        let store = match backend {
            Backend::Dense => FrameStore::new_dense(n),
            Backend::Sparse => FrameStore::new_sparse(n),
        };
        Self::build(n, bandwidth, store, false)
    }

    /// Arena-backed constructor used by [`crate::Network::traffic`]: the
    /// sparse row tables are recycled from previous rounds, and one pooled
    /// dense matrix buffer rides along so an auto-densify inside the round
    /// reuses it instead of allocating `n²` fresh slots (unused, it rejoins
    /// the network arena at exchange time).
    pub(crate) fn new_in(
        n: usize,
        bandwidth: usize,
        arena: &mut FrameArena,
        topology: &Arc<Topology>,
    ) -> Self {
        let store = FrameStore::new_sparse_in(n, arena);
        let mut traffic = Self::build(n, bandwidth, store, true);
        if !topology.is_complete() {
            traffic.topology = Some(Arc::clone(topology));
        }
        arena.lend_matrix(&mut traffic.arena);
        traffic
    }

    fn build(n: usize, bandwidth: usize, store: FrameStore, auto: bool) -> Self {
        assert!(n >= 2, "a clique needs at least two nodes");
        assert!(bandwidth > 0, "bandwidth must be positive");
        assert!(n <= u32::MAX as usize, "node ids must fit in u32");
        Self {
            n,
            bandwidth,
            store,
            total_bits: 0,
            frame_count: 0,
            auto,
            topology: None,
            arena: FrameArena::default(),
        }
    }

    /// Whether this traffic validates sends against a sparse topology.
    pub(crate) fn has_topology(&self) -> bool {
        self.topology.is_some()
    }

    /// Asserts that every queued frame rides a topology edge and respects
    /// any per-edge bandwidth cap — the exchange-time re-check for traffic
    /// built without a handle. `O(frames)`.
    pub(crate) fn assert_on_topology(&self, topo: &Topology) {
        self.for_each_frame(|from, to, bits| {
            assert!(
                topo.contains(from, to),
                "frame queued on ({from}, {to}), which is not a topology edge"
            );
            if let Some(cap) = topo.edge_cap(from, to) {
                assert!(
                    bits.len() <= cap,
                    "frame of {} bits exceeds the {cap}-bit cap on edge ({from}, {to})",
                    bits.len()
                );
            }
        });
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Bandwidth in bits per ordered pair per round.
    pub fn bandwidth(&self) -> usize {
        self.bandwidth
    }

    /// The storage backend currently in use.
    pub fn backend(&self) -> Backend {
        self.store.backend()
    }

    /// Approximate heap bytes held by the frame store — the memory-traffic
    /// observable the storage bench compares across backends.
    pub fn store_bytes(&self) -> usize {
        self.store.heap_bytes()
    }

    #[inline]
    fn check_slot(&self, from: usize, to: usize) {
        assert!(from < self.n && to < self.n, "node id out of range");
        assert_ne!(from, to, "no self-loops in the clique");
    }

    /// Queues `bits` on the edge `from → to`, replacing any previous frame.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range ids, self-loops, or frames longer than the
    /// bandwidth.
    pub fn send(&mut self, from: usize, to: usize, bits: BitVec) {
        assert!(
            bits.len() <= self.bandwidth,
            "frame of {} bits exceeds bandwidth {}",
            bits.len(),
            self.bandwidth
        );
        self.set_frame(from, to, Some(bits));
    }

    /// Removes the frame on `from → to`, if any; the displaced buffer is
    /// recycled through the round's arena.
    pub fn clear(&mut self, from: usize, to: usize) {
        if let Some(displaced) = self.set_frame(from, to, None) {
            self.arena.put_frame(displaced);
        }
    }

    /// The frame queued on `from → to`.
    pub fn frame(&self, from: usize, to: usize) -> Option<&BitVec> {
        self.check_slot(from, to);
        self.store.get(self.n, from, to)
    }

    /// Visits every queued frame in ascending `(from, to)` order —
    /// `O(frames)` on the sparse backend, the substrate behind
    /// adversary busy-edge scans and history digests.
    pub fn for_each_frame(&self, f: impl FnMut(usize, usize, &BitVec)) {
        self.store.for_each(self.n, f);
    }

    /// Replaces the slot `from → to`, keeps the volume counters in sync, and
    /// returns the previous frame. All mutation funnels through here so the
    /// counters can never drift from the matrix.
    pub(crate) fn set_frame(
        &mut self,
        from: usize,
        to: usize,
        bits: Option<BitVec>,
    ) -> Option<BitVec> {
        self.check_slot(from, to);
        if let (Some(topo), Some(new)) = (&self.topology, &bits) {
            assert!(
                topo.contains(from, to),
                "({from}, {to}) is not a topology edge"
            );
            if let Some(cap) = topo.edge_cap(from, to) {
                assert!(
                    new.len() <= cap,
                    "frame of {} bits exceeds the {cap}-bit cap on edge ({from}, {to})",
                    new.len()
                );
            }
        }
        if let Some(new) = &bits {
            self.total_bits += new.len() as u64;
            self.frame_count += 1;
        }
        let prev = self.store.replace(self.n, from, to, bits);
        if let Some(old) = &prev {
            self.total_bits -= old.len() as u64;
            self.frame_count -= 1;
        }
        if self.auto
            && self.store.backend() == Backend::Sparse
            && self.frame_count * DENSE_SWITCH_DIVISOR >= (self.n * self.n) as u64
        {
            self.store.densify(self.n, Some(&mut self.arena));
        }
        prev
    }

    /// Total bits queued this round. O(1).
    pub fn total_bits(&self) -> u64 {
        self.total_bits
    }

    /// Number of non-empty frames queued this round. O(1).
    pub fn frame_count(&self) -> u64 {
        self.frame_count
    }

    /// Serializes the round's logical matrix plus its backend/auto flags
    /// (so a restored round keeps the exact representation and switching
    /// behavior). The round-local arena is allocator bookkeeping and is
    /// not serialized; volume counters are recomputed at restore.
    pub fn snapshot(&self, enc: &mut Enc) {
        enc.put_usize(self.bandwidth);
        enc.put_bool(self.auto);
        enc.put_bool(self.topology.is_some());
        self.store.snapshot(self.n, enc);
    }

    /// Rebuilds traffic serialized by [`Traffic::snapshot`]. `topology`
    /// reattaches the validation handle for traffic that carried one
    /// (required then; ignored otherwise) — handles are shared state, not
    /// snapshot payload.
    ///
    /// # Errors
    ///
    /// [`SnapError`] on truncated or corrupt input, including a missing
    /// `topology` for traffic that was topology-validated.
    pub fn restore(dec: &mut Dec<'_>, topology: Option<&Arc<Topology>>) -> Result<Self, SnapError> {
        let bandwidth = dec.get_usize()?;
        if bandwidth == 0 {
            return Err(SnapError::corrupt("traffic with zero bandwidth"));
        }
        let auto = dec.get_bool()?;
        let had_topology = dec.get_bool()?;
        let (store, n) = FrameStore::restore(dec)?;
        if n < 2 {
            return Err(SnapError::corrupt("traffic with n < 2"));
        }
        let mut total_bits = 0u64;
        let mut frame_count = 0u64;
        store.for_each(n, |_, _, bits| {
            if bits.len() > bandwidth {
                total_bits = u64::MAX; // flagged below
            } else {
                total_bits += bits.len() as u64;
            }
            frame_count += 1;
        });
        if total_bits == u64::MAX {
            return Err(SnapError::corrupt("frame exceeds traffic bandwidth"));
        }
        let topology = if had_topology {
            Some(Arc::clone(topology.ok_or_else(|| {
                SnapError::corrupt("traffic was topology-validated but no handle was supplied")
            })?))
        } else {
            None
        };
        Ok(Self {
            n,
            bandwidth,
            store,
            total_bits,
            frame_count,
            auto,
            topology,
            arena: FrameArena::default(),
        })
    }

    /// Converts queued traffic into its delivered form. Sparse rounds
    /// transpose sender rows into per-receiver inboxes **by move**
    /// (`O(frames)`, no clone); the spent row tables return to `arena`.
    pub(crate) fn into_delivery(mut self, arena: &mut FrameArena) -> Delivery {
        let n = self.n;
        arena.absorb(std::mem::take(&mut self.arena));
        match self.store {
            FrameStore::Dense(frames) => Delivery {
                n,
                repr: DeliveryRepr::Dense(frames),
            },
            FrameStore::Sparse(rows) => {
                let mut cols = arena.take_tables(n);
                for (from, mut row) in rows.into_iter().enumerate() {
                    // Rows are visited in ascending `from`, so every inbox
                    // column ends up sorted by sender with plain pushes.
                    for (to, bits) in row.drain(..) {
                        cols[to as usize].push((from as u32, bits));
                    }
                    arena.put_table(row);
                }
                Delivery {
                    n,
                    repr: DeliveryRepr::Sparse(cols),
                }
            }
        }
    }
}

/// Logical equality: same shape and same frames, regardless of backend.
impl PartialEq for Traffic {
    fn eq(&self, other: &Self) -> bool {
        if self.n != other.n
            || self.bandwidth != other.bandwidth
            || self.total_bits != other.total_bits
            || self.frame_count != other.frame_count
        {
            return false;
        }
        let mut equal = true;
        self.for_each_frame(|from, to, bits| {
            if equal && other.frame(from, to) != Some(bits) {
                equal = false;
            }
        });
        equal
    }
}

impl Eq for Traffic {}

#[derive(Debug, Clone)]
enum DeliveryRepr {
    /// Row-major `frames[from · n + to]` (dense rounds).
    Dense(Vec<Option<BitVec>>),
    /// Per-receiver inbox `cols[to]`, sorted by sender (sparse rounds).
    Sparse(Vec<Vec<(u32, BitVec)>>),
}

/// The messages actually delivered in one round (after adversarial
/// corruption).
///
/// Receivers can either probe one slot ([`Delivery::received`]) or walk
/// their whole inbox in one pass ([`Delivery::inbox_of`]); the latter is
/// `O(frames received)` on sparse rounds instead of `O(n)` probes per node.
#[derive(Debug, Clone)]
pub struct Delivery {
    n: usize,
    repr: DeliveryRepr,
}

impl Delivery {
    /// The frame node `to` received from node `from`, or `None` when the
    /// sender sent nothing (or the adversary suppressed the frame).
    pub fn received(&self, to: usize, from: usize) -> Option<&BitVec> {
        assert!(from < self.n && to < self.n, "node id out of range");
        assert_ne!(from, to, "no self-loops in the clique");
        match &self.repr {
            DeliveryRepr::Dense(frames) => frames[from * self.n + to].as_ref(),
            DeliveryRepr::Sparse(cols) => {
                let col = &cols[to];
                col.binary_search_by_key(&(from as u32), |&(f, _)| f)
                    .ok()
                    .map(|i| &col[i].1)
            }
        }
    }

    /// Iterates node `to`'s inbox as `(sender, frame)` pairs in ascending
    /// sender order. `O(frames received)` on the sparse backend.
    pub fn inbox_of(&self, to: usize) -> Inbox<'_> {
        assert!(to < self.n, "node id out of range");
        Inbox(match &self.repr {
            DeliveryRepr::Dense(frames) => InboxRepr::Dense {
                frames,
                n: self.n,
                to,
                from: 0,
            },
            DeliveryRepr::Sparse(cols) => InboxRepr::Sparse(cols[to].iter()),
        })
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Consumes the delivery into per-receiver inboxes: `inboxes[to]` holds
    /// `(sender, frame)` pairs in ascending sender order, **moved** out of
    /// the delivery. The consuming complement of [`Delivery::inbox_of`] for
    /// forwarding paths (relays) that would otherwise clone every frame.
    pub fn into_inboxes(self) -> Vec<Vec<(u32, BitVec)>> {
        match self.repr {
            DeliveryRepr::Sparse(cols) => cols,
            DeliveryRepr::Dense(mut frames) => {
                let n = self.n;
                let mut cols: Vec<Vec<(u32, BitVec)>> = vec![Vec::new(); n];
                for from in 0..n {
                    for (to, col) in cols.iter_mut().enumerate() {
                        if let Some(bits) = frames[from * n + to].take() {
                            col.push((from as u32, bits));
                        }
                    }
                }
                cols
            }
        }
    }

    /// Serializes the delivery, representation-exact (a dense delivery
    /// restores dense), so re-encoding the restored value is
    /// byte-identical.
    pub fn snapshot(&self, enc: &mut Enc) {
        enc.put_usize(self.n);
        match &self.repr {
            DeliveryRepr::Dense(frames) => {
                enc.put_u8(0);
                let count = frames.iter().flatten().count();
                enc.put_usize(count);
                for (i, slot) in frames.iter().enumerate() {
                    if let Some(bits) = slot {
                        enc.put_u64(i as u64);
                        enc.put_bits(bits);
                    }
                }
            }
            DeliveryRepr::Sparse(cols) => {
                enc.put_u8(1);
                for col in cols {
                    enc.put_seq(col, |e, (from, bits)| {
                        e.put_u32(*from);
                        e.put_bits(bits);
                    });
                }
            }
        }
    }

    /// Rebuilds a delivery serialized by [`Delivery::snapshot`].
    ///
    /// # Errors
    ///
    /// [`SnapError`] on truncated or corrupt input.
    pub fn restore(dec: &mut Dec<'_>) -> Result<Self, SnapError> {
        // Same ceilings as `FrameStore::restore`: `n` must be bounded
        // *before* the slot table is allocated, or a corrupt snapshot can
        // request a multi-gigabyte allocation and abort (the overflow
        // check alone does not bound the magnitude — caught by the
        // validate-before-alloc lint).
        const MAX_NODES: usize = 1 << 17;
        const MAX_DENSE_SLOTS: usize = 1 << 28;
        let n = dec.get_usize()?;
        if !(2..=MAX_NODES).contains(&n) {
            return Err(SnapError::corrupt(format!("delivery n = {n} out of range")));
        }
        let repr = match dec.get_u8()? {
            0 => {
                let count = dec.get_len(9)?;
                let slots = n
                    .checked_mul(n)
                    .filter(|&s| s <= MAX_DENSE_SLOTS)
                    .ok_or_else(|| {
                        SnapError::corrupt(format!("dense delivery n = {n} too large"))
                    })?;
                let mut frames: Vec<Option<BitVec>> = vec![None; slots];
                let mut last: Option<u64> = None;
                for _ in 0..count {
                    let i = dec.get_u64()?;
                    if i as usize >= frames.len() {
                        return Err(SnapError::corrupt("delivery slot out of range"));
                    }
                    if last.is_some_and(|prev| prev >= i) {
                        return Err(SnapError::corrupt("delivery slots out of order"));
                    }
                    last = Some(i);
                    frames[i as usize] = Some(dec.get_bits()?);
                }
                DeliveryRepr::Dense(frames)
            }
            1 => {
                let mut cols = Vec::with_capacity(n);
                for _ in 0..n {
                    let col = dec.get_seq(5, |d| {
                        let from = d.get_u32()?;
                        if from as usize >= n {
                            return Err(SnapError::corrupt("delivery sender out of range"));
                        }
                        Ok((from, d.get_bits()?))
                    })?;
                    if col.windows(2).any(|w| w[0].0 >= w[1].0) {
                        return Err(SnapError::corrupt("delivery inbox out of order"));
                    }
                    cols.push(col);
                }
                DeliveryRepr::Sparse(cols)
            }
            t => return Err(SnapError::corrupt(format!("delivery tag {t}"))),
        };
        Ok(Self { n, repr })
    }

    /// Hands the delivery's tables and frame buffers to `arena` — the
    /// [`crate::Network::reclaim`] implementation.
    pub(crate) fn recycle_into(self, arena: &mut FrameArena) {
        match self.repr {
            DeliveryRepr::Dense(frames) => arena.put_matrix(frames),
            DeliveryRepr::Sparse(cols) => {
                for col in cols {
                    arena.put_table(col);
                }
            }
        }
    }

    /// Splits the reclamation: frame buffers go to the `Sync` `pool`
    /// (reachable from executor worker threads), tables to the
    /// single-threaded `arena` — the
    /// [`crate::Network::reclaim_split`] implementation.
    pub(crate) fn recycle_split(self, arena: &mut FrameArena, pool: &FramePool) {
        match self.repr {
            DeliveryRepr::Dense(mut frames) => {
                pool.put_all(frames.iter_mut().filter_map(Option::take));
                arena.put_matrix(frames);
            }
            DeliveryRepr::Sparse(cols) => {
                for mut col in cols {
                    pool.put_all(col.drain(..).map(|(_, bits)| bits));
                    arena.put_table(col);
                }
            }
        }
    }
}

/// Logical equality across backends: every receiver's inbox matches.
impl PartialEq for Delivery {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && (0..self.n).all(|to| self.inbox_of(to).eq(other.inbox_of(to)))
    }
}

impl Eq for Delivery {}

/// Iterator over one receiver's inbox (see [`Delivery::inbox_of`]).
#[derive(Debug)]
pub struct Inbox<'a>(InboxRepr<'a>);

#[derive(Debug)]
enum InboxRepr<'a> {
    Dense {
        frames: &'a [Option<BitVec>],
        n: usize,
        to: usize,
        from: usize,
    },
    Sparse(std::slice::Iter<'a, (u32, BitVec)>),
}

impl<'a> Iterator for Inbox<'a> {
    type Item = (usize, &'a BitVec);

    fn next(&mut self) -> Option<Self::Item> {
        match &mut self.0 {
            InboxRepr::Dense {
                frames,
                n,
                to,
                from,
            } => {
                while *from < *n {
                    let f = *from;
                    *from += 1;
                    if let Some(bits) = frames[f * *n + *to].as_ref() {
                        return Some((f, bits));
                    }
                }
                None
            }
            InboxRepr::Sparse(iter) => iter.next().map(|(f, b)| (*f as usize, b)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delivery(t: Traffic) -> Delivery {
        t.into_delivery(&mut FrameArena::default())
    }

    #[test]
    fn send_and_frame() {
        let mut t = Traffic::new(3, 4);
        t.send(0, 2, BitVec::from_bools(&[true]));
        assert_eq!(t.frame(0, 2), Some(&BitVec::from_bools(&[true])));
        assert_eq!(t.frame(2, 0), None);
        assert_eq!(t.frame_count(), 1);
        assert_eq!(t.total_bits(), 1);
        t.clear(0, 2);
        assert_eq!(t.frame(0, 2), None);
    }

    #[test]
    #[should_panic(expected = "exceeds bandwidth")]
    fn bandwidth_is_enforced() {
        let mut t = Traffic::new(3, 2);
        t.send(0, 1, BitVec::from_bools(&[true, true, false]));
    }

    #[test]
    #[should_panic(expected = "no self-loops")]
    fn self_loops_rejected() {
        let mut t = Traffic::new(3, 2);
        t.send(1, 1, BitVec::from_bools(&[true]));
    }

    #[test]
    fn delivery_view_matches_traffic() {
        let mut t = Traffic::new(4, 8);
        t.send(1, 3, BitVec::from_bools(&[false, true]));
        let d = delivery(t);
        assert_eq!(d.received(3, 1), Some(&BitVec::from_bools(&[false, true])));
        assert_eq!(d.received(1, 3), None);
        assert_eq!(d.n(), 4);
    }

    #[test]
    fn fresh_traffic_starts_sparse_and_densifies_by_load() {
        let n = 8;
        let mut t = Traffic::new(n, 4);
        assert_eq!(t.backend(), Backend::Sparse);
        // n²/16 = 4 frames trigger the switch.
        let mut sent = 0;
        'outer: for u in 0..n {
            for v in 0..n {
                if u == v {
                    continue;
                }
                t.send(u, v, BitVec::from_bools(&[true]));
                sent += 1;
                if sent == 4 {
                    break 'outer;
                }
            }
        }
        assert_eq!(t.backend(), Backend::Dense);
        assert_eq!(t.frame_count(), 4);
        // Contents survive the switch.
        assert_eq!(t.frame(0, 1), Some(&BitVec::from_bools(&[true])));
    }

    #[test]
    fn pinned_backend_never_switches() {
        let n = 4;
        let mut t = Traffic::with_backend(n, 2, Backend::Sparse);
        for u in 0..n {
            for v in 0..n {
                if u != v {
                    t.send(u, v, BitVec::from_bools(&[true]));
                }
            }
        }
        assert_eq!(t.backend(), Backend::Sparse);
        assert_eq!(t.frame_count(), (n * n - n) as u64);
    }

    #[test]
    fn inbox_iterates_sparse_and_dense_identically() {
        let build = |backend| {
            let mut t = Traffic::with_backend(6, 4, backend);
            t.send(5, 2, BitVec::from_bools(&[true]));
            t.send(0, 2, BitVec::from_bools(&[false, true]));
            t.send(3, 2, BitVec::from_bools(&[false]));
            t.send(1, 4, BitVec::from_bools(&[true, true]));
            delivery(t)
        };
        let sparse = build(Backend::Sparse);
        let dense = build(Backend::Dense);
        let inbox: Vec<(usize, BitVec)> = sparse.inbox_of(2).map(|(f, b)| (f, b.clone())).collect();
        assert_eq!(
            inbox,
            vec![
                (0, BitVec::from_bools(&[false, true])),
                (3, BitVec::from_bools(&[false])),
                (5, BitVec::from_bools(&[true])),
            ],
            "ascending sender order"
        );
        for to in 0..6 {
            assert!(sparse.inbox_of(to).eq(dense.inbox_of(to)), "inbox {to}");
        }
        assert_eq!(sparse, dense);
        assert!(sparse.inbox_of(3).next().is_none());
    }

    #[test]
    fn logical_equality_crosses_backends() {
        let mut a = Traffic::with_backend(4, 4, Backend::Sparse);
        let mut b = Traffic::with_backend(4, 4, Backend::Dense);
        for t in [&mut a, &mut b] {
            t.send(0, 1, BitVec::from_bools(&[true, false]));
            t.send(2, 3, BitVec::from_bools(&[false]));
        }
        assert_eq!(a, b);
        b.send(3, 1, BitVec::from_bools(&[true]));
        assert_ne!(a, b);
    }

    /// The incremental counters must agree with a full rescan through any
    /// sequence of sends, overwrites, clears, and internal replacements.
    #[test]
    fn counters_track_every_mutation() {
        let mut t = Traffic::new(4, 8);
        let rescan_bits = |t: &Traffic| -> u64 {
            (0..4)
                .flat_map(|u| (0..4).filter(move |&v| v != u).map(move |v| (u, v)))
                .filter_map(|(u, v)| t.frame(u, v))
                .map(|f| f.len() as u64)
                .sum()
        };
        let rescan_frames = |t: &Traffic| -> u64 {
            (0..4)
                .flat_map(|u| (0..4).filter(move |&v| v != u).map(move |v| (u, v)))
                .filter(|&(u, v)| t.frame(u, v).is_some())
                .count() as u64
        };

        t.send(0, 1, BitVec::from_bools(&[true; 5]));
        t.send(2, 3, BitVec::from_bools(&[false; 3]));
        assert_eq!((t.total_bits(), t.frame_count()), (8, 2));

        // Overwrite shrinks the frame: counters must follow.
        t.send(0, 1, BitVec::from_bools(&[true]));
        assert_eq!((t.total_bits(), t.frame_count()), (4, 2));

        // Clearing an empty slot is a no-op.
        t.clear(1, 0);
        assert_eq!((t.total_bits(), t.frame_count()), (4, 2));

        t.clear(2, 3);
        assert_eq!((t.total_bits(), t.frame_count()), (1, 1));

        // Internal replacement (the corruption path) returns the original.
        let prev = t.set_frame(0, 1, Some(BitVec::from_bools(&[false; 7])));
        assert_eq!(prev, Some(BitVec::from_bools(&[true])));
        assert_eq!((t.total_bits(), t.frame_count()), (7, 1));
        let prev = t.set_frame(0, 1, None);
        assert_eq!(prev, Some(BitVec::from_bools(&[false; 7])));
        assert_eq!((t.total_bits(), t.frame_count()), (0, 0));

        assert_eq!(t.total_bits(), rescan_bits(&t));
        assert_eq!(t.frame_count(), rescan_frames(&t));
    }

    #[test]
    fn sparse_store_bytes_beat_dense_at_low_load() {
        let n = 256;
        let mut sparse = Traffic::with_backend(n, 8, Backend::Sparse);
        let mut dense = Traffic::with_backend(n, 8, Backend::Dense);
        for u in 0..n {
            sparse.send(u, (u + 1) % n, BitVec::from_bools(&[true; 8]));
            dense.send(u, (u + 1) % n, BitVec::from_bools(&[true; 8]));
        }
        assert!(
            sparse.store_bytes() * 10 < dense.store_bytes(),
            "sparse {} dense {}",
            sparse.store_bytes(),
            dense.store_bytes()
        );
    }
}
