//! Property tests for the seeding discipline: adversary determinism,
//! seed-stream distinctness across cell coordinates, and the `⌊αn⌋` degree
//! budget.

use bdclique_bench::{run_trial_seeded, AdversarySpec, TrialSeeds};
use bdclique_core::protocols::RelayReplication;
use bdclique_netsim::SeedStream;
use proptest::prelude::*;

/// Every spec, with in-range parameters for an `n`-node clique.
fn spec_for(n: usize, which: usize, a: usize, b: usize) -> AdversarySpec {
    let a = a % n;
    let b = b % n;
    let b = if a == b { (a + 1) % n } else { b };
    match which % 7 {
        0 => AdversarySpec::None,
        1 => AdversarySpec::RandomMatchingsFlip,
        2 => AdversarySpec::RotatingMatchingFlip,
        3 => AdversarySpec::RelayHunter(a, b),
        4 => AdversarySpec::GreedyFlip,
        5 => AdversarySpec::TargetNodeFlip(a),
        _ => AdversarySpec::RushingRandom,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (a) `AdversarySpec::build` — and the whole trial around it — is
    /// deterministic in its seed: identical [`TrialSeeds`] replay an
    /// identical trial, field for field.
    #[test]
    fn trials_are_deterministic_in_their_seeds(
        root in proptest::arbitrary::any::<u64>(),
        n in 6usize..14,
        which in 0usize..7,
        a in 0usize..64,
        b in 0usize..64,
    ) {
        let spec = spec_for(n, which, a, b);
        // Budget ≥ 1 so the fixed-degree non-adaptive plans stay legal.
        let alpha = 1.5 / n as f64;
        let seeds = TrialSeeds::derive(root);
        let proto = RelayReplication { copies: 3 };
        let first = run_trial_seeded(&proto, n, 1, 18, alpha, spec, seeds);
        let second = run_trial_seeded(&proto, n, 1, 18, alpha, spec, seeds);
        prop_assert_eq!(first.unwrap(), second.unwrap());
    }

    /// (b) distinct cell coordinates yield distinct seed streams: labelled
    /// forks differ whenever any path component differs, and the derived
    /// per-trial component seeds inherit that distinctness.
    #[test]
    fn distinct_coordinates_give_distinct_streams(
        scenario_tag in 0u64..1000,
        n in 2usize..4096,
        trial in 0u64..64,
    ) {
        let name = format!("scenario-{scenario_tag}");
        let base = SeedStream::from_label(&name).fork(&format!("n={n}"));
        let other_n = SeedStream::from_label(&name).fork(&format!("n={}", n + 1));
        let other_name =
            SeedStream::from_label(&format!("scenario-{}", scenario_tag + 1))
                .fork(&format!("n={n}"));
        prop_assert_ne!(base, other_n);
        prop_assert_ne!(base, other_name);
        // Trial indices fork apart, and the three component seeds of one
        // trial are pairwise distinct.
        prop_assert_ne!(base.fork_u64(trial), base.fork_u64(trial + 1));
        let seeds = TrialSeeds::derive(base.fork_u64(trial).seed());
        prop_assert_ne!(seeds.instance, seeds.adversary);
        prop_assert_ne!(seeds.instance, seeds.protocol);
        prop_assert_ne!(seeds.adversary, seeds.protocol);
    }

    /// (c) every adversary respects the `⌊αn⌋` degree budget: the
    /// simulator-tracked peak faulty degree never exceeds it, across all
    /// specs, sizes, and fault fractions.
    #[test]
    fn every_adversary_respects_the_degree_budget(
        root in proptest::arbitrary::any::<u64>(),
        n in 6usize..14,
        which in 0usize..7,
        a in 0usize..64,
        b in 0usize..64,
        budget_frac in 0.1f64..0.9,
    ) {
        let spec = spec_for(n, which, a, b);
        // α chosen so budget ∈ [1, n-1]; fixed-degree plans need ≥ 1.
        let alpha = (1.0 + budget_frac * (n as f64 - 2.0)) / n as f64;
        let budget = (alpha * n as f64).floor() as usize;
        prop_assume!(budget >= 1);
        let proto = RelayReplication { copies: 3 };
        let trial =
            run_trial_seeded(&proto, n, 1, 18, alpha, spec, TrialSeeds::derive(root));
        let trial = trial.unwrap();
        prop_assert!(
            trial.peak_fault_degree <= budget,
            "spec {:?} used degree {} with budget {} (n = {}, alpha = {})",
            spec, trial.peak_fault_degree, budget, n, alpha
        );
    }
}
