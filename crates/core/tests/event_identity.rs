//! PR 7 satellite: the event-driven pack executor is **bit-identical** to
//! the serial stepped driver, observed end to end through the public
//! protocol surface.
//!
//! For every shipped protocol the only difference between the two runs is
//! `RouterConfig::event_driven`; everything observable must match exactly —
//! the output payloads (FNV-1a over every received message), the
//! per-round [`RoundDelta`] trace the driver reconstructs from virtual
//! timestamps, the cumulative network stats, and the adversary-facing
//! per-round history (corrupted edges, frames, bits). The same identity
//! must survive a [`RoundBudget`] abort mid-run (in-flight prefetch jobs
//! are dropped, not drained) and a [`ScheduleSwitch`] adversary swap
//! between rounds.

use bdclique_adversary::adaptive::GreedyLoad;
use bdclique_adversary::Payload;
use bdclique_core::driver::{RoundBudget, RoundDelta, RoundObserver, RoundTrace, ScheduleSwitch};
use bdclique_core::protocols::{
    AdaptiveAllToAll, AdaptiveTakeOne, AllToAllProtocol, DetHypercube, DetSqrt, NaiveExchange,
    NonAdaptiveAllToAll, RelayReplication,
};
use bdclique_core::routing::RouterConfig;
use bdclique_core::{AllToAllInstance, Driver};
use bdclique_netsim::{Adversary, Network};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const BANDWIDTH: usize = 18;

/// All seven protocols, parameterized by the event flag. Baselines without
/// a router run the same code on both settings — they pin the harness's
/// "no difference" baseline and keep the matrix honest.
const PROTOCOLS: &[&str] = &[
    "naive",
    "relay",
    "nonadaptive",
    "adaptive-take1",
    "adaptive",
    "det-hypercube",
    "det-sqrt",
];

fn build(name: &str, event: bool, n: usize) -> Box<dyn AllToAllProtocol> {
    let router = RouterConfig {
        event_driven: event,
        ..Default::default()
    };
    match name {
        "naive" => Box::new(NaiveExchange),
        "relay" => Box::new(RelayReplication { copies: 3 }),
        "nonadaptive" => Box::new(NonAdaptiveAllToAll {
            copies: 7,
            seed: 0x5eed,
            router,
        }),
        "adaptive-take1" => Box::new(AdaptiveTakeOne {
            router,
            ..Default::default()
        }),
        "adaptive" => Box::new(AdaptiveAllToAll {
            router,
            // The default line capacity of 2 needs a q = 8 RM plane and so
            // n ≥ 64; at the debug-cheap n = 16 cell a q = 4 plane with one
            // error slot per line is the feasible geometry.
            line_capacity: if n < 64 { 1 } else { 2 },
            ..Default::default()
        }),
        "det-hypercube" => Box::new(DetHypercube::new(router)),
        "det-sqrt" => Box::new(DetSqrt::new(router)),
        other => panic!("unknown protocol {other}"),
    }
}

/// One adversary-visible round record: `(round, corrupted edges, frames,
/// bits)`.
type HistoryRecord = (u64, Vec<(usize, usize)>, u64, u64);

/// What one run must pin: the result (payload hash or error), the driver's
/// reconstructed per-round trace, the cumulative stats, and the adversary's
/// per-round view.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    result: Result<u64, String>,
    trace: Vec<RoundDelta>,
    rounds: u64,
    bits_sent: u64,
    frames_sent: u64,
    edges_corrupted: u64,
    history: Vec<HistoryRecord>,
}

/// FNV-1a over every `(receiver, sender, received?)` cell of the output.
fn payload_fnv(out: &bdclique_core::AllToAllOutput, n: usize) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let feed = |byte: u8, h: &mut u64| {
        *h ^= u64::from(byte);
        *h = h.wrapping_mul(0x1000_0000_01b3);
    };
    for v in 0..n {
        for u in 0..n {
            match out.received(v, u) {
                None => feed(0xff, &mut h),
                Some(bits) => {
                    feed(0x01, &mut h);
                    for byte in bits.to_bytes() {
                        feed(byte, &mut h);
                    }
                }
            }
        }
    }
    h
}

/// Extra observers layered onto the tracing driver.
#[derive(Clone, Copy)]
enum Extra {
    None,
    /// Abort via [`RoundBudget`] after `cap` rounds.
    Budget(u64),
    /// Swap in a greedy adaptive adversary at round `at` via
    /// [`ScheduleSwitch`].
    Switch {
        at: u64,
        seed: u64,
    },
}

fn run_one(
    name: &str,
    event: bool,
    n: usize,
    b: usize,
    alpha: f64,
    seed: u64,
    extra: Extra,
) -> Fingerprint {
    let proto = build(name, event, n);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let inst = AllToAllInstance::random(n, b, &mut rng);
    let adversary = if alpha > 0.0 && matches!(extra, Extra::None | Extra::Budget(_)) {
        Adversary::adaptive(GreedyLoad::new(Payload::Flip, seed ^ 0xad))
    } else {
        Adversary::none()
    };
    let mut net = Network::new(n, BANDWIDTH, alpha, adversary);

    let mut tracer = RoundTrace::new();
    let mut budget;
    let mut switch;
    let result = {
        let mut observers: Vec<&mut dyn RoundObserver> = vec![&mut tracer];
        match extra {
            Extra::None => {}
            Extra::Budget(cap) => {
                budget = RoundBudget::new(cap);
                observers.push(&mut budget);
            }
            Extra::Switch { at, seed } => {
                switch = ScheduleSwitch::new(vec![(
                    at,
                    Adversary::adaptive(GreedyLoad::new(Payload::Flip, seed)),
                )]);
                observers.push(&mut switch);
            }
        }
        Driver::with_observers(&mut observers).run(proto.as_ref(), &mut net, &inst)
    };
    Fingerprint {
        result: result
            .map(|out| payload_fnv(&out, n))
            .map_err(|e| format!("{e:?}")),
        trace: tracer.frames,
        rounds: net.rounds(),
        bits_sent: net.stats().bits_sent,
        frames_sent: net.stats().frames_sent,
        edges_corrupted: net.stats().edges_corrupted,
        history: net
            .history()
            .records()
            .iter()
            .map(|r| (r.round, r.corrupted.clone(), r.frames, r.bits))
            .collect(),
    }
}

/// Asserts event == lockstep for one configuration and returns the (shared)
/// fingerprint for any further checks.
fn assert_identical(
    name: &str,
    n: usize,
    b: usize,
    alpha: f64,
    seed: u64,
    extra: Extra,
) -> Fingerprint {
    let t0 = std::time::Instant::now();
    let lockstep = run_one(name, false, n, b, alpha, seed, extra);
    let t1 = std::time::Instant::now();
    let event = run_one(name, true, n, b, alpha, seed, extra);
    eprintln!(
        "[event-identity] {name} n={n} alpha={alpha:.4}: lockstep {:.2}s event {:.2}s",
        (t1 - t0).as_secs_f64(),
        t1.elapsed().as_secs_f64()
    );
    assert_eq!(
        lockstep, event,
        "{name} n={n} alpha={alpha}: event executor diverged from the serial stepped driver"
    );
    event
}

/// All seven protocols, fault-free **and** under an adaptive budget-1
/// adversary: identical payloads, traces, stats, and history. Six run at
/// n = 64; the full adaptive compiler (Take II) runs at its n = 16 bench
/// operating point here — a single Take II execution at n = 64 costs
/// ~20s *in release* (dominated by its per-pair sketch/LDC decode loop),
/// which the debug-mode tier-1 suite cannot afford; its n ∈ {64, 256}
/// identity is pinned by [`adaptive_identical_large_n`] (release-gated
/// in CI).
#[test]
fn seven_protocols_identical_n64() {
    for (i, name) in PROTOCOLS.iter().enumerate() {
        let n = if *name == "adaptive" { 16 } else { 64 };
        let fp = assert_identical(name, n, 1, 0.0, 0x64 + i as u64, Extra::None);
        assert!(
            fp.result.is_ok(),
            "{name} fault-free at n={n} must complete: {:?}",
            fp.result
        );
        assert_eq!(
            fp.trace.len() as u64,
            fp.rounds,
            "{name}: trace covers every round"
        );
        // vtime on a fresh network is the session-relative round index.
        assert!(
            fp.trace.iter().all(|d| d.vtime == d.round),
            "{name}: vtime must equal round on a fresh network"
        );
        assert_identical(name, n, 1, 1.2 / n as f64, 0x640 + i as u64, Extra::None);
    }
}

/// The fast protocols at n = 256, fault-free (the adversarial axis is
/// covered at n = 64 — here the point is the larger stage counts and
/// multi-pack pipelines the event executor actually overlaps). The two
/// adaptive compilers move to [`adaptive_identical_large_n`]: Take II
/// costs ~7 minutes *per run* at n = 256 in release, Take I ~2s release
/// but tens of debug seconds.
#[test]
fn protocols_identical_n256() {
    let n = 256;
    for (i, name) in PROTOCOLS
        .iter()
        .filter(|p| !p.starts_with("adaptive"))
        .enumerate()
    {
        let fp = assert_identical(name, n, 1, 0.0, 0x256 + i as u64, Extra::None);
        assert!(
            fp.result.is_ok(),
            "{name} fault-free at n={n} must complete: {:?}",
            fp.result
        );
    }
}

/// The adaptive compilers' heavy identity cells: Take I at n = 256,
/// Take II at n ∈ {64, 256}. `#[ignore]`d because Take II costs ~40s
/// (n = 64) / ~14 min (n = 256) per *pair* of runs in release — CI runs
/// this explicitly (`cargo test --release -- --ignored`) alongside the
/// other release-gated large-n smokes; the tier-1 debug suite covers the
/// same protocols at their bench operating points above.
#[test]
#[ignore = "release-gated in CI: Take II costs minutes per run"]
fn adaptive_identical_large_n() {
    for (name, n) in [("adaptive-take1", 256), ("adaptive", 64), ("adaptive", 256)] {
        let fp = assert_identical(name, n, 1, 0.0, 0x25664, Extra::None);
        assert!(
            fp.result.is_ok(),
            "{name} fault-free at n={n} must complete: {:?}",
            fp.result
        );
    }
}

/// A [`RoundBudget`] abort mid-run is identical too: the event path holds
/// in-flight prefetch encodes and queued decodes when the driver aborts,
/// and dropping them must leave exactly the lockstep network state, trace
/// prefix, and error.
#[test]
fn round_budget_abort_identical() {
    for name in ["det-sqrt", "det-hypercube", "nonadaptive"] {
        for cap in [1u64, 3] {
            let fp = assert_identical(name, 64, 1, 0.0, 0xb0d, Extra::Budget(cap));
            assert!(
                fp.result.is_err(),
                "{name}: cap {cap} must abort before completion"
            );
            assert_eq!(
                fp.trace.len() as u64,
                cap,
                "{name}: abort lands exactly at the budget"
            );
        }
    }
}

/// A [`ScheduleSwitch`] swapping in an adaptive adversary between rounds
/// sees the same per-virtual-round frame sets either way: corruptions land
/// on the same edges in the same rounds.
#[test]
fn schedule_switch_identical() {
    for name in ["det-sqrt", "det-hypercube"] {
        let n = 64;
        let fp = assert_identical(
            name,
            n,
            1,
            1.2 / n as f64,
            0x5c4ed,
            Extra::Switch { at: 2, seed: 0x11 },
        );
        assert!(
            fp.history
                .iter()
                .all(|(round, corrupted, _, _)| *round >= 2 || corrupted.is_empty()),
            "{name}: switched adversary must corrupt only from round 2 on"
        );
        assert!(
            fp.history
                .iter()
                .any(|(round, corrupted, _, _)| *round >= 2 && !corrupted.is_empty()),
            "{name}: the swapped-in adversary must actually corrupt"
        );
    }
}
