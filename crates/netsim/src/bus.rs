//! A discrete-event message bus: frame batches staged by **virtual delivery
//! time**.
//!
//! The synchronous model delivers exactly one [`Traffic`] matrix per round,
//! and [`crate::Network::try_exchange`] advances the virtual clock
//! ([`crate::Network::virtual_time`]) by one per delivery. An event-driven
//! executor wants to *build* those matrices out of order — encoding the
//! batch for virtual round `t + 2` while round `t` is still on the wire —
//! without ever changing what the adversary sees at each virtual instant.
//!
//! [`MessageBus`] is the staging area that makes this safe: producers post
//! finished batches tagged with the virtual time at which they must be
//! exchanged, and the (single) consumer drains exactly the batch matching
//! the network's current clock. Delivery order is therefore always the
//! virtual-time order, no matter in which wall-clock order batches were
//! produced — the adversary's per-round corruption budget and every
//! transcript digest are anchored to virtual rounds, not to executor
//! scheduling.
//!
//! The bus stores plain [`Traffic`] values. Batches produced off-thread are
//! necessarily arena-free ([`Traffic::new`]); their buffers rejoin the
//! network's [`crate::Network::reclaim`] arena after the exchange like any
//! other round's, so arena lending composes with overlapping production.

use crate::topology::Topology;
use crate::traffic::Traffic;
use bdclique_snapshot::{Dec, Enc, SnapError};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Frame batches staged by virtual delivery time (see the module docs).
///
/// # Examples
///
/// ```
/// use bdclique_netsim::{MessageBus, Traffic};
///
/// let mut bus = MessageBus::new();
/// bus.post(7, Traffic::new(4, 8)); // produced early, delivered later
/// bus.post(5, Traffic::new(4, 8));
/// assert_eq!(bus.earliest(), Some(5));
/// assert!(bus.take(5).is_some());
/// assert!(bus.take(6).is_none(), "nothing staged for vtime 6");
/// assert_eq!(bus.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct MessageBus {
    staged: BTreeMap<u64, Traffic>,
}

impl MessageBus {
    /// An empty bus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stages `batch` for delivery at virtual time `vtime`.
    ///
    /// # Panics
    ///
    /// Panics if a batch is already staged for `vtime`: the model delivers
    /// exactly one traffic matrix per virtual round, so a duplicate post is
    /// an executor bug, not a mergeable event.
    pub fn post(&mut self, vtime: u64, batch: Traffic) {
        let prev = self.staged.insert(vtime, batch);
        assert!(
            prev.is_none(),
            "duplicate batch posted for virtual time {vtime}"
        );
    }

    /// Removes and returns the batch staged for exactly `vtime`, if any.
    pub fn take(&mut self, vtime: u64) -> Option<Traffic> {
        self.staged.remove(&vtime)
    }

    /// Whether a batch is staged for exactly `vtime`.
    pub fn ready_at(&self, vtime: u64) -> bool {
        self.staged.contains_key(&vtime)
    }

    /// The smallest staged virtual time, if any.
    pub fn earliest(&self) -> Option<u64> {
        self.staged.keys().next().copied()
    }

    /// Number of staged batches.
    pub fn len(&self) -> usize {
        self.staged.len()
    }

    /// Whether nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.staged.is_empty()
    }

    /// Drops every staged batch (e.g. after an aborted run).
    pub fn clear(&mut self) {
        self.staged.clear();
    }

    /// Serializes the staged batches in ascending virtual-time order.
    pub fn snapshot(&self, enc: &mut Enc) {
        enc.put_usize(self.staged.len());
        for (vtime, batch) in &self.staged {
            enc.put_u64(*vtime);
            batch.snapshot(enc);
        }
    }

    /// Rebuilds a bus serialized by [`MessageBus::snapshot`]. `topology`
    /// reattaches the validation handle of topology-validated batches.
    ///
    /// # Errors
    ///
    /// [`SnapError`] on truncated or corrupt input (including duplicate or
    /// out-of-order virtual times).
    pub fn restore(dec: &mut Dec<'_>, topology: Option<&Arc<Topology>>) -> Result<Self, SnapError> {
        let count = dec.get_len(9)?;
        let mut staged = BTreeMap::new();
        let mut last: Option<u64> = None;
        for _ in 0..count {
            let vtime = dec.get_u64()?;
            if last.is_some_and(|prev| prev >= vtime) {
                return Err(SnapError::corrupt("bus batches out of order"));
            }
            last = Some(vtime);
            staged.insert(vtime, Traffic::restore(dec, topology)?);
        }
        Ok(Self { staged })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdclique_bits::BitVec;

    #[test]
    fn batches_drain_in_virtual_time_order() {
        let mut bus = MessageBus::new();
        for vtime in [9u64, 3, 6] {
            let mut t = Traffic::new(3, 8);
            t.send(0, 1, BitVec::from_bools(&[vtime % 2 == 0]));
            bus.post(vtime, t);
        }
        assert_eq!(bus.earliest(), Some(3));
        assert!(bus.ready_at(6) && !bus.ready_at(4));
        let drained: Vec<u64> = std::iter::from_fn(|| {
            let next = bus.earliest()?;
            bus.take(next).map(|_| next)
        })
        .collect();
        assert_eq!(drained, vec![3, 6, 9]);
        assert!(bus.is_empty());
    }

    #[test]
    fn take_is_exact_match_only() {
        let mut bus = MessageBus::new();
        bus.post(4, Traffic::new(2, 1));
        assert!(bus.take(3).is_none());
        assert!(bus.take(5).is_none());
        assert!(bus.take(4).is_some());
        assert!(bus.take(4).is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate batch")]
    fn duplicate_post_is_rejected() {
        let mut bus = MessageBus::new();
        bus.post(2, Traffic::new(2, 1));
        bus.post(2, Traffic::new(2, 1));
    }

    #[test]
    fn clear_discards_everything() {
        let mut bus = MessageBus::new();
        bus.post(1, Traffic::new(2, 1));
        bus.post(2, Traffic::new(2, 1));
        assert_eq!(bus.len(), 2);
        bus.clear();
        assert!(bus.is_empty());
        assert_eq!(bus.earliest(), None);
    }
}
