//! The round-by-round Congested Clique compiler.
//!
//! The paper's framing: an `r`-round resilient `AllToAllComm` protocol turns
//! any fault-free `r'`-round Congested Clique algorithm into an
//! `O(r'·r)`-round algorithm resilient to the same adversary — simulate each
//! fault-free round by one `AllToAllComm` instance. [`compile`] implements
//! exactly that loop; [`crate::cc`] provides fault-free algorithms to feed
//! it.
//!
//! # Parallelism and determinism
//!
//! The per-node send/receive phases are embarrassingly parallel (node `u`'s
//! messages and state transition depend only on `u`'s own state and inbox),
//! so [`compile`] and [`run_fault_free`] fan them out across the rayon
//! thread pool and fold the results back **in node order** — bit-identical
//! to the serial oracles [`compile_serial`] / [`run_fault_free_serial`]
//! (covered by a regression test, the same pattern as
//! `bdclique_bench::aggregate` vs `aggregate_serial`). The network rounds
//! themselves stay strictly sequential: rounds are the unit of synchrony in
//! the model.
//!
//! Inbox assembly is clone-free: the protocol output's message matrix is
//! transposed into per-node inboxes **by move**
//! ([`crate::AllToAllOutput::into_received_rows`]), never by cloning all
//! `n²` messages.

use crate::error::CoreError;
use crate::problem::AllToAllInstance;
use crate::protocols::AllToAllProtocol;
use bdclique_bits::BitVec;
use bdclique_netsim::Network;
use rayon::prelude::*;

/// A fault-free Congested Clique algorithm, written node-locally.
pub trait CliqueAlgorithm {
    /// Per-node state.
    type State: Clone;

    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Message width `B` in bits.
    fn message_bits(&self) -> usize;

    /// Number of communication rounds.
    fn round_count(&self) -> usize;

    /// Initial state of node `u` in an `n`-clique.
    fn init(&self, u: usize, n: usize) -> Self::State;

    /// The message node `u` sends to `v` in round `r` (exactly
    /// [`Self::message_bits`] bits).
    fn send(&self, r: usize, u: usize, v: usize, state: &Self::State) -> BitVec;

    /// Delivers round `r`'s received messages (`inbox[u']` = message from
    /// `u'`; `inbox[u]` is `u`'s own message to itself).
    fn receive(&self, r: usize, u: usize, state: &mut Self::State, inbox: &[BitVec]);

    /// Node `u`'s output after the final round.
    fn output(&self, u: usize, state: &Self::State) -> BitVec;
}

/// Result of a compiled execution.
#[derive(Debug, Clone)]
pub struct CompiledRun {
    /// Per-node outputs.
    pub outputs: Vec<BitVec>,
    /// Total network rounds consumed (the simulation overhead × algorithm
    /// rounds).
    pub rounds: u64,
}

/// Maps `f` over indexed items, in parallel or serially, always collecting
/// in input order — the one switch point between the parallel entry points
/// and their serial oracles, so the two cannot drift apart.
fn map_nodes<T: Send, U: Send>(
    parallel: bool,
    items: Vec<T>,
    f: impl Fn(usize, T) -> U + Send + Sync,
) -> Vec<U> {
    let indexed: Vec<(usize, T)> = items.into_iter().enumerate().collect();
    if parallel {
        indexed.into_par_iter().map(|(i, x)| f(i, x)).collect()
    } else {
        indexed.into_iter().map(|(i, x)| f(i, x)).collect()
    }
}

fn compile_impl<A>(
    net: &mut Network,
    algo: &A,
    protocol: &dyn AllToAllProtocol,
    parallel: bool,
) -> Result<CompiledRun, CoreError>
where
    A: CliqueAlgorithm + Sync,
    A::State: Send + Sync,
{
    // The simulation's correctness argument needs every round's full n × n
    // message matrix delivered, which only the complete topology supports
    // (a sparse graph cannot carry messages between non-adjacent pairs).
    if !net.topology().is_complete() {
        return Err(CoreError::infeasible(
            "the round compiler requires the complete topology (K_n): each simulated \
             round exchanges a full n x n message matrix"
                .to_string(),
        ));
    }
    let n = net.n();
    let b = algo.message_bits();
    let rounds_before = net.rounds();
    let mut states: Vec<A::State> = (0..n).map(|u| algo.init(u, n)).collect();
    for r in 0..algo.round_count() {
        let messages: Vec<Vec<BitVec>> = {
            let states = &states;
            map_nodes(parallel, (0..n).collect(), |_, u: usize| {
                (0..n)
                    .map(|v| {
                        let m = algo.send(r, u, v, &states[u]);
                        assert_eq!(m.len(), b, "algorithm produced wrong message width");
                        m
                    })
                    .collect()
            })
        };
        let inst = AllToAllInstance::new(n, b, messages);
        let output = protocol.run(net, &inst)?;
        // Transpose by move: row `u` of the receiver-major output *is*
        // node `u`'s inbox (missing messages become zeros, the node's own
        // slot its local message).
        let rows = output.into_received_rows();
        let work: Vec<(A::State, Vec<Option<BitVec>>)> = states.into_iter().zip(rows).collect();
        states = map_nodes(parallel, work, |u, (mut state, row)| {
            let inbox: Vec<BitVec> = row
                .into_iter()
                .enumerate()
                .map(|(s, m)| {
                    if s == u {
                        inst.message(u, u).clone()
                    } else {
                        m.unwrap_or_else(|| BitVec::zeros(b))
                    }
                })
                .collect();
            algo.receive(r, u, &mut state, &inbox);
            state
        });
    }
    Ok(CompiledRun {
        outputs: (0..n).map(|u| algo.output(u, &states[u])).collect(),
        rounds: net.rounds() - rounds_before,
    })
}

/// Runs `algo` on `net` by simulating each of its rounds with `protocol`
/// (Definition 1's reduction), fanning the node-local send/receive work out
/// across threads. Bit-identical to [`compile_serial`]. The fault-free
/// behaviour is recovered exactly whenever the protocol delivers all
/// messages correctly.
///
/// # Errors
///
/// Propagates the protocol's [`CoreError`]s.
pub fn compile<A>(
    net: &mut Network,
    algo: &A,
    protocol: &dyn AllToAllProtocol,
) -> Result<CompiledRun, CoreError>
where
    A: CliqueAlgorithm + Sync,
    A::State: Send + Sync,
{
    compile_impl(net, algo, protocol, true)
}

/// Serial reference implementation of [`compile`]: same per-node work, one
/// thread. Kept public as the determinism oracle.
///
/// # Errors
///
/// Propagates the protocol's [`CoreError`]s.
pub fn compile_serial<A>(
    net: &mut Network,
    algo: &A,
    protocol: &dyn AllToAllProtocol,
) -> Result<CompiledRun, CoreError>
where
    A: CliqueAlgorithm + Sync,
    A::State: Send + Sync,
{
    compile_impl(net, algo, protocol, false)
}

fn run_fault_free_impl<A>(algo: &A, n: usize, parallel: bool) -> Vec<BitVec>
where
    A: CliqueAlgorithm + Sync,
    A::State: Send + Sync,
{
    let mut states: Vec<A::State> = (0..n).map(|u| algo.init(u, n)).collect();
    for r in 0..algo.round_count() {
        let all: Vec<Vec<BitVec>> = {
            let states = &states;
            map_nodes(parallel, (0..n).collect(), |_, u: usize| {
                (0..n).map(|v| algo.send(r, u, v, &states[u])).collect()
            })
        };
        // Transpose by move: inbox[u][s] = all[s][u], no clones.
        let mut senders: Vec<_> = all.into_iter().map(Vec::into_iter).collect();
        let inboxes: Vec<Vec<BitVec>> = (0..n)
            .map(|_| {
                senders
                    .iter_mut()
                    .map(|row| row.next().expect("square message matrix"))
                    .collect()
            })
            .collect();
        let work: Vec<(A::State, Vec<BitVec>)> = states.into_iter().zip(inboxes).collect();
        states = map_nodes(parallel, work, |u, (mut state, inbox)| {
            algo.receive(r, u, &mut state, &inbox);
            state
        });
    }
    (0..n).map(|u| algo.output(u, &states[u])).collect()
}

/// Runs `algo` with no adversary and no simulation (the ground truth), with
/// the per-node phases parallelized. Bit-identical to
/// [`run_fault_free_serial`].
pub fn run_fault_free<A>(algo: &A, n: usize) -> Vec<BitVec>
where
    A: CliqueAlgorithm + Sync,
    A::State: Send + Sync,
{
    run_fault_free_impl(algo, n, true)
}

/// Serial reference implementation of [`run_fault_free`] (the determinism
/// oracle).
pub fn run_fault_free_serial<A>(algo: &A, n: usize) -> Vec<BitVec>
where
    A: CliqueAlgorithm + Sync,
    A::State: Send + Sync,
{
    run_fault_free_impl(algo, n, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::{BooleanMatMul, MaxTwoPhase, SumAll, Transpose};
    use crate::protocols::{DetHypercube, NaiveExchange};
    use bdclique_adversary::adaptive::GreedyLoad;
    use bdclique_adversary::Payload;
    use bdclique_netsim::{Adversary, Network};

    fn attacked_net(n: usize) -> Network {
        let adversary = Adversary::adaptive(GreedyLoad::new(Payload::Flip, 77));
        Network::new(n, 9, 0.07, adversary)
    }

    /// The thread fan-out must be invisible: every output bit and the round
    /// count match the serial oracle exactly, across heterogeneous
    /// algorithms, protocols, and an active adversary — the same contract
    /// `bdclique_bench::aggregate` keeps with `aggregate_serial`.
    #[test]
    fn parallel_compile_is_bit_identical_to_serial() {
        let n = 16usize;
        let sum = SumAll {
            inputs: (0..n as u64).map(|i| i * 13 + 7).collect(),
            width: 8,
        };
        let max = MaxTwoPhase {
            inputs: (0..n as u64).map(|i| (i * 37) % 101).collect(),
            width: 8,
        };
        let transpose = Transpose {
            rows: (0..n)
                .map(|u| (0..n).map(|v| (u * n + v) as u64).collect())
                .collect(),
            width: 8,
        };
        let matmul = BooleanMatMul {
            a: (0..n as u64).map(|u| (u * 0x9e) & 0xffff).collect(),
            b: (0..n as u64).map(|u| (u * 0x5b + 3) & 0xffff).collect(),
        };

        macro_rules! check {
            ($algo:expr) => {{
                assert_eq!(
                    run_fault_free(&$algo, n),
                    run_fault_free_serial(&$algo, n),
                    "{}: fault-free parallel/serial divergence",
                    $algo.name()
                );
                for proto in [
                    &NaiveExchange as &dyn AllToAllProtocol,
                    &DetHypercube::default(),
                ] {
                    let par = compile(&mut attacked_net(n), &$algo, proto).unwrap();
                    let ser = compile_serial(&mut attacked_net(n), &$algo, proto).unwrap();
                    assert_eq!(
                        par.outputs,
                        ser.outputs,
                        "{} via {}: compiled parallel/serial divergence",
                        $algo.name(),
                        proto.name()
                    );
                    assert_eq!(par.rounds, ser.rounds);
                }
            }};
        }
        check!(sum);
        check!(max);
        check!(transpose);
        check!(matmul);
    }

    /// The compiler simulates full n × n rounds, so sparse topologies are
    /// refused up front.
    #[test]
    fn sparse_topology_is_infeasible_for_compilation() {
        use bdclique_netsim::Topology;
        let algo = SumAll {
            inputs: (0..8u64).collect(),
            width: 8,
        };
        let mut net = Network::on_topology(Topology::ring(8), 9, 0.0, Adversary::none());
        assert!(matches!(
            compile(&mut net, &algo, &NaiveExchange),
            Err(CoreError::Infeasible { .. })
        ));
        assert_eq!(net.rounds(), 0);
    }

    /// The compiled clean path still recovers the fault-free reference (the
    /// clone-free inbox transpose must not reorder or drop messages).
    #[test]
    fn clone_free_inboxes_preserve_semantics() {
        let n = 8usize;
        let algo = Transpose {
            rows: (0..n)
                .map(|u| (0..n).map(|v| (u * n + v) as u64).collect())
                .collect(),
            width: 6,
        };
        let reference = run_fault_free(&algo, n);
        let mut net = Network::new(n, 8, 0.0, Adversary::none());
        let run = compile(&mut net, &algo, &NaiveExchange).unwrap();
        assert_eq!(run.outputs, reference);
    }
}
