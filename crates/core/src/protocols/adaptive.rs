//! Theorem 1.3 / 5.5: randomized `AllToAllComm` against the **adaptive**
//! (rushing) α-BD adversary, via locally decodable codes and sparse recovery
//! sketches.
//!
//! Two variants, following the paper's Section 3 exposition:
//!
//! * [`AdaptiveTakeOne`] ("Take I", `O(q)` rounds): every node LDC-encodes
//!   its whole outgoing row `M(u, V)`, scatters one codeword symbol per
//!   node, and every receiver locally decodes its own positions from `q`
//!   non-adaptive queries fetched through the resilient router.
//! * [`AdaptiveAllToAll`] ("Take II", Theorem 1.3): the full pipeline —
//!   direct exchange, random partition `P` (Lemma 5.6), per-(group, node)
//!   sparse recovery sketches (Lemma 2.4), LDC-encoded distributed sketch
//!   storage, non-adaptive query fetch, and local correction. The
//!   `query_via_ldc` switch replaces the LDC fetch with a direct resilient
//!   sketch pull — the ablation that quantifies when the LDC machinery pays
//!   (it requires `αn ≫ 1/α`; see `EXPERIMENTS.md`).
//!
//! **Ordering matters**: codewords are scattered *before* the decoding
//! randomness `R3` is generated and broadcast, so the rushing adversary
//! commits its corruption of the distributed storage without knowing which
//! positions will be queried — exactly the paper's Step II/III order.

use super::naive::NaiveSession;
use super::{AllToAllProtocol, ProtocolSession, Step};
use crate::broadcast::BroadcastSession;
use crate::error::CoreError;
use crate::problem::{AllToAllInstance, AllToAllOutput};
use crate::routing::{RouteSession, RouterConfig, RoutingInstance, RoutingOutput, SuperMessage};
use bdclique_bits::{bits_for, BitVec};
use bdclique_codes::{Ldc, RmLdc};
use bdclique_hash::{KWiseHashFamily, SharedRandomness};
use bdclique_netsim::Network;
use bdclique_sketch::{RecoverySketch, SketchShape};
use bdclique_snapshot::{Dec, Enc, Restore, SnapError, Snapshot};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::borrow::Cow;
use std::collections::HashMap;

/// Serializes a ChaCha8 generator mid-stream (key + block counter + intra-
/// block cursor), so a restored session continues the exact draw sequence.
fn snapshot_rng(rng: &ChaCha8Rng, enc: &mut Enc) {
    let (key, counter, idx) = rng.position();
    for w in key {
        enc.put_u32(w);
    }
    enc.put_u64(counter);
    enc.put_usize(idx);
}

fn restore_rng(dec: &mut Dec<'_>) -> Result<ChaCha8Rng, SnapError> {
    let mut key = [0u32; 8];
    for w in &mut key {
        *w = dec.get_u32()?;
    }
    let counter = dec.get_u64()?;
    let idx = dec.get_usize()?;
    if idx > 16 {
        return Err(SnapError::corrupt("rng block cursor out of range"));
    }
    Ok(ChaCha8Rng::from_position(key, counter, idx))
}

/// Serializes an `n`-row table of per-node bit strings (broadcast outputs).
fn snapshot_bits_table(rows: &[BitVec], enc: &mut Enc) {
    enc.put_seq(rows, Enc::put_bits);
}

fn restore_bits_table(n: usize, dec: &mut Dec<'_>) -> Result<Vec<BitVec>, CoreError> {
    let rows = dec.get_seq(1, Dec::get_bits).map_err(CoreError::from)?;
    if rows.len() != n {
        return Err(CoreError::invalid("snapshot bit table size mismatch"));
    }
    Ok(rows)
}

/// Serializes scattered symbols (`[receiver][holder][chunk]`, rectangular)
/// flat; the dimensions are re-derived from the plan at restore and only
/// checked here.
fn snapshot_symbols(symbols: &[Vec<Vec<u16>>], enc: &mut Enc) {
    enc.put_usize(symbols.len());
    enc.put_usize(symbols.first().and_then(|r| r.first()).map_or(0, Vec::len));
    for row in symbols {
        for per_holder in row {
            for &sym in per_holder {
                enc.put_u16(sym);
            }
        }
    }
}

fn restore_symbols(
    n: usize,
    chunks: usize,
    dec: &mut Dec<'_>,
) -> Result<Vec<Vec<Vec<u16>>>, CoreError> {
    let stored_n = dec.get_usize().map_err(CoreError::from)?;
    let stored_chunks = dec.get_usize().map_err(CoreError::from)?;
    if stored_n != n || stored_chunks != chunks {
        return Err(CoreError::invalid("snapshot symbol table shape mismatch"));
    }
    let mut symbols = vec![vec![vec![0u16; chunks]; n]; n];
    for row in &mut symbols {
        for per_holder in row.iter_mut() {
            for sym in per_holder.iter_mut() {
                *sym = dec.get_u16().map_err(CoreError::from)?;
            }
        }
    }
    Ok(symbols)
}

/// Serializes the per-node query sets (`wanted[v]` = `(chunk, position)`
/// pairs).
fn snapshot_wanted(wanted: &[Vec<(usize, usize)>], enc: &mut Enc) {
    for pairs in wanted {
        enc.put_seq(pairs, |e, &(c, r)| {
            e.put_usize(c);
            e.put_usize(r);
        });
    }
}

fn restore_wanted(n: usize, dec: &mut Dec<'_>) -> Result<Vec<Vec<(usize, usize)>>, CoreError> {
    (0..n)
        .map(|_| {
            dec.get_seq(2, |d| Ok((d.get_usize()?, d.get_usize()?)))
                .map_err(CoreError::from)
        })
        .collect()
}

/// Per-node fetched query answers: `(chunk, position) → holder-indexed
/// symbol bundle`.
type QueryAnswers = HashMap<(usize, usize), BitVec>;

/// LDC geometry shared by both variants.
struct LdcPlan {
    ldc: RmLdc,
    /// Symbol width in bits (= field extension degree).
    mf: u32,
    /// Payload bits per codeword.
    cap_bits: usize,
}

impl LdcPlan {
    /// Picks the largest bivariate RM code whose plane fits in `n` nodes and
    /// whose lines keep at least `line_capacity` error slots.
    fn for_network(n: usize, lines: usize, line_capacity: usize) -> Result<Self, CoreError> {
        let mf = (bits_for(n) / 2).min(8);
        if mf < 2 {
            return Err(CoreError::infeasible(format!(
                "n = {n} too small for a bivariate RM plane (need n ≥ 16)"
            )));
        }
        let q = 1usize << mf;
        debug_assert!(q * q <= n.next_power_of_two().max(q * q));
        if q * q > n {
            return Err(CoreError::infeasible(format!(
                "RM plane q² = {} exceeds n = {n}",
                q * q
            )));
        }
        let d = q
            .checked_sub(1 + 2 * line_capacity)
            .filter(|&d| d >= 1)
            .ok_or_else(|| {
                CoreError::infeasible(format!(
                    "field size {q} cannot offer line capacity {line_capacity}"
                ))
            })?;
        let ldc =
            RmLdc::new(mf, d, lines).map_err(|e| CoreError::infeasible(format!("RM LDC: {e}")))?;
        let cap_bits = ldc.message_len() * mf as usize;
        Ok(Self { ldc, mf, cap_bits })
    }

    /// Bit position → (chunk, symbol index, bit within symbol).
    fn locate(&self, bit: usize) -> (usize, usize, usize) {
        let chunk = bit / self.cap_bits;
        let inner = bit % self.cap_bits;
        (chunk, inner / self.mf as usize, inner % self.mf as usize)
    }
}

/// Scatters per-holder chunked LDC codewords: one symbol per node per
/// chunk, `lanes` chunks per exchange — one exchange per
/// [`ScatterSession::step`]. Produces `symbols[receiver][holder][chunk]`.
///
/// Holders with fewer chunks than `chunks` pad with zero codewords.
struct ScatterSession {
    mf: u32,
    /// Codeword positions `q² ≤ n`.
    positions: usize,
    lanes: usize,
    chunks: usize,
    n: usize,
    codewords: Vec<Vec<Vec<u16>>>,
    symbols: Vec<Vec<Vec<u16>>>,
    /// First chunk of the next pack.
    chunk_start: usize,
}

impl ScatterSession {
    fn new(
        net: &Network,
        plan: &LdcPlan,
        payloads: &[BitVec], // per holder, padded to chunks * cap_bits
        chunks: usize,
    ) -> Result<Self, CoreError> {
        let n = net.n();
        let mf = plan.mf;
        // Pre-encode all codewords.
        let mut codewords: Vec<Vec<Vec<u16>>> = Vec::with_capacity(n);
        for payload in payloads {
            let mut per_chunk = Vec::with_capacity(chunks);
            for c in 0..chunks {
                let chunk_bits = payload.slice(c * plan.cap_bits, (c + 1) * plan.cap_bits);
                let msg = chunk_bits.to_symbols(mf);
                let cw = plan
                    .ldc
                    .encode(&msg)
                    .map_err(|e| CoreError::invalid(format!("LDC encode: {e}")))?;
                per_chunk.push(cw);
            }
            codewords.push(per_chunk);
        }
        Ok(Self {
            mf,
            positions: plan.ldc.codeword_len(), // q² ≤ n
            lanes: (net.bandwidth() / mf as usize).max(1),
            chunks,
            n,
            codewords,
            symbols: vec![vec![vec![0u16; chunks]; n]; n],
            chunk_start: 0,
        })
    }

    /// Serializes the scatter mid-flight. Codewords are written out rather
    /// than re-encoded at restore: Take II's payloads derive from wave-A
    /// deliveries that no longer exist by the time a restore runs.
    fn snapshot(&self, enc: &mut Enc) {
        enc.put_usize(self.chunks);
        enc.put_usize(self.chunk_start);
        for per_chunk in &self.codewords {
            for cw in per_chunk {
                for &sym in cw {
                    enc.put_u16(sym);
                }
            }
        }
        for row in &self.symbols {
            for per_holder in row {
                for &sym in per_holder {
                    enc.put_u16(sym);
                }
            }
        }
    }

    /// Rebuilds a scatter serialized by [`ScatterSession::snapshot`].
    /// Geometry (`mf`, `positions`, `lanes`) is re-derived from the network
    /// and plan; `expected_chunks` pins the chunk count the caller derives
    /// from its payload width.
    fn restore(
        net: &Network,
        plan: &LdcPlan,
        expected_chunks: usize,
        dec: &mut Dec<'_>,
    ) -> Result<Self, CoreError> {
        let n = net.n();
        let positions = plan.ldc.codeword_len();
        let chunks = dec.get_usize().map_err(CoreError::from)?;
        if chunks != expected_chunks {
            return Err(CoreError::invalid("scatter snapshot chunk count mismatch"));
        }
        let chunk_start = dec.get_usize().map_err(CoreError::from)?;
        if chunk_start >= chunks {
            return Err(CoreError::invalid("scatter snapshot cursor out of range"));
        }
        let mut codewords = vec![vec![vec![0u16; positions]; chunks]; n];
        for per_chunk in &mut codewords {
            for cw in per_chunk.iter_mut() {
                for sym in cw.iter_mut() {
                    *sym = dec.get_u16().map_err(CoreError::from)?;
                }
            }
        }
        let mut symbols = vec![vec![vec![0u16; chunks]; n]; n];
        for row in &mut symbols {
            for per_holder in row.iter_mut() {
                for sym in per_holder.iter_mut() {
                    *sym = dec.get_u16().map_err(CoreError::from)?;
                }
            }
        }
        Ok(Self {
            mf: plan.mf,
            positions,
            lanes: (net.bandwidth() / plan.mf as usize).max(1),
            chunks,
            n,
            codewords,
            symbols,
            chunk_start,
        })
    }

    /// One exchange; `Some(symbols)` when the final pack lands.
    fn step(&mut self, net: &mut Network) -> Result<Option<Vec<Vec<Vec<u16>>>>, CoreError> {
        let (n, mf, positions) = (self.n, self.mf, self.positions);
        if self.chunk_start >= self.chunks {
            return Ok(Some(std::mem::take(&mut self.symbols)));
        }
        let pack: Vec<usize> =
            (self.chunk_start..self.chunks.min(self.chunk_start + self.lanes)).collect();
        let mut traffic = net.traffic();
        for h in 0..n {
            for r in 0..positions.min(n) {
                if r == h {
                    continue;
                }
                let mut frame = net.frame_buffer(pack.len() * mf as usize);
                for (lane, &c) in pack.iter().enumerate() {
                    frame.write_uint(lane * mf as usize, mf, self.codewords[h][c][r] as u64);
                }
                traffic.send(h, r, frame);
            }
            // Own position held locally.
            if h < positions {
                for &c in &pack {
                    self.symbols[h][h][c] = self.codewords[h][c][h];
                }
            }
        }
        let delivery = net.exchange(traffic);
        for r in 0..positions.min(n) {
            for (h, frame) in delivery.inbox_of(r) {
                for (lane, &c) in pack.iter().enumerate() {
                    if frame.len() >= (lane + 1) * mf as usize {
                        self.symbols[r][h][c] = frame.read_uint(lane * mf as usize, mf) as u16;
                    }
                }
            }
        }
        net.reclaim(delivery);
        self.chunk_start += pack.len();
        if self.chunk_start >= self.chunks {
            return Ok(Some(std::mem::take(&mut self.symbols)));
        }
        Ok(None)
    }
}

/// Builds the query-fetch routing instance: `wanted[v]` = set of
/// `(chunk, position)` pairs node `v` must learn for **all** holders.
///
/// Messages are emitted in ascending `(position, chunk)` order. The
/// pre-session code collected them by iterating a `HashMap`, whose
/// per-process random iteration order leaked into the unit engine's greedy
/// stage coloring — making the LDC-fetch protocols' round counts vary
/// *across processes* for identical seeds. The `BTreeMap` pins the
/// canonical order (and with it cross-process reproducibility); the
/// no-hashmap-iteration lint keeps it that way.
fn fetch_instance(
    n: usize,
    plan: &LdcPlan,
    symbols: &[Vec<Vec<u16>>],
    wanted: &[Vec<(usize, usize)>],
) -> RoutingInstance {
    let mf = plan.mf as usize;
    // targets_of[(position r, chunk c)] -> target nodes.
    let mut targets_of: std::collections::BTreeMap<(usize, usize), Vec<usize>> =
        std::collections::BTreeMap::new();
    for (v, pairs) in wanted.iter().enumerate() {
        for &(c, r) in pairs {
            targets_of.entry((r, c)).or_default().push(v);
        }
    }
    let mut messages = Vec::with_capacity(targets_of.len());
    for ((r, c), mut targets) in targets_of {
        targets.sort_unstable();
        targets.dedup();
        let mut payload = BitVec::zeros(n * mf);
        for h in 0..n {
            payload.write_uint(h * mf, plan.mf, symbols[r][h][c] as u64);
        }
        messages.push(SuperMessage {
            src: r,
            slot: c,
            payload,
            targets,
        });
    }
    RoutingInstance {
        n,
        payload_bits: n * mf,
        messages,
    }
}

/// Extracts per-node fetched answers from a finished query-fetch routing:
/// `answers[v]` maps `(chunk, position)` to the `n·mf`-bit holder-indexed
/// symbol bundle.
fn collect_answers(
    n: usize,
    routed: &RoutingOutput,
    wanted: &[Vec<(usize, usize)>],
) -> Vec<QueryAnswers> {
    let mut answers: Vec<QueryAnswers> = vec![HashMap::new(); n];
    for (v, pairs) in wanted.iter().enumerate() {
        for &(c, r) in pairs {
            if let Some(p) = routed.delivered[v].get(&(r, c)) {
                answers[v].insert((c, r), p.clone());
            }
        }
    }
    answers
}

/// Locally decodes one symbol: gathers the per-line answers for `z` from the
/// fetched bundles (selecting holder `h`'s lane) and runs `LDCDecode`.
fn local_decode_symbol(
    plan: &LdcPlan,
    shared: &SharedRandomness,
    answers: &QueryAnswers,
    chunk: usize,
    z: usize,
    holder: usize,
) -> Option<u16> {
    let mf = plan.mf as usize;
    let qs = plan.ldc.decode_indices(z, shared);
    let vals: Vec<u16> = qs
        .iter()
        .map(|&r| {
            answers
                .get(&(chunk, r))
                .filter(|p| p.len() >= (holder + 1) * mf)
                .map_or(0, |p| p.read_uint(holder * mf, plan.mf) as u16)
        })
        .collect();
    plan.ldc.local_decode(z, &vals, shared).ok()
}

// ---------------------------------------------------------------------------
// Take I
// ---------------------------------------------------------------------------

/// "Take I" (Section 3): LDC over the raw outgoing rows, `O(q)` rounds.
#[derive(Debug, Clone)]
pub struct AdaptiveTakeOne {
    /// Router configuration for the query fetch.
    pub router: RouterConfig,
    /// LDC amplification lines.
    pub lines: usize,
    /// Guaranteed per-line adversarial error capacity.
    pub line_capacity: usize,
    /// Seed for node `v1`'s randomness.
    pub seed: u64,
}

impl Default for AdaptiveTakeOne {
    fn default() -> Self {
        Self {
            router: RouterConfig::default(),
            lines: 3,
            line_capacity: 2,
            seed: 0x5eed2,
        }
    }
}

/// Execution phases of Take I.
enum Take1Phase {
    /// Scattering the row codewords (before R3 exists).
    Scatter(ScatterSession),
    /// Broadcasting R3 (now the adversary may see it).
    BroadcastR3 {
        symbols: Vec<Vec<Vec<u16>>>,
        bcast: BroadcastSession,
    },
    /// Fetching the query answers through the resilient router.
    Fetch {
        r3_received: Vec<BitVec>,
        wanted: Vec<Vec<(usize, usize)>>,
        route: RouteSession<'static>,
    },
}

/// Take I as a state machine.
struct Take1Session<'a> {
    proto: &'a AdaptiveTakeOne,
    inst: &'a AllToAllInstance,
    n: usize,
    b: usize,
    plan: LdcPlan,
    phase: Take1Phase,
}

impl<'a> Take1Session<'a> {
    fn new(
        proto: &'a AdaptiveTakeOne,
        net: &Network,
        inst: &'a AllToAllInstance,
    ) -> Result<Self, CoreError> {
        let n = inst.n();
        if n != net.n() {
            return Err(CoreError::invalid("instance size != network size"));
        }
        let b = inst.b();
        let plan = LdcPlan::for_network(n, proto.lines, proto.line_capacity)?;
        if net.bandwidth() < plan.mf as usize {
            return Err(CoreError::infeasible("bandwidth below LDC symbol width"));
        }
        let row_bits = n * b;
        let chunks = row_bits.div_ceil(plan.cap_bits).max(1);

        // ---- Scatter codewords of every row (before R3 exists). ----
        let payloads: Vec<BitVec> = (0..n)
            .map(|u| {
                let mut p = inst.outgoing_concat(u);
                p.pad_to(chunks * plan.cap_bits);
                p
            })
            .collect();
        let scatter = ScatterSession::new(net, &plan, &payloads, chunks)?;
        Ok(Self {
            proto,
            inst,
            n,
            b,
            plan,
            phase: Take1Phase::Scatter(scatter),
        })
    }

    /// Rebuilds a session from a snapshot. Bypasses `new` so restores of
    /// post-scatter phases skip the (expensive, discarded) row re-encoding;
    /// the LDC plan itself is deterministic and re-derived.
    fn restore(
        proto: &'a AdaptiveTakeOne,
        net: &Network,
        inst: &'a AllToAllInstance,
        dec: &mut Dec<'_>,
    ) -> Result<Self, CoreError> {
        let n = inst.n();
        if n != net.n() {
            return Err(CoreError::invalid("instance size != network size"));
        }
        let b = inst.b();
        let plan = LdcPlan::for_network(n, proto.lines, proto.line_capacity)?;
        if net.bandwidth() < plan.mf as usize {
            return Err(CoreError::infeasible("bandwidth below LDC symbol width"));
        }
        let chunks = (n * b).div_ceil(plan.cap_bits).max(1);
        let phase = match dec.get_u8().map_err(CoreError::from)? {
            0 => Take1Phase::Scatter(ScatterSession::restore(net, &plan, chunks, dec)?),
            1 => Take1Phase::BroadcastR3 {
                symbols: restore_symbols(n, chunks, dec)?,
                bcast: BroadcastSession::restore(net, &proto.router, dec)?,
            },
            2 => Take1Phase::Fetch {
                r3_received: restore_bits_table(n, dec)?,
                wanted: restore_wanted(n, dec)?,
                route: RouteSession::restore(net, &proto.router, None, dec)?,
            },
            _ => return Err(CoreError::invalid("unknown take1 phase tag")),
        };
        Ok(Self {
            proto,
            inst,
            n,
            b,
            plan,
            phase,
        })
    }

    /// ---- Local decoding. ----
    fn finish(&self, r3_received: &[BitVec], answers: &[QueryAnswers]) -> AllToAllOutput {
        let (n, b) = (self.n, self.b);
        let plan = &self.plan;
        let mut out = AllToAllOutput::empty(n);
        for v in 0..n {
            let shared = SharedRandomness::from_bits(&r3_received[v]);
            // Decode each needed symbol once per holder.
            let mut decoded: HashMap<(usize, usize, usize), Option<u16>> = HashMap::new();
            for u in 0..n {
                if u == v {
                    out.set(v, u, self.inst.message(u, u).clone());
                    continue;
                }
                let mut bits = BitVec::zeros(b);
                let mut ok = true;
                for t in 0..b {
                    let (c, z, inner) = plan.locate(v * b + t);
                    let sym = *decoded.entry((u, c, z)).or_insert_with(|| {
                        local_decode_symbol(plan, &shared, &answers[v], c, z, u)
                    });
                    match sym {
                        Some(s) => bits.set(t, s >> inner & 1 == 1),
                        None => ok = false,
                    }
                }
                if ok {
                    out.set(v, u, bits);
                }
            }
        }
        out
    }
}

impl ProtocolSession for Take1Session<'_> {
    fn step(&mut self, net: &mut Network) -> Result<Step, CoreError> {
        let (n, b) = (self.n, self.b);
        match &mut self.phase {
            Take1Phase::Scatter(scatter) => {
                let Some(symbols) = scatter.step(net)? else {
                    return Ok(Step::Running);
                };
                // ---- Broadcast R3 (now the adversary may see it). ----
                let mut v1_rng = ChaCha8Rng::seed_from_u64(self.proto.seed);
                let r3_bits = SharedRandomness::generate(&mut v1_rng);
                net.publish("adaptive1/R3", r3_bits.clone());
                let bcast = BroadcastSession::new(net, 0, &r3_bits, &self.proto.router)?;
                self.phase = Take1Phase::BroadcastR3 { symbols, bcast };
                Ok(Step::Running)
            }
            Take1Phase::BroadcastR3 { symbols, bcast } => {
                let Some(r3_received) = bcast.step(net)? else {
                    return Ok(Step::Running);
                };
                // ---- Query sets: v needs bits [v·b, (v+1)·b) of every
                // row. ----
                let plan = &self.plan;
                let mut wanted: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
                for v in 0..n {
                    let shared = SharedRandomness::from_bits(&r3_received[v]);
                    let mut pairs = Vec::new();
                    for t in 0..b {
                        let (c, z, _) = plan.locate(v * b + t);
                        if !pairs.contains(&(c, z)) {
                            pairs.push((c, z));
                        }
                    }
                    for &(c, z) in &pairs {
                        for r in plan.ldc.decode_indices(z, &shared) {
                            if !wanted[v].contains(&(c, r)) {
                                wanted[v].push((c, r));
                            }
                        }
                    }
                }
                let instance = fetch_instance(n, plan, symbols, &wanted);
                let route = RouteSession::new(net, instance, &self.proto.router)?;
                self.phase = Take1Phase::Fetch {
                    r3_received,
                    wanted,
                    route,
                };
                Ok(Step::Running)
            }
            Take1Phase::Fetch {
                r3_received,
                wanted,
                route,
            } => {
                let Some(routed) = route.step(net)? else {
                    return Ok(Step::Running);
                };
                let answers = collect_answers(n, &routed, wanted);
                let r3_received = std::mem::take(r3_received);
                Ok(Step::Done(self.finish(&r3_received, &answers)))
            }
        }
    }

    fn snapshot(&mut self, net: &mut Network, enc: &mut Enc) -> Result<(), CoreError> {
        match &mut self.phase {
            Take1Phase::Scatter(scatter) => {
                enc.put_u8(0);
                scatter.snapshot(enc);
                Ok(())
            }
            Take1Phase::BroadcastR3 { symbols, bcast } => {
                enc.put_u8(1);
                snapshot_symbols(symbols, enc);
                bcast.snapshot(net, enc)
            }
            Take1Phase::Fetch {
                r3_received,
                wanted,
                route,
            } => {
                enc.put_u8(2);
                snapshot_bits_table(r3_received, enc);
                snapshot_wanted(wanted, enc);
                route.snapshot(net, enc)
            }
        }
    }
}

impl AllToAllProtocol for AdaptiveTakeOne {
    fn name(&self) -> Cow<'static, str> {
        Cow::Owned(format!(
            "adaptive-take1(lines={},cap={})",
            self.lines, self.line_capacity
        ))
    }

    fn session<'a>(
        &'a self,
        net: &Network,
        inst: &'a AllToAllInstance,
    ) -> Result<Box<dyn ProtocolSession + 'a>, CoreError> {
        Ok(Box::new(Take1Session::new(self, net, inst)?))
    }

    fn restore_session<'a>(
        &'a self,
        net: &Network,
        inst: &'a AllToAllInstance,
        dec: &mut Dec<'_>,
    ) -> Result<Box<dyn ProtocolSession + 'a>, CoreError> {
        Ok(Box::new(Take1Session::restore(self, net, inst, dec)?))
    }
}

// ---------------------------------------------------------------------------
// Take II
// ---------------------------------------------------------------------------

/// The full adaptive compiler (Theorem 1.3, "Take II").
#[derive(Debug, Clone)]
pub struct AdaptiveAllToAll {
    /// Router configuration for all routed waves.
    pub router: RouterConfig,
    /// `1/α` — the size of each random part `P_j` (must divide `n`).
    pub p_size: usize,
    /// Sparse-recovery capacity per `(P_j, v)` sketch (Lemma 5.6 gives
    /// `O(log n)` w.h.p.; the default suits workspace scale).
    pub sketch_capacity: usize,
    /// LDC amplification lines.
    pub lines: usize,
    /// Guaranteed per-line adversarial error capacity.
    pub line_capacity: usize,
    /// `true` = fetch sketches through the LDC storage (the paper);
    /// `false` = pull sketches directly through the router (ablation).
    pub query_via_ldc: bool,
    /// Seed for node `v1`'s randomness.
    pub seed: u64,
}

impl Default for AdaptiveAllToAll {
    fn default() -> Self {
        Self {
            router: RouterConfig::default(),
            p_size: 4,
            sketch_capacity: 4,
            lines: 3,
            line_capacity: 2,
            query_via_ldc: true,
            seed: 0x5eed3,
        }
    }
}

impl AdaptiveAllToAll {
    fn sketch_key(n: usize, b: usize, u: usize, v: usize, m: &BitVec) -> u64 {
        let id = (u * n + v) as u64;
        (id << b) | m.read_uint(0, b as u32)
    }

    fn key_bits(n: usize, b: usize) -> u32 {
        2 * bits_for(n) + b as u32
    }

    /// The random partition `P` of Lemma 5.6: order nodes by a Θ(log n)-wise
    /// independent hash (ties by id), cut into `n / p_size` consecutive
    /// parts, sort each part ascending.
    fn partition(shared: &SharedRandomness, n: usize, p_size: usize) -> Vec<Vec<usize>> {
        let family = KWiseHashFamily::new(16, (4 * n) as u64);
        let f = family.sample(&mut shared.rng("partition"));
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&u| (f.hash(u as u64), u));
        order
            .chunks(p_size)
            .map(|part| {
                let mut part: Vec<usize> = part.to_vec();
                part.sort_unstable();
                part
            })
            .collect()
    }
}

/// State shared by every post-wave-A phase of Take II.
struct Take2Common {
    /// Step I's directly received messages.
    received: AllToAllOutput,
    /// R2 as decoded by each node (sketch hashes).
    r2_received: Vec<BitVec>,
    /// The random partition `P` (Lemma 5.6).
    parts: Vec<Vec<usize>>,
}

/// Serializes the random partition `P`.
fn snapshot_parts(parts: &[Vec<usize>], enc: &mut Enc) {
    enc.put_seq(parts, |e, part| e.put_seq(part, |e, &u| e.put_usize(u)));
}

/// Restores `P`, enforcing its invariant: `n / p_size` parts of `p_size`
/// ascending node ids that together cover `0..n` exactly once.
fn restore_parts(n: usize, p_size: usize, dec: &mut Dec<'_>) -> Result<Vec<Vec<usize>>, CoreError> {
    let parts = dec
        .get_seq(1, |d| d.get_seq(1, Dec::get_usize))
        .map_err(CoreError::from)?;
    let mut seen = vec![false; n];
    if parts.len() != n / p_size {
        return Err(CoreError::invalid("snapshot partition count mismatch"));
    }
    for part in &parts {
        if part.len() != p_size {
            return Err(CoreError::invalid("snapshot partition part size mismatch"));
        }
        for &u in part {
            if u >= n || std::mem::replace(&mut seen[u], true) {
                return Err(CoreError::invalid(
                    "snapshot partition is not a partition of V",
                ));
            }
        }
    }
    Ok(parts)
}

impl Take2Common {
    fn snapshot(&self, enc: &mut Enc) {
        self.received.snapshot(enc);
        snapshot_bits_table(&self.r2_received, enc);
        snapshot_parts(&self.parts, enc);
    }

    fn restore(n: usize, p_size: usize, dec: &mut Dec<'_>) -> Result<Self, CoreError> {
        let received = AllToAllOutput::restore(dec).map_err(CoreError::from)?;
        if received.n() != n {
            return Err(CoreError::invalid("snapshot received-table size mismatch"));
        }
        Ok(Self {
            received,
            r2_received: restore_bits_table(n, dec)?,
            parts: restore_parts(n, p_size, dec)?,
        })
    }
}

/// Execution phases of Take II.
enum Take2Phase<'a> {
    /// Left behind while a step owns the real phase; observed only if a
    /// failed session is stepped again.
    Poisoned,
    /// Step I: direct exchange.
    Naive(NaiveSession<'a>),
    /// Broadcasting R1 (partition randomness).
    BroadcastR1 {
        received: AllToAllOutput,
        r2_bits: BitVec,
        bcast: BroadcastSession,
    },
    /// Broadcasting R2 (sketch hashes); `r1_first` is node 0's decoded R1,
    /// which drives the shared partition schedule.
    BroadcastR2 {
        received: AllToAllOutput,
        r1_first: BitVec,
        bcast: BroadcastSession,
    },
    /// Step II(a): wave A — P_j[i] learns M(P_j, S_i).
    WaveA {
        received: AllToAllOutput,
        r2_received: Vec<BitVec>,
        parts: Vec<Vec<usize>>,
        route: RouteSession<'static>,
    },
    /// Step III, paper path: scattering the LDC-encoded sketch pieces.
    Scatter {
        common: Take2Common,
        plan: LdcPlan,
        scatter: ScatterSession,
    },
    /// Step III, paper path: broadcasting R3 (after the scatter — rushing
    /// adversary ordering).
    BroadcastR3 {
        common: Take2Common,
        plan: LdcPlan,
        symbols: Vec<Vec<Vec<u16>>>,
        bcast: BroadcastSession,
    },
    /// Step III, paper path: fetching the query answers.
    Fetch {
        common: Take2Common,
        plan: LdcPlan,
        r3_received: Vec<BitVec>,
        wanted: Vec<Vec<(usize, usize)>>,
        route: RouteSession<'static>,
    },
    /// Step III, ablation path: direct resilient sketch pull.
    Pull {
        common: Take2Common,
        route: RouteSession<'static>,
    },
}

/// Take II as a state machine.
struct Take2Session<'a> {
    proto: &'a AdaptiveAllToAll,
    inst: &'a AllToAllInstance,
    n: usize,
    b: usize,
    /// `|S_i| = αn`; also the number of P-groups.
    w: usize,
    /// Number of S segments.
    s_count: usize,
    p_count: usize,
    shape: SketchShape,
    /// Sketch wire width in bits.
    t: usize,
    /// Node v1's randomness source: R1, R2 are drawn at construction; R3
    /// later, *after* the scatter — so the generator must persist.
    v1_rng: ChaCha8Rng,
    phase: Take2Phase<'a>,
}

impl<'a> Take2Session<'a> {
    fn new(
        proto: &'a AdaptiveAllToAll,
        net: &Network,
        inst: &'a AllToAllInstance,
    ) -> Result<Self, CoreError> {
        let n = inst.n();
        if n != net.n() {
            return Err(CoreError::invalid("instance size != network size"));
        }
        let b = inst.b();
        if b > 16 {
            return Err(CoreError::invalid("sketch keys support B ≤ 16 bits"));
        }
        let p_size = proto.p_size;
        if p_size < 2 || !n.is_multiple_of(p_size) {
            return Err(CoreError::invalid(format!(
                "p_size {p_size} must divide n = {n} (and be ≥ 2)"
            )));
        }
        let w = n / p_size;
        let key_bits = AdaptiveAllToAll::key_bits(n, b);
        let shape = SketchShape::for_capacity(proto.sketch_capacity, key_bits);
        Ok(Self {
            proto,
            inst,
            n,
            b,
            w,
            s_count: p_size,
            p_count: w,
            shape,
            t: shape.bit_len(),
            v1_rng: ChaCha8Rng::seed_from_u64(proto.seed),
            phase: Take2Phase::Naive(NaiveSession::new(net, inst)?),
        })
    }

    fn seg(&self, i: usize) -> std::ops::Range<usize> {
        (i * self.w)..((i + 1) * self.w)
    }

    /// Chunk count of the Step III scatter (paper path).
    fn ldc_chunks(&self, plan: &LdcPlan) -> usize {
        (self.w * self.t).div_ceil(plan.cap_bits).max(1)
    }

    /// Rebuilds a session from a snapshot: geometry re-derives through
    /// `new`, then the persisted generator position and phase overlay the
    /// fresh state.
    fn restore(
        proto: &'a AdaptiveAllToAll,
        net: &Network,
        inst: &'a AllToAllInstance,
        dec: &mut Dec<'_>,
    ) -> Result<Self, CoreError> {
        let mut s = Self::new(proto, net, inst)?;
        let n = s.n;
        s.v1_rng = restore_rng(dec).map_err(CoreError::from)?;
        let plan_for = || LdcPlan::for_network(n, proto.lines, proto.line_capacity);
        s.phase = match dec.get_u8().map_err(CoreError::from)? {
            0 => Take2Phase::Naive(NaiveSession::restore(net, inst, dec)?),
            1 => {
                let received = AllToAllOutput::restore(dec).map_err(CoreError::from)?;
                if received.n() != n {
                    return Err(CoreError::invalid("snapshot received-table size mismatch"));
                }
                Take2Phase::BroadcastR1 {
                    received,
                    r2_bits: dec.get_bits().map_err(CoreError::from)?,
                    bcast: BroadcastSession::restore(net, &proto.router, dec)?,
                }
            }
            2 => {
                let received = AllToAllOutput::restore(dec).map_err(CoreError::from)?;
                if received.n() != n {
                    return Err(CoreError::invalid("snapshot received-table size mismatch"));
                }
                Take2Phase::BroadcastR2 {
                    received,
                    r1_first: dec.get_bits().map_err(CoreError::from)?,
                    bcast: BroadcastSession::restore(net, &proto.router, dec)?,
                }
            }
            3 => {
                let received = AllToAllOutput::restore(dec).map_err(CoreError::from)?;
                if received.n() != n {
                    return Err(CoreError::invalid("snapshot received-table size mismatch"));
                }
                Take2Phase::WaveA {
                    received,
                    r2_received: restore_bits_table(n, dec)?,
                    parts: restore_parts(n, proto.p_size, dec)?,
                    route: RouteSession::restore(net, &proto.router, None, dec)?,
                }
            }
            4 => {
                let common = Take2Common::restore(n, proto.p_size, dec)?;
                let plan = plan_for()?;
                let chunks = s.ldc_chunks(&plan);
                Take2Phase::Scatter {
                    common,
                    scatter: ScatterSession::restore(net, &plan, chunks, dec)?,
                    plan,
                }
            }
            5 => {
                let common = Take2Common::restore(n, proto.p_size, dec)?;
                let plan = plan_for()?;
                let chunks = s.ldc_chunks(&plan);
                Take2Phase::BroadcastR3 {
                    common,
                    symbols: restore_symbols(n, chunks, dec)?,
                    bcast: BroadcastSession::restore(net, &proto.router, dec)?,
                    plan,
                }
            }
            6 => Take2Phase::Fetch {
                common: Take2Common::restore(n, proto.p_size, dec)?,
                plan: plan_for()?,
                r3_received: restore_bits_table(n, dec)?,
                wanted: restore_wanted(n, dec)?,
                route: RouteSession::restore(net, &proto.router, None, dec)?,
            },
            7 => Take2Phase::Pull {
                common: Take2Common::restore(n, proto.p_size, dec)?,
                route: RouteSession::restore(net, &proto.router, None, dec)?,
            },
            _ => return Err(CoreError::invalid("unknown take2 phase tag")),
        };
        Ok(s)
    }

    /// ---- Step II(b): build sketches Sk(P_j, {x}) at P_j[i]. ----
    /// `pieces[h] = Sk(P_j, S_i)` for the `(j, i)` with `h = P_j[i]`.
    fn build_pieces(
        &self,
        parts: &[Vec<usize>],
        r2_received: &[BitVec],
        routed_a: &RoutingOutput,
    ) -> Result<Vec<BitVec>, CoreError> {
        let (n, b, t) = (self.n, self.b, self.t);
        let mut pieces: Vec<BitVec> = vec![BitVec::new(); n];
        for part in parts.iter() {
            for (i, &h) in part.iter().enumerate() {
                let shared2 = SharedRandomness::from_bits(&r2_received[h]);
                let mut piece = BitVec::new();
                for (off, x) in self.seg(i).enumerate() {
                    let mut sk = RecoverySketch::new(self.shape, &shared2);
                    for &u in part {
                        let Some(pay) = routed_a.delivered[h].get(&(u, i)) else {
                            continue;
                        };
                        if pay.len() < (off + 1) * b {
                            continue;
                        }
                        let m = pay.slice(off * b, (off + 1) * b);
                        let key = AdaptiveAllToAll::sketch_key(n, b, u, x, &m);
                        sk.add(key, 1)
                            .map_err(|e| CoreError::invalid(format!("sketch add: {e}")))?;
                    }
                    piece.extend_bits(
                        &sk.to_bits()
                            .map_err(|e| CoreError::invalid(format!("sketch wire: {e}")))?,
                    );
                }
                debug_assert_eq!(piece.len(), self.w * t);
                pieces[h] = piece;
            }
        }
        Ok(pieces)
    }

    /// ---- Step IV: local correction (Lemma 2.4 / Lemma B.1). ----
    fn finish(
        &self,
        common: &Take2Common,
        sketch_bits: Vec<Vec<Option<BitVec>>>,
    ) -> AllToAllOutput {
        let (n, b) = (self.n, self.b);
        let mut out = AllToAllOutput::empty(n);
        for v in 0..n {
            // Start from the directly received messages.
            let mut current: Vec<BitVec> = (0..n)
                .map(|u| {
                    common
                        .received
                        .received(v, u)
                        .cloned()
                        .unwrap_or_else(|| BitVec::zeros(b))
                })
                .collect();
            let shared2 = SharedRandomness::from_bits(&common.r2_received[v]);
            for j in 0..self.p_count {
                let Some(bits) = &sketch_bits[v][j] else {
                    continue;
                };
                let Ok(mut sk) = RecoverySketch::from_bits(self.shape, bits, &shared2) else {
                    continue;
                };
                for &u in &common.parts[j] {
                    let key = AdaptiveAllToAll::sketch_key(n, b, u, v, &current[u]);
                    if sk.add(key, -1).is_err() {
                        continue;
                    }
                }
                let Some(items) = sk.recover() else {
                    continue;
                };
                for (key, freq) in items {
                    if freq != 1 {
                        continue; // -1 entries are the corrupted receptions
                    }
                    let id = key >> b;
                    let u = (id / n as u64) as usize;
                    let tgt = (id % n as u64) as usize;
                    if tgt != v || u >= n || !common.parts[j].contains(&u) {
                        continue;
                    }
                    let mut m = BitVec::zeros(b);
                    if b > 0 {
                        m.write_uint(0, b as u32, key & ((1u64 << b) - 1));
                    }
                    current[u] = m;
                }
            }
            for u in 0..n {
                out.set(
                    v,
                    u,
                    if u == v {
                        self.inst.message(u, u).clone()
                    } else {
                        current[u].clone()
                    },
                );
            }
        }
        out
    }
}

impl ProtocolSession for Take2Session<'_> {
    fn step(&mut self, net: &mut Network) -> Result<Step, CoreError> {
        let (n, b, w, t) = (self.n, self.b, self.w, self.t);
        // Own the phase for the duration of the step: state moves forward
        // without placeholder values. An error mid-step leaves the session
        // poisoned — stepping a failed session is a caller bug.
        let phase = std::mem::replace(&mut self.phase, Take2Phase::Poisoned);
        match phase {
            Take2Phase::Poisoned => Err(CoreError::invalid(
                "session stepped after a failed or consumed step",
            )),
            Take2Phase::Naive(mut naive) => {
                let received = match naive.step(net)? {
                    Step::Running => {
                        self.phase = Take2Phase::Naive(naive);
                        return Ok(Step::Running);
                    }
                    Step::Done(out) => out,
                };
                // ---- Broadcast R1 (partition) and R2 (sketch hashes). ----
                let r1_bits = SharedRandomness::generate(&mut self.v1_rng);
                let r2_bits = SharedRandomness::generate(&mut self.v1_rng);
                net.publish("adaptive2/R1", r1_bits.clone());
                net.publish("adaptive2/R2", r2_bits.clone());
                let bcast = BroadcastSession::new(net, 0, &r1_bits, &self.proto.router)?;
                self.phase = Take2Phase::BroadcastR1 {
                    received,
                    r2_bits,
                    bcast,
                };
                Ok(Step::Running)
            }
            Take2Phase::BroadcastR1 {
                received,
                r2_bits,
                mut bcast,
            } => {
                let Some(r1_received) = bcast.step(net)? else {
                    self.phase = Take2Phase::BroadcastR1 {
                        received,
                        r2_bits,
                        bcast,
                    };
                    return Ok(Step::Running);
                };
                let bcast = BroadcastSession::new(net, 0, &r2_bits, &self.proto.router)?;
                self.phase = Take2Phase::BroadcastR2 {
                    received,
                    r1_first: r1_received.into_iter().next().expect("n >= 2 nodes"),
                    bcast,
                };
                Ok(Step::Running)
            }
            Take2Phase::BroadcastR2 {
                received,
                r1_first,
                mut bcast,
            } => {
                let Some(r2_received) = bcast.step(net)? else {
                    self.phase = Take2Phase::BroadcastR2 {
                        received,
                        r1_first,
                        bcast,
                    };
                    return Ok(Step::Running);
                };
                // All honest nodes derive the same partition within the
                // routing margin; the reference copy drives the shared
                // schedule.
                let shared1 = SharedRandomness::from_bits(&r1_first);
                let parts = AdaptiveAllToAll::partition(&shared1, n, self.proto.p_size);
                debug_assert_eq!(parts.len(), self.p_count);
                let mut group_of = vec![0usize; n]; // P-group of each node
                for (j, part) in parts.iter().enumerate() {
                    for &u in part.iter() {
                        group_of[u] = j;
                    }
                }
                // ---- Step II(a): wave A — P_j[i] learns M(P_j, S_i). ----
                let inst = self.inst;
                let wave_a = RoutingInstance {
                    n,
                    payload_bits: w * b,
                    messages: (0..n)
                        .flat_map(|v| (0..self.s_count).map(move |i| (v, i)))
                        .map(|(v, i)| SuperMessage {
                            src: v,
                            slot: i,
                            payload: BitVec::concat(
                                ((i * w)..((i + 1) * w)).map(|x| inst.message(v, x)),
                            ),
                            targets: vec![parts[group_of[v]][i]],
                        })
                        .collect(),
                };
                let route = RouteSession::new(net, wave_a, &self.proto.router)?;
                self.phase = Take2Phase::WaveA {
                    received,
                    r2_received,
                    parts,
                    route,
                };
                Ok(Step::Running)
            }
            Take2Phase::WaveA {
                received,
                r2_received,
                parts,
                mut route,
            } => {
                let Some(routed_a) = route.step(net)? else {
                    self.phase = Take2Phase::WaveA {
                        received,
                        r2_received,
                        parts,
                        route,
                    };
                    return Ok(Step::Running);
                };
                let pieces = self.build_pieces(&parts, &r2_received, &routed_a)?;
                let common = Take2Common {
                    received,
                    r2_received,
                    parts,
                };
                // ---- Step III: every v learns Sk(P_j, {v}) for all j. ----
                if self.proto.query_via_ldc {
                    let plan = LdcPlan::for_network(n, self.proto.lines, self.proto.line_capacity)?;
                    let chunks = (w * t).div_ceil(plan.cap_bits).max(1);
                    let padded: Vec<BitVec> = pieces
                        .iter()
                        .map(|p| {
                            let mut p = p.clone();
                            p.pad_to(chunks * plan.cap_bits);
                            p
                        })
                        .collect();
                    let scatter = ScatterSession::new(net, &plan, &padded, chunks)?;
                    self.phase = Take2Phase::Scatter {
                        common,
                        plan,
                        scatter,
                    };
                } else {
                    // Ablation: direct resilient sketch pull (k = αn
                    // messages per node — outside the paper's LDC regime but
                    // feasible when αn ≈ 1/α).
                    let parts = &common.parts;
                    let pull = RoutingInstance {
                        n,
                        payload_bits: t,
                        messages: (0..self.p_count)
                            .flat_map(|j| (0..self.s_count).map(move |i| (j, i)))
                            .flat_map(|(j, i)| {
                                let h = parts[j][i];
                                ((i * w)..((i + 1) * w))
                                    .enumerate()
                                    .map(|(off, x)| SuperMessage {
                                        src: h,
                                        slot: j * w + off,
                                        payload: pieces[h].slice(off * t, (off + 1) * t),
                                        targets: vec![x],
                                    })
                                    .collect::<Vec<_>>()
                            })
                            .collect(),
                    };
                    let route = RouteSession::new(net, pull, &self.proto.router)?;
                    self.phase = Take2Phase::Pull { common, route };
                }
                Ok(Step::Running)
            }
            Take2Phase::Scatter {
                common,
                plan,
                mut scatter,
            } => {
                let Some(symbols) = scatter.step(net)? else {
                    self.phase = Take2Phase::Scatter {
                        common,
                        plan,
                        scatter,
                    };
                    return Ok(Step::Running);
                };
                // R3 after the scatter (rushing adversary ordering).
                let r3_bits = SharedRandomness::generate(&mut self.v1_rng);
                net.publish("adaptive2/R3", r3_bits.clone());
                let bcast = BroadcastSession::new(net, 0, &r3_bits, &self.proto.router)?;
                self.phase = Take2Phase::BroadcastR3 {
                    common,
                    plan,
                    symbols,
                    bcast,
                };
                Ok(Step::Running)
            }
            Take2Phase::BroadcastR3 {
                common,
                plan,
                symbols,
                mut bcast,
            } => {
                let Some(r3_received) = bcast.step(net)? else {
                    self.phase = Take2Phase::BroadcastR3 {
                        common,
                        plan,
                        symbols,
                        bcast,
                    };
                    return Ok(Step::Running);
                };
                // Positions of v's sketch inside any piece (Eq. (7)): bits
                // [pos_v·t, (pos_v+1)·t) — identical across j.
                let mut wanted: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
                for v in 0..n {
                    let shared3 = SharedRandomness::from_bits(&r3_received[v]);
                    let pos_v = v - (v / w) * w;
                    let mut pairs = Vec::new();
                    for bit in pos_v * t..(pos_v + 1) * t {
                        let (c, z, _) = plan.locate(bit);
                        if !pairs.contains(&(c, z)) {
                            pairs.push((c, z));
                        }
                    }
                    for &(c, z) in &pairs {
                        for r in plan.ldc.decode_indices(z, &shared3) {
                            if !wanted[v].contains(&(c, r)) {
                                wanted[v].push((c, r));
                            }
                        }
                    }
                }
                let instance = fetch_instance(n, &plan, &symbols, &wanted);
                let route = RouteSession::new(net, instance, &self.proto.router)?;
                self.phase = Take2Phase::Fetch {
                    common,
                    plan,
                    r3_received,
                    wanted,
                    route,
                };
                Ok(Step::Running)
            }
            Take2Phase::Fetch {
                common,
                plan,
                r3_received,
                wanted,
                mut route,
            } => {
                let Some(routed) = route.step(net)? else {
                    self.phase = Take2Phase::Fetch {
                        common,
                        plan,
                        r3_received,
                        wanted,
                        route,
                    };
                    return Ok(Step::Running);
                };
                let answers = collect_answers(n, &routed, &wanted);
                // Decode sketch_bits[v][j] = the t bits of Sk(P_j, {v}).
                let mut sketch_bits: Vec<Vec<Option<BitVec>>> = vec![vec![None; self.p_count]; n];
                for v in 0..n {
                    let shared3 = SharedRandomness::from_bits(&r3_received[v]);
                    let pos_v = v - (v / w) * w;
                    for j in 0..self.p_count {
                        let holder = common.parts[j][v / w];
                        let mut bits = BitVec::zeros(t);
                        let mut ok = true;
                        let mut cache: HashMap<(usize, usize), Option<u16>> = HashMap::new();
                        for (offset, bit) in (pos_v * t..(pos_v + 1) * t).enumerate() {
                            let (c, z, inner) = plan.locate(bit);
                            let sym = *cache.entry((c, z)).or_insert_with(|| {
                                local_decode_symbol(&plan, &shared3, &answers[v], c, z, holder)
                            });
                            match sym {
                                Some(s) => bits.set(offset, s >> inner & 1 == 1),
                                None => {
                                    ok = false;
                                    break;
                                }
                            }
                        }
                        if ok {
                            sketch_bits[v][j] = Some(bits);
                        }
                    }
                }
                Ok(Step::Done(self.finish(&common, sketch_bits)))
            }
            Take2Phase::Pull { common, mut route } => {
                let Some(routed) = route.step(net)? else {
                    self.phase = Take2Phase::Pull { common, route };
                    return Ok(Step::Running);
                };
                let mut sketch_bits: Vec<Vec<Option<BitVec>>> = vec![vec![None; self.p_count]; n];
                for v in 0..n {
                    for j in 0..self.p_count {
                        let h = common.parts[j][v / w];
                        let off = v - (v / w) * w;
                        sketch_bits[v][j] = routed.delivered[v].get(&(h, j * w + off)).cloned();
                    }
                }
                Ok(Step::Done(self.finish(&common, sketch_bits)))
            }
        }
    }

    fn snapshot(&mut self, net: &mut Network, enc: &mut Enc) -> Result<(), CoreError> {
        snapshot_rng(&self.v1_rng, enc);
        match &mut self.phase {
            Take2Phase::Poisoned => Err(CoreError::invalid(
                "cannot snapshot a failed or consumed session",
            )),
            Take2Phase::Naive(naive) => {
                enc.put_u8(0);
                ProtocolSession::snapshot(naive, net, enc)
            }
            Take2Phase::BroadcastR1 {
                received,
                r2_bits,
                bcast,
            } => {
                enc.put_u8(1);
                received.snapshot(enc);
                enc.put_bits(r2_bits);
                bcast.snapshot(net, enc)
            }
            Take2Phase::BroadcastR2 {
                received,
                r1_first,
                bcast,
            } => {
                enc.put_u8(2);
                received.snapshot(enc);
                enc.put_bits(r1_first);
                bcast.snapshot(net, enc)
            }
            Take2Phase::WaveA {
                received,
                r2_received,
                parts,
                route,
            } => {
                enc.put_u8(3);
                received.snapshot(enc);
                snapshot_bits_table(r2_received, enc);
                snapshot_parts(parts, enc);
                route.snapshot(net, enc)
            }
            Take2Phase::Scatter {
                common, scatter, ..
            } => {
                enc.put_u8(4);
                common.snapshot(enc);
                scatter.snapshot(enc);
                Ok(())
            }
            Take2Phase::BroadcastR3 {
                common,
                symbols,
                bcast,
                ..
            } => {
                enc.put_u8(5);
                common.snapshot(enc);
                snapshot_symbols(symbols, enc);
                bcast.snapshot(net, enc)
            }
            Take2Phase::Fetch {
                common,
                r3_received,
                wanted,
                route,
                ..
            } => {
                enc.put_u8(6);
                common.snapshot(enc);
                snapshot_bits_table(r3_received, enc);
                snapshot_wanted(wanted, enc);
                route.snapshot(net, enc)
            }
            Take2Phase::Pull { common, route } => {
                enc.put_u8(7);
                common.snapshot(enc);
                route.snapshot(net, enc)
            }
        }
    }
}

impl AllToAllProtocol for AdaptiveAllToAll {
    fn name(&self) -> Cow<'static, str> {
        Cow::Owned(format!(
            "adaptive-take2(p={},{})",
            self.p_size,
            if self.query_via_ldc { "ldc" } else { "direct" }
        ))
    }

    fn session<'a>(
        &'a self,
        net: &Network,
        inst: &'a AllToAllInstance,
    ) -> Result<Box<dyn ProtocolSession + 'a>, CoreError> {
        Ok(Box::new(Take2Session::new(self, net, inst)?))
    }

    fn restore_session<'a>(
        &'a self,
        net: &Network,
        inst: &'a AllToAllInstance,
        dec: &mut Dec<'_>,
    ) -> Result<Box<dyn ProtocolSession + 'a>, CoreError> {
        Ok(Box::new(Take2Session::restore(self, net, inst, dec)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdclique_netsim::Adversary;
    use rand::SeedableRng;

    #[test]
    fn take1_perfect_without_faults() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let inst = AllToAllInstance::random(16, 1, &mut rng);
        let mut net = Network::new(16, 9, 0.0, Adversary::none());
        let proto = AdaptiveTakeOne {
            line_capacity: 1, // GF(4) plane at n = 16
            ..Default::default()
        };
        let out = proto.run(&mut net, &inst).unwrap();
        assert_eq!(inst.count_errors(&out), 0);
    }

    #[test]
    fn take2_direct_pull_perfect_without_faults() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let inst = AllToAllInstance::random(16, 1, &mut rng);
        let mut net = Network::new(16, 9, 0.0, Adversary::none());
        let proto = AdaptiveAllToAll {
            query_via_ldc: false,
            ..Default::default()
        };
        let out = proto.run(&mut net, &inst).unwrap();
        assert_eq!(inst.count_errors(&out), 0);
    }

    #[test]
    fn take2_ldc_perfect_without_faults() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let inst = AllToAllInstance::random(16, 1, &mut rng);
        let mut net = Network::new(16, 9, 0.0, Adversary::none());
        let proto = AdaptiveAllToAll {
            line_capacity: 1, // GF(4) plane at n = 16
            ..Default::default()
        };
        let out = proto.run(&mut net, &inst).unwrap();
        assert_eq!(inst.count_errors(&out), 0);
    }

    #[test]
    fn take2_rejects_bad_p_size() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let inst = AllToAllInstance::random(16, 1, &mut rng);
        let mut net = Network::new(16, 9, 0.0, Adversary::none());
        let proto = AdaptiveAllToAll {
            p_size: 3,
            ..Default::default()
        };
        assert!(proto.run(&mut net, &inst).is_err());
    }
}
