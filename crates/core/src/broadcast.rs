//! Resilient broadcast (Corollary 4.8): one node delivers an `O(n)`-bit
//! string to everyone in `O(1)` rounds despite the α-BD adversary.

use crate::error::CoreError;
use crate::routing::{RouteSession, RouterConfig, RoutingInstance, SuperMessage};
use bdclique_bits::BitVec;
use bdclique_netsim::Network;
use bdclique_snapshot::{Dec, Enc};

/// A broadcast in flight: a [`RouteSession`] over the single multi-target
/// super-message of Corollary 4.8, steppable one `exchange` at a time.
pub struct BroadcastSession {
    src: usize,
    payload_len: usize,
    n: usize,
    route: RouteSession<'static>,
}

impl BroadcastSession {
    /// Builds the broadcast routing instance and its engine session. No
    /// rounds run until the first [`BroadcastSession::step`].
    ///
    /// # Errors
    ///
    /// Routing feasibility/validation errors ([`CoreError`]).
    pub fn new(
        net: &Network,
        src: usize,
        payload: &BitVec,
        cfg: &RouterConfig,
    ) -> Result<Self, CoreError> {
        let n = net.n();
        if src >= n {
            return Err(CoreError::invalid(format!("src {src} out of range")));
        }
        let instance = RoutingInstance {
            n,
            payload_bits: payload.len().max(1),
            messages: vec![SuperMessage {
                src,
                slot: 0,
                payload: payload.clone(),
                targets: (0..n).collect(),
            }],
        };
        Ok(Self {
            src,
            payload_len: payload.len(),
            n,
            route: RouteSession::new(net, instance, cfg)?,
        })
    }

    /// Advances at most one `exchange`; returns what each node decoded
    /// (`out[src]` is the original) once the broadcast completes.
    ///
    /// # Errors
    ///
    /// Propagates routing errors ([`CoreError`]).
    pub fn step(&mut self, net: &mut Network) -> Result<Option<Vec<BitVec>>, CoreError> {
        let Some(out) = self.route.step(net)? else {
            return Ok(None);
        };
        let mut result = Vec::with_capacity(self.n);
        for v in 0..self.n {
            let got = out.delivered[v]
                .get(&(self.src, 0))
                .cloned()
                .unwrap_or_else(|| BitVec::zeros(self.payload_len));
            result.push(got);
        }
        Ok(Some(result))
    }

    /// Serializes the broadcast state. The inner [`RouteSession`] is
    /// quiesced to a pack boundary first, so snapshots taken mid-pack in
    /// event-driven mode remain valid.
    pub(crate) fn snapshot(&mut self, net: &mut Network, enc: &mut Enc) -> Result<(), CoreError> {
        enc.put_usize(self.src);
        enc.put_usize(self.payload_len);
        enc.put_usize(self.n);
        self.route.snapshot(net, enc)
    }

    /// Rebuilds a broadcast session from a snapshot. Bypasses
    /// [`BroadcastSession::new`]: the payload lives inside the serialized
    /// routing instance, so the struct is assembled directly.
    pub(crate) fn restore(
        net: &Network,
        cfg: &RouterConfig,
        dec: &mut Dec<'_>,
    ) -> Result<Self, CoreError> {
        let src = dec.get_usize().map_err(CoreError::from)?;
        let payload_len = dec.get_usize().map_err(CoreError::from)?;
        let n = dec.get_usize().map_err(CoreError::from)?;
        if src >= n || n != net.n() {
            return Err(CoreError::invalid("broadcast snapshot shape mismatch"));
        }
        let route = RouteSession::restore(net, cfg, None, dec)?;
        Ok(Self {
            src,
            payload_len,
            n,
            route,
        })
    }
}

/// Broadcasts `payload` from `src` to every node.
///
/// Implemented exactly as the paper's Corollary 4.8: a single
/// super-message routing instance whose target list is `V`.
/// Returns what each node decoded (`out[src]` is the original).
///
/// # Errors
///
/// Routing feasibility/validation errors ([`CoreError`]).
pub fn broadcast(
    net: &mut Network,
    src: usize,
    payload: &BitVec,
    cfg: &RouterConfig,
) -> Result<Vec<BitVec>, CoreError> {
    let mut session = BroadcastSession::new(net, src, payload, cfg)?;
    loop {
        if let Some(out) = session.step(net)? {
            return Ok(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdclique_netsim::Adversary;

    #[test]
    fn fault_free_broadcast_reaches_everyone() {
        let mut net = Network::new(16, 9, 0.0, Adversary::none());
        let payload = BitVec::from_fn(40, |i| i % 3 == 1);
        let out = broadcast(&mut net, 0, &payload, &RouterConfig::default()).unwrap();
        for v in 0..16 {
            assert_eq!(out[v], payload, "node {v}");
        }
    }

    #[test]
    fn broadcast_from_last_node() {
        let mut net = Network::new(8, 9, 0.0, Adversary::none());
        let payload = BitVec::from_bools(&[true, false, true, true]);
        let out = broadcast(&mut net, 7, &payload, &RouterConfig::default()).unwrap();
        assert!(out.iter().all(|p| *p == payload));
    }

    #[test]
    fn rejects_bad_source() {
        let mut net = Network::new(4, 9, 0.0, Adversary::none());
        assert!(broadcast(&mut net, 9, &BitVec::zeros(4), &RouterConfig::default()).is_err());
    }
}
