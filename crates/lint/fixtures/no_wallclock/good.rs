// lint-fixture-as: crates/netsim/src/fixture.rs
//! The fixed shape: randomness from a seeded stream, time from the
//! simulator's virtual clock.

fn seeded(seed: u64) -> u64 {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    rng.next_u64()
}

fn virtual_time(net: &Network) -> u64 {
    net.rounds()
}
