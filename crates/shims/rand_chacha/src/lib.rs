//! Offline shim of the [`rand_chacha`](https://crates.io/crates/rand_chacha)
//! crate providing [`ChaCha8Rng`].
//!
//! This is a genuine ChaCha stream cipher keyed by a 32-byte seed (RFC 8439
//! layout, 8 rounds, 64-bit block counter), not a toy LCG — the workspace's
//! protocol experiments rely on the statistical quality of the stream. The
//! word stream is **not** guaranteed byte-identical to upstream
//! `rand_chacha` (no golden-value test in this workspace depends on that);
//! it is fully deterministic in the seed, which is what every caller needs.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;

/// A deterministic ChaCha-8 random number generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// 8 key words from the seed.
    key: [u32; 8],
    /// 64-bit block counter (words 12–13 of the state).
    counter: u64,
    /// Buffered keystream block.
    buf: [u32; BLOCK_WORDS],
    /// Next unread word index in `buf` (`BLOCK_WORDS` = exhausted).
    idx: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    const ROUNDS: usize = 8;

    fn refill(&mut self) {
        let mut state: [u32; BLOCK_WORDS] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let input = state;
        for _ in 0..(Self::ROUNDS / 2) {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buf = state;
        self.idx = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    /// The generator's resumable position: `(key, counter, idx)`, where
    /// `counter` is the *next* block to generate and `idx` the next unread
    /// word of the current block (`16` = block exhausted). Together with
    /// [`ChaCha8Rng::from_position`] this round-trips the exact stream
    /// position for checkpoint/resume — the buffered block itself is
    /// regenerated at restore, never stored.
    #[must_use]
    pub fn position(&self) -> ([u32; 8], u64, usize) {
        (self.key, self.counter, self.idx)
    }

    /// Rebuilds a generator at the position captured by
    /// [`ChaCha8Rng::position`]. The next word drawn is bit-identical to
    /// what the captured generator would have drawn next.
    #[must_use]
    pub fn from_position(key: [u32; 8], counter: u64, idx: usize) -> Self {
        assert!(idx <= BLOCK_WORDS, "idx out of range");
        let mut rng = Self {
            key,
            counter,
            buf: [0; BLOCK_WORDS],
            idx: BLOCK_WORDS,
        };
        if idx < BLOCK_WORDS {
            // Mid-block: regenerate the buffered block (refill consumes
            // `counter` and re-increments it back to the saved value),
            // then seek to the saved word.
            rng.counter = counter.wrapping_sub(1);
            rng.refill();
            rng.idx = idx;
            debug_assert_eq!(rng.counter, counter);
        }
        rng
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            *word = u32::from_le_bytes(seed[i * 4..i * 4 + 4].try_into().unwrap());
        }
        Self {
            key,
            counter: 0,
            buf: [0; BLOCK_WORDS],
            idx: BLOCK_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= BLOCK_WORDS {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_rfc8439_chacha_core_structure() {
        // The ChaCha20 quarter-round test vector from RFC 8439 §2.1.1.
        let mut state = [0u32; BLOCK_WORDS];
        state[0] = 0x1111_1111;
        state[1] = 0x0102_0304;
        state[2] = 0x9b8d_6f43;
        state[3] = 0x0123_4567;
        quarter_round(&mut state, 0, 1, 2, 3);
        assert_eq!(state[0], 0xea2a_92f4);
        assert_eq!(state[1], 0xcb1c_f8ce);
        assert_eq!(state[2], 0x4581_472e);
        assert_eq!(state[3], 0x5881_c4bb);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should be unrelated");
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn position_round_trips_mid_block_and_at_boundaries() {
        // Fresh (never pumped), mid-block, and exactly-exhausted positions.
        for draws in [0usize, 1, 5, 15, 16, 17, 40] {
            let mut a = ChaCha8Rng::seed_from_u64(1234);
            for _ in 0..draws {
                a.next_u32();
            }
            let (key, counter, idx) = a.position();
            let mut b = ChaCha8Rng::from_position(key, counter, idx);
            for i in 0..64 {
                assert_eq!(a.next_u64(), b.next_u64(), "draws {draws}, word {i}");
            }
        }
    }

    #[test]
    fn stream_looks_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let ones: u32 = (0..1024).map(|_| rng.next_u64().count_ones()).sum();
        let total = 1024 * 64;
        // A fair stream has ~50% ones; allow a generous 2% band.
        assert!((ones as f64 / total as f64 - 0.5).abs() < 0.02);
    }
}
