//! Offline API-subset shim of the
//! [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! Supports the surface this workspace uses: the [`proptest!`] macro with an
//! optional `#![proptest_config(..)]` header, range / tuple / collection /
//! `any::<T>()` strategies, `prop_map`, and the `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` macros. Cases are generated from a
//! ChaCha8 stream seeded per test name (override with `PROPTEST_SEED`), so
//! failures are reproducible. **No shrinking**: a failing case reports its
//! seed and case index instead of a minimized input.

#![forbid(unsafe_code)]

pub mod strategy {
    //! Value-generation strategies.

    use rand::Rng;
    pub use rand_chacha::ChaCha8Rng as TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (S0 0)
        (S0 0, S1 1)
        (S0 0, S1 1, S2 2)
        (S0 0, S1 1, S2 2, S3 3)
        (S0 0, S1 1, S2 2, S3 3, S4 4)
    }
}

pub mod arbitrary {
    //! The [`any`] entry point for type-default strategies.

    use crate::strategy::{Strategy, TestRng};
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates one value covering the type's natural domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen()
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy produced by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`vec`, `btree_set`).

    use crate::strategy::{Strategy, TestRng};
    use rand::Rng;
    use std::collections::BTreeSet;

    /// Size specifications: an exact `usize`, `a..b`, or `a..=b`.
    pub trait IntoSizeRange {
        /// Draws a concrete size.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: IntoSizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// A vector of values from `element` with length drawn from `size`.
    pub fn vec<S: Strategy, R: IntoSizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    pub struct BTreeSetStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S, R> Strategy for BTreeSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Ord,
        R: IntoSizeRange,
    {
        type Value = BTreeSet<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let want = self.size.pick(rng);
            let mut out = BTreeSet::new();
            // Duplicates collapse; bound the retries so tiny element domains
            // still terminate (the set is then smaller than requested, which
            // real proptest also permits for saturated domains).
            let mut attempts = 0usize;
            while out.len() < want && attempts < want * 20 + 64 {
                out.insert(self.element.new_value(rng));
                attempts += 1;
            }
            out
        }
    }

    /// A set of values from `element` with target size drawn from `size`.
    pub fn btree_set<S, R>(element: S, size: R) -> BTreeSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Ord,
        R: IntoSizeRange,
    {
        BTreeSetStrategy { element, size }
    }
}

pub mod sample {
    //! Index sampling helpers.

    use crate::arbitrary::Arbitrary;
    use crate::strategy::TestRng;
    use rand::Rng;

    /// A position in a collection of as-yet-unknown size: scale with
    /// [`Index::index`] once the length is known.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Maps this abstract index onto `0..len`.
        ///
        /// # Panics
        ///
        /// Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on an empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.gen())
        }
    }
}

pub mod test_runner {
    //! Case execution: seeding, rejection bookkeeping, and failure reports.

    use crate::strategy::TestRng;
    use rand::SeedableRng;

    /// Runner configuration (`cases` is the only knob this shim honors).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
        /// Maximum rejected (`prop_assume!`) cases before giving up.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: 256,
                max_global_rejects: 65536,
            }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases,
                ..Self::default()
            }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the inputs; try another case.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// An assertion failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A filtered (assumed-away) case.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Derives the base seed for a named test, honoring `PROPTEST_SEED`.
    fn base_seed(name: &str) -> u64 {
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(v) = s.parse::<u64>() {
                return v;
            }
        }
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Runs `config.cases` cases of `body`, panicking on the first failure
    /// with enough context to reproduce it.
    pub fn run_cases<F>(config: ProptestConfig, name: &str, mut body: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let seed = base_seed(name);
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let mut case = 0u64;
        while passed < config.cases {
            let mut rng = TestRng::seed_from_u64(seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            match body(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > config.max_global_rejects {
                        panic!(
                            "proptest '{name}': too many prop_assume! rejections \
                             ({rejected}) before reaching {} cases",
                            config.cases
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest '{name}' failed at case {case} (base seed {seed}): {msg}\n\
                         reproduce with PROPTEST_SEED={seed}"
                    );
                }
            }
            case += 1;
        }
    }
}

/// The `prop::` namespace mirrored from upstream's prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    //! Glob-import surface matching upstream `proptest::prelude::*`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares seeded property tests. Mirrors upstream's macro shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u64..100, v in prop::collection::vec(any::<bool>(), 0..32)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { @cfg($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (@cfg($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                $crate::test_runner::run_cases(config, stringify!($name), |__pt_rng| {
                    $(let $arg = $crate::strategy::Strategy::new_value(&($strat), __pt_rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Asserts a condition inside a property, failing the case (not the process)
/// so the runner can report the seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Filters the current case: rejected cases don't count toward the target.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::SeedableRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..17, y in -2i32..=2) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2..=2).contains(&y));
        }

        #[test]
        fn vec_sizes_respect_spec(v in prop::collection::vec(any::<bool>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn assume_filters(x in 0u64..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }

        #[test]
        fn tuples_and_map(pair in (0usize..4, 0usize..4).prop_map(|(a, b)| a + b)) {
            prop_assert!(pair <= 6);
        }

        #[test]
        fn index_scales(ix in any::<prop::sample::Index>()) {
            let i = ix.index(7);
            prop_assert!(i < 7);
        }
    }

    #[test]
    fn btree_set_reaches_target_size() {
        let strat = prop::collection::btree_set(0u32..1000, 5..=5);
        let mut rng = crate::strategy::TestRng::seed_from_u64(1);
        let s = strat.new_value(&mut rng);
        assert_eq!(s.len(), 5);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_report_seed() {
        crate::test_runner::run_cases(ProptestConfig::with_cases(4), "always_fails", |_rng| {
            Err(TestCaseError::fail("boom"))
        });
    }
}
