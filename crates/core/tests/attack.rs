//! Adversarial integration tests: every protocol against the strategies it
//! claims to survive — and the baselines against the strategies that break
//! them (the paper's motivating separations).
//!
//! All seeds are fixed, so these tests are deterministic.

use bdclique_adversary::adaptive::{GreedyLoad, RushingRandom, TargetNode};
use bdclique_adversary::corruptors::PayloadCorruptor;
use bdclique_adversary::plans::{RandomMatchings, RotatingMatching};
use bdclique_adversary::Payload;
use bdclique_core::protocols::{
    AdaptiveAllToAll, AdaptiveTakeOne, AllToAllProtocol, DetHypercube, DetSqrt, NaiveExchange,
    NonAdaptiveAllToAll, RelayReplication,
};
use bdclique_core::AllToAllInstance;
use bdclique_netsim::{Adversary, Network};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn instance(n: usize, b: usize, seed: u64) -> AllToAllInstance {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    AllToAllInstance::random(n, b, &mut rng)
}

fn greedy_flip() -> Adversary {
    Adversary::adaptive(GreedyLoad::new(Payload::Flip, 11))
}

fn matching_flip() -> Adversary {
    Adversary::non_adaptive(
        RotatingMatching::new(),
        PayloadCorruptor::new(Payload::Flip, 12),
    )
}

fn random_matchings_flip() -> Adversary {
    Adversary::non_adaptive(
        RandomMatchings::new(5),
        PayloadCorruptor::new(Payload::Flip, 13),
    )
}

#[test]
fn det_sqrt_survives_adaptive_greedy() {
    let inst = instance(16, 2, 1);
    // budget = ⌊0.07·16⌋ = 1 faulty edge per node per round.
    let mut net = Network::new(16, 9, 0.07, greedy_flip());
    let out = DetSqrt::default().run(&mut net, &inst).unwrap();
    assert_eq!(inst.count_errors(&out), 0);
    assert!(net.stats().edges_corrupted > 0, "adversary must have acted");
}

#[test]
fn det_sqrt_survives_adaptive_greedy_n64() {
    let inst = instance(64, 1, 2);
    // budget = ⌊0.04·64⌋ = 2.
    let mut net = Network::new(64, 9, 0.04, greedy_flip());
    let out = DetSqrt::default().run(&mut net, &inst).unwrap();
    assert_eq!(inst.count_errors(&out), 0);
    assert!(net.stats().edges_corrupted > 0);
}

#[test]
fn det_sqrt_survives_victim_concentration() {
    let inst = instance(16, 2, 3);
    let adv = Adversary::adaptive(TargetNode::new(7, Payload::Random, 14));
    let mut net = Network::new(16, 9, 0.07, adv);
    let out = DetSqrt::default().run(&mut net, &inst).unwrap();
    assert_eq!(inst.count_errors(&out), 0);
}

#[test]
fn det_hypercube_survives_adaptive_greedy() {
    let inst = instance(16, 2, 4);
    let mut net = Network::new(16, 9, 0.07, greedy_flip());
    let out = DetHypercube::default().run(&mut net, &inst).unwrap();
    assert_eq!(inst.count_errors(&out), 0);
    assert!(net.stats().edges_corrupted > 0);
}

#[test]
fn det_hypercube_survives_matching_mobile_adversary() {
    // The α = 1/n rotating matching: one faulty edge per node per round,
    // moving every round — the attack that defeats tree aggregation.
    let inst = instance(32, 1, 5);
    let mut net = Network::new(32, 9, 1.0 / 16.0, matching_flip());
    let out = DetHypercube::default().run(&mut net, &inst).unwrap();
    assert_eq!(inst.count_errors(&out), 0);
    assert!(net.stats().edges_corrupted > 0);
}

#[test]
fn naive_exchange_is_defenseless() {
    let inst = instance(16, 2, 6);
    let mut net = Network::new(16, 9, 0.2, greedy_flip());
    let out = NaiveExchange.run(&mut net, &inst).unwrap();
    // Every corrupted edge corrupts messages: 16 nodes × budget 3 edges / 2.
    assert!(inst.count_errors(&out) > 0);
}

#[test]
fn relay_baseline_survives_static_but_not_mobile() {
    // Static adversary: the same single edge every round — replication wins.
    let static_plan = bdclique_adversary::plans::FixedEdges::new(vec![vec![(0usize, 1usize)]]);
    let inst = instance(16, 2, 7);
    let mut net = Network::new(
        16,
        9,
        0.07,
        Adversary::non_adaptive(static_plan, PayloadCorruptor::new(Payload::Flip, 15)),
    );
    let out = RelayReplication { copies: 3 }.run(&mut net, &inst).unwrap();
    assert_eq!(inst.count_errors(&out), 0, "static faults must be outvoted");

    // Mobile adaptive greedy with the same budget: the replication baseline
    // loses messages while DetSqrt (same budget) stays perfect.
    let inst2 = instance(16, 2, 8);
    let mut net2 = Network::new(16, 9, 0.07, greedy_flip());
    let out2 = RelayReplication { copies: 3 }
        .run(&mut net2, &inst2)
        .unwrap();
    let relay_errors = inst2.count_errors(&out2);
    let mut net3 = Network::new(16, 9, 0.07, greedy_flip());
    let out3 = DetSqrt::default().run(&mut net3, &inst2).unwrap();
    assert_eq!(inst2.count_errors(&out3), 0);
    assert!(
        relay_errors > 0,
        "the mobile adversary must beat plain replication"
    );
}

#[test]
fn nonadaptive_protocol_survives_planned_matchings() {
    let inst = instance(16, 2, 9);
    let proto = NonAdaptiveAllToAll {
        copies: 7,
        ..Default::default()
    };
    // budget 1 (α = 1/16), plan fixed up front, contents rushing.
    let mut net = Network::new(16, 16, 1.0 / 16.0, random_matchings_flip());
    let out = proto.run(&mut net, &inst).unwrap();
    assert_eq!(inst.count_errors(&out), 0);
    assert!(net.stats().edges_corrupted > 0);
}

#[test]
fn adaptive_take1_survives_adaptive_greedy() {
    let inst = instance(16, 1, 10);
    let proto = AdaptiveTakeOne {
        line_capacity: 1,
        lines: 5,
        ..Default::default()
    };
    let mut net = Network::new(16, 9, 0.07, greedy_flip());
    let out = proto.run(&mut net, &inst).unwrap();
    assert_eq!(inst.count_errors(&out), 0);
    assert!(net.stats().edges_corrupted > 0);
}

#[test]
fn adaptive_take2_direct_pull_survives_adaptive_greedy() {
    let inst = instance(16, 1, 11);
    let proto = AdaptiveAllToAll {
        query_via_ldc: false,
        line_capacity: 1,
        ..Default::default()
    };
    let mut net = Network::new(16, 9, 0.07, greedy_flip());
    let out = proto.run(&mut net, &inst).unwrap();
    assert_eq!(inst.count_errors(&out), 0);
    assert!(net.stats().edges_corrupted > 0);
}

#[test]
fn adaptive_take2_ldc_survives_adaptive_greedy() {
    let inst = instance(16, 1, 12);
    let proto = AdaptiveAllToAll {
        line_capacity: 1,
        lines: 5,
        ..Default::default()
    };
    let mut net = Network::new(16, 9, 0.07, greedy_flip());
    let out = proto.run(&mut net, &inst).unwrap();
    assert_eq!(inst.count_errors(&out), 0);
    assert!(net.stats().edges_corrupted > 0);
}

#[test]
fn adaptive_take2_survives_rushing_random() {
    let inst = instance(16, 1, 13);
    let proto = AdaptiveAllToAll {
        query_via_ldc: false,
        ..Default::default()
    };
    let adv = Adversary::adaptive(RushingRandom::new(Payload::Random, 16));
    let mut net = Network::new(16, 9, 0.07, adv);
    let out = proto.run(&mut net, &inst).unwrap();
    assert_eq!(inst.count_errors(&out), 0);
}

#[test]
fn compiled_algorithm_correct_under_attack() {
    use bdclique_core::cc::SumAll;
    use bdclique_core::compiler::{compile, run_fault_free};

    let algo = SumAll {
        inputs: (0..16).map(|i| (i * 7 + 3) as u64).collect(),
        width: 8,
    };
    let reference = run_fault_free(&algo, 16);
    let mut net = Network::new(16, 9, 0.07, greedy_flip());
    let run = compile(&mut net, &algo, &DetHypercube::default()).unwrap();
    assert_eq!(run.outputs, reference, "compiled run must match fault-free");
    assert!(net.stats().edges_corrupted > 0);
}

#[test]
fn det_sqrt_survives_eclipse() {
    use bdclique_adversary::adaptive::Eclipse;
    let inst = instance(16, 2, 20);
    let mut net = Network::new(16, 9, 0.07, Adversary::adaptive(Eclipse { victim: 3 }));
    let out = DetSqrt::default().run(&mut net, &inst).unwrap();
    assert_eq!(inst.count_errors(&out), 0);
}

#[test]
fn det_hypercube_survives_history_camper() {
    use bdclique_adversary::adaptive::HistoryCamper;
    let inst = instance(16, 2, 21);
    let adv = Adversary::adaptive(HistoryCamper::new(Payload::Flip, 22));
    let mut net = Network::new(16, 9, 0.07, adv);
    let out = DetHypercube::default().run(&mut net, &inst).unwrap();
    assert_eq!(inst.count_errors(&out), 0);
    assert!(net.stats().edges_corrupted > 0);
}

#[test]
fn history_is_recorded_during_protocol_runs() {
    let inst = instance(16, 1, 23);
    let mut net = Network::new(16, 9, 0.07, greedy_flip());
    DetHypercube::default().run(&mut net, &inst).unwrap();
    let history = net.history();
    assert_eq!(history.records().len() as u64, net.rounds());
    assert_eq!(
        history.total_corrupted() as u64,
        net.stats().edges_corrupted
    );
}

#[test]
fn compiled_matmul_under_attack() {
    use bdclique_core::cc::BooleanMatMul;
    use bdclique_core::compiler::{compile, run_fault_free};

    let n = 16usize;
    let algo = BooleanMatMul {
        a: (0..n as u64)
            .map(|u| (u.wrapping_mul(0x9e37) ^ u) & 0xffff)
            .collect(),
        b: (0..n as u64)
            .map(|u| (u.wrapping_mul(0x5851) + 7) & 0xffff)
            .collect(),
    };
    let reference = run_fault_free(&algo, n);
    let mut net = Network::new(n, 18, 0.07, greedy_flip());
    let run = compile(&mut net, &algo, &DetHypercube::default()).unwrap();
    assert_eq!(run.outputs, reference);
}
