//! Arithmetic in the binary extension fields GF(2^m), 1 ≤ m ≤ 16.
//!
//! Every field carries compiled multiplication kernels picked by size:
//!
//! * **m ≤ 8** — a full `2^m × 2^m` product table (64 KiB at m = 8).
//!   [`Gf::mul`], [`Gf::mul_slice`], [`Gf::axpy`], and [`Gf::poly_eval`]
//!   reduce to one row-contiguous table load per symbol, with no branch on
//!   zero operands.
//! * **9 ≤ m ≤ 16** — branchless split log/exp: `log 0` is a sentinel
//!   (`2·order + 1`) and the exp table is zero-padded far enough that any
//!   index sum involving the sentinel lands in the zero region, so
//!   `a·b = exp[log a + log b]` holds for *all* operands.
//!
//! Tables are immutable and shared: [`Gf::new`] consults a process-wide
//! registry (one `OnceLock` slot per m), so constructing the same field
//! twice — e.g. once per trial — reuses the already-compiled tables instead
//! of rebuilding them.

use std::fmt;
use std::sync::{Arc, OnceLock};

/// Primitive polynomials for GF(2^m), m = 1..=16, written with the leading
/// term included (e.g. `0x11d = x^8 + x^4 + x^3 + x^2 + 1`).
const PRIMITIVE_POLYS: [u32; 16] = [
    0x3,     // m=1:  x + 1
    0x7,     // m=2:  x^2 + x + 1
    0xb,     // m=3:  x^3 + x + 1
    0x13,    // m=4:  x^4 + x + 1
    0x25,    // m=5:  x^5 + x^2 + 1
    0x43,    // m=6:  x^6 + x + 1
    0x89,    // m=7:  x^7 + x^3 + 1
    0x11d,   // m=8:  x^8 + x^4 + x^3 + x^2 + 1
    0x211,   // m=9:  x^9 + x^4 + 1
    0x409,   // m=10: x^10 + x^3 + 1
    0x805,   // m=11: x^11 + x^2 + 1
    0x1053,  // m=12: x^12 + x^6 + x^4 + x + 1
    0x201b,  // m=13: x^13 + x^4 + x^3 + x + 1
    0x402b,  // m=14: x^14 + x^5 + x^3 + x + 1
    0x8003,  // m=15: x^15 + x + 1
    0x1100b, // m=16: x^16 + x^12 + x^3 + x + 1
];

/// Largest m whose field gets a full product table (`2^(2m)` u16 entries).
const FULL_TABLE_MAX_M: u32 = 8;

#[derive(Debug)]
struct GfInner {
    m: u32,
    size: u32,
    /// Extended exp table. Indices `0..=2·order` hold `alpha^(i mod order)`;
    /// indices `2·order + 1 ..= 4·order + 2` are zero, so any product index
    /// involving the `log 0` sentinel (`2·order + 1`) reads zero.
    exp: Vec<u16>,
    /// `log[x]` for x ≠ 0 (entry 0 is unused here; see `logz`).
    log: Vec<u16>,
    /// Branchless log: `logz[0]` is the sentinel `2·order + 1`, otherwise
    /// identical to `log`. u32 because the sentinel overflows u16 at m = 16.
    logz: Vec<u32>,
    /// Full product table for m ≤ 8, row-major (`table[(a << m) | b]`);
    /// empty for larger fields.
    mul_table: Vec<u16>,
}

impl GfInner {
    fn build(m: u32) -> Self {
        let size = 1u32 << m;
        let poly = PRIMITIVE_POLYS[(m - 1) as usize];
        let order = size - 1;
        let sentinel = 2 * order + 1;
        let mut exp = vec![0u16; (4 * order + 3) as usize];
        let mut log = vec![0u16; size as usize];
        let mut x = 1u32;
        for i in 0..order {
            exp[i as usize] = x as u16;
            log[x as usize] = i as u16;
            x <<= 1;
            if x & size != 0 {
                x ^= poly;
            }
        }
        for i in order..=2 * order {
            exp[i as usize] = exp[(i - order) as usize];
        }
        let mut logz = vec![0u32; size as usize];
        logz[0] = sentinel;
        for v in 1..size {
            logz[v as usize] = log[v as usize] as u32;
        }
        let mul_table = if m <= FULL_TABLE_MAX_M {
            let mut table = vec![0u16; 1usize << (2 * m)];
            for a in 0..size {
                let row = (a as usize) << m;
                for b in 0..size {
                    table[row | b as usize] = exp[(logz[a as usize] + logz[b as usize]) as usize];
                }
            }
            table
        } else {
            Vec::new()
        };
        Self {
            m,
            size,
            exp,
            log,
            logz,
            mul_table,
        }
    }
}

/// Process-wide field registry: one immutable table set per m, built once.
static REGISTRY: [OnceLock<Arc<GfInner>>; 16] = [const { OnceLock::new() }; 16];

/// The finite field GF(2^m) with precompiled multiplication kernels.
///
/// Cloning is cheap (the tables are shared behind an [`Arc`]), and
/// [`Gf::new`] itself is cheap after the first call per m: fields are
/// interned in a process-wide registry.
///
/// # Examples
///
/// ```
/// use bdclique_codes::Gf;
///
/// let gf = Gf::new(8);
/// let a = 0x57;
/// let b = 0x83;
/// let p = gf.mul(a, b);
/// assert_eq!(gf.div(p, b).unwrap(), a);
/// ```
#[derive(Clone)]
pub struct Gf {
    inner: Arc<GfInner>,
}

impl fmt::Debug for Gf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf(2^{})", self.inner.m)
    }
}

impl PartialEq for Gf {
    fn eq(&self, other: &Self) -> bool {
        self.inner.m == other.inner.m
    }
}

impl Eq for Gf {}

impl Gf {
    /// Returns GF(2^m), building its tables on first use per process.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= m <= 16`.
    pub fn new(m: u32) -> Self {
        assert!((1..=16).contains(&m), "GF(2^m) supported for m in 1..=16");
        let inner = REGISTRY[(m - 1) as usize]
            .get_or_init(|| Arc::new(GfInner::build(m)))
            .clone();
        Self { inner }
    }

    /// Field extension degree `m`.
    pub fn m(&self) -> u32 {
        self.inner.m
    }

    /// Field size `2^m`.
    pub fn size(&self) -> u32 {
        self.inner.size
    }

    /// Multiplicative group order `2^m - 1`.
    pub fn order(&self) -> u32 {
        self.inner.size - 1
    }

    /// Checks that `x` is a field element.
    #[inline]
    fn check(&self, x: u16) {
        debug_assert!(
            (x as u32) < self.inner.size,
            "element {x} outside GF(2^{})",
            self.inner.m
        );
    }

    /// The full product table and shift `m` (`table[(a << m) | b] = a·b`)
    /// for m ≤ 8 fields. Crate-visible so hot inner loops (the RS LFSR
    /// encoder) can hoist the table dereference out of their per-symbol
    /// step instead of paying it per product.
    #[inline]
    pub(crate) fn full_mul_table(&self) -> Option<(&[u16], u32)> {
        let inner = &self.inner;
        if inner.mul_table.is_empty() {
            None
        } else {
            Some((&inner.mul_table, inner.m))
        }
    }

    /// Row `c` of the full product table (`row[x] = c·x`), when compiled.
    #[inline]
    fn mul_row(&self, c: u16) -> Option<&[u16]> {
        let inner = &self.inner;
        if inner.mul_table.is_empty() {
            None
        } else {
            let start = (c as usize) << inner.m;
            Some(&inner.mul_table[start..start + inner.size as usize])
        }
    }

    /// Addition (XOR in characteristic 2).
    #[inline]
    pub fn add(&self, a: u16, b: u16) -> u16 {
        self.check(a);
        self.check(b);
        a ^ b
    }

    /// Subtraction (identical to addition in characteristic 2).
    #[inline]
    pub fn sub(&self, a: u16, b: u16) -> u16 {
        self.add(a, b)
    }

    /// Multiplication; branchless in the operands (full table for m ≤ 8,
    /// sentinel log/exp otherwise).
    #[inline]
    pub fn mul(&self, a: u16, b: u16) -> u16 {
        self.check(a);
        self.check(b);
        let inner = &self.inner;
        if !inner.mul_table.is_empty() {
            inner.mul_table[((a as usize) << inner.m) | b as usize]
        } else {
            inner.exp[(inner.logz[a as usize] + inner.logz[b as usize]) as usize]
        }
    }

    /// In-place scale: `dst[i] = c·dst[i]` for the whole slice.
    pub fn mul_slice(&self, dst: &mut [u16], c: u16) {
        self.check(c);
        if let Some(row) = self.mul_row(c) {
            for x in dst.iter_mut() {
                *x = row[*x as usize];
            }
        } else {
            let inner = &self.inner;
            let lc = inner.logz[c as usize];
            for x in dst.iter_mut() {
                *x = inner.exp[(lc + inner.logz[*x as usize]) as usize];
            }
        }
    }

    /// Fused multiply-accumulate: `dst[i] ^= c·src[i]` for the whole slice.
    ///
    /// `dst` and `src` must have equal lengths; they cannot alias (the
    /// borrow checker enforces disjointness), so a caller that wants
    /// `dst ^= c·dst` should use [`Gf::mul_slice`] with `c + 1`... or more
    /// plainly: copy first. With `c = 0` this is a no-op on the values.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ.
    pub fn axpy(&self, dst: &mut [u16], c: u16, src: &[u16]) {
        assert_eq!(dst.len(), src.len(), "axpy slice length mismatch");
        self.check(c);
        if let Some(row) = self.mul_row(c) {
            for (d, &s) in dst.iter_mut().zip(src) {
                *d ^= row[s as usize];
            }
        } else {
            let inner = &self.inner;
            let lc = inner.logz[c as usize];
            for (d, &s) in dst.iter_mut().zip(src) {
                *d ^= inner.exp[(lc + inner.logz[s as usize]) as usize];
            }
        }
    }

    /// Inner product `sum_i a[i]·b[i]` (sum = XOR).
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ.
    pub fn dot(&self, a: &[u16], b: &[u16]) -> u16 {
        assert_eq!(a.len(), b.len(), "dot slice length mismatch");
        let inner = &self.inner;
        let mut acc = 0u16;
        if !inner.mul_table.is_empty() {
            let m = inner.m;
            for (&x, &y) in a.iter().zip(b) {
                acc ^= inner.mul_table[((x as usize) << m) | y as usize];
            }
        } else {
            for (&x, &y) in a.iter().zip(b) {
                acc ^= inner.exp[(inner.logz[x as usize] + inner.logz[y as usize]) as usize];
            }
        }
        acc
    }

    /// Multiplicative inverse; `None` for zero.
    #[inline]
    pub fn inv(&self, a: u16) -> Option<u16> {
        self.check(a);
        if a == 0 {
            return None;
        }
        let inner = &self.inner;
        Some(inner.exp[(inner.size - 1) as usize - inner.log[a as usize] as usize])
    }

    /// Division; `None` when dividing by zero.
    #[inline]
    pub fn div(&self, a: u16, b: u16) -> Option<u16> {
        Some(self.mul(a, self.inv(b)?))
    }

    /// `alpha^i` for the fixed primitive element alpha.
    #[inline]
    pub fn alpha_pow(&self, i: u32) -> u16 {
        self.inner.exp[(i % self.order()) as usize]
    }

    /// Discrete log base alpha; `None` for zero.
    pub fn log(&self, a: u16) -> Option<u16> {
        self.check(a);
        if a == 0 {
            None
        } else {
            Some(self.inner.log[a as usize])
        }
    }

    /// `a^e` by square-and-multiply (`pow(0, 0) == 1` by convention).
    pub fn pow(&self, a: u16, e: u32) -> u16 {
        self.check(a);
        let mut acc = 1u16;
        let mut base = a;
        let mut e = e;
        while e > 0 {
            if e & 1 == 1 {
                acc = self.mul(acc, base);
            }
            base = self.mul(base, base);
            e >>= 1;
        }
        acc
    }

    /// Evaluates a polynomial (coefficients low-degree first) at `x` by
    /// Horner's rule, one compiled-table load per coefficient.
    pub fn poly_eval(&self, coeffs: &[u16], x: u16) -> u16 {
        self.check(x);
        debug_assert!(coeffs.iter().all(|&c| (c as u32) < self.inner.size));
        let mut acc = 0u16;
        if let Some(row) = self.mul_row(x) {
            for &c in coeffs.iter().rev() {
                acc = row[acc as usize] ^ c;
            }
        } else {
            let inner = &self.inner;
            let lx = inner.logz[x as usize];
            for &c in coeffs.iter().rev() {
                acc = inner.exp[(lx + inner.logz[acc as usize]) as usize] ^ c;
            }
        }
        acc
    }

    /// Multiplies two polynomials (coefficients low-degree first).
    pub fn poly_mul(&self, a: &[u16], b: &[u16]) -> Vec<u16> {
        if a.is_empty() || b.is_empty() {
            return vec![];
        }
        let mut out = vec![0u16; a.len() + b.len() - 1];
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            self.axpy(&mut out[i..i + b.len()], ai, b);
        }
        out
    }

    /// Formal derivative of a polynomial (characteristic 2: odd-degree terms
    /// survive).
    pub fn poly_derivative(&self, a: &[u16]) -> Vec<u16> {
        if a.len() <= 1 {
            return vec![0];
        }
        let mut out = vec![0u16; a.len() - 1];
        for (i, item) in out.iter_mut().enumerate() {
            // coefficient of x^i in derivative = (i+1) * a[i+1]; in char 2
            // this is a[i+1] when i is even, 0 when odd.
            *item = if i % 2 == 0 { a[i + 1] } else { 0 };
        }
        out
    }

    /// Divides polynomial `num` by `den`, returning `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics if `den` is the zero polynomial.
    pub fn poly_divmod(&self, num: &[u16], den: &[u16]) -> (Vec<u16>, Vec<u16>) {
        let dd = den
            .iter()
            .rposition(|&c| c != 0)
            .expect("division by zero polynomial");
        let mut rem: Vec<u16> = num.to_vec();
        let nd = rem.iter().rposition(|&c| c != 0).unwrap_or(0);
        if nd < dd {
            return (vec![0], rem);
        }
        let mut quot = vec![0u16; nd - dd + 1];
        let lead_inv = self.inv(den[dd]).expect("nonzero leading coefficient");
        for i in (dd..=nd).rev() {
            if rem[i] == 0 {
                continue;
            }
            let q = self.mul(rem[i], lead_inv);
            quot[i - dd] = q;
            self.axpy(&mut rem[i - dd..=i], q, &den[..dd + 1]);
        }
        rem.truncate(dd.max(1));
        (quot, rem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_consistent_for_all_supported_m() {
        for m in 1..=16u32 {
            let gf = Gf::new(m);
            // alpha generates the multiplicative group: alpha^(order) == 1
            // and all powers below are distinct (checked via log roundtrip).
            assert_eq!(gf.alpha_pow(gf.order()), 1, "m={m}");
            for i in 0..gf.order().min(1000) {
                let x = gf.alpha_pow(i);
                assert_eq!(gf.log(x), Some(i as u16), "m={m}, i={i}");
            }
        }
    }

    #[test]
    fn registry_interns_tables() {
        let a = Gf::new(7);
        let b = Gf::new(7);
        assert!(Arc::ptr_eq(&a.inner, &b.inner));
    }

    #[test]
    fn gf256_known_products() {
        let gf = Gf::new(8);
        // Known AES-adjacent products under poly 0x11d.
        assert_eq!(gf.mul(0, 123), 0);
        assert_eq!(gf.mul(1, 123), 123);
        assert_eq!(gf.mul(2, 0x80), 0x1d); // x * x^7 = x^8 = 0x1d mod 0x11d
    }

    /// The sentinel log/exp layout must produce zero for any zero operand in
    /// the large-field tier, including 0·0.
    #[test]
    fn zero_operands_branchless_large_fields() {
        for m in [9u32, 12, 16] {
            let gf = Gf::new(m);
            assert_eq!(gf.mul(0, 0), 0, "m={m}");
            for i in 0..200 {
                let x = gf.alpha_pow(i);
                assert_eq!(gf.mul(0, x), 0, "m={m}, x={x}");
                assert_eq!(gf.mul(x, 0), 0, "m={m}, x={x}");
            }
        }
    }

    #[test]
    fn inverses() {
        let gf = Gf::new(8);
        assert_eq!(gf.inv(0), None);
        for a in 1..=255u16 {
            let inv = gf.inv(a).unwrap();
            assert_eq!(gf.mul(a, inv), 1, "a={a}");
        }
    }

    #[test]
    fn inverses_all_m() {
        for m in 1..=16u32 {
            let gf = Gf::new(m);
            for i in 0..gf.order().min(300) {
                let a = gf.alpha_pow(i);
                assert_eq!(gf.mul(a, gf.inv(a).unwrap()), 1, "m={m}, a={a}");
            }
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let gf = Gf::new(5);
        for a in 0..32u16 {
            let mut acc = 1u16;
            for e in 0..10u32 {
                assert_eq!(gf.pow(a, e), acc, "a={a}, e={e}");
                acc = gf.mul(acc, a);
            }
        }
        assert_eq!(gf.pow(0, 0), 1);
        assert_eq!(gf.pow(0, 3), 0);
    }

    #[test]
    fn pow_large_exponents() {
        for m in [4u32, 8, 11, 16] {
            let gf = Gf::new(m);
            let a = gf.alpha_pow(3);
            // a^e == a^(e mod order) for a != 0.
            for e in [gf.order(), gf.order() + 1, 7 * gf.order() + 5, u32::MAX] {
                let expected = gf.alpha_pow(((3u64 * e as u64) % gf.order() as u64) as u32);
                assert_eq!(gf.pow(a, e), expected, "m={m}, e={e}");
            }
        }
    }

    #[test]
    fn batch_kernels_match_scalar() {
        for m in [1u32, 3, 8, 9, 13, 16] {
            let gf = Gf::new(m);
            let src: Vec<u16> = (0..512u32).map(|i| gf.alpha_pow(i * 7)).collect();
            let mut with_zeros = src.clone();
            for slot in with_zeros.iter_mut().step_by(5) {
                *slot = 0;
            }
            for c in [0u16, 1, gf.alpha_pow(1), gf.alpha_pow(97)] {
                let mut scaled = with_zeros.clone();
                gf.mul_slice(&mut scaled, c);
                for (i, &s) in with_zeros.iter().enumerate() {
                    assert_eq!(scaled[i], gf.mul(c, s), "m={m}, c={c}, i={i}");
                }
                let mut acc = src.clone();
                gf.axpy(&mut acc, c, &with_zeros);
                for i in 0..src.len() {
                    assert_eq!(
                        acc[i],
                        src[i] ^ gf.mul(c, with_zeros[i]),
                        "m={m}, c={c}, i={i}"
                    );
                }
                let mut dot_ref = 0u16;
                for (&x, &y) in src.iter().zip(&with_zeros) {
                    dot_ref ^= gf.mul(x, y);
                }
                assert_eq!(gf.dot(&src, &with_zeros), dot_ref, "m={m}");
            }
        }
    }

    #[test]
    fn poly_eval_horner() {
        let gf = Gf::new(4);
        // p(x) = 3 + 5x + 7x^2
        let p = [3u16, 5, 7];
        for x in 0..16u16 {
            let direct = gf.add(gf.add(3, gf.mul(5, x)), gf.mul(7, gf.mul(x, x)));
            assert_eq!(gf.poly_eval(&p, x), direct);
        }
    }

    #[test]
    fn poly_mul_then_divmod_roundtrip() {
        let gf = Gf::new(8);
        let a = [1u16, 2, 3, 4];
        let b = [5u16, 6, 7];
        let prod = gf.poly_mul(&a, &b);
        let (q, r) = gf.poly_divmod(&prod, &b);
        assert_eq!(q, a.to_vec());
        assert!(r.iter().all(|&c| c == 0), "remainder {r:?}");
    }

    #[test]
    fn poly_derivative_char2() {
        let gf = Gf::new(4);
        // d/dx (a + bx + cx^2 + dx^3) = b + dx^2 in characteristic 2.
        let d = gf.poly_derivative(&[9, 8, 7, 6]);
        assert_eq!(d, vec![8, 0, 6]);
        assert_eq!(gf.poly_derivative(&[5]), vec![0]);
    }
}
