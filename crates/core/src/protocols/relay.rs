//! The static-fault-tolerance baseline: replication over relay paths with
//! majority voting.
//!
//! This embodies the classical approach the paper's introduction contrasts
//! with: route each message over `R` disjoint two-hop relay paths and take a
//! majority. Against a *static* adversary controlling fewer than `⌈R/2⌉`
//! well-placed edges per pair this is perfect — but a *mobile* adversary of
//! faulty degree **one** (the rotating matching, α = 1/n) can poison a
//! different relay hop every round and defeat any replication factor on
//! targeted pairs. Experiment `F.MATCH` measures exactly this.

use super::AllToAllProtocol;
use crate::error::CoreError;
use crate::problem::{AllToAllInstance, AllToAllOutput};
use bdclique_bits::BitVec;
use bdclique_netsim::Network;

/// Replication over `R` two-hop relay paths, with per-message majority.
///
/// Copy `i` of `m_{u,v}` travels `u → c_i(u,v) → v` with
/// `c_i(u,v) = (u + v + h_i) mod n` for distinct shifts `h_i`; for fixed `i`
/// the relay map is a bijection in each coordinate, so every copy wave costs
/// exactly two rounds of full-mesh traffic.
#[derive(Debug, Clone, Copy)]
pub struct RelayReplication {
    /// Number of relay copies (odd; majority threshold `⌈R/2⌉`).
    pub copies: usize,
}

impl Default for RelayReplication {
    fn default() -> Self {
        Self { copies: 3 }
    }
}

impl AllToAllProtocol for RelayReplication {
    fn name(&self) -> &'static str {
        "relay-replication"
    }

    fn run(&self, net: &mut Network, inst: &AllToAllInstance) -> Result<AllToAllOutput, CoreError> {
        let n = inst.n();
        if n != net.n() {
            return Err(CoreError::invalid("instance size != network size"));
        }
        if self.copies == 0 || self.copies >= n {
            return Err(CoreError::invalid("copies must be in 1..n"));
        }
        let b = inst.b();
        if b > net.bandwidth() {
            return Err(CoreError::invalid("message wider than bandwidth"));
        }
        let mut votes: Vec<Vec<Vec<BitVec>>> = vec![vec![Vec::new(); n]; n];

        for i in 0..self.copies {
            let h = 1 + i; // distinct deterministic shifts
            let relay = |u: usize, v: usize| (u + v + h) % n;

            // Hop 1: u -> c_i(u, v).
            let mut traffic = net.traffic();
            let mut local: Vec<Option<(usize, BitVec)>> = vec![None; n]; // relay == u
            for u in 0..n {
                for v in 0..n {
                    if u == v {
                        continue;
                    }
                    let c = relay(u, v);
                    if c == u {
                        local[u] = Some((v, inst.message(u, v).clone()));
                    } else {
                        traffic.send(u, c, inst.message(u, v).clone());
                    }
                }
            }
            let d1 = net.exchange(traffic);

            // Hop 2: c -> v. Relay w received the copy from u destined to
            // v where w = (u + v + h) mod n; for each sender u the target is
            // v = (w - u - h) mod n. Forwarding walks each relay's inbox and
            // moves the frames on — O(received frames), no clones, no n²
            // probe sweep.
            let mut traffic = net.traffic();
            for (w, inbox) in d1.into_inboxes().into_iter().enumerate() {
                if let Some((v, m)) = local[w].take() {
                    // The relay was the sender itself (u == w).
                    if v != w {
                        traffic.send(w, v, m);
                    }
                }
                for (u, m) in inbox {
                    let u = u as usize;
                    let v = (w + 2 * n - u - h) % n;
                    if v == u {
                        continue;
                    }
                    if v == w {
                        votes[v][u].push(m);
                    } else {
                        traffic.send(w, v, m);
                    }
                }
            }
            let d2 = net.exchange(traffic);
            // Receiver side of hop 2: invert the relay map per sender.
            for (v, inbox) in d2.into_inboxes().into_iter().enumerate() {
                for (w, m) in inbox {
                    let u = (w as usize + 2 * n - v - h) % n;
                    if u == v {
                        continue;
                    }
                    votes[v][u].push(m);
                }
            }
        }

        // Majority per message.
        let mut out = AllToAllOutput::empty(n);
        for v in 0..n {
            for u in 0..n {
                if u == v {
                    out.set(v, u, inst.message(u, u).clone());
                    continue;
                }
                let mut tally: Vec<(BitVec, usize)> = Vec::new();
                for m in &votes[v][u] {
                    let mut normalized = m.clone();
                    normalized.pad_to(b);
                    normalized.truncate(b);
                    match tally.iter_mut().find(|(x, _)| *x == normalized) {
                        Some((_, c)) => *c += 1,
                        None => tally.push((normalized, 1)),
                    }
                }
                tally.sort_by_key(|t| std::cmp::Reverse(t.1));
                if let Some((winner, _)) = tally.first() {
                    out.set(v, u, winner.clone());
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdclique_netsim::Adversary;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn perfect_without_faults() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let inst = AllToAllInstance::random(10, 3, &mut rng);
        let mut net = Network::new(10, 8, 0.0, Adversary::none());
        let out = RelayReplication { copies: 3 }.run(&mut net, &inst).unwrap();
        assert_eq!(inst.count_errors(&out), 0);
        assert_eq!(net.rounds(), 6);
    }

    #[test]
    fn rejects_bad_copies() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let inst = AllToAllInstance::random(4, 2, &mut rng);
        let mut net = Network::new(4, 8, 0.0, Adversary::none());
        assert!(RelayReplication { copies: 0 }.run(&mut net, &inst).is_err());
        assert!(RelayReplication { copies: 4 }.run(&mut net, &inst).is_err());
    }
}
