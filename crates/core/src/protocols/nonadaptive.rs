//! Theorem 1.2 / 5.1: randomized `O(1)`-round `AllToAllComm` against a
//! **non-adaptive** α-BD adversary with constant α, bandwidth `B = Θ(log n)`.
//!
//! The paper's construction, at symbol granularity: node `v1` samples `R`
//! secret shifts and broadcasts them resiliently; copy `i` of `m_{u,v}`
//! travels to the random relay `p_i(v) = v + h_i` (one round — for fixed
//! `i`, `p_i` is a permutation, so each edge carries exactly one copy);
//! relays then forward their `n`-message bundles to the true targets through
//! the resilient super-message router; receivers take a per-message majority
//! over the `R` copies.
//!
//! Because the adversary committed its edge sets before the shifts existed,
//! each copy is corrupted with probability ≤ α, independently across `i` —
//! the paper's Lemma 5.4 — and a Chernoff bound drives the per-message
//! failure below any polynomial. Publishing the shifts to an *adaptive*
//! adversary (which this protocol is *not* designed for) lets experiments
//! demonstrate the separation the paper draws between the two settings.

use super::{AllToAllProtocol, ProtocolSession, Step};
use crate::broadcast::BroadcastSession;
use crate::error::CoreError;
use crate::problem::{AllToAllInstance, AllToAllOutput};
use crate::routing::{RouteSession, RouterConfig, RoutingInstance, SuperMessage};
use bdclique_bits::BitVec;
use bdclique_netsim::Network;
use bdclique_snapshot::{Dec, Enc};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::borrow::Cow;

/// The non-adaptive compiler (Theorem 1.2).
#[derive(Debug, Clone)]
pub struct NonAdaptiveAllToAll {
    /// Number of independent random copies `R` (odd; `Θ(log n)` for the
    /// w.h.p. guarantee).
    pub copies: usize,
    /// Router configuration for the relay-to-target wave.
    pub router: RouterConfig,
    /// Seed for node `v1`'s local randomness (injectable for
    /// reproducibility; *not* visible to non-adaptive adversaries).
    pub seed: u64,
}

impl Default for NonAdaptiveAllToAll {
    fn default() -> Self {
        Self {
            copies: 5,
            router: RouterConfig::default(),
            seed: 0x5eed1,
        }
    }
}

/// Every node decodes its own copy of the broadcast shifts (16-bit fields);
/// within the validated margin they all equal the sampled shifts. Honest
/// nodes use their local decoding. Free-standing so session phases can call
/// it while `self.phase` is mutably borrowed.
fn decode_shifts(bits: &BitVec, r: usize, n: usize) -> Vec<usize> {
    (0..r)
        .map(|i| bits.read_uint(i * 16, 16) as usize % n)
        .collect()
}

/// Execution phases of the non-adaptive compiler.
enum NaPhase {
    /// Publish the shifts and open the broadcast (first step).
    Publish,
    /// Broadcasting the shifts (Cor. 4.8).
    Broadcast(BroadcastSession),
    /// Copy waves: one step per copy group.
    CopyWave {
        received_shifts: Vec<BitVec>,
        /// `[relay][copy][src]`.
        copy_store: Vec<Vec<Vec<Option<BitVec>>>>,
        copy_group_start: usize,
    },
    /// Relay wave: resilient super-message routing.
    Route {
        received_shifts: Vec<BitVec>,
        route: RouteSession<'static>,
    },
}

/// The non-adaptive compiler as a state machine.
struct NaSession<'a> {
    proto: &'a NonAdaptiveAllToAll,
    inst: &'a AllToAllInstance,
    n: usize,
    b: usize,
    r: usize,
    shift_bits: BitVec,
    phase: NaPhase,
}

impl<'a> NaSession<'a> {
    fn new(
        proto: &'a NonAdaptiveAllToAll,
        net: &Network,
        inst: &'a AllToAllInstance,
    ) -> Result<Self, CoreError> {
        let n = inst.n();
        if n != net.n() {
            return Err(CoreError::invalid("instance size != network size"));
        }
        let r = proto.copies;
        if r == 0 || r.is_multiple_of(2) {
            return Err(CoreError::invalid("copies must be odd and positive"));
        }
        // ---- Node v1 samples shifts (broadcast them in the first step). ----
        let mut v1_rng = ChaCha8Rng::seed_from_u64(proto.seed);
        let shifts: Vec<usize> = (0..r).map(|_| v1_rng.gen_range(1..n)).collect();
        let mut shift_bits = BitVec::new();
        for &h in &shifts {
            shift_bits.push_uint(16, h as u64);
        }
        Ok(Self {
            proto,
            inst,
            n,
            b: inst.b(),
            r,
            shift_bits,
            phase: NaPhase::Publish,
        })
    }

    /// Rebuilds a session from a snapshot. The shifts are re-derived from
    /// `proto.seed` by `new` (node `v1`'s sampling is deterministic); only
    /// the phase and its buffers are overlaid.
    fn restore(
        proto: &'a NonAdaptiveAllToAll,
        net: &Network,
        inst: &'a AllToAllInstance,
        dec: &mut Dec<'_>,
    ) -> Result<Self, CoreError> {
        let mut s = Self::new(proto, net, inst)?;
        let (n, r) = (s.n, s.r);
        let get_shifts = |dec: &mut Dec<'_>| -> Result<Vec<BitVec>, CoreError> {
            let shifts = dec.get_seq(1, Dec::get_bits).map_err(CoreError::from)?;
            if shifts.len() != n {
                return Err(CoreError::invalid(
                    "nonadaptive snapshot shift table size mismatch",
                ));
            }
            Ok(shifts)
        };
        s.phase = match dec.get_u8().map_err(CoreError::from)? {
            0 => NaPhase::Publish,
            1 => NaPhase::Broadcast(BroadcastSession::restore(net, &proto.router, dec)?),
            2 => {
                let received_shifts = get_shifts(dec)?;
                let copy_group_start = dec.get_usize().map_err(CoreError::from)?;
                if copy_group_start >= r {
                    return Err(CoreError::invalid(
                        "nonadaptive snapshot copy cursor out of range",
                    ));
                }
                let mut copy_store = vec![vec![vec![None; n]; r]; n];
                for relay in copy_store.iter_mut() {
                    for copy in relay.iter_mut() {
                        for slot in copy.iter_mut() {
                            *slot = dec.get_opt(Dec::get_bits).map_err(CoreError::from)?;
                        }
                    }
                }
                NaPhase::CopyWave {
                    received_shifts,
                    copy_store,
                    copy_group_start,
                }
            }
            3 => NaPhase::Route {
                received_shifts: get_shifts(dec)?,
                route: RouteSession::restore(net, &proto.router, None, dec)?,
            },
            _ => return Err(CoreError::invalid("unknown nonadaptive phase tag")),
        };
        Ok(s)
    }

    /// ---- Majority vote per message. ----
    fn finish(
        &self,
        received_shifts: &[BitVec],
        routed: &crate::routing::RoutingOutput,
    ) -> AllToAllOutput {
        let (n, b) = (self.n, self.b);
        let mut out = AllToAllOutput::empty(n);
        for v in 0..n {
            let my_shifts = decode_shifts(&received_shifts[v], self.r, n);
            for u in 0..n {
                if u == v {
                    out.set(v, u, self.inst.message(u, u).clone());
                    continue;
                }
                let mut tally: Vec<(BitVec, usize)> = Vec::new();
                for (i, &h) in my_shifts.iter().enumerate() {
                    let w = (v + h) % n;
                    let Some(bundle) = routed.delivered[v].get(&(w, i)) else {
                        continue;
                    };
                    if bundle.len() < (u + 1) * b {
                        continue;
                    }
                    let copy = bundle.slice(u * b, (u + 1) * b);
                    match tally.iter_mut().find(|(x, _)| *x == copy) {
                        Some((_, c)) => *c += 1,
                        None => tally.push((copy, 1)),
                    }
                }
                tally.sort_by_key(|t| std::cmp::Reverse(t.1));
                if let Some((winner, _)) = tally.first() {
                    out.set(v, u, winner.clone());
                }
            }
        }
        out
    }
}

impl ProtocolSession for NaSession<'_> {
    fn step(&mut self, net: &mut Network) -> Result<Step, CoreError> {
        let (n, b, r) = (self.n, self.b, self.r);
        loop {
            match &mut self.phase {
                NaPhase::Publish => {
                    // Model the rushing adaptive adversary's knowledge: a
                    // *non-adaptive* adversary never sees this (the
                    // simulator hides `publish` from it).
                    net.publish("nonadaptive/shifts", self.shift_bits.clone());
                    self.phase = NaPhase::Broadcast(BroadcastSession::new(
                        net,
                        0,
                        &self.shift_bits,
                        &self.proto.router,
                    )?);
                    // Fall through: the publish itself costs no round.
                }
                NaPhase::Broadcast(bcast) => {
                    let Some(received_shifts) = bcast.step(net)? else {
                        return Ok(Step::Running);
                    };
                    self.phase = NaPhase::CopyWave {
                        received_shifts,
                        copy_store: vec![vec![vec![None; n]; r]; n],
                        copy_group_start: 0,
                    };
                    return Ok(Step::Running);
                }
                NaPhase::CopyWave {
                    received_shifts,
                    copy_store,
                    copy_group_start,
                } => {
                    // ---- Copy waves: copy i of m_{u,v} goes to relay
                    // (v + h_i) % n, `per_round` copies per exchange. ----
                    let per_round = (net.bandwidth() / b).max(1).min(r);
                    let group: Vec<usize> =
                        (*copy_group_start..r.min(*copy_group_start + per_round)).collect();
                    let mut traffic = net.traffic();
                    for u in 0..n {
                        let my_shifts = decode_shifts(&received_shifts[u], r, n);
                        for w in 0..n {
                            if w == u {
                                // Relay is the sender itself: store locally.
                                for &i in &group {
                                    let v = (u + n - my_shifts[i]) % n;
                                    if v != u {
                                        copy_store[u][i][u] = Some(self.inst.message(u, v).clone());
                                    }
                                }
                                continue;
                            }
                            let mut frame = net.frame_buffer(group.len() * b);
                            let mut any = false;
                            for (pos, &i) in group.iter().enumerate() {
                                let v = (w + n - my_shifts[i]) % n;
                                if v == u {
                                    continue; // own message, kept locally
                                }
                                let msg = self.inst.message(u, v);
                                for t in 0..b {
                                    if msg.get(t) {
                                        frame.set(pos * b + t, true);
                                    }
                                }
                                any = true;
                            }
                            if any {
                                traffic.send(u, w, frame);
                            }
                        }
                    }
                    let delivery = net.exchange(traffic);
                    for w in 0..n {
                        for (u, frame) in delivery.inbox_of(w) {
                            for (pos, &i) in group.iter().enumerate() {
                                if frame.len() >= (pos + 1) * b {
                                    copy_store[w][i][u] = Some(frame.slice(pos * b, (pos + 1) * b));
                                }
                            }
                        }
                    }
                    net.reclaim(delivery);
                    *copy_group_start += group.len();
                    if *copy_group_start < r {
                        return Ok(Step::Running);
                    }
                    // ---- Relay wave: relay w routes bundle i to
                    // v = (w - h_i) % n. ----
                    let bundle_bits = n * b;
                    let instance = RoutingInstance {
                        n,
                        payload_bits: bundle_bits,
                        messages: (0..n)
                            .flat_map(|w| {
                                let my_shifts = decode_shifts(&received_shifts[w], r, n);
                                (0..r)
                                    .map(|i| {
                                        let v = (w + n - my_shifts[i]) % n;
                                        let mut payload = BitVec::zeros(bundle_bits);
                                        for u in 0..n {
                                            if let Some(m) = &copy_store[w][i][u] {
                                                for t in 0..b.min(m.len()) {
                                                    payload.set(u * b + t, m.get(t));
                                                }
                                            }
                                        }
                                        SuperMessage {
                                            src: w,
                                            slot: i,
                                            payload,
                                            targets: vec![v],
                                        }
                                    })
                                    .collect::<Vec<_>>()
                            })
                            .collect(),
                    };
                    let route = RouteSession::new(net, instance, &self.proto.router)?;
                    self.phase = NaPhase::Route {
                        received_shifts: std::mem::take(received_shifts),
                        route,
                    };
                    return Ok(Step::Running);
                }
                NaPhase::Route {
                    received_shifts,
                    route,
                } => {
                    let Some(routed) = route.step(net)? else {
                        return Ok(Step::Running);
                    };
                    let received_shifts = std::mem::take(received_shifts);
                    return Ok(Step::Done(self.finish(&received_shifts, &routed)));
                }
            }
        }
    }

    fn snapshot(&mut self, net: &mut Network, enc: &mut Enc) -> Result<(), CoreError> {
        match &mut self.phase {
            NaPhase::Publish => {
                enc.put_u8(0);
                Ok(())
            }
            NaPhase::Broadcast(bcast) => {
                enc.put_u8(1);
                bcast.snapshot(net, enc)
            }
            NaPhase::CopyWave {
                received_shifts,
                copy_store,
                copy_group_start,
            } => {
                enc.put_u8(2);
                enc.put_seq(received_shifts, Enc::put_bits);
                enc.put_usize(*copy_group_start);
                for relay in copy_store.iter() {
                    for copy in relay.iter() {
                        for slot in copy.iter() {
                            enc.put_opt(slot.as_ref(), Enc::put_bits);
                        }
                    }
                }
                Ok(())
            }
            NaPhase::Route {
                received_shifts,
                route,
            } => {
                enc.put_u8(3);
                enc.put_seq(received_shifts, Enc::put_bits);
                route.snapshot(net, enc)
            }
        }
    }
}

impl AllToAllProtocol for NonAdaptiveAllToAll {
    fn name(&self) -> Cow<'static, str> {
        Cow::Owned(format!("nonadaptive-r(R={})", self.copies))
    }

    fn session<'a>(
        &'a self,
        net: &Network,
        inst: &'a AllToAllInstance,
    ) -> Result<Box<dyn ProtocolSession + 'a>, CoreError> {
        Ok(Box::new(NaSession::new(self, net, inst)?))
    }

    fn restore_session<'a>(
        &'a self,
        net: &Network,
        inst: &'a AllToAllInstance,
        dec: &mut Dec<'_>,
    ) -> Result<Box<dyn ProtocolSession + 'a>, CoreError> {
        Ok(Box::new(NaSession::restore(self, net, inst, dec)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdclique_netsim::Adversary;
    use rand::SeedableRng;

    #[test]
    fn perfect_without_faults() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let inst = AllToAllInstance::random(16, 2, &mut rng);
        let mut net = Network::new(16, 10, 0.0, Adversary::none());
        let out = NonAdaptiveAllToAll::default().run(&mut net, &inst).unwrap();
        assert_eq!(inst.count_errors(&out), 0);
    }

    #[test]
    fn rejects_even_copy_count() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let inst = AllToAllInstance::random(8, 1, &mut rng);
        let mut net = Network::new(8, 10, 0.0, Adversary::none());
        let proto = NonAdaptiveAllToAll {
            copies: 4,
            ..Default::default()
        };
        assert!(proto.run(&mut net, &inst).is_err());
    }
}
