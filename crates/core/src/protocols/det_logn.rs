//! Theorem 1.4 / 6.1: deterministic `O(log n)`-round `AllToAllComm` for
//! constant α, via the hypercube exchange pattern.

use super::{AllToAllProtocol, ProtocolSession, Step};
use crate::error::CoreError;
use crate::problem::{AllToAllInstance, AllToAllOutput};
use crate::routing::{
    RouteSession, RouterConfig, RoutingInstance, SharedCodewordCache, SuperMessage,
};
use bdclique_bits::BitVec;
use bdclique_netsim::Network;
use std::borrow::Cow;

/// The hypercube protocol (Figure 2 of the paper).
///
/// With `n = 2^ℓ` and ids read MSB-first, iteration `i ∈ 1..=ℓ` matches
/// every node `u` with `u' = Flip(u, i)` (ids equal except bit `i`). Each
/// node splits its current message set `M_i(u)` — sorted by target, then
/// source — into halves `M⁻ / M⁺` and routes them so that the partner with
/// bit `i = 0` collects both `M⁻` sets and the partner with bit `i = 1` both
/// `M⁺` sets. Lemma 6.2's invariant `M_i(u) = M(S(u,i), P(u,i))` lets every
/// receiver reconstruct all message identities *implicitly* (no id bits on
/// the wire); each iteration is one `k = 2` super-message routing instance
/// of `n·B/2`-bit messages (Lemma 6.3).
#[derive(Debug, Clone, Default)]
pub struct DetHypercube {
    /// Router configuration for every iteration.
    pub router: RouterConfig,
    /// Cross-run cache from
    /// [`AllToAllProtocol::attach_codeword_cache`]; when absent the
    /// iterations encode without one.
    shared_cache: Option<SharedCodewordCache>,
}

impl DetHypercube {
    /// Creates the protocol with a router configuration.
    pub fn new(router: RouterConfig) -> Self {
        Self {
            router,
            shared_cache: None,
        }
    }
}

/// `S(u, i)`: ids agreeing with `u` on bit positions `i..=ℓ` (MSB-first),
/// i.e. on the low `ℓ - i + 1` bits. Ascending.
fn s_set(u: usize, i: usize, ell: usize) -> Vec<usize> {
    let low_bits = (ell + 1) - i;
    let mask = (1usize << low_bits) - 1;
    let fixed = u & mask;
    (0..1usize << (ell - low_bits))
        .map(|hi| (hi << low_bits) | fixed)
        .collect()
}

/// `P(u, i)`: ids agreeing with `u` on bit positions `1..i` (MSB-first),
/// i.e. on the high `i - 1` bits. Ascending.
fn p_set(u: usize, i: usize, ell: usize) -> Vec<usize> {
    let low_bits = ell - (i - 1);
    let hi = u >> low_bits;
    (0..1usize << low_bits)
        .map(|lo| (hi << low_bits) | lo)
        .collect()
}

/// The (target, source) id list of `M_i(u)` in ascending (target, source)
/// order — the implicit wire format of an iteration-`i` message set.
fn message_ids(u: usize, i: usize, ell: usize) -> Vec<(usize, usize)> {
    let sources = s_set(u, i, ell);
    let targets = p_set(u, i, ell);
    let mut ids = Vec::with_capacity(sources.len() * targets.len());
    for &t in &targets {
        for &s in &sources {
            ids.push((t, s));
        }
    }
    ids
}

/// The hypercube protocol as a state machine: `ℓ` routed iterations, one
/// step per routing round.
struct HypercubeSession<'a> {
    router: &'a RouterConfig,
    /// Optional cross-run codeword cache; iteration payloads recur rarely,
    /// but the shared all-zero padding chunk always hits.
    cache: Option<SharedCodewordCache>,
    n: usize,
    ell: usize,
    b: usize,
    /// Current iteration `i ∈ 1..=ℓ`.
    i: usize,
    /// state[u]: payloads of M_i(u), aligned with message_ids(u, i, ell).
    state: Vec<Vec<BitVec>>,
    route: RouteSession<'static>,
}

impl<'a> HypercubeSession<'a> {
    fn new(
        proto: &'a DetHypercube,
        net: &Network,
        inst: &'a AllToAllInstance,
    ) -> Result<Self, CoreError> {
        let n = inst.n();
        if n != net.n() {
            return Err(CoreError::invalid("instance size != network size"));
        }
        if !n.is_power_of_two() || n < 2 {
            return Err(CoreError::invalid(format!(
                "DetHypercube requires n to be a power of two, got {n}"
            )));
        }
        let ell = n.trailing_zeros() as usize;
        let b = inst.b();
        let state: Vec<Vec<BitVec>> = (0..n)
            .map(|u| {
                message_ids(u, 1, ell)
                    .into_iter()
                    .map(|(t, s)| {
                        debug_assert_eq!(s, u);
                        inst.message(u, t).clone()
                    })
                    .collect()
            })
            .collect();
        let route = Self::iteration_route(
            net,
            &proto.router,
            proto.shared_cache.as_ref(),
            &state,
            n,
            ell,
            b,
            1,
        )?;
        Ok(Self {
            router: &proto.router,
            cache: proto.shared_cache.clone(),
            n,
            ell,
            b,
            i: 1,
            state,
            route,
        })
    }

    /// Builds iteration `i`'s `k = 2` routing instance and opens its
    /// session.
    #[allow(clippy::too_many_arguments)]
    fn iteration_route(
        net: &Network,
        router: &RouterConfig,
        cache: Option<&SharedCodewordCache>,
        state: &[Vec<BitVec>],
        n: usize,
        ell: usize,
        b: usize,
        i: usize,
    ) -> Result<RouteSession<'static>, CoreError> {
        let bit_shift = ell - i; // MSB-first bit i == LSB bit ell - i
        let half = n / 2; // |M_i(u)| = n, halves of n/2 messages
        let instance = RoutingInstance {
            n,
            payload_bits: half * b,
            messages: (0..n)
                .flat_map(|u| {
                    // Slot 0 = lower-target half (goes to partner with
                    // bit i = 0), slot 1 = upper half.
                    let lower = BitVec::concat(state[u][..half].iter());
                    let upper = BitVec::concat(state[u][half..].iter());
                    let t0 = u & !(1 << bit_shift);
                    let t1 = u | (1 << bit_shift);
                    [
                        SuperMessage {
                            src: u,
                            slot: 0,
                            payload: lower,
                            targets: vec![t0],
                        },
                        SuperMessage {
                            src: u,
                            slot: 1,
                            payload: upper,
                            targets: vec![t1],
                        },
                    ]
                })
                .collect(),
        };
        match cache {
            Some(c) => RouteSession::new_cached(net, instance, router, c.clone()),
            None => RouteSession::new(net, instance, router),
        }
    }
}

impl ProtocolSession for HypercubeSession<'_> {
    fn step(&mut self, net: &mut Network) -> Result<Step, CoreError> {
        let (n, ell, b) = (self.n, self.ell, self.b);
        let Some(routed) = self.route.step(net)? else {
            return Ok(Step::Running);
        };
        // Iteration i's routing finished: rebuild M_{i+1}(v) from the two
        // received halves.
        let i = self.i;
        let bit_shift = ell - i;
        let half = n / 2;
        let mut next: Vec<Vec<BitVec>> = Vec::with_capacity(n);
        for v in 0..n {
            let my_bit = (v >> bit_shift) & 1;
            let partner = v ^ (1 << bit_shift);
            let expected_ids = message_ids(v, i + 1, ell);
            let mut collected: std::collections::HashMap<(usize, usize), BitVec> =
                std::collections::HashMap::with_capacity(expected_ids.len());
            for sender in [v, partner] {
                let payload = routed.delivered[v]
                    .get(&(sender, my_bit))
                    .cloned()
                    .unwrap_or_else(|| BitVec::zeros(half * b));
                // The sender's half ids: sender's iteration-i ids,
                // lower or upper half by my_bit.
                let sender_ids = message_ids(sender, i, ell);
                let half_ids = if my_bit == 0 {
                    &sender_ids[..half]
                } else {
                    &sender_ids[half..]
                };
                for (idx, &(t, s)) in half_ids.iter().enumerate() {
                    collected.insert((t, s), payload.slice(idx * b, (idx + 1) * b));
                }
            }
            next.push(
                expected_ids
                    .iter()
                    .map(|id| collected.remove(id).unwrap_or_else(|| BitVec::zeros(b)))
                    .collect(),
            );
        }
        self.state = next;
        self.i += 1;
        if self.i <= ell {
            self.route = Self::iteration_route(
                net,
                self.router,
                self.cache.as_ref(),
                &self.state,
                n,
                ell,
                b,
                self.i,
            )?;
            return Ok(Step::Running);
        }
        // M_{ℓ+1}(v) = M(V, {v}), sorted by (target = v, source ascending).
        let mut output = AllToAllOutput::empty(n);
        for v in 0..n {
            let ids = message_ids(v, ell + 1, ell);
            debug_assert!(ids.iter().all(|&(t, _)| t == v));
            for (idx, &(_, s)) in ids.iter().enumerate() {
                output.set(v, s, self.state[v][idx].clone());
            }
        }
        Ok(Step::Done(output))
    }
}

impl AllToAllProtocol for DetHypercube {
    fn name(&self) -> Cow<'static, str> {
        Cow::Borrowed("det-hypercube")
    }

    fn attach_codeword_cache(&mut self, cache: SharedCodewordCache) {
        self.shared_cache = Some(cache);
    }

    fn session<'a>(
        &'a self,
        net: &Network,
        inst: &'a AllToAllInstance,
    ) -> Result<Box<dyn ProtocolSession + 'a>, CoreError> {
        Ok(Box::new(HypercubeSession::new(self, net, inst)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdclique_netsim::Adversary;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn set_algebra_matches_lemma() {
        // n = 8, ell = 3.
        assert_eq!(s_set(0b101, 1, 3), vec![0b101]); // S(u,1) = {u}
        assert_eq!(p_set(0b101, 1, 3).len(), 8); // P(u,1) = V
        assert_eq!(s_set(0b101, 4, 3).len(), 8); // S(u, ell+1) = V
        assert_eq!(p_set(0b101, 4, 3), vec![0b101]); // P(u, ell+1) = {u}
                                                     // Sizes: |S| = 2^{i-1}, |P| = 2^{ell-i+1}.
        for i in 1..=4usize {
            assert_eq!(s_set(5, i, 3).len(), 1 << (i - 1));
            assert_eq!(p_set(5, i, 3).len(), 1 << (4 - i));
        }
    }

    #[test]
    fn message_ids_are_sorted_by_target_then_source() {
        let ids = message_ids(3, 2, 3);
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
        assert_eq!(ids.len(), 8);
    }

    #[test]
    fn perfect_without_faults_n8() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let inst = AllToAllInstance::random(8, 2, &mut rng);
        let mut net = Network::new(8, 9, 0.0, Adversary::none());
        let out = DetHypercube::default().run(&mut net, &inst).unwrap();
        assert_eq!(inst.count_errors(&out), 0);
    }

    #[test]
    fn perfect_without_faults_n32() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let inst = AllToAllInstance::random(32, 1, &mut rng);
        let mut net = Network::new(32, 9, 0.0, Adversary::none());
        let out = DetHypercube::default().run(&mut net, &inst).unwrap();
        assert_eq!(inst.count_errors(&out), 0);
    }

    #[test]
    fn rejects_non_power_of_two() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let inst = AllToAllInstance::random(6, 1, &mut rng);
        let mut net = Network::new(6, 9, 0.0, Adversary::none());
        assert!(DetHypercube::default().run(&mut net, &inst).is_err());
    }
}
