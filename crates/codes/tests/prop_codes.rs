//! Property-based tests: decode∘corrupt∘encode identities within radius.

use bdclique_bits::BitVec;
use bdclique_codes::{
    BitCode, ConcatenatedCode, HammingCode, ReedSolomon, RepetitionCode, SymbolCode,
};
use proptest::prelude::*;

/// Strategy: a message of `k` symbols over an alphabet of size `2^bits`.
fn msg_strategy(k: usize, bits: u32) -> impl Strategy<Value = Vec<u16>> {
    prop::collection::vec(0u16..(1 << bits), k)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rs_corrects_any_pattern_within_2e_plus_f(
        msg in msg_strategy(8, 8),
        // positions 0..16 with roles: 0 = clean, 1 = error, 2 = erasure
        roles in prop::collection::vec(0u8..3, 16),
        garbage in prop::collection::vec(1u16..256, 16),
    ) {
        let rs = ReedSolomon::new(8, 16, 8).unwrap();
        let cw = rs.encode(&msg).unwrap();
        let mut recv = cw.clone();
        let mut eras = vec![false; 16];
        let mut e = 0usize;
        let mut f = 0usize;
        for i in 0..16 {
            match roles[i] {
                1 if 2 * (e + 1) + f <= 8 => {
                    recv[i] ^= garbage[i];
                    e += 1;
                }
                2 if 2 * e + (f + 1) <= 8 => {
                    recv[i] = garbage[i] & 0xff;
                    eras[i] = true;
                    f += 1;
                }
                _ => {}
            }
        }
        prop_assert_eq!(rs.decode(&recv, &eras).unwrap(), msg);
    }

    #[test]
    fn rs_bitcode_roundtrip(bools in prop::collection::vec(any::<bool>(), 1..64)) {
        let rs = ReedSolomon::new(8, 16, 8).unwrap();
        let bits = BitVec::from_bools(&bools);
        let cw = rs.encode_bits(&bits).unwrap();
        let out = rs.decode_bits(&cw, &[false; 16], bits.len()).unwrap();
        prop_assert_eq!(out, bits);
    }

    #[test]
    fn hamming_corrects_one_error_any_message(
        msg in msg_strategy(4, 1),
        errpos in 0usize..8,
    ) {
        let code = HammingCode::new();
        let mut cw = code.encode(&msg).unwrap();
        cw[errpos] ^= 1;
        prop_assert_eq!(code.decode(&cw, &[false; 8]).unwrap(), msg);
    }

    #[test]
    fn repetition_majority_holds(
        msg in msg_strategy(4, 8),
        bad in prop::collection::vec((0usize..4, 0usize..2, 1u16..256), 0..4),
    ) {
        // r = 5; corrupt at most 2 copies of each symbol.
        let code = RepetitionCode::new(8, 4, 5).unwrap();
        let mut cw = code.encode(&msg).unwrap();
        for (sym, copy, delta) in bad {
            cw[sym * 5 + copy] ^= delta;
        }
        prop_assert_eq!(code.decode(&cw, &[false; 20]).unwrap(), msg);
    }

    #[test]
    fn concatenated_roundtrip_with_sparse_noise(
        bools in prop::collection::vec(any::<bool>(), 64),
        noise in prop::collection::vec(0usize..256, 0..6),
    ) {
        // [16,8] outer: 6 scattered bit errors hit ≤ 6 inner blocks; at most
        // 3 outer symbols can be corrupted (needs ≥2 hits per nibble), within
        // the outer capacity of 4.
        let code = ConcatenatedCode::new(16, 8).unwrap();
        let msg: Vec<u16> = bools.iter().map(|&b| u16::from(b)).collect();
        let cw = code.encode(&msg).unwrap();
        let mut recv = cw.clone();
        for p in noise {
            recv[p] ^= 1;
        }
        prop_assert_eq!(code.decode(&recv, &vec![false; recv.len()]).unwrap(), msg);
    }

    #[test]
    fn rs_distance_between_codewords(
        m1 in msg_strategy(5, 4),
        m2 in msg_strategy(5, 4),
    ) {
        prop_assume!(m1 != m2);
        let rs = ReedSolomon::new(4, 15, 5).unwrap();
        let c1 = rs.encode(&m1).unwrap();
        let c2 = rs.encode(&m2).unwrap();
        let dist = c1.iter().zip(&c2).filter(|(a, b)| a != b).count();
        prop_assert!(dist >= rs.distance(), "distance {} < {}", dist, rs.distance());
    }
}
