//! Arithmetic modulo the Mersenne prime `p = 2^61 - 1`.

/// The Mersenne prime `2^61 - 1` used as the hash field modulus.
pub const MERSENNE_61: u64 = (1u64 << 61) - 1;

/// Arithmetic in the prime field `F_p` with `p = 2^61 - 1`.
///
/// A zero-sized helper namespace; all methods are associated functions so
/// call sites read `MersenneField::mul(a, b)`.
///
/// # Examples
///
/// ```
/// use bdclique_hash::MersenneField;
///
/// let a = MersenneField::reduce(u64::MAX as u128);
/// let inv = MersenneField::inv(a).unwrap();
/// assert_eq!(MersenneField::mul(a, inv), 1);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MersenneField;

impl MersenneField {
    /// The field modulus.
    pub const P: u64 = MERSENNE_61;

    /// Reduces an arbitrary 128-bit value into `[0, p)`.
    #[inline]
    pub fn reduce(x: u128) -> u64 {
        // 2^61 ≡ 1 (mod p): fold the high bits down twice.
        let p = Self::P as u128;
        let folded = (x & p) + (x >> 61);
        let folded = (folded & p) + (folded >> 61);
        let mut r = folded as u64;
        if r >= Self::P {
            r -= Self::P;
        }
        r
    }

    /// Field addition.
    #[inline]
    pub fn add(a: u64, b: u64) -> u64 {
        debug_assert!(a < Self::P && b < Self::P);
        let mut s = a + b;
        if s >= Self::P {
            s -= Self::P;
        }
        s
    }

    /// Field subtraction.
    #[inline]
    pub fn sub(a: u64, b: u64) -> u64 {
        debug_assert!(a < Self::P && b < Self::P);
        if a >= b {
            a - b
        } else {
            a + Self::P - b
        }
    }

    /// Field multiplication.
    #[inline]
    pub fn mul(a: u64, b: u64) -> u64 {
        debug_assert!(a < Self::P && b < Self::P);
        Self::reduce(a as u128 * b as u128)
    }

    /// Field exponentiation by squaring.
    pub fn pow(mut base: u64, mut exp: u64) -> u64 {
        let mut acc = 1u64;
        base %= Self::P;
        while exp > 0 {
            if exp & 1 == 1 {
                acc = Self::mul(acc, base);
            }
            base = Self::mul(base, base);
            exp >>= 1;
        }
        acc
    }

    /// Multiplicative inverse via Fermat's little theorem.
    ///
    /// Returns `None` for zero, which has no inverse.
    pub fn inv(a: u64) -> Option<u64> {
        if a.is_multiple_of(Self::P) {
            None
        } else {
            Some(Self::pow(a, Self::P - 2))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_handles_extremes() {
        assert_eq!(MersenneField::reduce(0), 0);
        assert_eq!(MersenneField::reduce(MersenneField::P as u128), 0);
        assert_eq!(MersenneField::reduce(MersenneField::P as u128 + 5), 5);
        assert_eq!(
            MersenneField::reduce(u128::MAX),
            MersenneField::reduce(MersenneField::reduce(u128::MAX) as u128)
        );
    }

    #[test]
    fn add_sub_inverse() {
        let a = 123_456_789_012_345;
        let b = MersenneField::P - 17;
        let s = MersenneField::add(a, b);
        assert_eq!(MersenneField::sub(s, b), a);
        assert_eq!(MersenneField::sub(s, a), b);
    }

    #[test]
    fn mul_matches_u128_reference() {
        let pairs = [
            (3u64, 5u64),
            (MersenneField::P - 1, MersenneField::P - 1),
            (1 << 60, (1 << 60) + 12345),
        ];
        for (a, b) in pairs {
            let expect = ((a as u128 * b as u128) % MersenneField::P as u128) as u64;
            assert_eq!(MersenneField::mul(a, b), expect);
        }
    }

    #[test]
    fn pow_and_inv() {
        assert_eq!(
            MersenneField::pow(2, 61),
            MersenneField::reduce(1u128 << 61)
        );
        for a in [1u64, 2, 7, MersenneField::P - 2] {
            let inv = MersenneField::inv(a).unwrap();
            assert_eq!(MersenneField::mul(a, inv), 1, "a = {a}");
        }
        assert_eq!(MersenneField::inv(0), None);
    }
}
