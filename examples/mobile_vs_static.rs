//! The paper's motivating separation (experiment `F.MATCH`): a mobile
//! matching adversary — faulty degree **one**, i.e. α = 1/n — defeats
//! replication-style baselines no matter how many copies they use, while
//! the bounded-degree compilers shrug it off.
//!
//! ```sh
//! cargo run --release --example mobile_vs_static
//! ```

use bdclique::adversary::corruptors::PayloadCorruptor;
use bdclique::adversary::plans::{FixedEdges, RelayPathHunter, RotatingMatching};
use bdclique::adversary::Payload;
use bdclique::core::protocols::{AllToAllProtocol, DetHypercube, NaiveExchange, RelayReplication};
use bdclique::core::AllToAllInstance;
use bdclique::netsim::{Adversary, Network};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn errors(proto: &dyn AllToAllProtocol, n: usize, mobile: bool, seed: u64) -> usize {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let inst = AllToAllInstance::random(n, 1, &mut rng);
    let adversary = if mobile {
        Adversary::non_adaptive(
            RotatingMatching::new(),
            PayloadCorruptor::new(Payload::Flip, seed),
        )
    } else {
        // Static: the same single edge, every round.
        Adversary::non_adaptive(
            FixedEdges::new(vec![vec![(0, 1)]]),
            PayloadCorruptor::new(Payload::Flip, seed),
        )
    };
    let mut net = Network::new(n, 9, 1.0 / 8.0, adversary);
    match proto.run(&mut net, &inst) {
        Ok(out) => inst.count_errors(&out),
        Err(_) => n * n,
    }
}

fn hunter_errors(proto: &dyn AllToAllProtocol, n: usize, seed: u64) -> usize {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let inst = AllToAllInstance::random(n, 1, &mut rng);
    let adversary = Adversary::non_adaptive(
        RelayPathHunter { src: 3, dst: 11 },
        PayloadCorruptor::new(Payload::Flip, seed),
    );
    let mut net = Network::new(n, 9, 1.0 / 8.0, adversary);
    match proto.run(&mut net, &inst) {
        Ok(out) => inst.count_errors(&out),
        Err(_) => n * n,
    }
}

fn main() {
    let n = 32;
    println!("n = {n}; adversary corrupts ONE edge per node per round (α = 1/n)\n");
    println!(
        "{:<24} {:>14} {:>14} {:>14}",
        "protocol", "static errors", "mobile errors", "hunter errors"
    );
    let protocols: Vec<Box<dyn AllToAllProtocol>> = vec![
        Box::new(NaiveExchange),
        Box::new(RelayReplication { copies: 3 }),
        Box::new(RelayReplication { copies: 5 }),
        Box::new(RelayReplication { copies: 9 }),
        Box::new(DetHypercube::default()),
    ];
    for (i, proto) in protocols.iter().enumerate() {
        let static_errs: usize = (0..3).map(|s| errors(proto.as_ref(), n, false, s)).sum();
        let mobile_errs: usize = (0..3)
            .map(|s| errors(proto.as_ref(), n, true, 100 + s))
            .sum();
        let hunter_errs: usize = (0..3)
            .map(|s| hunter_errors(proto.as_ref(), n, 200 + s))
            .sum();
        let _ = i;
        println!(
            "{:<24} {:>14} {:>14} {:>14}",
            proto.name(),
            static_errs,
            mobile_errs,
            hunter_errs
        );
    }
    println!(
        "\nReplication can outvote a static fault but not a mobile one: the\n\
         blind matching hits copies by chance, and the degree-1 path hunter\n\
         kills its target pair deterministically for ANY copy count.\n\
         The hypercube compiler (Thm 1.4) spreads every message across a\n\
         codeword per round and loses nothing — 'almost linearly more\n\
         faults, for free'."
    );
}
