// lint-fixture-as: crates/core/src/protocols/fixture.rs
//! Known-bad: iterating a HashMap in schedule-computing code.

use std::collections::{HashMap, HashSet};

fn order_leaks(map: HashMap<u32, u32>) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for (k, v) in map.iter() {
        out.push((*k, *v));
    }
    out
}

fn keys_leak(seen: HashSet<u32>) -> Vec<u32> {
    seen.iter().copied().collect()
}

fn for_in_leaks(seen: HashSet<u32>) -> u32 {
    let mut acc = 0;
    for v in &seen {
        acc ^= v;
    }
    acc
}
