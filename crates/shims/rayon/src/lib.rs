//! Offline API-subset shim of the [`rayon`](https://crates.io/crates/rayon)
//! crate.
//!
//! Implements the `into_par_iter().map(..).collect()` pipeline the workspace
//! uses, executing on `std::thread::scope` with one chunk per available core.
//! Results are **order-preserving** — element `i` of the output corresponds
//! to element `i` of the input regardless of which thread ran it — which is
//! the property `bdclique-bench` relies on for bit-identical serial/parallel
//! aggregation. There is no work stealing; chunks are statically balanced,
//! which is fine for the embarrassingly parallel trial loops here.

#![forbid(unsafe_code)]

use std::num::NonZeroUsize;

pub mod prelude {
    //! Glob-import surface matching upstream `rayon::prelude::*`.

    pub use crate::{FromParallelIterator, IntoParallelIterator, ParallelIterator};
}

/// Number of worker threads to use for a job of `len` items.
fn workers(len: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    cores.min(len).max(1)
}

/// Types convertible into a parallel iterator.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;

    /// Converts `self` into a parallel pipeline.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::Range<u64> {
    type Item = u64;

    fn into_par_iter(self) -> ParIter<u64> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// A materialized parallel iterator.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// Operations available on a parallel pipeline stage.
pub trait ParallelIterator: Sized {
    /// The element type flowing out of this stage.
    type Item: Send;

    /// Executes the pipeline, collecting into `C` in input order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C;

    /// Maps every element through `f` (executed in parallel at collect time).
    fn map<U, F>(self, f: F) -> ParMap<Self, F>
    where
        U: Send,
        F: Fn(Self::Item) -> U + Send + Sync,
    {
        ParMap { inner: self, f }
    }
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;

    fn collect<C: FromParallelIterator<T>>(self) -> C {
        C::from_ordered_vec(self.items)
    }
}

/// A mapped pipeline stage.
pub struct ParMap<I, F> {
    inner: I,
    f: F,
}

impl<T, U, F> ParallelIterator for ParMap<ParIter<T>, F>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Send + Sync,
{
    type Item = U;

    fn collect<C: FromParallelIterator<U>>(self) -> C {
        let items = self.inner.items;
        let f = &self.f;
        let n_workers = workers(items.len());
        if n_workers <= 1 {
            return C::from_ordered_vec(items.into_iter().map(f).collect());
        }
        let chunk_len = items.len().div_ceil(n_workers);
        // Contiguous chunks, one per worker; joining the handles in spawn
        // order concatenates results back into input order.
        let chunks: Vec<Vec<T>> = {
            let mut chunks = Vec::with_capacity(n_workers);
            let mut rest = items;
            while !rest.is_empty() {
                let tail = rest.split_off(rest.len().min(chunk_len));
                chunks.push(std::mem::replace(&mut rest, tail));
            }
            chunks
        };
        let mapped: Vec<U> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<U>>()))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("rayon shim worker panicked"))
                .collect()
        });
        C::from_ordered_vec(mapped)
    }
}

/// Collection targets for [`ParallelIterator::collect`].
pub trait FromParallelIterator<T> {
    /// Builds the collection from results already in input order.
    fn from_ordered_vec(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_vec(items: Vec<T>) -> Self {
        items
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u64> = (0..0u64).into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn vec_source_works() {
        let out: Vec<String> = vec![1, 2, 3]
            .into_par_iter()
            .map(|x: i32| format!("{x}"))
            .collect();
        assert_eq!(out, vec!["1", "2", "3"]);
    }

    #[test]
    fn actually_runs_on_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let _: Vec<()> = (0..64usize)
            .into_par_iter()
            .map(|_| {
                seen.lock().unwrap().insert(std::thread::current().id());
            })
            .collect();
        // On a multi-core box the scope spawns several workers; on a
        // single-core box one is legal.
        assert!(!seen.lock().unwrap().is_empty());
    }
}
