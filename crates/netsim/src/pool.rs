//! A `Sync` free-list of frame buffers for event-driven executors.
//!
//! The network's `FrameArena` is deliberately single-threaded: it lives on
//! the [`Network`](crate::Network) and is fed on the protocol thread. The
//! event-driven pack executors, however, *build* their prefetched rounds on
//! worker threads where the arena is unreachable, so those frame buffers
//! were allocated fresh every pack. [`FramePool`] closes the loop: the
//! protocol thread pushes a consumed delivery's frame buffers here
//! ([`Network::reclaim_split`](crate::Network::reclaim_split)) while the
//! tables still return to the arena, and worker threads draw zeroed buffers
//! back out — batched through a [`PoolTaker`] so hot send loops touch the
//! lock once per batch, not once per frame.

use bdclique_bits::BitVec;
use std::sync::Mutex;

/// Upper bound on pooled buffers — matches the arena's frame cap (sized for
/// a unit-router scatter round at `n = 4096`); the pool only ever holds
/// what in-flight rounds actually allocated.
const MAX_POOLED: usize = 1 << 22;

/// A shared, thread-safe pool of spent frame buffers.
///
/// Buffers handed out by [`FramePool::take`] are zeroed — indistinguishable
/// from `BitVec::zeros(len)` — so pooling is invisible to consumers, exactly
/// like the arena's recycling guarantee.
#[derive(Debug, Default)]
pub struct FramePool {
    free: Mutex<Vec<BitVec>>,
}

impl FramePool {
    /// An empty pool.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A zeroed buffer of `len` bits, recycled when the pool has one.
    #[must_use]
    pub fn take(&self, len: usize) -> BitVec {
        match self.free.lock().unwrap().pop() {
            Some(mut buf) => {
                buf.reset_zeros(len);
                buf
            }
            None => BitVec::zeros(len),
        }
    }

    /// Returns one spent buffer to the pool.
    pub fn put(&self, frame: BitVec) {
        let mut free = self.free.lock().unwrap();
        if free.len() < MAX_POOLED {
            free.push(frame);
        }
    }

    /// Returns many spent buffers under a single lock acquisition.
    pub fn put_all(&self, frames: impl IntoIterator<Item = BitVec>) {
        let mut free = self.free.lock().unwrap();
        for frame in frames {
            if free.len() >= MAX_POOLED {
                break;
            }
            free.push(frame);
        }
    }

    /// Moves up to `max` pooled buffers into `out` in one lock acquisition.
    pub fn drain_into(&self, out: &mut Vec<BitVec>, max: usize) {
        let mut free = self.free.lock().unwrap();
        let start = free.len().saturating_sub(max);
        out.extend(free.drain(start..));
    }

    /// A batching handle for one worker's send loop: draws buffers from the
    /// pool in chunks and returns unused ones when dropped.
    #[must_use]
    pub fn taker(&self) -> PoolTaker<'_> {
        PoolTaker {
            pool: self,
            stash: Vec::new(),
        }
    }

    /// Current pool occupancy (test observable).
    #[must_use]
    pub fn len(&self) -> usize {
        self.free.lock().unwrap().len()
    }

    /// Whether the pool is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// See [`FramePool::taker`]. One lock acquisition refills a local stash of
/// up to [`PoolTaker::BATCH`] buffers; leftovers flow back on drop.
#[derive(Debug)]
pub struct PoolTaker<'a> {
    pool: &'a FramePool,
    stash: Vec<BitVec>,
}

impl PoolTaker<'_> {
    /// Buffers moved per lock acquisition.
    pub const BATCH: usize = 1024;

    /// A zeroed buffer of `len` bits — from the stash, the pool, or (when
    /// both are dry) a fresh allocation.
    #[must_use]
    pub fn take(&mut self, len: usize) -> BitVec {
        if self.stash.is_empty() {
            self.pool.drain_into(&mut self.stash, Self::BATCH);
        }
        match self.stash.pop() {
            Some(mut buf) => {
                buf.reset_zeros(len);
                buf
            }
            None => BitVec::zeros(len),
        }
    }
}

impl Drop for PoolTaker<'_> {
    fn drop(&mut self) {
        self.pool.put_all(self.stash.drain(..));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_zeroed_buffers() {
        let pool = FramePool::new();
        pool.put(BitVec::from_bools(&[true, true, true]));
        assert_eq!(pool.len(), 1);
        let buf = pool.take(2);
        assert_eq!(
            buf,
            BitVec::zeros(2),
            "pooled buffers must come back zeroed"
        );
        assert!(pool.is_empty());
        // Dry pool falls back to a fresh allocation.
        assert_eq!(pool.take(5), BitVec::zeros(5));
    }

    #[test]
    fn taker_batches_and_returns_leftovers() {
        let pool = FramePool::new();
        pool.put_all((0..10).map(|_| BitVec::from_bools(&[true])));
        {
            let mut taker = pool.taker();
            let a = taker.take(3);
            assert_eq!(a, BitVec::zeros(3));
            // The whole pool moved into the stash in one drain.
            assert!(pool.is_empty());
        }
        // Dropping the taker returns the 9 unused buffers.
        assert_eq!(pool.len(), 9);
    }

    #[test]
    fn pool_is_sync_across_threads() {
        let pool = std::sync::Arc::new(FramePool::new());
        pool.put_all((0..64).map(|_| BitVec::zeros(8)));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pool = std::sync::Arc::clone(&pool);
                std::thread::spawn(move || {
                    let mut taker = pool.taker();
                    for _ in 0..32 {
                        let buf = taker.take(4);
                        assert_eq!(buf, BitVec::zeros(4));
                        pool.put(buf);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
