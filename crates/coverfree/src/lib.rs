//! `(r, δ)`-cover-free set families w.r.t. a constraint collection `H`
//! (Definition 7, Lemma 4.3 and Appendix A of the paper).
//!
//! The resilient routing scheme assigns each super-message `(u, j)` a
//! receiver set `A_{(u,j)} ⊆ [N]`. Cover-freeness w.r.t. the collection
//! `H = {INind(u)} ∪ {OUTind(v)}` guarantees that for every constraint
//! tuple, each member set keeps at least a `(1-δ)` fraction of its elements
//! outside the union of the other members — which bounds the positions lost
//! to the `InLoad`/`OutLoad` > 1 filters.
//!
//! **Construction** (the paper's randomized construction): partition `[N]`
//! into `L` consecutive groups and let every set pick one uniform element
//! per group. **Derandomization substitute** (see `DESIGN.md`,
//! substitution 3): instead of Harris' deterministic LLL we verify the
//! constructed family against `H` and retry over a fixed public seed
//! sequence; all nodes run the identical procedure and therefore compute the
//! identical family with no communication. The expected number of tries is
//! `O(1)` by the paper's union bound; the verifier makes the procedure
//! Las-Vegas-deterministic.

// Dense linear-algebra and protocol code walks several same-length arrays
// by explicit index; clippy's iterator rewrites would obscure the paper's
// formulas, so this style lint is opted out crate-wide.
#![allow(clippy::needless_range_loop)]
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::error::Error;
use std::fmt;

/// Parameters of a cover-free family construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoverFreeParams {
    /// Ground set size `N` (elements are `0..n`).
    pub n: usize,
    /// Number of sets `m` in the family.
    pub m: usize,
    /// Cover parameter `r`: tuples in `H` have at most `r + 1` members.
    pub r: usize,
    /// Number of groups = the size `L` of every set.
    pub set_size: usize,
}

impl CoverFreeParams {
    /// The paper's sizing (Lemma 4.3): `L = ⌊δN / (4(r+1))⌋` with group size
    /// `⌊4(r+1)/δ⌋`, expressed here with `delta` as a rational `num/den`.
    ///
    /// Returns `None` when the resulting set size would be zero.
    pub fn paper_sizing(
        n: usize,
        m: usize,
        r: usize,
        delta_num: usize,
        delta_den: usize,
    ) -> Option<Self> {
        let l = n * delta_num / (4 * (r + 1) * delta_den);
        (l > 0).then_some(Self {
            n,
            m,
            r,
            set_size: l,
        })
    }

    /// Group size implied by `n` and `set_size` (elements per group).
    pub fn group_size(&self) -> usize {
        self.n / self.set_size
    }

    fn validate(&self) -> Result<(), CoverFreeError> {
        if self.set_size == 0 || self.m == 0 || self.n == 0 {
            return Err(CoverFreeError::Degenerate);
        }
        if self.group_size() == 0 {
            return Err(CoverFreeError::GroupTooSmall {
                n: self.n,
                set_size: self.set_size,
            });
        }
        Ok(())
    }
}

/// Errors from family construction.
#[derive(Debug, Clone, PartialEq)]
pub enum CoverFreeError {
    /// Zero-sized parameter.
    Degenerate,
    /// More groups requested than ground elements.
    GroupTooSmall {
        /// Ground set size.
        n: usize,
        /// Requested set size.
        set_size: usize,
    },
    /// No seed within the budget produced a family meeting the δ bound.
    SeedBudgetExhausted {
        /// Number of seeds tried.
        tries: u64,
        /// Best (smallest) worst-case cover fraction observed. Verification
        /// stops scanning a candidate once it exceeds δ, so this is a lower
        /// bound on each rejected candidate's true fraction — a diagnostic,
        /// not an exact measurement.
        best_fraction: f64,
    },
}

impl fmt::Display for CoverFreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoverFreeError::Degenerate => write!(f, "degenerate cover-free parameters"),
            CoverFreeError::GroupTooSmall { n, set_size } => {
                write!(f, "set size {set_size} too large for ground set {n}")
            }
            CoverFreeError::SeedBudgetExhausted {
                tries,
                best_fraction,
            } => write!(
                f,
                "no verified family within {tries} seeds (best fraction {best_fraction:.3})"
            ),
        }
    }
}

impl Error for CoverFreeError {}

/// A constructed and verified cover-free family.
///
/// # Examples
///
/// ```
/// use bdclique_coverfree::{CoverFreeFamily, CoverFreeParams};
///
/// let params = CoverFreeParams { n: 256, m: 16, r: 1, set_size: 32 };
/// // Constraints: pairs of sets that must not cover each other.
/// let h: Vec<Vec<u32>> = (0..8).map(|i| vec![2 * i, 2 * i + 1]).collect();
/// let fam = CoverFreeFamily::build(params, &h, 0.5, 0, 64).unwrap();
/// assert_eq!(fam.set(0).len(), 32);
/// assert!(fam.worst_cover_fraction() <= 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct CoverFreeFamily {
    params: CoverFreeParams,
    /// `choices[i][g]` = offset of set `i`'s element within group `g`.
    choices: Vec<Vec<u32>>,
    worst_fraction: f64,
    seed_used: u64,
}

impl CoverFreeFamily {
    /// Builds a family with the randomized construction, verifying the
    /// `(r, δ)` property w.r.t. `h` and retrying over seeds
    /// `seed, seed+1, …` (at most `max_tries`).
    ///
    /// Every tuple of `h` contains indices `< m`; tuples longer than `r + 1`
    /// are rejected by a panic in debug builds and verified as-is otherwise.
    ///
    /// # Errors
    ///
    /// Parameter validation errors, or
    /// [`CoverFreeError::SeedBudgetExhausted`] when no seed verifies.
    pub fn build(
        params: CoverFreeParams,
        h: &[Vec<u32>],
        delta: f64,
        seed: u64,
        max_tries: u64,
    ) -> Result<Self, CoverFreeError> {
        params.validate()?;
        debug_assert!(
            h.iter().all(|t| t.len() <= params.r + 1),
            "constraint tuple exceeds r+1 members"
        );
        debug_assert!(
            h.iter().flatten().all(|&i| (i as usize) < params.m),
            "constraint references set index out of range"
        );
        let mut best_fraction = f64::INFINITY;
        for attempt in 0..max_tries.max(1) {
            let candidate = Self::construct(params, seed.wrapping_add(attempt));
            let worst = candidate_worst_fraction(&candidate, params, h, delta);
            if worst <= delta {
                return Ok(Self {
                    params,
                    choices: candidate,
                    worst_fraction: worst,
                    seed_used: seed.wrapping_add(attempt),
                });
            }
            best_fraction = best_fraction.min(worst);
        }
        Err(CoverFreeError::SeedBudgetExhausted {
            tries: max_tries.max(1),
            best_fraction,
        })
    }

    fn construct(params: CoverFreeParams, seed: u64) -> Vec<Vec<u32>> {
        let g = params.group_size() as u32;
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x00c0_ffee_5eed);
        (0..params.m)
            .map(|_| (0..params.set_size).map(|_| rng.gen_range(0..g)).collect())
            .collect()
    }

    /// The parameters this family was built with.
    pub fn params(&self) -> CoverFreeParams {
        self.params
    }

    /// The seed that produced the verified family.
    pub fn seed_used(&self) -> u64 {
        self.seed_used
    }

    /// The measured worst cover fraction over all constraints (≤ the δ the
    /// family was built with). Protocols use this measured value in their
    /// decode-margin accounting.
    pub fn worst_cover_fraction(&self) -> f64 {
        self.worst_fraction
    }

    /// Number of sets.
    pub fn len(&self) -> usize {
        self.params.m
    }

    /// Whether the family has no sets.
    pub fn is_empty(&self) -> bool {
        self.params.m == 0
    }

    /// The elements of set `i`, in increasing order (one per group).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn set(&self, i: usize) -> Vec<u32> {
        let g = self.params.group_size() as u32;
        self.choices[i]
            .iter()
            .enumerate()
            .map(|(grp, &off)| grp as u32 * g + off)
            .collect()
    }

    /// The element set `i` picks inside group `grp`.
    pub fn element(&self, i: usize, grp: usize) -> u32 {
        let g = self.params.group_size() as u32;
        grp as u32 * g + self.choices[i][grp]
    }
}

/// Worst-case fraction of a member set covered by the union of the other
/// members, over all `(tuple, member)` pairs of `h`.
///
/// Bails out as soon as the running worst exceeds `bail_above`: a candidate
/// already over the δ bound is rejected whatever the remaining tuples say,
/// and on dense constraint collections (e.g. the `k ≈ √n` waves the router
/// probes before falling back to the unit engine) the full scan is the
/// dominant cost of discovering infeasibility. Pass `f64::INFINITY` for an
/// exact measurement.
fn candidate_worst_fraction(
    choices: &[Vec<u32>],
    params: CoverFreeParams,
    h: &[Vec<u32>],
    bail_above: f64,
) -> f64 {
    let l = params.set_size;
    let mut worst = 0f64;
    for tuple in h {
        for (a_pos, &a) in tuple.iter().enumerate() {
            let mut covered = 0usize;
            for grp in 0..l {
                let mine = choices[a as usize][grp];
                let hit = tuple
                    .iter()
                    .enumerate()
                    .any(|(b_pos, &b)| b_pos != a_pos && choices[b as usize][grp] == mine);
                if hit {
                    covered += 1;
                }
            }
            worst = worst.max(covered as f64 / l as f64);
            if worst > bail_above {
                return worst;
            }
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disjoint_pairs_h(m: usize) -> Vec<Vec<u32>> {
        (0..m / 2)
            .map(|i| vec![2 * i as u32, 2 * i as u32 + 1])
            .collect()
    }

    #[test]
    fn builds_and_verifies_simple_family() {
        let params = CoverFreeParams {
            n: 128,
            m: 8,
            r: 1,
            set_size: 16,
        };
        let fam = CoverFreeFamily::build(params, &disjoint_pairs_h(8), 0.5, 0, 32).unwrap();
        assert_eq!(fam.len(), 8);
        for i in 0..8 {
            let s = fam.set(i);
            assert_eq!(s.len(), 16);
            // One element per group, in order.
            for (grp, &e) in s.iter().enumerate() {
                assert!(e as usize >= grp * 8 && (e as usize) < (grp + 1) * 8);
            }
        }
    }

    #[test]
    fn verified_fraction_is_honest() {
        let params = CoverFreeParams {
            n: 512,
            m: 32,
            r: 3,
            set_size: 32,
        };
        let h: Vec<Vec<u32>> = (0..8).map(|i| (4 * i..4 * i + 4).collect()).collect();
        let fam = CoverFreeFamily::build(params, &h, 0.5, 7, 64).unwrap();
        // Recheck the reported fraction independently (exact, no bail).
        let measured = candidate_worst_fraction(&fam.choices, params, &h, f64::INFINITY);
        assert!((measured - fam.worst_cover_fraction()).abs() < 1e-12);
        assert!(measured <= 0.5);
    }

    #[test]
    fn deterministic_given_same_inputs() {
        let params = CoverFreeParams {
            n: 128,
            m: 8,
            r: 1,
            set_size: 16,
        };
        let h = disjoint_pairs_h(8);
        let a = CoverFreeFamily::build(params, &h, 0.5, 3, 16).unwrap();
        let b = CoverFreeFamily::build(params, &h, 0.5, 3, 16).unwrap();
        assert_eq!(a.seed_used(), b.seed_used());
        for i in 0..8 {
            assert_eq!(a.set(i), b.set(i));
        }
    }

    #[test]
    fn impossible_delta_exhausts_budget() {
        // Two identical constraint members force nonzero overlap with group
        // size 1 (every set = all of [n]): delta 0 is unachievable.
        let params = CoverFreeParams {
            n: 16,
            m: 2,
            r: 1,
            set_size: 16, // group size 1 => all sets identical
        };
        let h = vec![vec![0u32, 1]];
        let err = CoverFreeFamily::build(params, &h, 0.01, 0, 4).unwrap_err();
        assert!(matches!(err, CoverFreeError::SeedBudgetExhausted { .. }));
    }

    #[test]
    fn paper_sizing_matches_formula() {
        // N = 1024, r+1 = 4, delta = 1/2: L = 1024 * 1 / (4*4*2) = 32.
        let p = CoverFreeParams::paper_sizing(1024, 64, 3, 1, 2).unwrap();
        assert_eq!(p.set_size, 32);
        assert_eq!(p.group_size(), 32);
        assert!(CoverFreeParams::paper_sizing(16, 4, 63, 1, 2).is_none());
    }

    #[test]
    fn rejects_degenerate_parameters() {
        let bad = CoverFreeParams {
            n: 8,
            m: 4,
            r: 1,
            set_size: 16,
        };
        assert!(matches!(
            CoverFreeFamily::build(bad, &[], 0.5, 0, 4),
            Err(CoverFreeError::GroupTooSmall { .. })
        ));
    }

    #[test]
    fn empty_h_always_verifies() {
        let params = CoverFreeParams {
            n: 64,
            m: 4,
            r: 0,
            set_size: 8,
        };
        let fam = CoverFreeFamily::build(params, &[], 0.0, 0, 1).unwrap();
        assert_eq!(fam.worst_cover_fraction(), 0.0);
    }

    #[test]
    fn expected_overlap_matches_theory() {
        // For r = 1 (pairs) and group size g, the expected per-group
        // collision probability is 1/g; verify the measured fraction is in
        // the right ballpark (< 3/g with sets of 64 groups).
        let params = CoverFreeParams {
            n: 1024,
            m: 16,
            r: 1,
            set_size: 64, // g = 16
        };
        let h = disjoint_pairs_h(16);
        let fam = CoverFreeFamily::build(params, &h, 3.0 / 16.0, 0, 64).unwrap();
        assert!(fam.worst_cover_fraction() <= 3.0 / 16.0);
    }
}
