//! Shared randomness carried on the wire as bit strings.
//!
//! In the paper, node `v1` samples random strings `R1, R2, R3` and broadcasts
//! them; every node then *locally and identically* derives hash functions,
//! partitions, and LDC query sets from the received string. This module
//! provides that derivation: a [`SharedRandomness`] wraps a seed string and
//! hands out deterministic, label-separated RNG streams.

use bdclique_bits::BitVec;
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Deterministic expansion of a broadcast seed string into derived RNGs.
///
/// Two nodes holding equal seed strings derive byte-identical randomness for
/// equal labels, which is exactly the property the compilers need after
/// broadcasting `R1`/`R2`/`R3`. Labels separate independent uses (partition,
/// sketch hashes, LDC queries) so protocols cannot accidentally correlate
/// them.
///
/// # Examples
///
/// ```
/// use bdclique_bits::BitVec;
/// use bdclique_hash::SharedRandomness;
/// use rand::RngCore;
///
/// let seed = BitVec::from_fn(128, |i| i % 3 == 0);
/// let a = SharedRandomness::from_bits(&seed).rng("partition").next_u64();
/// let b = SharedRandomness::from_bits(&seed).rng("partition").next_u64();
/// let c = SharedRandomness::from_bits(&seed).rng("sketch").next_u64();
/// assert_eq!(a, b);
/// assert_ne!(a, c);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedRandomness {
    seed: [u8; 32],
}

impl SharedRandomness {
    /// Number of bits a fresh seed string carries on the wire.
    pub const SEED_BITS: usize = 256;

    /// Samples a fresh seed string of [`Self::SEED_BITS`] bits — what node
    /// `v1` does before broadcasting.
    pub fn generate(rng: &mut impl Rng) -> BitVec {
        BitVec::from_fn(Self::SEED_BITS, |_| rng.gen())
    }

    /// Builds shared randomness from a received seed string.
    ///
    /// Strings shorter than 32 bytes are zero-extended; longer ones are
    /// folded in by XOR so that the entire string matters.
    pub fn from_bits(bits: &BitVec) -> Self {
        let mut seed = [0u8; 32];
        for (i, byte) in bits.to_bytes().into_iter().enumerate() {
            seed[i % 32] ^= byte;
        }
        // Mix in the length so prefixes of each other differ.
        let len = bits.len() as u64;
        for (i, b) in len.to_le_bytes().into_iter().enumerate() {
            seed[24 + i] ^= b;
        }
        Self { seed }
    }

    /// Returns a deterministic RNG stream for the given label.
    pub fn rng(&self, label: &str) -> ChaCha8Rng {
        let mut seed = self.seed;
        // Fold the label into the seed with a simple FNV-style mix; labels in
        // this workspace are short static strings, not attacker controlled.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        for (i, b) in h.to_le_bytes().into_iter().enumerate() {
            seed[i] ^= b;
        }
        ChaCha8Rng::from_seed(seed)
    }

    /// Derives `count` uniform samples in `[0, range)` for the given label.
    ///
    /// # Panics
    ///
    /// Panics if `range == 0`.
    pub fn uniform_samples(&self, label: &str, count: usize, range: u64) -> Vec<u64> {
        assert!(range > 0, "range must be positive");
        let mut rng = self.rng(label);
        (0..count).map(|_| rng.gen_range(0..range)).collect()
    }

    /// Derives a fixed-length bit string for the given label (e.g. an LDC
    /// decoding random string).
    pub fn bit_string(&self, label: &str, len: usize) -> BitVec {
        let mut rng = self.rng(label);
        BitVec::from_fn(len, |_| rng.next_u32() & 1 == 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn seed_bits(tag: u64) -> BitVec {
        let mut rng = ChaCha8Rng::seed_from_u64(tag);
        SharedRandomness::generate(&mut rng)
    }

    #[test]
    fn same_seed_same_streams() {
        let bits = seed_bits(3);
        let a = SharedRandomness::from_bits(&bits);
        let b = SharedRandomness::from_bits(&bits);
        assert_eq!(
            a.uniform_samples("x", 16, 100),
            b.uniform_samples("x", 16, 100)
        );
        assert_eq!(a.bit_string("y", 77), b.bit_string("y", 77));
    }

    #[test]
    fn labels_separate_streams() {
        let sr = SharedRandomness::from_bits(&seed_bits(4));
        assert_ne!(
            sr.uniform_samples("a", 16, 1 << 30),
            sr.uniform_samples("b", 16, 1 << 30)
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = SharedRandomness::from_bits(&seed_bits(1));
        let b = SharedRandomness::from_bits(&seed_bits(2));
        assert_ne!(
            a.uniform_samples("x", 16, 1 << 30),
            b.uniform_samples("x", 16, 1 << 30)
        );
    }

    #[test]
    fn length_is_mixed_in() {
        let mut short = BitVec::zeros(64);
        short.set(0, true);
        let mut long = BitVec::zeros(128);
        long.set(0, true);
        let a = SharedRandomness::from_bits(&short);
        let b = SharedRandomness::from_bits(&long);
        assert_ne!(a.bit_string("z", 64), b.bit_string("z", 64));
    }

    #[test]
    fn samples_stay_in_range() {
        let sr = SharedRandomness::from_bits(&seed_bits(9));
        for s in sr.uniform_samples("r", 1000, 17) {
            assert!(s < 17);
        }
    }
}
