// lint-fixture-as: crates/core/src/fixture.rs
//! Known-bad: `unsafe` outside crates/shims is denied outright.

fn sneaky(bytes: &[u8]) -> u32 {
    // SAFETY: a comment does not help — unsafe is banned here entirely.
    unsafe { *(bytes.as_ptr() as *const u32) }
}
