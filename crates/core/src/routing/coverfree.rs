//! The cover-free parallel routing engine (Section 4.2 of the paper).
//!
//! All `k` super-messages per node route simultaneously: each message
//! `(u, j)` gets a receiver set `A_{(u,j)}` drawn from a `(k-1, δ)`-cover-free
//! family w.r.t. `H = {INind(u)}_u ∪ {OUTind(v)}_v` (Eq. (2)). Round 1 sends
//! codeword symbols to receiver-set members under the `InLoad = 1` filter;
//! round 2 forwards them to targets under the `OutLoad = 1` filter.
//!
//! Two refinements over the paper's analysis, both noted in `DESIGN.md`:
//!
//! * Overlap positions dropped by the load filters are *computable by
//!   every node* from public data, so the decoder treats them as **known
//!   erasures** instead of errors — doubling their budget efficiency
//!   relative to Lemma 4.6's accounting.
//! * The decode margin (Lemma 4.5's inequality) is checked *numerically* at
//!   construction time from the verified family's measured cover fraction;
//!   infeasible parameter combinations are rejected before any round runs,
//!   which is what lets [`super::RoutingMode::Auto`] fall back cleanly.
//!
//! With [`RouterConfig::event_driven`] the engine runs on the same
//! event-driven pack executor as the unit engine (see
//! [`super::unit`]'s module docs): round-1 codeword encoding and frame
//! assembly for upcoming chunk packs are prefetched as [`crate::exec`] jobs
//! posting arena-free batches onto a [`MessageBus`] keyed by virtual
//! delivery time, and round-2 decoding folds in asynchronously. Exchanges
//! stay serialized in virtual-round order, so wire behavior is bit-identical
//! to the lockstep path.

use super::{
    absorbed_error_budget, check_budget, empty_instance_code, encode_chunks, lane_symbol,
    map_units, payload_chunk, EngineUsed, Inst, RelayGrid, RouterConfig, RoutingInstance,
    RoutingOutput, RoutingReport, SharedCodewordCache,
};
use crate::error::CoreError;
use crate::exec::{self, Job};
use bdclique_bits::BitVec;
use bdclique_codes::{BitCode, ReedSolomon};
use bdclique_coverfree::{CoverFreeFamily, CoverFreeParams};
use bdclique_netsim::{Delivery, FramePool, MessageBus, Network, Traffic};
use bdclique_snapshot::{Dec, Enc};
use std::borrow::Cow;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

pub(crate) struct CfParams {
    code: ReedSolomon,
    l: usize,
    cap_bits: usize,
    chunks: usize,
    slot: usize,
    lanes: usize,
    /// Receiver set (ascending node ids) per message.
    sets: Vec<Vec<u32>>,
    /// `InLoad(u, w)`, row-major.
    in_load: Vec<u16>,
    /// `OutLoad(w, v)`, row-major.
    out_load: Vec<u16>,
}

impl CfParams {
    /// Parameters for the zero-message instance: nothing is encoded,
    /// relayed, or decoded, so no margin, family, or bandwidth constraint
    /// applies (see [`empty_instance_code`]).
    fn empty(cfg: &RouterConfig) -> Result<Self, CoreError> {
        let (code, slot) = empty_instance_code(cfg)?;
        Ok(Self {
            code,
            l: 2,
            cap_bits: cfg.symbol_bits as usize,
            chunks: 0,
            slot,
            lanes: 1,
            sets: Vec::new(),
            in_load: Vec::new(),
            out_load: Vec::new(),
        })
    }
}

pub(crate) fn derive_params(
    net: &Network,
    instance: &RoutingInstance,
    cfg: &RouterConfig,
) -> Result<CfParams, CoreError> {
    let n = instance.n;
    let m = cfg.symbol_bits;
    if !(2..=8).contains(&m) {
        return Err(CoreError::invalid("symbol_bits must be in 2..=8"));
    }
    let slot = m as usize + 1;
    if net.bandwidth() < slot {
        return Err(CoreError::infeasible(format!(
            "bandwidth {} < wire slot {}",
            net.bandwidth(),
            slot
        )));
    }
    let k_src = instance.max_source_multiplicity();
    let k_tgt = instance.max_target_multiplicity();
    let k = k_src.max(k_tgt).max(1);

    // Group size controls the per-group collision probability (~(k-1)/group
    // per other set); default keeps the expected cover fraction near 1/8.
    let group = cfg
        .cf_group_size
        .unwrap_or((8 * k.saturating_sub(1)).max(4));
    if group < 2 || n / group == 0 {
        return Err(CoreError::infeasible(format!(
            "group size {group} invalid for n = {n}"
        )));
    }
    let l = (n / group).min((1usize << m) - 1);
    if l < 2 {
        return Err(CoreError::infeasible(format!(
            "receiver sets of size {l} are too small"
        )));
    }

    // Constraint collection H: per-source slots and per-target slots (Eq. 2).
    let mut in_ind: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut out_ind: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (idx, msg) in instance.messages.iter().enumerate() {
        in_ind[msg.src].push(idx as u32);
        let mut uniq = msg.targets.clone();
        uniq.sort_unstable();
        uniq.dedup();
        for t in uniq {
            out_ind[t].push(idx as u32);
        }
    }
    let h: Vec<Vec<u32>> = in_ind
        .into_iter()
        .chain(out_ind)
        .filter(|t| t.len() >= 2)
        .collect();

    let params = CoverFreeParams {
        n,
        m: instance.messages.len(),
        r: k.saturating_sub(1),
        set_size: l,
    };
    let family = CoverFreeFamily::build(params, &h, cfg.cf_delta, 0xbdc11e, cfg.cf_seed_tries)
        .map_err(|e| CoreError::infeasible(format!("cover-free family: {e}")))?;
    let num_msgs = instance.messages.len();
    let sets: Vec<Vec<u32>> = (0..num_msgs).map(|i| family.set(i)).collect();

    // Load maps (public data: every node computes these identically).
    let mut in_load = vec![0u16; n * n];
    for (idx, msg) in instance.messages.iter().enumerate() {
        for &w in &sets[idx] {
            in_load[msg.src * n + w as usize] += 1;
        }
    }
    let mut out_load = vec![0u16; n * n];
    for (idx, msg) in instance.messages.iter().enumerate() {
        let mut uniq = msg.targets.clone();
        uniq.sort_unstable();
        uniq.dedup();
        for &v in &uniq {
            for &w in &sets[idx] {
                out_load[w as usize * n + v] += 1;
            }
        }
    }

    // Exact worst-case erasure count: positions lost to either load filter,
    // maximized over (message, target) pairs. This replaces Lemma 4.5's
    // δ-based bound with the measured quantity.
    let mut worst_erasures = 0usize;
    for (idx, msg) in instance.messages.iter().enumerate() {
        for &v in &msg.targets {
            if v == msg.src {
                continue;
            }
            let lost = sets[idx]
                .iter()
                .filter(|&&w| {
                    in_load[msg.src * n + w as usize] != 1 || out_load[w as usize * n + v] != 1
                })
                .count();
            worst_erasures = worst_erasures.max(lost);
        }
    }

    // Decode margin: per codeword, adversarial errors ≤ ⌊αn⌋ per round (at
    // the source in round 1, at the target in round 2) + slack; filtered
    // positions are known erasures. Need 2e + f < L - k_rs + 1.
    let e_allow = absorbed_error_budget(net, cfg.extra_error_slack);
    if l <= 2 * e_allow + worst_erasures {
        return Err(CoreError::infeasible(format!(
            "cover-free margin fails: L = {l}, need > 2·{e_allow} + {worst_erasures} erasures"
        )));
    }
    let k_rs = l - 2 * e_allow - worst_erasures;
    let code = ReedSolomon::new(m, l, k_rs)
        .map_err(|e| CoreError::infeasible(format!("RS construction: {e}")))?;
    let cap_bits = k_rs * m as usize;
    let chunks = instance.payload_bits.div_ceil(cap_bits).max(1);
    let lanes = (net.bandwidth() / slot).max(1);
    Ok(CfParams {
        code,
        l,
        cap_bits,
        chunks,
        slot,
        lanes,
        sets,
        in_load,
        out_load,
    })
}

/// The session's immutable routing plan, shared with event-mode background
/// jobs via `Arc` (the cover-free analogue of the unit engine's `UnitPlan`).
struct CfPlan {
    params: CfParams,
    symbol_bits: u32,
    /// Deduplicated target lists, computed once. All per-round loops
    /// iterate messages × receiver-set positions — O(m·L) work proportional
    /// to the frames actually sent, never an n² relay/target table scan
    /// (the former `relay_msg`/`target_msg` matrices alone were 2·n² words
    /// — 256 MiB at n = 4096).
    uniq_targets: Vec<Vec<usize>>,
    chunk_ids: Vec<usize>,
}

/// Which half of a chunk pack the session will execute next.
enum CfPhase {
    /// Sources scatter to receiver sets (InLoad filter).
    Round1,
    /// Relays forward to targets (OutLoad filter), holding the
    /// [`RelayGrid`] gathered after round 1: one contiguous lane-major
    /// buffer addressed `(lane, msg, pos)` where `pos` indexes the
    /// message's receiver set (all sets have size `L`, so rows are
    /// uniform).
    Round2 { relay: RelayGrid },
}

/// What one round-1 prefetch job produces: the pack's codeword symbols
/// (`[msg][lane][pos]`) and its fully assembled traffic batch.
type CfEncodeResult = Result<(Vec<Vec<Vec<u16>>>, Traffic), CoreError>;

/// One decoded unit: `((target, msg_idx, chunk), bits, decode_failed)`.
type CfDecodedUnit = ((usize, usize, usize), BitVec, bool);

/// What one background decode job produces: decoded units plus the consumed
/// delivery, handed back for main-thread arena reclaim.
type CfDecodeBatch = (Vec<CfDecodedUnit>, Delivery);

/// Round-1 prefetch depth; see the unit engine's `PREFETCH_PACKS`.
const PREFETCH_PACKS: usize = 2;

/// Decode jobs allowed in flight before the oldest is folded.
const DECODES_IN_FLIGHT: usize = 2;

/// Per-session event-executor state (see [`super::unit`]'s module docs).
struct CfEventState {
    bus: MessageBus,
    encodes: VecDeque<(usize, Job<CfEncodeResult>)>,
    next_dispatch: usize,
    decodes: VecDeque<Job<CfDecodeBatch>>,
    n: usize,
    bandwidth: usize,
    /// `Sync` free-list of frame buffers shared with the prefetch jobs (the
    /// arena is not `Sync`); delivered frames recycle into later prefetches.
    pool: Arc<FramePool>,
}

/// Encodes one chunk pack and materializes its round-1 traffic in ascending
/// `(src, relay)` order — the single builder behind the lockstep path
/// (frames from the network arena) and the event-mode prefetch jobs
/// (arena-free zeroed buffers), so the two cannot drift apart.
fn build_round1(
    instance: &RoutingInstance,
    plan: &CfPlan,
    cache: Option<&SharedCodewordCache>,
    parallel: bool,
    pack: &[usize],
    mut traffic: Traffic,
    mut frame_buffer: impl FnMut(usize) -> BitVec,
) -> CfEncodeResult {
    let params = &plan.params;
    let n = instance.n;
    // ---- Lazy per-pack encode (cache-aware): only the pack's chunks are
    // materialized, one message per fan-out unit.
    let jobs: Vec<Vec<BitVec>> = instance
        .messages
        .iter()
        .map(|msg| {
            pack.iter()
                .map(|&chunk| payload_chunk(&msg.payload, chunk, params.cap_bits))
                .collect()
        })
        .collect();
    let pack_cw: Vec<Vec<Vec<u16>>> = encode_chunks(parallel, &params.code, cache, jobs)?;

    // ---- Round 1: sources scatter to receiver sets. Frames are assembled
    // in ascending (src, relay) order so the sparse substrate's append
    // fast-path applies and the send sequence never depends on hash
    // iteration order.
    let mut frames: BTreeMap<(usize, usize), BitVec> = BTreeMap::new();
    for (lane, _) in pack.iter().enumerate() {
        for (idx, msg) in instance.messages.iter().enumerate() {
            for (pos, &w) in params.sets[idx].iter().enumerate() {
                let w = w as usize;
                if params.in_load[msg.src * n + w] != 1 {
                    continue; // dropped: known erasure everywhere
                }
                if w == msg.src {
                    continue; // the source keeps its own symbol
                }
                let sym = pack_cw[idx][lane][pos];
                let frame = frames
                    .entry((msg.src, w))
                    .or_insert_with(|| frame_buffer(params.lanes * params.slot));
                frame.set(lane * params.slot, true);
                frame.write_uint(lane * params.slot + 1, plan.symbol_bits, sym as u64);
            }
        }
    }
    for ((from, to), frame) in frames {
        traffic.send(from, to, frame);
    }
    Ok((pack_cw, traffic))
}

/// Decodes one chunk pack at its targets — one unit per
/// `(lane, msg, target)`, fanned out via [`map_units`]; results are keyed
/// `(target, msg_idx, chunk)` so folding is order-independent. Shared by
/// the lockstep path and the event-mode background jobs.
fn decode_pack(
    instance: &RoutingInstance,
    plan: &CfPlan,
    parallel: bool,
    pack: &[usize],
    relay: &RelayGrid,
    delivery: &Delivery,
) -> Vec<CfDecodedUnit> {
    let params = &plan.params;
    let n = instance.n;
    let mut units: Vec<(usize, usize, usize, usize)> = Vec::new(); // (lane, chunk, idx, v)
    for (lane, &chunk) in pack.iter().enumerate() {
        for (idx, msg) in instance.messages.iter().enumerate() {
            for &v in &plan.uniq_targets[idx] {
                if v != msg.src {
                    units.push((lane, chunk, idx, v));
                }
            }
        }
    }
    map_units(parallel, units, |(lane, chunk, idx, v)| {
        let msg = &instance.messages[idx];
        let mut received = vec![0u16; params.l];
        let mut erasures = vec![false; params.l];
        for (pos, &w) in params.sets[idx].iter().enumerate() {
            let w = w as usize;
            if params.in_load[msg.src * n + w] != 1 || params.out_load[w * n + v] != 1 {
                erasures[pos] = true; // known filter erasure
                continue;
            }
            let val = if w == v {
                relay.get(lane, idx, pos)
            } else {
                delivery
                    .received(v, w)
                    .and_then(|f| lane_symbol(f, lane, params.slot, plan.symbol_bits))
            };
            match val {
                Some(sym) => received[pos] = sym,
                None => erasures[pos] = true,
            }
        }
        match params
            .code
            .decode_bits(&received, &erasures, params.cap_bits)
        {
            Ok(b) => ((v, idx, chunk), b, false),
            Err(_) => ((v, idx, chunk), BitVec::zeros(params.cap_bits), true),
        }
    })
}

/// The cover-free engine as a resumable session: every [`CfSession::step`]
/// executes exactly one `exchange` (round 1 or round 2 of the current chunk
/// pack); the step that completes the final pack also assembles the output.
/// Round-for-round identical to the former monolithic loop; within a step,
/// the per-pack encode and decode fan out across threads exactly like the
/// unit engine's ([`RouterConfig::parallel`]), and with
/// [`RouterConfig::event_driven`] they additionally overlap *across* packs.
pub(crate) struct CfSession<'i> {
    /// Borrowed for the zero-copy [`super::route`] path, shared when a
    /// protocol session hands a wave over (or event mode needs owned data).
    instance: Inst<'i>,
    plan: Arc<CfPlan>,
    /// Fan per-pack relay gather / decode out over rayon.
    parallel: bool,
    /// Adversarial symbols per codeword the chosen code absorbs; see
    /// [`check_budget`]. `usize::MAX` for the empty instance.
    e_allow: usize,
    extra_error_slack: usize,
    /// Optional shared codeword cache ([`super::RouteSession::new_cached`]);
    /// `None` keeps the plain lazy per-pack encode path.
    cache: Option<SharedCodewordCache>,
    pack_start: usize,
    phase: CfPhase,
    /// Ordered so output assembly never iterates a hash map.
    chunk_store: BTreeMap<(usize, usize), Vec<BitVec>>,
    delivered: Vec<BTreeMap<(usize, usize), BitVec>>,
    decode_failures: usize,
    rounds_before: u64,
    /// Set once the output has been assembled; stepping again is an error.
    finished: bool,
    /// `Some` when running on the event-driven pack executor.
    event: Option<CfEventState>,
}

impl<'i> CfSession<'i> {
    /// Validates the decode margin. No rounds run until the first
    /// [`CfSession::step`] — infeasible parameter combinations are rejected
    /// here, before any round, which is what lets
    /// [`super::RoutingMode::Auto`] fall back cleanly. Codewords are
    /// encoded lazily, per pack.
    pub(crate) fn new(
        net: &Network,
        instance: Cow<'i, RoutingInstance>,
        cfg: &RouterConfig,
    ) -> Result<Self, CoreError> {
        // Zero messages: the first step returns a well-formed empty output
        // without running a round — no family or margin constraint can
        // apply to an instance that routes nothing (the same guard as
        // `UnitSession`).
        let params = if instance.messages.is_empty() {
            CfParams::empty(cfg)?
        } else {
            derive_params(net, &instance, cfg)?
        };
        Self::from_params(net, instance, cfg, params)
    }

    /// Second construction half, split out so Auto mode can probe
    /// [`derive_params`] for feasibility while keeping ownership of the
    /// instance on the fallback path.
    pub(crate) fn from_params(
        net: &Network,
        instance: Cow<'i, RoutingInstance>,
        cfg: &RouterConfig,
        params: CfParams,
    ) -> Result<Self, CoreError> {
        let n = instance.n;
        if n != net.n() {
            return Err(CoreError::invalid("instance size != network size"));
        }

        let uniq_targets: Vec<Vec<usize>> = instance
            .messages
            .iter()
            .map(|msg| {
                let mut uniq = msg.targets.clone();
                uniq.sort_unstable();
                uniq.dedup();
                uniq
            })
            .collect();

        let mut delivered: Vec<BTreeMap<(usize, usize), BitVec>> = vec![BTreeMap::new(); n];
        for msg in &instance.messages {
            if msg.targets.contains(&msg.src) {
                delivered[msg.src].insert((msg.src, msg.slot), msg.payload.clone());
            }
        }

        // Codewords are encoded lazily, per pack, at the top of each
        // round 1 — a pack only ever touches its own `lanes` chunks, so
        // holding all `messages × chunks × L` symbols for the whole
        // session (the former upfront pre-encode here) bought nothing but
        // memory.
        let empty = instance.messages.is_empty();
        let e_allow = if empty {
            usize::MAX
        } else {
            absorbed_error_budget(net, cfg.extra_error_slack)
        };
        let event = cfg.event_driven && !empty;
        Ok(Self {
            plan: Arc::new(CfPlan {
                chunk_ids: (0..params.chunks).collect(),
                params,
                symbol_bits: cfg.symbol_bits,
                uniq_targets,
            }),
            instance: Inst::from_cow(instance, event),
            parallel: cfg.parallel,
            e_allow,
            extra_error_slack: cfg.extra_error_slack,
            cache: None,
            pack_start: 0,
            phase: CfPhase::Round1,
            chunk_store: BTreeMap::new(),
            delivered,
            decode_failures: 0,
            rounds_before: net.rounds(),
            finished: false,
            event: event.then(|| CfEventState {
                bus: MessageBus::new(),
                encodes: VecDeque::new(),
                next_dispatch: 0,
                decodes: VecDeque::new(),
                n,
                bandwidth: net.bandwidth(),
                pool: Arc::new(FramePool::new()),
            }),
        })
    }

    /// Attaches a shared codeword cache (a no-op handle change: encoding is
    /// deterministic, so cached and uncached sessions are bit-identical).
    pub(crate) fn with_cache(mut self, cache: Option<SharedCodewordCache>) -> Self {
        self.cache = cache;
        self
    }

    fn pack(&self) -> &[usize] {
        let end = (self.pack_start + self.plan.params.lanes).min(self.plan.chunk_ids.len());
        &self.plan.chunk_ids[self.pack_start..end]
    }

    /// Dispatches round-1 prefetch jobs up to [`PREFETCH_PACKS`] in flight.
    fn dispatch_prefetch(&mut self) {
        let Some(ev) = &mut self.event else { return };
        let lanes = self.plan.params.lanes;
        while ev.encodes.len() < PREFETCH_PACKS && ev.next_dispatch < self.plan.chunk_ids.len() {
            let pack_start = ev.next_dispatch;
            ev.next_dispatch += lanes;
            let instance = self.instance.shared();
            let plan = self.plan.clone();
            let cache = self.cache.clone();
            let parallel = self.parallel;
            let (n, bandwidth) = (ev.n, ev.bandwidth);
            let pool = ev.pool.clone();
            let job = exec::spawn(move || {
                let end = (pack_start + plan.params.lanes).min(plan.chunk_ids.len());
                let pack = &plan.chunk_ids[pack_start..end];
                // Pooled zeroed frame buffers — indistinguishable from
                // `BitVec::zeros`, batched through a taker.
                let mut taker = pool.taker();
                build_round1(
                    &instance,
                    &plan,
                    cache.as_ref(),
                    parallel,
                    pack,
                    Traffic::new(n, bandwidth),
                    |len| taker.take(len),
                )
            });
            ev.encodes.push_back((pack_start, job));
        }
    }

    /// Folds decoded units into the chunk store — keyed writes, so the fold
    /// is order-independent across packs.
    fn fold_decoded(&mut self, decoded: Vec<CfDecodedUnit>) {
        let (chunks, cap_bits) = (self.plan.params.chunks, self.plan.params.cap_bits);
        for ((v, idx, chunk), bits, failed) in decoded {
            if failed {
                self.decode_failures += 1;
            }
            self.chunk_store
                .entry((v, idx))
                .or_insert_with(|| vec![BitVec::zeros(cap_bits); chunks])[chunk] = bits;
        }
    }

    /// Joins in-flight decode jobs down to `down_to`, folding results and
    /// reclaiming deliveries.
    fn drain_decodes(&mut self, net: &mut Network, down_to: usize) {
        while self
            .event
            .as_ref()
            .is_some_and(|ev| ev.decodes.len() > down_to)
        {
            let job = self
                .event
                .as_mut()
                .and_then(|ev| ev.decodes.pop_front())
                .expect("checked non-empty");
            let (decoded, delivery) = job.join();
            // Frames feed the `Sync` pool (for the next prefetch job), the
            // sparse tables go back to the arena as usual.
            let pool = self.event.as_ref().expect("event mode").pool.clone();
            net.reclaim_split(delivery, &pool);
            self.fold_decoded(decoded);
        }
    }

    /// Advances one exchange; `Some(output)` when the final pack is done.
    pub(crate) fn step(&mut self, net: &mut Network) -> Result<Option<RoutingOutput>, CoreError> {
        if self.finished {
            return Err(CoreError::invalid(
                "routing session stepped after completion",
            ));
        }
        if self.pack_start >= self.plan.chunk_ids.len() {
            return Ok(Some(self.finish(net)));
        }
        check_budget(net, self.e_allow, self.extra_error_slack)?;
        let pack: Vec<usize> = self.pack().to_vec();
        match std::mem::replace(&mut self.phase, CfPhase::Round1) {
            CfPhase::Round1 => {
                let (pack_cw, traffic) = if self.event.is_some() {
                    self.dispatch_prefetch();
                    let ev = self.event.as_mut().expect("event mode");
                    let (start, job) = ev
                        .encodes
                        .pop_front()
                        .expect("prefetch covers current pack");
                    debug_assert_eq!(start, self.pack_start, "prefetch FIFO tracks the clock");
                    let (pack_cw, batch) = job.join()?;
                    let vtime = net.virtual_time();
                    ev.bus.post(vtime, batch);
                    let traffic = ev.bus.take(vtime).expect("batch staged for current vtime");
                    (pack_cw, traffic)
                } else {
                    let traffic = net.traffic();
                    build_round1(
                        &self.instance,
                        &self.plan,
                        self.cache.as_ref(),
                        self.parallel,
                        &pack,
                        traffic,
                        |len| net.frame_buffer(len),
                    )?
                };
                let delivery1 = net.exchange(traffic);

                // ---- Relays note what they hold, straight into the flat
                // lane-major grid addressed (lane, msg, pos).
                // `InLoad(src, w) == 1` makes the message a relay expects
                // from a sender unique, so walking messages × set positions
                // recovers exactly the old dense relay-table scan in O(m·L);
                // each (lane, message) row is independent and fans out.
                let plan = &*self.plan;
                let params = &plan.params;
                let n = self.instance.n;
                let instance = &*self.instance;
                let num_msgs = instance.messages.len();
                let flat: Vec<(usize, usize)> = (0..pack.len())
                    .flat_map(|lane| (0..num_msgs).map(move |idx| (lane, idx)))
                    .collect();
                let pack_cw_ref = &pack_cw;
                let gathered: Vec<Vec<u16>> = map_units(self.parallel, flat, |(lane, idx)| {
                    let msg = &instance.messages[idx];
                    params.sets[idx]
                        .iter()
                        .enumerate()
                        .map(|(pos, &w)| {
                            let w = w as usize;
                            let val = if params.in_load[msg.src * n + w] != 1 {
                                None
                            } else if w == msg.src {
                                Some(pack_cw_ref[idx][lane][pos])
                            } else {
                                delivery1.received(w, msg.src).and_then(|f| {
                                    lane_symbol(f, lane, params.slot, plan.symbol_bits)
                                })
                            };
                            val.unwrap_or(RelayGrid::ABSENT)
                        })
                        .collect()
                });
                let mut blocks: Vec<Vec<u16>> = Vec::with_capacity(pack.len());
                let mut it = gathered.into_iter();
                for _ in 0..pack.len() {
                    let mut block = Vec::with_capacity(num_msgs * params.l);
                    for row in it.by_ref().take(num_msgs) {
                        block.extend_from_slice(&row);
                    }
                    blocks.push(block);
                }
                let relay =
                    RelayGrid::from_blocks(blocks, RelayGrid::uniform_offsets(num_msgs, params.l));
                net.reclaim(delivery1);
                self.phase = CfPhase::Round2 { relay };
                Ok(None)
            }
            CfPhase::Round2 { relay } => {
                // ---- Round 2: relays forward to targets (OutLoad filter);
                // ordered frame assembly exactly as in round 1. A forward
                // frame is sent even when the relay holds nothing (validity
                // bit clear) — the wire behavior the adversary observes.
                let plan = &*self.plan;
                let params = &plan.params;
                let n = self.instance.n;
                let instance = &*self.instance;
                let mut traffic = net.traffic();
                let mut frames: BTreeMap<(usize, usize), BitVec> = BTreeMap::new();
                for (lane, _) in pack.iter().enumerate() {
                    for (idx, msg) in instance.messages.iter().enumerate() {
                        for (pos, &w) in params.sets[idx].iter().enumerate() {
                            let w = w as usize;
                            if params.in_load[msg.src * n + w] != 1 {
                                continue; // w never expected this symbol
                            }
                            let val = relay.get(lane, idx, pos);
                            for &v in &plan.uniq_targets[idx] {
                                if v == w || params.out_load[w * n + v] != 1 {
                                    continue;
                                }
                                let frame = frames.entry((w, v)).or_insert_with(|| {
                                    net.frame_buffer(params.lanes * params.slot)
                                });
                                if let Some(sym) = val {
                                    frame.set(lane * params.slot, true);
                                    frame.write_uint(
                                        lane * params.slot + 1,
                                        plan.symbol_bits,
                                        sym as u64,
                                    );
                                }
                            }
                        }
                    }
                }
                for ((from, to), frame) in frames {
                    traffic.send(from, to, frame);
                }
                let delivery2 = net.exchange(traffic);

                if self.event.is_some() {
                    // ---- Event mode: decode moves off-thread; results fold
                    // in later (keyed writes — order-independent), the
                    // delivery is reclaimed at join time.
                    let instance = self.instance.shared();
                    let plan = self.plan.clone();
                    let parallel = self.parallel;
                    let pack = pack.clone();
                    let job = exec::spawn(move || {
                        let decoded =
                            decode_pack(&instance, &plan, parallel, &pack, &relay, &delivery2);
                        (decoded, delivery2)
                    });
                    self.event
                        .as_mut()
                        .expect("event mode")
                        .decodes
                        .push_back(job);
                    self.drain_decodes(net, DECODES_IN_FLIGHT);
                } else {
                    let decoded = decode_pack(
                        &self.instance,
                        &self.plan,
                        self.parallel,
                        &pack,
                        &relay,
                        &delivery2,
                    );
                    net.reclaim(delivery2);
                    self.fold_decoded(decoded);
                }
                self.pack_start += self.plan.params.lanes;
                self.phase = CfPhase::Round1;
                if self.pack_start >= self.plan.chunk_ids.len() {
                    return Ok(Some(self.finish(net)));
                }
                Ok(None)
            }
        }
    }

    /// The engine's instance, for [`super::RouteSession::snapshot`].
    pub(crate) fn instance_ref(&self) -> &RoutingInstance {
        &self.instance
    }

    /// The dispatch frontier the event executor must sit at when the
    /// session is exactly between two steps in the current phase.
    fn quiesced_dispatch(&self) -> usize {
        self.pack_start
            + match self.phase {
                CfPhase::Round1 => 0,
                CfPhase::Round2 { .. } => self.plan.params.lanes,
            }
    }

    /// Quiesces event-path work to the current step boundary (see the unit
    /// engine's `quiesce`): decodes fold early (order-independent),
    /// prefetched encodes are discarded (pure) and re-dispatched on resume.
    fn quiesce(&mut self, net: &mut Network) {
        if self.event.is_none() {
            return;
        }
        self.drain_decodes(net, 0);
        let next = self.quiesced_dispatch();
        let ev = self.event.as_mut().expect("event mode");
        ev.encodes.clear();
        ev.next_dispatch = next;
    }

    /// Serializes the session's dynamic state, quiescing first; see
    /// [`super::RouteSession::snapshot`].
    pub(crate) fn snapshot_state(&mut self, net: &mut Network, enc: &mut Enc) {
        self.quiesce(net);
        enc.put_usize(self.e_allow);
        enc.put_usize(self.pack_start);
        match &self.phase {
            CfPhase::Round1 => enc.put_u8(0),
            CfPhase::Round2 { relay } => {
                enc.put_u8(1);
                relay.snapshot(enc);
            }
        }
        let entries: Vec<(&(usize, usize), &Vec<BitVec>)> = self.chunk_store.iter().collect();
        enc.put_seq(&entries, |e, ((v, idx), chunks)| {
            e.put_usize(*v);
            e.put_usize(*idx);
            e.put_seq(chunks, |e, b| e.put_bits(b));
        });
        super::snapshot_delivered(&self.delivered, enc);
        enc.put_usize(self.decode_failures);
        enc.put_u64(self.rounds_before);
        enc.put_bool(self.finished);
    }

    /// Rebuilds a session from `new` (the family, load maps, and code are
    /// deterministic functions of the instance and config) and overlays the
    /// dynamic state written by [`CfSession::snapshot_state`].
    pub(crate) fn restore(
        net: &Network,
        instance: RoutingInstance,
        cfg: &RouterConfig,
        cache: Option<SharedCodewordCache>,
        dec: &mut Dec<'_>,
    ) -> Result<CfSession<'static>, CoreError> {
        let mut s = CfSession::new(net, Cow::Owned(instance), cfg)?.with_cache(cache);
        let e_allow = dec.get_usize()?;
        if e_allow != s.e_allow {
            return Err(CoreError::invalid(format!(
                "snapshot: absorbed error budget drifted across restore \
                 (saved {e_allow}, rebuilt {})",
                s.e_allow
            )));
        }
        s.pack_start = dec.get_usize()?;
        s.phase = match dec.get_u8()? {
            0 => CfPhase::Round1,
            1 => CfPhase::Round2 {
                relay: RelayGrid::restore(dec)?,
            },
            t => {
                return Err(CoreError::invalid(format!(
                    "snapshot: cover-free phase tag {t}"
                )))
            }
        };
        let entries = dec.get_seq(24, |d| {
            let v = d.get_usize()?;
            let idx = d.get_usize()?;
            let chunks = d.get_seq(8, Dec::get_bits)?;
            Ok(((v, idx), chunks))
        })?;
        let mut last = None;
        s.chunk_store = BTreeMap::new();
        for ((v, idx), chunks) in entries {
            if last.is_some_and(|p| p >= (v, idx)) {
                return Err(CoreError::invalid("snapshot: chunk store out of order"));
            }
            last = Some((v, idx));
            s.chunk_store.insert((v, idx), chunks);
        }
        s.delivered = super::restore_delivered(dec)?;
        if s.delivered.len() != s.instance.n {
            return Err(CoreError::invalid(
                "snapshot: delivered table size mismatch",
            ));
        }
        s.decode_failures = dec.get_usize()?;
        s.rounds_before = dec.get_u64()?;
        s.finished = dec.get_bool()?;
        let next = s.quiesced_dispatch();
        if let Some(ev) = &mut s.event {
            ev.next_dispatch = next;
        }
        Ok(s)
    }

    /// Assembles the chunked payloads into the final output. Event mode
    /// drains every outstanding decode job first.
    fn finish(&mut self, net: &mut Network) -> RoutingOutput {
        self.drain_decodes(net, 0);
        self.finished = true;
        let mut delivered = std::mem::take(&mut self.delivered);
        for ((v, idx), chunks) in std::mem::take(&mut self.chunk_store) {
            let msg = &self.instance.messages[idx];
            let mut full = BitVec::concat(chunks.iter());
            full.truncate(msg.payload.len());
            delivered[v].insert((msg.src, msg.slot), full);
        }
        RoutingOutput {
            delivered,
            report: RoutingReport {
                engine: EngineUsed::CoverFree,
                rounds: net.rounds() - self.rounds_before,
                stages: 1,
                chunks: self.plan.params.chunks,
                decode_failures: self.decode_failures,
            },
        }
    }
}

/// Runs the cover-free engine to completion. See the module docs.
pub fn route_coverfree(
    net: &mut Network,
    instance: &RoutingInstance,
    cfg: &RouterConfig,
) -> Result<RoutingOutput, CoreError> {
    let mut session = CfSession::new(net, Cow::Borrowed(instance), cfg)?;
    loop {
        if let Some(out) = session.step(net)? {
            return Ok(out);
        }
    }
}

/// [`route_coverfree`] on one thread: the bit-identity oracle for the
/// parallel encode/decode path.
///
/// # Errors
///
/// As [`route_coverfree`].
pub fn route_coverfree_serial(
    net: &mut Network,
    instance: &RoutingInstance,
    cfg: &RouterConfig,
) -> Result<RoutingOutput, CoreError> {
    let cfg = RouterConfig {
        parallel: false,
        ..cfg.clone()
    };
    route_coverfree(net, instance, &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::SuperMessage;
    use bdclique_netsim::Adversary;

    fn instance(
        n: usize,
        payload_bits: usize,
        msgs: Vec<(usize, usize, Vec<usize>)>,
    ) -> RoutingInstance {
        let messages = msgs
            .into_iter()
            .map(|(src, slot, targets)| SuperMessage {
                src,
                slot,
                payload: BitVec::from_fn(payload_bits, |i| (i * 7 + src + 3 * slot) % 5 < 2),
                targets,
            })
            .collect();
        RoutingInstance {
            n,
            payload_bits,
            messages,
        }
    }

    #[test]
    fn fault_free_two_messages_per_node() {
        let n = 64;
        // Every node sends 2 messages; message (u, j) targets (u + j + 1) % n.
        let msgs: Vec<(usize, usize, Vec<usize>)> = (0..n)
            .flat_map(|u| (0..2).map(move |j| (u, j, vec![(u + j + 1) % n])))
            .collect();
        let inst = instance(n, 16, msgs);
        let mut net = Network::new(n, 9, 0.0, Adversary::none());
        let out = route_coverfree(&mut net, &inst, &RouterConfig::default()).unwrap();
        assert_eq!(out.report.decode_failures, 0);
        assert_eq!(out.report.rounds, 2 * out.report.chunks as u64);
        for msg in &inst.messages {
            for &t in &msg.targets {
                assert_eq!(
                    out.delivered[t].get(&(msg.src, msg.slot)),
                    Some(&msg.payload),
                    "message ({}, {})",
                    msg.src,
                    msg.slot
                );
            }
        }
    }

    #[test]
    fn multi_target_broadcast_style() {
        let n = 32;
        let inst = instance(n, 8, vec![(5, 0, (0..n).collect())]);
        let mut net = Network::new(n, 9, 0.0, Adversary::none());
        let out = route_coverfree(&mut net, &inst, &RouterConfig::default()).unwrap();
        for v in 0..n {
            assert_eq!(
                out.delivered[v].get(&(5, 0)),
                Some(&inst.messages[0].payload)
            );
        }
    }

    #[test]
    fn survives_adaptive_attack_within_margin() {
        // n = 256, k = 2, budget 1: the cover-free margin holds and every
        // payload must decode despite an adaptive greedy flipper.
        let n = 256;
        let msgs: Vec<(usize, usize, Vec<usize>)> = (0..n)
            .flat_map(|u| (0..2).map(move |j| (u, j, vec![(u + j * 9 + 1) % n])))
            .collect();
        let inst = instance(n, 16, msgs);
        let adv = bdclique_netsim::Adversary::adaptive(TestGreedy);
        let mut net = Network::new(n, 9, 1.2 / n as f64, adv);
        let out = route_coverfree(&mut net, &inst, &RouterConfig::default()).unwrap();
        assert_eq!(out.report.decode_failures, 0);
        assert!(net.stats().edges_corrupted > 0);
        for msg in &inst.messages {
            for &t in &msg.targets {
                assert_eq!(
                    out.delivered[t].get(&(msg.src, msg.slot)),
                    Some(&msg.payload)
                );
            }
        }
    }

    /// Minimal in-crate adaptive flipper (the full strategy suite lives in
    /// `bdclique-adversary`, which would be a cyclic dev-dependency here).
    #[derive(Default)]
    struct TestGreedy;

    impl bdclique_netsim::AdaptiveStrategy for TestGreedy {
        fn corrupt(
            &mut self,
            _view: &bdclique_netsim::AdversaryView<'_>,
            scope: &mut bdclique_netsim::AdaptiveScope<'_>,
        ) {
            let n = scope.n();
            for u in 0..n {
                for v in (u + 1)..n {
                    if scope.intended(u, v).is_none() && scope.intended(v, u).is_none() {
                        continue;
                    }
                    if !scope.try_acquire(u, v) {
                        continue;
                    }
                    for (a, b) in [(u, v), (v, u)] {
                        if let Some(f) = scope.intended(a, b) {
                            let mut flipped = f.clone();
                            for i in 0..flipped.len() {
                                flipped.flip(i);
                            }
                            scope.try_corrupt(a, b, Some(flipped));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn infeasibility_detected_before_any_round() {
        let n = 16;
        let msgs: Vec<(usize, usize, Vec<usize>)> = (0..n)
            .flat_map(|u| (0..4).map(move |j| (u, j, vec![(u + j + 1) % n])))
            .collect();
        let inst = instance(n, 8, msgs);
        // alpha = 0.4: budget 6, e_allow = 13 — hopeless for L ≤ n/8.
        let mut net = Network::new(n, 9, 0.4, Adversary::none());
        let err = route_coverfree(&mut net, &inst, &RouterConfig::default()).unwrap_err();
        assert!(matches!(err, CoreError::Infeasible { .. }));
        assert_eq!(
            net.rounds(),
            0,
            "no rounds may run before feasibility is known"
        );
    }

    /// The event-driven executor is bit-identical to the lockstep path on
    /// the cover-free engine: same outputs, stats, and per-round corruption
    /// history — multi-chunk (so prefetch actually pipelines), multi-target,
    /// and under an active adversary.
    #[test]
    fn event_driven_matches_lockstep() {
        let ring = |n: usize| -> Vec<(usize, usize, Vec<usize>)> {
            (0..n)
                .flat_map(|u| (0..2).map(move |j| (u, j, vec![(u + j + 1) % n])))
                .collect()
        };
        let cases: Vec<(usize, f64, RoutingInstance)> = vec![
            (64, 0.0, instance(64, 64, ring(64))), // multi-chunk pipeline
            (32, 0.0, instance(32, 8, vec![(5, 0, (0..32).collect())])),
            (256, 1.2 / 256.0, instance(256, 16, ring(256))),
        ];
        for (case, (n, alpha, inst)) in cases.into_iter().enumerate() {
            let run = |event: bool| {
                let adversary = if alpha > 0.0 {
                    Adversary::adaptive(TestGreedy)
                } else {
                    Adversary::none()
                };
                let mut net = Network::new(n, 9, alpha, adversary);
                let cfg = RouterConfig {
                    event_driven: event,
                    ..RouterConfig::default()
                };
                let out = route_coverfree(&mut net, &inst, &cfg).unwrap();
                let hist: Vec<_> = net
                    .history()
                    .records()
                    .iter()
                    .map(|r| (r.round, r.corrupted.clone(), r.frames, r.bits))
                    .collect();
                let stats = *net.stats();
                (out, stats, hist)
            };
            let (lock_out, lock_stats, lock_hist) = run(false);
            let (ev_out, ev_stats, ev_hist) = run(true);
            assert_eq!(lock_stats, ev_stats, "case {case}: stats");
            assert_eq!(lock_hist, ev_hist, "case {case}: round history");
            assert_eq!(lock_out.report, ev_out.report, "case {case}: report");
            for (x, (a, b)) in lock_out
                .delivered
                .iter()
                .zip(ev_out.delivered.iter())
                .enumerate()
            {
                assert_eq!(a, b, "case {case}: delivered payloads at node {x}");
            }
        }
    }
}
