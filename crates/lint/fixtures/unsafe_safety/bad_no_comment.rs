// lint-fixture-as: crates/shims/rayon/src/fixture.rs
//! Known-bad: `unsafe` inside the shims without an adjacent SAFETY comment.

fn transmute_len(bytes: &[u8]) -> u32 {
    unsafe { *(bytes.as_ptr() as *const u32) }
}
