//! Error-correcting codes and locally decodable codes (LDCs).
//!
//! This crate provides every coding-theoretic object the Fischer–Parter
//! compilers rely on:
//!
//! * [`Gf`] — arithmetic in GF(2^m) for 1 ≤ m ≤ 16 (log/exp tables),
//! * [`ReedSolomon`] — systematic Reed–Solomon codes with
//!   Berlekamp–Massey errors-and-erasures decoding; used directly at symbol
//!   granularity (B ≥ m bits per edge) by the resilient routing scheme,
//! * [`HammingCode`] — the extended Hamming `[8,4,4]` binary code used as an
//!   inner code,
//! * [`ConcatenatedCode`] — a Justesen-style binary code with constant rate
//!   and distance (RS outer ∘ Hamming inner), standing in for Lemma 2.1
//!   (see `DESIGN.md`, substitution 2),
//! * [`RepetitionCode`] — the trivial baseline code for ablations,
//! * [`Ldc`] implementations — [`HadamardLdc`] (2 queries, exponential
//!   length; unit-test scale) and [`RmLdc`] (bivariate Reed–Muller with
//!   non-adaptive line queries and majority amplification), standing in for
//!   the Kopparty–Meir–Ron-Zewi–Saraf LDC of Lemma 2.2 (see `DESIGN.md`,
//!   substitution 1).
//!
//! All codes implement the common [`SymbolCode`] trait so the routing layer
//! can swap them, and LDCs implement [`Ldc`] with the paper's
//! `DecodeIndices(i, R)` / `LDCDecode(x, i, R)` interface (Definition 4).

// Dense linear-algebra and protocol code walks several same-length arrays
// by explicit index; clippy's iterator rewrites would obscure the paper's
// formulas, so this style lint is opted out crate-wide.
#![allow(clippy::needless_range_loop)]
mod concat;
mod error;
mod gf;
mod hamming;
mod ldc;
mod linalg;
mod repetition;
mod rm;
mod rs;
mod traits;

pub use concat::ConcatenatedCode;
pub use error::CodeError;
pub use gf::Gf;
pub use hamming::HammingCode;
pub use ldc::{HadamardLdc, Ldc};
pub use linalg::{berlekamp_welch, invert_matrix, solve_linear};
pub use repetition::RepetitionCode;
pub use rm::RmLdc;
pub use rs::ReedSolomon;
pub use traits::{BitCode, SymbolCode};
