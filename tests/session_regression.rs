//! Bit-identity regression tests for the session/driver redesign.
//!
//! The golden tuples below — `(errors, rounds, bits_sent, edges_corrupted,
//! peak_fault_degree)` — were captured from the **pre-redesign monolithic
//! `run()` loops** (the code as of PR 3). The redesigned protocols execute
//! as explicit `ProtocolSession` state machines with `run()` a default
//! method looping `step()`; these tests prove the rewrite changed nothing
//! observable, across seeds and adversary classes.
//!
//! Two exceptions, marked `canonical: true`: the LDC-fetch paths
//! (`adaptive-take1` and `adaptive-take2` with `query_via_ldc`) were
//! **cross-process nondeterministic before the redesign** — their query
//! routing instance was collected by iterating a `HashMap`, whose
//! per-process random iteration order leaked into the unit engine's greedy
//! stage coloring, so identical seeds produced different round counts in
//! different processes. The session port sorts that collection, pinning a
//! canonical order; their goldens were captured from the ported code (and
//! are now actually stable).

use bdclique::core::driver::{Driver, RoundBudget, RoundObserver, RoundTrace};
use bdclique::core::protocols::{
    AdaptiveAllToAll, AdaptiveTakeOne, AllToAllProtocol, DetHypercube, DetSqrt, NaiveExchange,
    NonAdaptiveAllToAll, RelayReplication, Step,
};
use bdclique::core::{AllToAllInstance, CoreError};
use bdclique::netsim::Network;
use bdclique_bench::{run_trial, AdversarySpec, Trial, TrialSeeds};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One golden case: protocol × network × adversary × seed.
struct Golden {
    label: &'static str,
    proto: Box<dyn AllToAllProtocol>,
    n: usize,
    b: usize,
    bandwidth: usize,
    alpha: f64,
    spec: AdversarySpec,
    seed: u64,
    /// `(errors, rounds, bits_sent, edges_corrupted, peak_fault_degree)`.
    expect: (usize, u64, u64, u64, usize),
}

fn cases() -> Vec<Golden> {
    vec![
        Golden {
            label: "naive/greedy",
            proto: Box::new(NaiveExchange),
            n: 16,
            b: 3,
            bandwidth: 9,
            alpha: 0.07,
            spec: AdversarySpec::GreedyFlip,
            seed: 11,
            expect: (16, 1, 720, 8, 1),
        },
        Golden {
            label: "naive/rotating",
            proto: Box::new(NaiveExchange),
            n: 16,
            b: 3,
            bandwidth: 9,
            alpha: 1.0 / 8.0,
            spec: AdversarySpec::RotatingMatchingFlip,
            seed: 12,
            expect: (16, 1, 720, 8, 1),
        },
        Golden {
            label: "relay-x3/rotating",
            proto: Box::new(RelayReplication { copies: 3 }),
            n: 10,
            b: 2,
            bandwidth: 9,
            alpha: 1.0 / 8.0,
            spec: AdversarySpec::RotatingMatchingFlip,
            seed: 21,
            expect: (7, 6, 972, 30, 1),
        },
        Golden {
            label: "relay-x3/hunter",
            proto: Box::new(RelayReplication { copies: 3 }),
            n: 16,
            b: 2,
            bandwidth: 9,
            alpha: 1.0 / 8.0,
            spec: AdversarySpec::RelayHunter(3, 11),
            seed: 22,
            expect: (1, 6, 2700, 3, 1),
        },
        Golden {
            label: "nonadaptive/matchings",
            proto: Box::new(NonAdaptiveAllToAll {
                copies: 5,
                seed: 0xabc1,
                ..Default::default()
            }),
            n: 16,
            b: 2,
            bandwidth: 18,
            alpha: 1.0 / 16.0,
            spec: AdversarySpec::RandomMatchingsFlip,
            seed: 31,
            expect: (0, 9, 32640, 72, 1),
        },
        // canonical: pre-redesign behavior was process-dependent (HashMap
        // fetch order); golden captured from the ported, order-pinned code.
        Golden {
            label: "take1/greedy",
            proto: Box::new(AdaptiveTakeOne {
                line_capacity: 1,
                lines: 3,
                seed: 0xabc2,
                ..Default::default()
            }),
            n: 16,
            b: 1,
            bandwidth: 18,
            alpha: 0.07,
            spec: AdversarySpec::GreedyFlip,
            seed: 41,
            expect: (0, 17, 37350, 79, 1),
        },
        // canonical: see take1/greedy.
        Golden {
            label: "take2-ldc/greedy",
            proto: Box::new(AdaptiveAllToAll {
                line_capacity: 1,
                seed: 0xabc3,
                ..Default::default()
            }),
            n: 16,
            b: 1,
            bandwidth: 18,
            alpha: 0.07,
            spec: AdversarySpec::GreedyFlip,
            seed: 51,
            expect: (0, 9056, 22249200, 42186, 1),
        },
        Golden {
            label: "take2-direct/rushing",
            proto: Box::new(AdaptiveAllToAll {
                query_via_ldc: false,
                seed: 0xabc4,
                ..Default::default()
            }),
            n: 16,
            b: 1,
            bandwidth: 18,
            alpha: 0.07,
            spec: AdversarySpec::RushingRandom,
            seed: 52,
            expect: (0, 181, 669840, 1391, 1),
        },
        Golden {
            label: "hypercube/greedy",
            proto: Box::new(DetHypercube::default()),
            n: 16,
            b: 2,
            bandwidth: 9,
            alpha: 0.07,
            spec: AdversarySpec::GreedyFlip,
            seed: 61,
            expect: (0, 16, 25920, 96, 1),
        },
        Golden {
            label: "hypercube/victim",
            proto: Box::new(DetHypercube::default()),
            n: 32,
            b: 1,
            bandwidth: 9,
            alpha: 0.07,
            spec: AdversarySpec::TargetNodeFlip(5),
            seed: 62,
            expect: (0, 20, 133920, 30, 2),
        },
        Golden {
            label: "det-sqrt/victim",
            proto: Box::new(DetSqrt::default()),
            n: 16,
            b: 2,
            bandwidth: 9,
            alpha: 0.07,
            spec: AdversarySpec::TargetNodeFlip(3),
            seed: 71,
            expect: (0, 16, 31860, 15, 1),
        },
        Golden {
            label: "det-sqrt/rushing",
            proto: Box::new(DetSqrt::default()),
            n: 64,
            b: 1,
            bandwidth: 18,
            alpha: 0.05,
            spec: AdversarySpec::RushingRandom,
            seed: 72,
            expect: (0, 16, 1161216, 1529, 3),
        },
    ]
}

fn run_case(case: &Golden) -> Trial {
    run_trial(
        case.proto.as_ref(),
        case.n,
        case.b,
        case.bandwidth,
        case.alpha,
        case.spec,
        case.seed,
    )
    .unwrap_or_else(|e| panic!("{}: {e}", case.label))
}

/// `run()` via the default `step()` loop reproduces the pre-redesign
/// monolithic loops exactly, for every protocol.
#[test]
fn run_matches_pre_redesign_goldens() {
    for case in cases() {
        let t = run_case(&case);
        let got = (
            t.errors,
            t.rounds,
            t.bits_sent,
            t.edges_corrupted,
            t.peak_fault_degree,
        );
        assert_eq!(got, case.expect, "{} diverged from golden", case.label);
    }
}

/// Builds the (instance, network) pair exactly as `run_trial` does, so the
/// manual-stepping executions below face the identical adversary.
fn trial_setup(case: &Golden) -> (AllToAllInstance, Network) {
    let seeds = TrialSeeds::derive(case.seed);
    let mut rng = ChaCha8Rng::seed_from_u64(seeds.instance);
    let inst = AllToAllInstance::random(case.n, case.b, &mut rng);
    let net = Network::new(
        case.n,
        case.bandwidth,
        case.alpha,
        case.spec.build(seeds.adversary),
    );
    (inst, net)
}

/// Property: for every protocol, a hand-driven `step()` loop and a
/// `Driver`-observed execution are bit-identical to `run()` — errors,
/// rounds, bits, corruptions. Swept across extra seeds beyond the goldens.
#[test]
fn manual_stepping_and_driver_match_run() {
    for bump in [0u64, 1] {
        for mut case in cases() {
            if case.label == "take2-ldc/greedy" {
                continue; // ~9k rounds; covered by the golden assert above
            }
            case.seed = case.seed.wrapping_add(bump * 1000);

            // Reference: run().
            let (inst, mut net_run) = trial_setup(&case);
            let out_run = case.proto.run(&mut net_run, &inst).unwrap();

            // Manual step loop: at most one round per step, and the session
            // never overruns the reference round count.
            let (inst2, mut net_step) = trial_setup(&case);
            let mut session = case.proto.session(&net_step, &inst2).unwrap();
            let out_step = loop {
                let rounds_before = net_step.rounds();
                let step = session.step(&mut net_step).unwrap();
                assert!(
                    net_step.rounds() - rounds_before <= 1,
                    "{}: a step ran more than one exchange",
                    case.label
                );
                assert!(
                    net_step.rounds() <= net_run.rounds(),
                    "{}: session overran the reference round count",
                    case.label
                );
                if let Step::Done(out) = step {
                    break out;
                }
            };
            // A completed session refuses further steps instead of looping
            // or returning drained state.
            assert!(
                session.step(&mut net_step).is_err(),
                "{}: re-stepping a completed session must fail",
                case.label
            );

            // Driver with a trace observer.
            let (inst3, mut net_drv) = trial_setup(&case);
            let mut trace = RoundTrace::new();
            let mut observers: [&mut dyn RoundObserver; 1] = [&mut trace];
            let out_drv = Driver::with_observers(&mut observers)
                .run(case.proto.as_ref(), &mut net_drv, &inst3)
                .unwrap();

            for (label, net, out) in [
                ("step", &net_step, &out_step),
                ("driver", &net_drv, &out_drv),
            ] {
                assert_eq!(
                    inst.count_errors(&out_run),
                    inst.count_errors(out),
                    "{}/{label}: errors diverged",
                    case.label
                );
                assert_eq!(net_run.rounds(), net.rounds(), "{}/{label}", case.label);
                assert_eq!(
                    net_run.stats().bits_sent,
                    net.stats().bits_sent,
                    "{}/{label}",
                    case.label
                );
                assert_eq!(
                    net_run.stats().edges_corrupted,
                    net.stats().edges_corrupted,
                    "{}/{label}",
                    case.label
                );
            }
            // The trace partitions the run: one frame per round, deltas
            // summing to the totals.
            assert_eq!(trace.frames.len() as u64, net_drv.rounds());
            assert_eq!(
                trace.frames.iter().map(|f| f.stats.bits_sent).sum::<u64>(),
                net_drv.stats().bits_sent
            );
            assert_eq!(
                trace
                    .frames
                    .iter()
                    .map(|f| f.stats.edges_corrupted)
                    .sum::<u64>(),
                net_drv.stats().edges_corrupted
            );
        }
    }
}

/// `RoundBudget` aborts exactly at the cap with no partial `exchange`, for
/// a multi-phase routed protocol (not just the single-loop baselines).
#[test]
fn round_budget_cuts_routed_protocols_cleanly() {
    let all = cases();
    let case = all
        .iter()
        .find(|c| c.label == "det-sqrt/victim") // 16 rounds at the golden
        .unwrap();
    for cap in [0u64, 1, 5, 15] {
        let (inst, mut net) = trial_setup(case);
        let mut budget = RoundBudget::new(cap);
        let mut observers: [&mut dyn RoundObserver; 1] = [&mut budget];
        let err = Driver::with_observers(&mut observers)
            .run(case.proto.as_ref(), &mut net, &inst)
            .unwrap_err();
        assert!(matches!(err, CoreError::Aborted { .. }), "cap {cap}: {err}");
        assert_eq!(net.rounds(), cap, "no partial exchange beyond the cap");
    }
    // At the exact protocol cost the run completes untouched.
    let (inst, mut net) = trial_setup(case);
    let mut budget = RoundBudget::new(16);
    let mut observers: [&mut dyn RoundObserver; 1] = [&mut budget];
    let out = Driver::with_observers(&mut observers)
        .run(case.proto.as_ref(), &mut net, &inst)
        .unwrap();
    assert_eq!(inst.count_errors(&out), 0);
    assert_eq!(net.rounds(), 16);
}
