//! Property-based tests for the `BitVec` wire format.

use bdclique_bits::BitVec;
use proptest::prelude::*;

proptest! {
    #[test]
    fn bools_roundtrip(bools in prop::collection::vec(any::<bool>(), 0..512)) {
        let v = BitVec::from_bools(&bools);
        prop_assert_eq!(v.len(), bools.len());
        let back: Vec<bool> = v.iter().collect();
        prop_assert_eq!(back, bools);
    }

    #[test]
    fn bytes_roundtrip(bools in prop::collection::vec(any::<bool>(), 0..512)) {
        let v = BitVec::from_bools(&bools);
        let bytes = v.to_bytes();
        prop_assert_eq!(BitVec::from_bytes(&bytes, v.len()), v);
    }

    #[test]
    fn symbols_roundtrip(
        bools in prop::collection::vec(any::<bool>(), 0..256),
        sym_bits in 1u32..=16,
    ) {
        let v = BitVec::from_bools(&bools);
        let syms = v.to_symbols(sym_bits);
        prop_assert_eq!(BitVec::from_symbols(&syms, sym_bits, v.len()), v);
    }

    #[test]
    fn hamming_is_metric(
        a in prop::collection::vec(any::<bool>(), 64),
        b in prop::collection::vec(any::<bool>(), 64),
        c in prop::collection::vec(any::<bool>(), 64),
    ) {
        let (a, b, c) = (BitVec::from_bools(&a), BitVec::from_bools(&b), BitVec::from_bools(&c));
        prop_assert_eq!(a.hamming(&a), 0);
        prop_assert_eq!(a.hamming(&b), b.hamming(&a));
        prop_assert!(a.hamming(&c) <= a.hamming(&b) + b.hamming(&c));
    }

    #[test]
    fn xor_distance_equals_ones(
        a in prop::collection::vec(any::<bool>(), 128),
        b in prop::collection::vec(any::<bool>(), 128),
    ) {
        let a = BitVec::from_bools(&a);
        let b = BitVec::from_bools(&b);
        let mut x = a.clone();
        x.xor_assign(&b);
        prop_assert_eq!(x.count_ones(), a.hamming(&b));
    }

    #[test]
    fn slice_concat_identity(
        bools in prop::collection::vec(any::<bool>(), 1..256),
        cut in any::<prop::sample::Index>(),
    ) {
        let v = BitVec::from_bools(&bools);
        let cut = cut.index(v.len() + 1);
        let joined = BitVec::concat([&v.slice(0, cut), &v.slice(cut, v.len())]);
        prop_assert_eq!(joined, v);
    }

    #[test]
    fn uint_roundtrip(width in 1u32..=64, raw in any::<u64>()) {
        let value = if width == 64 { raw } else { raw & ((1u64 << width) - 1) };
        let mut v = BitVec::new();
        v.push_uint(width, value);
        prop_assert_eq!(v.read_uint(0, width), value);
    }
}
