//! Machine-readable output: a hand-rolled JSON serializer (the lint is
//! dependency-free by design — it must build even when every other crate
//! in the workspace is broken).

use crate::rules::Finding;

/// Escapes a string for a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as a JSON document:
/// `{"findings": [...], "count": N, "ok": bool}`.
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            esc(f.rule),
            esc(&f.path),
            f.line,
            esc(&f.message)
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!(
        "],\n  \"count\": {},\n  \"ok\": {}\n}}\n",
        findings.len(),
        findings.is_empty()
    ));
    out
}

/// Renders findings for humans: `path:line: [rule] message`.
pub fn to_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n",
            f.path, f.line, f.rule, f.message
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_counts() {
        let fs = vec![Finding {
            rule: "no-raw-spawn",
            path: "a/b.rs".into(),
            line: 7,
            message: "say \"no\"\nplease".into(),
        }];
        let j = to_json(&fs);
        assert!(j.contains("\\\"no\\\"\\nplease"));
        assert!(j.contains("\"count\": 1"));
        assert!(j.contains("\"ok\": false"));
    }

    #[test]
    fn empty_report_is_ok() {
        let j = to_json(&[]);
        assert!(j.contains("\"count\": 0"));
        assert!(j.contains("\"ok\": true"));
    }
}
