// lint-fixture-as: crates/core/src/protocols/fixture.rs
//! The fixed shape: BTree containers iterate in key order on every process,
//! and keyed lookups on a HashMap are fine.

use std::collections::{BTreeMap, BTreeSet, HashMap};

fn order_pinned(map: BTreeMap<u32, u32>) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for (k, v) in map.iter() {
        out.push((*k, *v));
    }
    out
}

fn keys_pinned(seen: BTreeSet<u32>) -> Vec<u32> {
    seen.iter().copied().collect()
}

fn keyed_lookup_is_fine(index: HashMap<u32, u32>, k: u32) -> Option<u32> {
    index.get(&k).copied()
}
